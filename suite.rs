//! Host crate for the workspace-level integration tests (`tests/`) and
//! examples (`examples/`). All functionality lives in the member crates; see
//! the `sfq-ecc` facade crate for the public API.
