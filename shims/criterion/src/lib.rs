//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`], and
//! [`black_box`] — with a simple wall-clock measurement loop: each sample
//! calibrates an iteration count to a ~5 ms window, and the reported figure
//! is the best (minimum) ns/iter across samples, which is the most
//! noise-robust point estimate a shim without statistics can offer.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Target wall-clock duration of one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);

/// Benchmark driver mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of measurement samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Compatibility no-op: the shim sizes samples by `SAMPLE_TARGET`.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples_ns_per_iter: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Per-benchmark measurement state, passed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples_ns_per_iter: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measures the closure: calibrates an iteration count, then records
    /// `sample_size` timed samples of `iters` calls each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: run once, then scale the per-sample iteration count so
        // one sample lasts about `SAMPLE_TARGET`.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples_ns_per_iter.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples_ns_per_iter
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    /// Best observed ns/iter (minimum over samples), the shim's headline
    /// number.
    #[must_use]
    pub fn best_ns_per_iter(&self) -> f64 {
        self.samples_ns_per_iter
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    fn report(&self, id: &str) {
        if self.samples_ns_per_iter.is_empty() {
            println!("{id:<44} (no measurement: Bencher::iter never called)");
            return;
        }
        let best = self.best_ns_per_iter();
        let mean =
            self.samples_ns_per_iter.iter().sum::<f64>() / self.samples_ns_per_iter.len() as f64;
        println!(
            "{id:<44} best {:>12}   mean {:>12}",
            format_ns(best),
            format_ns(mean)
        );
    }
}

/// Formats a nanosecond figure with an adaptive unit.
fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = false;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2_000_000_000.0).ends_with(" s"));
    }
}
