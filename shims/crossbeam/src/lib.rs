//! Offline stand-in for the `crossbeam::scope` API used by this workspace.
//!
//! Since Rust 1.63 the standard library's [`std::thread::scope`] provides the
//! same borrowing guarantees crossbeam's scoped threads pioneered, so this
//! shim is a thin adapter: real OS threads, real parallelism, the crossbeam
//! call shape (`crossbeam::scope(|s| { s.spawn(|_| ...); }).expect(...)`).

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result type mirroring `crossbeam::thread::scope`: `Err` carries the panic
/// payload of a worker thread.
pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// A scope handle passed to the closure of [`scope`] and to every spawned
/// thread's closure (crossbeam passes the scope so workers can spawn
/// sub-workers).
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The join handle can be ignored: all threads
    /// are joined when the scope ends, exactly like crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which borrowed-data threads can be spawned, joining all
/// of them before returning. Returns `Err` with the panic payload if any
/// spawned thread (or the closure itself) panicked.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_share_borrowed_slices() {
        let mut results = vec![0usize; 8];
        scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move |_| {
                    *slot = i * i;
                });
            }
        })
        .expect("workers should not panic");
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn worker_panic_is_reported_as_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let mut flag = false;
        scope(|s| {
            let flag_ref = &mut flag;
            s.spawn(move |inner| {
                inner.spawn(move |_| {
                    *flag_ref = true;
                });
            });
        })
        .expect("no panic");
        assert!(flag);
    }
}
