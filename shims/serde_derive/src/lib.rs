//! Offline stand-in for `serde_derive`.
//!
//! Emits empty `impl serde::Serialize` / `impl serde::Deserialize` blocks for
//! the annotated type. Because the shim traits have no required items (see
//! `shims/serde`), an empty impl satisfies them. The parser below handles the
//! shapes used in this workspace: non-generic `struct`s and `enum`s, possibly
//! preceded by attributes, doc comments, and a visibility modifier.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the type a derive macro was applied to.
///
/// Scans the token stream for the `struct`/`enum`/`union` keyword and returns
/// the identifier that follows. Panics (a compile error in practice) when the
/// following tokens declare generic parameters, which this shim does not
/// support — no type in the workspace derives serde traits generically.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tree) = tokens.next() {
        let TokenTree::Ident(ident) = &tree else {
            continue;
        };
        let kw = ident.to_string();
        if kw != "struct" && kw != "enum" && kw != "union" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            panic!("serde shim derive: expected a type name after `{kw}`");
        };
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            assert!(
                p.as_char() != '<',
                "serde shim derive: generic types are not supported (type `{name}`)"
            );
        }
        return name.to_string();
    }
    panic!("serde shim derive: no struct/enum/union found in input");
}

/// Derives the shim `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde shim derive: generated impl must parse")
}

/// Derives the shim `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde shim derive: generated impl must parse")
}
