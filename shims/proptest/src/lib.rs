//! Offline stand-in for the `proptest` API surface used by this workspace.
//!
//! Supports the subset `tests/properties.rs` relies on: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`, `any::<T>()`, integer-range
//! strategies, `prop::collection::vec`, and the `prop_assert*` macros.
//! Each test runs a fixed number of deterministic random cases (seeded from
//! the test name), so failures are reproducible run-to-run. Unlike the real
//! proptest there is no shrinking — the failing case is reported as-is.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Number of random cases each `proptest!` test executes.
pub const CASES: usize = 256;

/// The RNG handed to strategies. A thin wrapper so the public API does not
/// leak the shim's `rand` internals.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates a generator for one test, seeded from the test's name so every
    /// test draws an independent, reproducible stream.
    #[must_use]
    pub fn for_test(test_name: &str) -> Self {
        TestRng(StdRng::seed_from_u64(fnv1a(test_name)))
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Samples uniformly below `n`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.0.random_range(0..n)
    }
}

/// FNV-1a hash used to derive per-test seeds.
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`, mirroring `proptest::prelude::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below((end - start) as u64 + 1) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

/// Mirrors the `proptest::prop` module tree (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for fixed-length `Vec`s of `element` samples.
        pub struct VecStrategy<S> {
            element: S,
            len: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                (0..self.len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Mirrors `prop::collection::vec(element, size)` for a fixed size.
        pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Mirrors `proptest!`: declares test functions whose arguments are drawn
/// from strategies, run [`CASES`] times with a per-test deterministic seed.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::TestRng::for_test(stringify!($name));
                for __proptest_case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&{ $strategy }, &mut __proptest_rng);)*
                    $body
                }
            }
        )*
    };
}

/// Mirrors `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirrors `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirrors `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_strategy_has_requested_length(bits in prop::collection::vec(any::<bool>(), 16)) {
            prop_assert_eq!(bits.len(), 16);
        }

        #[test]
        fn prop_map_applies(fours in (0u64..4).prop_map(|x| x * 4) ) {
            prop_assert_eq!(fours % 4, 0);
            prop_assert!(fours < 16);
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(super::fnv1a("a"), super::fnv1a("b"));
    }
}
