//! Offline stand-in for the `rand` 0.9 API surface used by this workspace.
//!
//! The execution environment has no access to crates.io, so the real `rand`
//! cannot be vendored. This shim implements the subset the workspace calls —
//! `Rng::random`, `Rng::random_range`, `Rng::random_bool`, `SeedableRng::
//! seed_from_u64`, and `rngs::StdRng` — on top of a xoshiro256++ generator
//! seeded through SplitMix64. Streams are deterministic for a fixed seed,
//! which is all the Monte-Carlo experiments require; they do *not* reproduce
//! the byte streams of the real `rand` crate.

pub mod distr;
pub mod rngs;

use distr::{SampleRange, StandardUniform};

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// range; `bool`: fair coin).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of reproducible generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform `u64` below `n` via Lemire's multiply-shift method with rejection
/// (unbiased).
pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(n);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            m = u128::from(rng.next_u64()) * u128::from(n);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}
