//! Standard and range distributions.

use crate::{uniform_below, RngCore};
use std::ops::{Range, RangeInclusive};

/// Types that can be sampled from their "standard" distribution
/// (`rng.random::<T>()`).
pub trait StandardUniform: Sized {
    /// Draws one sample from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_uniform_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `Rng::random_range` accepts.
pub trait SampleRange<T> {
    /// Draws one sample uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + i128::from(uniform_below(rng, span))) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64/u128-like domain.
                    return rng.next_u64() as $t;
                }
                (start as i128 + i128::from(uniform_below(rng, span as u64))) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        let u = f64::sample_standard(rng);
        start + u * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn integer_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(0..16);
            assert!(x < 16);
            let y: usize = rng.random_range(3..=7);
            assert!((3..=7).contains(&y));
            let z: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn all_values_of_small_range_appear() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            seen[rng.random_range(0..16usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: u64 = rng.random_range(5..5);
    }
}
