//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
/// seeded through SplitMix64 as its authors recommend.
///
/// Not cryptographically secure — statistical quality only, like the real
/// `StdRng` contract ("a reasonable default", no stream stability promised
/// across versions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            Self::splitmix64(&mut sm),
            Self::splitmix64(&mut sm),
            Self::splitmix64(&mut sm),
            Self::splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
