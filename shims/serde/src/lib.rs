//! Offline stand-in for the `serde` facade crate.
//!
//! The execution environment for this workspace has no access to crates.io,
//! so the real `serde` cannot be vendored. The workspace only uses serde as a
//! *marker* — types derive `Serialize`/`Deserialize` so that downstream users
//! can persist results — and never actually serializes anything in-tree.
//! This shim therefore provides the two traits with no required items plus a
//! derive macro that emits empty impls. Swapping the real serde back in is a
//! one-line change in the workspace manifest and requires no source edits.

/// Marker trait mirroring `serde::Serialize`.
///
/// The real trait's `serialize` method is intentionally absent: no code in
/// this workspace calls it, and leaving it out lets the derive macro emit
/// empty impls without needing a full serialization framework.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
