//! Exhaustive bit-exactness proof: the bit-sliced batch codec agrees with the
//! scalar `ecc` path on every message and every low-weight error pattern, for
//! every code the paper uses.
//!
//! For each code, every one of the 2^k messages is encoded and corrupted with
//! every 0-, 1-, and 2-bit error pattern; the whole set is decoded once
//! through the batch engine and once per-word through the scalar decoder, and
//! the two must agree *exactly* — same corrected message, same error flag,
//! same correction status. Randomized multi-limb batches with a seeded RNG
//! cover batch sizes beyond one limb and higher-weight errors.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfq_ecc::batch::{BatchCodec, KernelKind};
use sfq_ecc::ecc::{
    validate_code_matrices, BatchDecode, BatchEncode, BchSpec, BlockCode, DecodeOutcome, Decoded,
    Hamming74, Hamming84, HardDecoder, Repetition, Rm13, SecDed, ShortenedHamming, SyndromeClass,
    Uncoded,
};
use sfq_ecc::gf2::{
    syndrome_bytes, syndrome_bytes_inverse, BitMat, BitSlice64, BitVec, WeightPatterns,
};

/// Every codeword corrupted with every error pattern of weight 0, 1, or 2.
fn low_weight_corpus<C: BlockCode>(code: &C) -> Vec<BitVec> {
    let n = code.n();
    let k = code.k();
    let mut received = Vec::new();
    for m in 0..(1u64 << k) {
        let cw = code.encode(&BitVec::from_u64(k, m));
        for weight in 0..=2usize {
            for pattern in WeightPatterns::new(n, weight) {
                let mut r = cw.clone();
                for pos in 0..n {
                    if (pattern >> pos) & 1 == 1 {
                        r.flip(pos);
                    }
                }
                received.push(r);
            }
        }
    }
    received
}

/// Checks one code: batch decode of the corpus must match scalar decode
/// word for word.
fn assert_batch_matches_scalar<C: BlockCode + HardDecoder>(code: &C) {
    let codec = BatchCodec::new(code);
    let received = low_weight_corpus(code);
    let batch = BitSlice64::pack(&received);

    // Syndromes agree.
    let syndromes = codec.syndrome_batch(&batch);
    for (i, word) in received.iter().enumerate() {
        assert_eq!(
            syndromes.extract(i),
            code.syndrome(word),
            "{}: syndrome mismatch at word {i}",
            code.name()
        );
    }

    // Full decode agrees.
    let decoded = codec.decode_batch(&batch);
    for (i, word) in received.iter().enumerate() {
        let scalar = code.decode(word);
        match scalar.outcome {
            DecodeOutcome::DetectedUncorrectable => {
                assert!(
                    decoded.is_flagged(i),
                    "{}: word {i} should be flagged",
                    code.name()
                );
            }
            outcome => {
                assert!(
                    !decoded.is_flagged(i),
                    "{}: word {i} wrongly flagged",
                    code.name()
                );
                assert_eq!(
                    Some(decoded.messages.extract(i)),
                    scalar.message,
                    "{}: word {i} message mismatch",
                    code.name()
                );
                assert_eq!(
                    Some(decoded.codewords.extract(i)),
                    scalar.codeword,
                    "{}: word {i} codeword mismatch",
                    code.name()
                );
                assert_eq!(
                    decoded.is_corrected(i),
                    matches!(outcome, DecodeOutcome::Corrected { .. }),
                    "{}: word {i} correction status mismatch",
                    code.name()
                );
            }
        }
    }
}

#[test]
fn hamming74_batch_is_bit_exact_on_all_low_weight_patterns() {
    assert_batch_matches_scalar(&Hamming74::new());
}

#[test]
fn hamming84_batch_is_bit_exact_on_all_low_weight_patterns() {
    assert_batch_matches_scalar(&Hamming84::new());
}

#[test]
fn rm13_batch_is_bit_exact_on_all_low_weight_patterns() {
    assert_batch_matches_scalar(&Rm13::new());
}

#[test]
fn repetition_batch_is_bit_exact_on_all_low_weight_patterns() {
    assert_batch_matches_scalar(&Repetition::new(4, 2));
    assert_batch_matches_scalar(&Repetition::new(2, 3));
}

#[test]
fn uncoded_batch_is_bit_exact_on_all_low_weight_patterns() {
    assert_batch_matches_scalar(&Uncoded::new(4));
}

#[test]
fn secded_13_8_batch_is_bit_exact_on_all_low_weight_patterns() {
    // The smallest family member is exhaustively tractable: all 256 messages
    // x all 0/1/2-bit patterns of the 13-bit word.
    assert_batch_matches_scalar(&SecDed::new(3));
}

/// Compares batch and scalar decode on a set of received words, word for
/// word, for a code too wide for `to_u64`-based helpers.
fn assert_wide_batch_matches_scalar(code: &SecDed, received: &[BitVec]) {
    let codec = BatchCodec::new(code);
    let batch = BitSlice64::pack(received);
    let syndromes = codec.syndrome_batch(&batch);
    let decoded = codec.decode_batch(&batch);
    for (i, word) in received.iter().enumerate() {
        assert_eq!(
            syndromes.extract(i),
            code.syndrome(word),
            "syndrome mismatch at word {i}"
        );
        let scalar = code.decode(word);
        match scalar.outcome {
            DecodeOutcome::DetectedUncorrectable => {
                assert!(decoded.is_flagged(i), "word {i} should be flagged");
            }
            outcome => {
                assert!(!decoded.is_flagged(i), "word {i} wrongly flagged");
                assert_eq!(
                    Some(decoded.messages.extract(i)),
                    scalar.message,
                    "word {i} message mismatch"
                );
                assert_eq!(
                    Some(decoded.codewords.extract(i)),
                    scalar.codeword,
                    "word {i} codeword mismatch"
                );
                assert_eq!(
                    decoded.is_corrected(i),
                    matches!(outcome, DecodeOutcome::Corrected { .. }),
                    "word {i} correction status mismatch"
                );
            }
        }
    }
}

fn seeded_messages(code: &SecDed, count: usize, seed: u64) -> Vec<BitVec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| BitVec::from_u64(code.k(), rng.random::<u64>()))
        .collect()
}

/// Acceptance sweep for the wide member: every 0- and 1-bit error pattern of
/// every sampled codeword decodes bit-exactly to the scalar result (clean
/// words pass through, single errors are corrected back to the message).
#[test]
fn secded_72_64_batch_is_bit_exact_on_all_zero_and_one_bit_patterns() {
    let code = SecDed::new(6);
    let mut received = Vec::new();
    for msg in seeded_messages(&code, 6, 0x5ECD_ED01) {
        let cw = code.encode(&msg);
        received.push(cw.clone());
        for pos in 0..72 {
            let mut r = cw.clone();
            r.flip(pos);
            received.push(r);
        }
    }
    // 6 x (1 + 72) = 438 words, 6.9 limbs: exercises the tail mask too.
    assert_wide_batch_matches_scalar(&code, &received);
}

/// Acceptance sweep for the wide member: a seeded sample of well over 10k
/// 2-bit error patterns — in fact every one of the C(72,2) = 2556 position
/// pairs on each of 5 sampled codewords (12 780 corrupted words) — is
/// reported `DetectedUncorrectable` by both paths.
#[test]
fn secded_72_64_flags_every_two_bit_pattern() {
    let code = SecDed::new(6);
    let codec = BatchCodec::new(&code);
    for (w, msg) in seeded_messages(&code, 5, 0x5ECD_ED02).iter().enumerate() {
        let cw = code.encode(msg);
        let mut received = Vec::with_capacity(2556);
        let mut pairs = Vec::with_capacity(2556);
        for a in 0..72 {
            for b in (a + 1)..72 {
                let mut r = cw.clone();
                r.flip(a);
                r.flip(b);
                received.push(r);
                pairs.push((a, b));
            }
        }
        let decoded = codec.decode_batch(&BitSlice64::pack(&received));
        assert_eq!(
            decoded.flagged_count(),
            received.len(),
            "codeword {w}: every double error must be flagged"
        );
        for (i, r) in received.iter().enumerate() {
            assert_eq!(
                code.decode(r).outcome,
                DecodeOutcome::DetectedUncorrectable,
                "codeword {w}: scalar decoder missed double error {:?}",
                pairs[i]
            );
        }
    }
}

/// Randomized multi-limb agreement for the whole SEC-DED family, arbitrary
/// error weights.
#[test]
fn secded_family_random_words_agree_with_scalar_decode() {
    for (m, seed) in [(3usize, 301u64), (4, 302), (5, 303), (6, 304)] {
        let code = SecDed::new(m);
        let mut rng = StdRng::seed_from_u64(seed);
        let words: Vec<BitVec> = (0..200)
            .map(|_| {
                (0..code.n())
                    .map(|_| rng.random::<u64>() & 1 == 1)
                    .collect()
            })
            .collect();
        assert_wide_batch_matches_scalar(&code, &words);
    }
}

/// Like [`assert_wide_batch_matches_scalar`] for any wide code (shared by
/// the SEC-DED family and the r > 20 Shortened Hamming demonstration code).
fn assert_batch_matches_scalar_on<C: BlockCode + HardDecoder>(code: &C, received: &[BitVec]) {
    assert_codec_matches_scalar_on(&BatchCodec::new(code), code, received);
}

/// Word-for-word scalar-vs-batch agreement through a caller-built codec
/// (algebraic codes need [`BatchCodec::with_scalar_fallback`] instead of
/// the plain constructor).
fn assert_codec_matches_scalar_on<C: BlockCode + HardDecoder>(
    codec: &BatchCodec,
    code: &C,
    received: &[BitVec],
) {
    let batch = BitSlice64::pack(received);
    let syndromes = codec.syndrome_batch(&batch);
    let decoded = codec.decode_batch(&batch);
    for (i, word) in received.iter().enumerate() {
        assert_eq!(
            syndromes.extract(i),
            code.syndrome(word),
            "{}: syndrome mismatch at word {i}",
            code.name()
        );
        let scalar = code.decode(word);
        match scalar.outcome {
            DecodeOutcome::DetectedUncorrectable => {
                assert!(
                    decoded.is_flagged(i),
                    "{}: word {i} should be flagged",
                    code.name()
                );
            }
            outcome => {
                assert!(
                    !decoded.is_flagged(i),
                    "{}: word {i} wrongly flagged",
                    code.name()
                );
                assert_eq!(
                    Some(decoded.messages.extract(i)),
                    scalar.message,
                    "{}: word {i} message mismatch",
                    code.name()
                );
                assert_eq!(
                    Some(decoded.codewords.extract(i)),
                    scalar.codeword,
                    "{}: word {i} codeword mismatch",
                    code.name()
                );
                assert_eq!(
                    decoded.is_corrected(i),
                    matches!(outcome, DecodeOutcome::Corrected { .. }),
                    "{}: word {i} correction status mismatch",
                    code.name()
                );
            }
        }
    }
}

/// Acceptance sweep for the r > 20 catalog member: every 0- and 1-bit error
/// pattern of every sampled Shortened Hamming(85,64) codeword decodes
/// bit-exactly to the scalar result. This is the pattern the old
/// action-table engine rejected outright (`n - k = 21 > 20`).
#[test]
fn shortened_hamming_85_64_batch_is_bit_exact_on_all_zero_and_one_bit_patterns() {
    let code = ShortenedHamming::wide_85_64();
    assert_eq!(code.n() - code.k(), 21, "the point is r > 20");
    let mut rng = StdRng::seed_from_u64(0x8564_0101);
    let mut received = Vec::new();
    for _ in 0..6 {
        let msg = BitVec::from_u64(64, rng.random::<u64>());
        let cw = code.encode(&msg);
        received.push(cw.clone());
        for pos in 0..85 {
            let mut r = cw.clone();
            r.flip(pos);
            received.push(r);
        }
    }
    // 6 x (1 + 85) = 516 words, 8.1 limbs: exercises the tail mask too.
    assert_batch_matches_scalar_on(&code, &received);
}

/// Two-bit patterns on the wide r > 20 member: the code has d_min = 3, so
/// doubles are detected *or* miscorrected — either way, batch and scalar
/// must agree word for word.
#[test]
fn shortened_hamming_85_64_batch_matches_scalar_on_two_bit_patterns() {
    let code = ShortenedHamming::wide_85_64();
    let mut rng = StdRng::seed_from_u64(0x8564_0202);
    let msg = BitVec::from_u64(64, rng.random::<u64>());
    let cw = code.encode(&msg);
    let mut received = Vec::new();
    for a in 0..85 {
        for b in (a + 1)..85 {
            let mut r = cw.clone();
            r.flip(a);
            r.flip(b);
            received.push(r);
        }
    }
    assert_eq!(received.len(), 3570); // C(85,2)
    assert_batch_matches_scalar_on(&code, &received);
}

/// Randomized multi-limb agreement for the wide member, arbitrary error
/// weights.
#[test]
fn shortened_hamming_85_64_random_words_agree_with_scalar_decode() {
    let code = ShortenedHamming::wide_85_64();
    let mut rng = StdRng::seed_from_u64(0x8564_0303);
    let words: Vec<BitVec> = (0..300)
        .map(|_| {
            (0..code.n())
                .map(|_| rng.random::<u64>() & 1 == 1)
                .collect()
        })
        .collect();
    assert_batch_matches_scalar_on(&code, &words);
}

/// Every weight-0, weight-1, and weight-2 pattern on sampled BCH(31,16)
/// codewords: all C(31,1) = 31 singles and all C(31,2) = 465 doubles per
/// codeword, scalar vs batch, bit-identical. The 2^16 message space is too
/// large to enumerate the way the 4-bit codes are, so messages are a seeded
/// sample and the *error patterns* are exhaustive; the `#[ignore]`d nightly
/// tier below widens the sample.
fn bch_exhaustive_double_error_corpus(code: &sfq_ecc::ecc::Bch, messages: usize) -> Vec<BitVec> {
    let mut rng = StdRng::seed_from_u64(0xBC43_1160);
    let mut received = Vec::new();
    for _ in 0..messages {
        let msg: BitVec = (0..code.k())
            .map(|_| rng.random::<u64>() & 1 == 1)
            .collect();
        let cw = code.encode(&msg);
        received.push(cw.clone());
        for weight in 1..=2usize {
            for pattern in WeightPatterns::new(code.n(), weight) {
                let mut r = cw.clone();
                for pos in 0..code.n() {
                    if (pattern >> pos) & 1 == 1 {
                        r.flip(pos);
                    }
                }
                received.push(r);
            }
        }
    }
    received
}

#[test]
fn bch_31_16_batch_is_bit_exact_on_all_zero_one_and_two_bit_patterns() {
    let code = sfq_ecc::ecc::Bch::bch_31_16();
    let codec = BatchCodec::bch();
    let received = bch_exhaustive_double_error_corpus(&code, 2);
    assert_eq!(received.len(), 2 * (1 + 31 + 465));
    assert_codec_matches_scalar_on(&codec, &code, &received);
    // Every corrupted word comes back corrected, not flagged: radius 2
    // covers the full corpus.
    let decoded = codec.decode_batch(&BitSlice64::pack(&received));
    assert_eq!(decoded.flagged_count(), 0);
    assert_eq!(decoded.corrected_count(), received.len() - 2);
}

/// The always-on exhaustive differential tier for the t = 2 registry member:
/// every one of the C(63,1) = 63 singles and C(63,2) = 1953 doubles on each
/// sampled BCH(63,51) codeword, scalar vs batch, bit-identical — and every
/// corrupted word corrected, never flagged (radius 2 covers the corpus).
#[test]
fn bch_63_51_batch_is_bit_exact_on_all_zero_one_and_two_bit_patterns() {
    let code = sfq_ecc::ecc::Bch::bch_63_51();
    let codec = BatchCodec::bch_63_51();
    let received = bch_exhaustive_double_error_corpus(&code, 2);
    assert_eq!(received.len(), 2 * (1 + 63 + 1953));
    assert_codec_matches_scalar_on(&codec, &code, &received);
    let decoded = codec.decode_batch(&BitSlice64::pack(&received));
    assert_eq!(decoded.flagged_count(), 0);
    assert_eq!(decoded.corrected_count(), received.len() - 2);
}

/// The radius-3 member corrects *triples*: a seeded sample of distinct
/// 3-position patterns on random BCH(63,45) codewords must come back
/// `Corrected` with the transmitted message on the scalar path, and the
/// batch path must agree word for word. (The full C(63,3) = 39 711 sweep is
/// the `#[ignore]`d nightly tier below.)
#[test]
fn bch_63_45_batch_corrects_seeded_triple_errors_identically() {
    let code = sfq_ecc::ecc::Bch::bch_63_45();
    let mut rng = StdRng::seed_from_u64(0xBC43_6345);
    let mut received = Vec::new();
    let mut messages = Vec::new();
    for _ in 0..80 {
        let msg: BitVec = (0..code.k())
            .map(|_| rng.random::<u64>() & 1 == 1)
            .collect();
        let mut r = code.encode(&msg);
        let mut positions = std::collections::BTreeSet::new();
        while positions.len() < 3 {
            positions.insert(rng.random_range(0..code.n()));
        }
        for &pos in &positions {
            r.flip(pos);
        }
        received.push(r);
        messages.push(msg);
    }
    for (word, msg) in received.iter().zip(&messages) {
        let scalar = code.decode(word);
        assert_eq!(
            scalar.outcome,
            DecodeOutcome::Corrected { bits_flipped: 3 },
            "radius 3 must correct every triple"
        );
        assert_eq!(scalar.message.as_ref(), Some(msg));
    }
    let codec = BatchCodec::bch_63_45();
    assert_codec_matches_scalar_on(&codec, &code, &received);
    let decoded = codec.decode_batch(&BitSlice64::pack(&received));
    assert_eq!(decoded.flagged_count(), 0);
    assert_eq!(decoded.corrected_count(), received.len());
}

/// Beyond the radius: sampled weight-4 patterns must be *flagged* by both
/// paths, not silently miscorrected. Syndrome decoding makes the verdict
/// codeword-independent (the outcome is a function of the error pattern
/// alone), so three fixed patterns × several random codewords is a real
/// sample of the flag path.
#[test]
fn bch_63_45_flags_sampled_four_bit_patterns_identically() {
    let code = sfq_ecc::ecc::Bch::bch_63_45();
    let codec = BatchCodec::bch_63_45();
    let mut rng = StdRng::seed_from_u64(0xBC43_6346);
    let mut received = Vec::new();
    for positions in [[0usize, 1, 2, 3], [7, 19, 33, 60], [2, 20, 40, 62]] {
        for _ in 0..4 {
            let msg: BitVec = (0..code.k())
                .map(|_| rng.random::<u64>() & 1 == 1)
                .collect();
            let mut r = code.encode(&msg);
            for pos in positions {
                r.flip(pos);
            }
            received.push(r);
        }
    }
    for word in &received {
        assert_eq!(
            code.decode(word).outcome,
            DecodeOutcome::DetectedUncorrectable,
            "these weight-4 patterns have no weight-≤3 locator solution"
        );
    }
    assert_codec_matches_scalar_on(&codec, &code, &received);
    let decoded = codec.decode_batch(&BitSlice64::pack(&received));
    assert_eq!(decoded.flagged_count(), received.len());
}

/// The nightly `bch` tier (CI matrix flag, `--include-ignored bch`): the
/// *full* C(63,3) = 39 711 triple sweep on a seeded BCH(63,45) codeword —
/// plus all singles and doubles — every pattern corrected back to the
/// transmitted message, scalar and batch in bit-identical agreement.
#[test]
#[ignore = "heavy exhaustive tier; run with --include-ignored bch (nightly CI leg)"]
fn bch_63_45_exhaustive_triple_error_tier_is_bit_exact() {
    let code = sfq_ecc::ecc::Bch::bch_63_45();
    let codec = BatchCodec::bch_63_45();
    let mut rng = StdRng::seed_from_u64(0xBC43_6347);
    let msg: BitVec = (0..code.k())
        .map(|_| rng.random::<u64>() & 1 == 1)
        .collect();
    let cw = code.encode(&msg);
    let mut received = vec![cw.clone()];
    for weight in 1..=3usize {
        for pattern in WeightPatterns::new(code.n(), weight) {
            let mut r = cw.clone();
            for pos in 0..code.n() {
                if (pattern >> pos) & 1 == 1 {
                    r.flip(pos);
                }
            }
            received.push(r);
        }
    }
    assert_eq!(received.len(), 1 + 63 + 1953 + 39_711);
    assert_codec_matches_scalar_on(&codec, &code, &received);
    let decoded = codec.decode_batch(&BitSlice64::pack(&received));
    assert_eq!(decoded.flagged_count(), 0);
    assert_eq!(decoded.corrected_count(), received.len() - 1);
    for i in 1..received.len() {
        assert_eq!(
            decoded.messages.extract(i),
            msg,
            "word {i} must decode back to the transmitted message"
        );
    }
}

/// The nightly `bch` tier, t = 2 member: the exhaustive single + double
/// sweep over a much wider message sample — 20 seeded messages ×
/// (1 + 63 + 1953) patterns = 40 340 words.
#[test]
#[ignore = "heavy exhaustive tier; run with --include-ignored bch (nightly CI leg)"]
fn bch_63_51_exhaustive_double_error_tier_over_widened_message_sample() {
    let code = sfq_ecc::ecc::Bch::bch_63_51();
    let received = bch_exhaustive_double_error_corpus(&code, 20);
    assert_eq!(received.len(), 20 * (1 + 63 + 1953));
    assert_codec_matches_scalar_on(&BatchCodec::bch_63_51(), &code, &received);
}

/// The nightly `bch` tier (CI matrix flag, `--include-ignored bch`): the
/// same exhaustive single + double sweep over a much wider message sample —
/// 40 seeded messages × (1 + 31 + 465) patterns = 19 880 words.
#[test]
#[ignore = "heavy exhaustive tier; run with --include-ignored bch (nightly CI leg)"]
fn bch_31_16_exhaustive_double_error_tier_over_widened_message_sample() {
    let code = sfq_ecc::ecc::Bch::bch_31_16();
    let received = bch_exhaustive_double_error_corpus(&code, 40);
    assert_eq!(received.len(), 40 * 497);
    assert_codec_matches_scalar_on(&BatchCodec::bch(), &code, &received);
}

/// Random triple-error words: with d_min = 7 and decode radius 2, no
/// codeword lies within distance 2 of a weight-3 corruption, so *every*
/// triple must come back `DetectedUncorrectable` — and the batch path must
/// agree word for word (the generic comparator would also accept an
/// identical miscorrection, so the scalar outcome is pinned explicitly).
#[test]
fn bch_31_16_triple_errors_are_detected_identically_in_both_paths() {
    let code = sfq_ecc::ecc::Bch::bch_31_16();
    let mut rng = StdRng::seed_from_u64(0xBC43_1161);
    let mut received = Vec::new();
    for _ in 0..40 {
        let msg: BitVec = (0..code.k())
            .map(|_| rng.random::<u64>() & 1 == 1)
            .collect();
        let mut r = code.encode(&msg);
        let mut positions = std::collections::BTreeSet::new();
        while positions.len() < 3 {
            positions.insert(rng.random_range(0..code.n()));
        }
        for &pos in &positions {
            r.flip(pos);
        }
        received.push(r);
    }
    for word in &received {
        assert_eq!(
            code.decode(word).outcome,
            DecodeOutcome::DetectedUncorrectable,
            "d_min = 7 guarantees triples are detected at radius 2"
        );
    }
    let codec = BatchCodec::bch();
    assert_codec_matches_scalar_on(&codec, &code, &received);
    let decoded = codec.decode_batch(&BitSlice64::pack(&received));
    assert_eq!(decoded.flagged_count(), received.len());
}

/// Randomized multi-limb agreement for BCH(31,16), arbitrary error weights.
#[test]
fn bch_31_16_random_words_agree_with_scalar_decode() {
    let code = sfq_ecc::ecc::Bch::bch_31_16();
    let mut rng = StdRng::seed_from_u64(0xBC43_1162);
    let words: Vec<BitVec> = (0..300)
        .map(|_| {
            (0..code.n())
                .map(|_| rng.random::<u64>() & 1 == 1)
                .collect()
        })
        .collect();
    assert_codec_matches_scalar_on(&BatchCodec::bch(), &code, &words);
}

/// A test-local single-error-correcting code over a *random* parity-check
/// matrix `H = [C | I_r]`: `k` distinct random non-power-of-two nonzero
/// column codes, systematic generator, and an independently written scalar
/// decoder (linear column scan, no shared lookup structure with the batch
/// engine).
struct RandomSecCode {
    k: usize,
    r: usize,
    g: BitMat,
    h: BitMat,
}

impl RandomSecCode {
    fn new(k: usize, r: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut codes: Vec<u64> = Vec::with_capacity(k);
        while codes.len() < k {
            let v = rng.random::<u64>() & ((1u64 << r) - 1);
            if v == 0 || v.is_power_of_two() || codes.contains(&v) {
                continue;
            }
            codes.push(v);
        }
        let n = k + r;
        let mut g = BitMat::zeros(k, n);
        let mut h = BitMat::zeros(r, n);
        for (i, &v) in codes.iter().enumerate() {
            g.set(i, i, true);
            for t in 0..r {
                if (v >> t) & 1 == 1 {
                    g.set(i, k + t, true);
                    h.set(t, i, true);
                }
            }
        }
        for t in 0..r {
            h.set(t, k + t, true);
        }
        validate_code_matrices(&g, &h);
        RandomSecCode { k, r, g, h }
    }
}

impl BlockCode for RandomSecCode {
    fn name(&self) -> &str {
        "random-sec"
    }
    fn n(&self) -> usize {
        self.k + self.r
    }
    fn k(&self) -> usize {
        self.k
    }
    fn generator(&self) -> &BitMat {
        &self.g
    }
    fn parity_check(&self) -> &BitMat {
        &self.h
    }
    fn message_of(&self, codeword: &BitVec) -> Option<BitVec> {
        if self.is_codeword(codeword) {
            Some(codeword.slice(0..self.k))
        } else {
            None
        }
    }
}

impl HardDecoder for RandomSecCode {
    fn decode(&self, received: &BitVec) -> Decoded {
        let syndrome = self.syndrome(received);
        if syndrome.is_zero() {
            return Decoded::clean(received.clone(), received.slice(0..self.k));
        }
        for pos in 0..self.n() {
            if self.h.col(pos) == syndrome {
                let mut corrected = received.clone();
                corrected.flip(pos);
                let msg = corrected.slice(0..self.k);
                return Decoded::corrected(corrected, msg, 1);
            }
        }
        Decoded::detected()
    }

    fn syndrome_class(&self) -> SyndromeClass {
        SyndromeClass::ColumnFlip
    }
}

proptest! {
    /// Random parity-check matrices with redundancies up to 24 (well past
    /// the old 20-bit action-table limit) decode identically scalar-vs-batch
    /// on random received words of arbitrary error weight.
    #[test]
    fn random_parity_checks_up_to_r24_decode_identically(
        k in 2usize..=32,
        r in 6usize..=24,
        seed in any::<u64>(),
    ) {
        let code = RandomSecCode::new(k, r, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
        let words: Vec<BitVec> = (0..80)
            .map(|_| {
                (0..code.n())
                    .map(|_| rng.random::<u64>() & 1 == 1)
                    .collect()
            })
            .collect();
        // Plus guaranteed-clean and single-error words so the correct arm is
        // always exercised.
        let mut corpus = words;
        let msg: BitVec = (0..k).map(|_| rng.random::<u64>() & 1 == 1).collect();
        let cw = code.encode(&msg);
        corpus.push(cw.clone());
        for pos in [0, code.k(), code.n() - 1] {
            let mut w = cw.clone();
            w.flip(pos);
            corpus.push(w);
        }
        assert_batch_matches_scalar_on(&code, &corpus);
    }
}

/// Batch sizes straddling every limb boundary the kernels care about: a
/// single lane, one bit short of a limb, exactly one limb, one lane over,
/// a ragged two-limb batch, a ragged 256-bit-chunk batch, and a batch with
/// both full 256-bit chunks *and* a ragged `u64` remainder.
const RAGGED_BATCH_SIZES: [usize; 7] = [1, 63, 64, 65, 130, 257, 320];

/// Every kernel override the dispatch layer accepts, reference first.
const FORCED_KERNELS: [KernelKind; 4] = [
    KernelKind::Auto,
    KernelKind::U128,
    KernelKind::Wide256,
    KernelKind::Direct,
];

/// Decodes dense random noise plus guaranteed clean/single-error words
/// through the reference `scalar-u64` walk and through every forced kernel,
/// and demands bit-identical output — messages, codewords, flag masks, and
/// correction masks — at every ragged batch size.
fn assert_every_kernel_matches_the_scalar_walk<C>(code: &C, seed: u64)
where
    C: BlockCode + HardDecoder,
{
    let mut rng = StdRng::seed_from_u64(seed);
    for batch_size in RAGGED_BATCH_SIZES {
        let mut words: Vec<BitVec> = (0..batch_size)
            .map(|_| {
                (0..code.n())
                    .map(|_| rng.random::<u64>() & 1 == 1)
                    .collect()
            })
            .collect();
        // Guarantee the accept and single-correction arms are present even
        // at tiny batch sizes.
        let msg: BitVec = (0..code.k())
            .map(|_| rng.random::<u64>() & 1 == 1)
            .collect();
        let cw = code.encode(&msg);
        words[0] = cw.clone();
        if batch_size > 1 {
            let mut single = cw.clone();
            single.flip(rng.random_range(0..code.n()));
            words[1] = single;
        }
        let batch = BitSlice64::pack(&words);
        let reference = BatchCodec::new(code)
            .with_kernel(KernelKind::ScalarU64)
            .decode_batch(&batch);
        for kind in FORCED_KERNELS {
            let decoded = BatchCodec::new(code).with_kernel(kind).decode_batch(&batch);
            let label = format!("{} {kind:?} batch {batch_size}", code.name());
            assert_eq!(decoded.messages, reference.messages, "{label}: messages");
            assert_eq!(decoded.codewords, reference.codewords, "{label}: codewords");
            assert_eq!(decoded.flagged, reference.flagged, "{label}: flag mask");
            assert_eq!(
                decoded.corrected, reference.corrected,
                "{label}: correction mask"
            );
        }
    }
}

/// The forced-dispatch equivalence sweep over the whole catalog: every code
/// × every kernel override × every ragged batch size must be bit-identical
/// to the reference scalar walk. This is the proof that lets the dispatch
/// layer pick kernels freely.
#[test]
fn every_catalog_code_decodes_identically_under_every_forced_kernel() {
    assert_every_kernel_matches_the_scalar_walk(&Hamming74::new(), 0xD15_0001);
    assert_every_kernel_matches_the_scalar_walk(&Hamming84::new(), 0xD15_0002);
    assert_every_kernel_matches_the_scalar_walk(&Rm13::new(), 0xD15_0003);
    assert_every_kernel_matches_the_scalar_walk(&Repetition::new(4, 2), 0xD15_0004);
    assert_every_kernel_matches_the_scalar_walk(&Repetition::new(2, 3), 0xD15_0005);
    assert_every_kernel_matches_the_scalar_walk(&Uncoded::new(4), 0xD15_0006);
    for m in 3..=6 {
        assert_every_kernel_matches_the_scalar_walk(&SecDed::new(m), 0xD15_0010 + m as u64);
    }
    assert_every_kernel_matches_the_scalar_walk(&ShortenedHamming::wide_85_64(), 0xD15_0020);
}

/// The kernel override must not change the algebraic engine's output: for
/// every BCH registry member, the sliced codec produces bit-identical
/// results under every forced kernel, and all of them agree with the
/// scalar-fallback engine (which re-derives each dirty lane from scratch
/// through the `ecc` decoder). Error weights run up to `radius + 1`, so the
/// flag path of each member is exercised too.
#[test]
fn bch_sliced_engines_are_kernel_invariant_and_match_the_scalar_fallback() {
    for (s, spec) in BchSpec::REGISTRY.into_iter().enumerate() {
        let code = sfq_ecc::ecc::Bch::from_spec(spec);
        let mut rng = StdRng::seed_from_u64(0xBC43_2001 + s as u64);
        for batch_size in RAGGED_BATCH_SIZES {
            let words: Vec<BitVec> = (0..batch_size)
                .map(|i| {
                    let msg: BitVec = (0..code.k())
                        .map(|_| rng.random::<u64>() & 1 == 1)
                        .collect();
                    let mut w = code.encode(&msg);
                    for _ in 0..(i % (spec.decode_radius as usize + 2)) {
                        w.flip(rng.random_range(0..code.n()));
                    }
                    w
                })
                .collect();
            let batch = BitSlice64::pack(&words);
            let reference = BatchCodec::with_scalar_fallback(&code, code.n()).decode_batch(&batch);
            for kind in [KernelKind::ScalarU64].into_iter().chain(FORCED_KERNELS) {
                let decoded = BatchCodec::bch_spec(spec)
                    .with_kernel(kind)
                    .decode_batch(&batch);
                let label = format!("{} {kind:?} batch {batch_size}", spec.name());
                assert_eq!(decoded.messages, reference.messages, "{label}: messages");
                assert_eq!(decoded.codewords, reference.codewords, "{label}: codewords");
                assert_eq!(decoded.flagged, reference.flagged, "{label}: flag mask");
                assert_eq!(
                    decoded.corrected, reference.corrected,
                    "{label}: correction mask"
                );
            }
        }
    }
}

/// The bit-flip engine through the same contract: LDPC(60,32) words with
/// 0–3 seeded flips plus dense random noise decode identically through
/// every forced kernel override, and agree word for word with the scalar
/// `HardDecoder` (the same synchronous schedule and iteration cap, so the
/// agreement is exact — including non-convergent words, which both paths
/// must flag).
#[test]
fn ldpc_bit_flip_engine_is_kernel_invariant_and_matches_scalar_decode() {
    let code = sfq_ecc::ecc::Ldpc::gallager_60_32();
    let mut rng = StdRng::seed_from_u64(0xBC43_2002);
    for batch_size in RAGGED_BATCH_SIZES {
        let words: Vec<BitVec> = (0..batch_size)
            .map(|i| {
                if i % 5 == 4 {
                    // Dense random noise: exercises the non-convergence flag.
                    return (0..code.n())
                        .map(|_| rng.random::<u64>() & 1 == 1)
                        .collect();
                }
                let msg: BitVec = (0..code.k())
                    .map(|_| rng.random::<u64>() & 1 == 1)
                    .collect();
                let mut w = code.encode(&msg);
                for _ in 0..(i % 4) {
                    w.flip(rng.random_range(0..code.n()));
                }
                w
            })
            .collect();
        assert_codec_matches_scalar_on(&BatchCodec::ldpc(), &code, &words);
        let batch = BitSlice64::pack(&words);
        let reference = BatchCodec::ldpc()
            .with_kernel(KernelKind::ScalarU64)
            .decode_batch(&batch);
        for kind in FORCED_KERNELS {
            let decoded = BatchCodec::ldpc().with_kernel(kind).decode_batch(&batch);
            let label = format!("ldpc {kind:?} batch {batch_size}");
            assert_eq!(decoded.messages, reference.messages, "{label}: messages");
            assert_eq!(decoded.codewords, reference.codewords, "{label}: codewords");
            assert_eq!(decoded.flagged, reference.flagged, "{label}: flag mask");
            assert_eq!(
                decoded.corrected, reference.corrected,
                "{label}: correction mask"
            );
        }
    }
}

proptest! {
    /// The byte-transpose round trip is the identity on random syndrome
    /// slices: `syndrome_bytes` followed by `syndrome_bytes_inverse`
    /// recovers every slice bit, for every redundancy `r ≤ 8` the direct8
    /// kernel dispatches on.
    #[test]
    fn syndrome_byte_transpose_roundtrips_random_slices(
        raw in prop::collection::vec(any::<u64>(), 8),
        r in 1usize..=8,
    ) {
        let slices = &raw[..r];
        let mut bytes = [0u64; 8];
        syndrome_bytes(slices, &mut bytes);
        let mut recovered = vec![0u64; r];
        syndrome_bytes_inverse(&bytes, &mut recovered);
        prop_assert_eq!(&recovered[..], slices);
    }

    /// The transposed layout means what the direct8 kernel assumes: byte
    /// `j` of output word `q` is exactly the syndrome of lane `8q + j`,
    /// assembled bit-by-bit from the input slices.
    #[test]
    fn syndrome_byte_transpose_places_each_lane_syndrome(
        raw in prop::collection::vec(any::<u64>(), 8),
        r in 1usize..=8,
        lane in 0usize..64,
    ) {
        let slices = &raw[..r];
        let mut bytes = [0u64; 8];
        syndrome_bytes(slices, &mut bytes);
        let mut expected = 0u64;
        for (t, &slice) in slices.iter().enumerate() {
            expected |= ((slice >> lane) & 1) << t;
        }
        let got = (bytes[lane / 8] >> (8 * (lane % 8))) & 0xFF;
        prop_assert_eq!(got, expected);
    }
}

#[test]
fn batch_encode_matches_scalar_encode_for_every_message() {
    fn check<C: BlockCode + HardDecoder>(code: &C) {
        let codec = BatchCodec::new(code);
        let messages: Vec<BitVec> = (0..(1u64 << code.k()))
            .map(|m| BitVec::from_u64(code.k(), m))
            .collect();
        let encoded = codec.encode_batch(&BitSlice64::pack(&messages));
        for (i, msg) in messages.iter().enumerate() {
            assert_eq!(encoded.extract(i), code.encode(msg), "{}", code.name());
        }
    }
    check(&Hamming74::new());
    check(&Hamming84::new());
    check(&Rm13::new());
    check(&Repetition::new(4, 2));
    check(&Uncoded::new(4));
}

#[test]
fn randomized_multi_limb_batches_agree_with_scalar_decode() {
    // 333 words per batch (5.2 limbs, exercising the tail mask) with errors
    // of arbitrary weight, across all five codes, seeded for reproducibility.
    fn check<C: BlockCode + HardDecoder>(code: &C, seed: u64) {
        let codec = BatchCodec::new(code);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = code.n();
        let words: Vec<BitVec> = (0..333)
            .map(|_| BitVec::from_u64(n, rng.random_range(0..(1u64 << n))))
            .collect();
        let decoded = codec.decode_batch(&BitSlice64::pack(&words));
        for (i, word) in words.iter().enumerate() {
            let scalar = code.decode(word);
            match scalar.outcome {
                DecodeOutcome::DetectedUncorrectable => {
                    assert!(decoded.is_flagged(i), "{} word {i}", code.name());
                }
                _ => {
                    assert!(!decoded.is_flagged(i), "{} word {i}", code.name());
                    assert_eq!(
                        Some(decoded.messages.extract(i)),
                        scalar.message,
                        "{} word {i}",
                        code.name()
                    );
                }
            }
        }
    }
    check(&Hamming74::new(), 101);
    check(&Hamming84::new(), 102);
    check(&Rm13::new(), 103);
    check(&Repetition::new(4, 2), 104);
    check(&Uncoded::new(4), 105);
}

#[test]
fn sixty_four_lane_roundtrip_with_seeded_rng() {
    // The headline configuration: exactly one limb of 64 independent
    // codewords per bit lane, random messages, random single-bit errors.
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let codec = BatchCodec::hamming84();
    let messages: Vec<BitVec> = (0..64)
        .map(|_| BitVec::from_u64(4, rng.random_range(0..16)))
        .collect();
    let mut received = codec.encode_batch(&BitSlice64::pack(&messages));
    for i in 0..64 {
        let pos = rng.random_range(0..8usize);
        received.set(i, pos, !received.get(i, pos));
    }
    let decoded = codec.decode_batch(&received);
    assert_eq!(decoded.flagged_count(), 0);
    assert_eq!(decoded.corrected_count(), 64);
    assert_eq!(decoded.messages.unpack(), messages);
}
