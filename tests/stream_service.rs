//! End-to-end tests of the online scrubbing service: the latency contract
//! at nominal load, graceful degradation under overload, fault robustness,
//! and bit-identical determinism across worker-thread counts.

use sfq_ecc::stream::{Fault, FaultScript, ScrubService, ServiceMode, StreamConfig};

/// The nominal operating point shrunk to debug-build-friendly size (tier-1
/// `cargo test` runs unoptimized). The *rates* — arrivals vs. capacity,
/// cost model, ladder thresholds, cycle budget — are untouched; only the
/// batch size and run length shrink.
fn test_config() -> StreamConfig {
    StreamConfig {
        batch_messages: 512,
        total_cycles: 1 << 14,
        drain_limit: 1 << 15,
        ..StreamConfig::nominal()
    }
}

#[test]
fn nominal_load_meets_the_latency_contract() {
    let config = test_config();
    let report = ScrubService::run(&config, &FaultScript::quiet());
    report.validate().expect("run invariants hold");
    assert_eq!(report.deadline_misses, 0, "nominal load must never miss");
    assert_eq!(report.shed_batches, 0, "nothing shed at nominal load");
    assert_eq!(report.transitions, vec![], "ladder never leaves rung 0");
    assert!(report.latency.p99 <= config.cycle_budget);
    assert_eq!(
        report.arrivals,
        config.arrivals_per_1024 * config.total_cycles / 1024,
        "rational arrival process delivers the exact rate"
    );
    assert!(
        report.silent_wrong <= report.messages_decoded / 100_000,
        "sparse single flips are essentially all corrected: {} of {}",
        report.silent_wrong,
        report.messages_decoded
    );
}

/// The acceptance throughput bar only means anything on an optimized
/// build; tier-1 debug runs check the contract, the release leg checks the
/// rate.
#[cfg(not(debug_assertions))]
#[test]
fn nominal_load_sustains_ten_million_messages_per_second() {
    let report = ScrubService::run(&StreamConfig::nominal(), &FaultScript::quiet());
    report.validate().expect("run invariants hold");
    assert_eq!(report.deadline_misses, 0);
    assert!(
        report.throughput_msgs_per_sec >= 1e7,
        "sustained {} msg/s, need 1e7",
        report.throughput_msgs_per_sec
    );
}

#[test]
fn severe_overload_walks_the_ladder_and_recovers() {
    let config = test_config();
    // A 4x arrival spike: far beyond even detection-only-widened capacity
    // margins over a dwell, so the ladder must climb all the way to
    // shedding, then walk back down once the spike passes.
    let script = FaultScript::quiet().with(
        2048,
        Fault::RateSpike {
            factor_milli: 4000,
            duration: 4096,
        },
    );
    let report = ScrubService::run(&config, &script);
    report
        .validate()
        .expect("degraded gracefully, recovered, lost nothing");

    let modes: Vec<ServiceMode> = report.transitions.iter().map(|t| t.to).collect();
    assert!(
        modes.contains(&ServiceMode::ShedAndRescrub),
        "4x overload must reach the shedding rung: {modes:?}"
    );
    assert!(report.shed_batches > 0, "the shedding rung actually shed");
    // Conservation (validate above) already proved every shed batch is
    // accounted for — shed work is flagged for rescrub, never silently lost.

    // The ladder steps one rung at a time, in both directions.
    let mut rung = 0usize;
    for t in &report.transitions {
        assert_eq!(
            t.from.rung(),
            rung,
            "transitions chain: {:?}",
            report.transitions
        );
        assert_eq!(
            t.to.rung().abs_diff(t.from.rung()),
            1,
            "one rung per transition"
        );
        rung = t.to.rung();
    }
    assert_eq!(rung, 0, "recovered to full correction");
    assert_eq!(report.final_mode, ServiceMode::FullCorrection);

    // Backlog stayed bounded. The spike delivers ~830 batches; unmitigated,
    // ~600 of them would pile up. The dwell-limited climb to the shedding
    // rung tops out around 160 — well under half the unmitigated pile.
    assert!(
        report.max_backlog < 256,
        "backlog {} must stay bounded",
        report.max_backlog
    );
}

#[test]
fn moderate_overload_degrades_without_shedding() {
    let config = test_config();
    // The ISSUE's 1.5x overload: the widened/detection rungs absorb it; the
    // shedding rung must never engage and nothing may be lost.
    let script = FaultScript::quiet().with(
        2048,
        Fault::RateSpike {
            factor_milli: 1500,
            duration: 8192,
        },
    );
    let report = ScrubService::run(&config, &script);
    report.validate().expect("absorbed 1.5x without loss");
    assert!(
        !report.transitions.is_empty(),
        "1.5x must push the ladder off rung 0"
    );
    assert_eq!(report.shed_batches, 0, "1.5x is absorbed without shedding");
    assert!(
        report.max_backlog < config.ladder.shed_engage,
        "backlog {} stays below the shed threshold",
        report.max_backlog
    );
    assert_eq!(report.final_mode, ServiceMode::FullCorrection);
}

#[test]
fn outcome_counts_are_identical_across_worker_counts() {
    // The full fault mix, decoded by 1, 2, and 4 real worker threads: the
    // deterministic report section must match bit for bit. (This is the
    // test that proves latency accounting and decode outcomes are pure
    // functions of the scenario, not of thread scheduling.)
    let base = test_config();
    let script = FaultScript::soak_mix(base.total_cycles, base.shards, 2).with(
        2048,
        Fault::RateSpike {
            factor_milli: 2000,
            duration: 2048,
        },
    );
    let digests: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let config = StreamConfig {
                threads,
                ..base.clone()
            };
            let report = ScrubService::run(&config, &script);
            report.validate().expect("invariants hold at every width");
            assert_eq!(report.threads, threads);
            report.deterministic_digest()
        })
        .collect();
    assert_eq!(digests[0], digests[1], "1 vs 2 workers");
    assert_eq!(digests[0], digests[2], "1 vs 4 workers");
}

#[test]
fn fault_soak_holds_the_contract_with_no_silent_loss() {
    let config = test_config();
    // Width-2 clock-tree bursts produce double errors per struck message —
    // exactly what SEC-DED guarantees to *detect*. The only way a message
    // goes silently wrong is a burst coinciding with a sparse flip in the
    // same word (a triple error), which is rare: silent corruption must
    // stay under one message in ten thousand.
    let script = FaultScript::soak_mix(config.total_cycles, config.shards, 2);
    let report = ScrubService::run(&config, &script);
    report.validate().expect("soak invariants hold");
    assert_eq!(report.deadline_misses, 0, "soak stays inside the contract");
    assert!(
        report.silent_wrong < report.messages_decoded / 10_000,
        "beyond-SEC-DED coincidences must be rare: {} of {}",
        report.silent_wrong,
        report.messages_decoded
    );
    assert!(
        report.poisoned_rejected > 0,
        "poisoned batches were rejected"
    );
    assert!(report.flagged_rescrub > 0, "burst casualties were flagged");
    assert!(report.corrected > 0, "single flips were corrected");
}

#[test]
fn kernel_environment_is_validated_at_startup() {
    // The service's startup check consumes the Result-returning env parse
    // (the batch crate no longer panics on bad values).
    ScrubService::check_environment().expect("test env has no kernel override");
}
