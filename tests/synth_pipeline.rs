//! Workspace-level verification of the encoder-synthesis pass pipeline:
//! every catalog netlist is proven bit-exact against the scalar `ecc` codec
//! by gate-level simulation — exhaustively for every one of the `2^k`
//! messages when `k ≤ 16`, and over a structured-plus-random sweep for the
//! wide (39,32) and (72,64) members — and random GF(2) generator matrices
//! survive the full pass stack bit-exactly under both operand disciplines.

use proptest::prelude::*;
use sfq_ecc::cells::CellLibrary;
use sfq_ecc::encoders::{catalog_table_rows, EncoderDesign, EncoderKind};
use sfq_ecc::gf2::BitMat;
use sfq_ecc::netlist::pass::{
    FactoringKind, InputDiscipline, PassManager, PipelineOptions, Schedule,
};
use sfq_ecc::netlist::{drc, synth};
use sfq_ecc::sim::equivalence::{verify_encoder, EquivalenceConfig};

/// All `2^k` messages for every catalog code with `k ≤ 16`, driven through
/// the pipeline-synthesized netlist and compared against `m · G` (which the
/// `ecc` crate's `BlockCode::encode` also computes — `golden_vectors.rs`
/// pins that equivalence).
#[test]
fn every_small_catalog_netlist_is_exhaustively_bit_exact() {
    let config = EquivalenceConfig::default();
    let mut exhaustive_codes = 0;
    for kind in EncoderKind::catalog() {
        let design = EncoderDesign::build(kind);
        if design.k() > config.exhaustive_limit_k {
            continue;
        }
        let checked = verify_encoder(design.netlist(), design.generator(), &config)
            .unwrap_or_else(|m| panic!("{}: {m}", design.name()));
        assert_eq!(checked, 1 << design.k(), "{}", design.name());
        exhaustive_codes += 1;
    }
    // RM(1,3), Hamming(7,4), Hamming(8,4), uncoded, SEC-DED(13,8),
    // SEC-DED(22,16), and BCH(31,16) all have k ≤ 16.
    assert_eq!(exhaustive_codes, 7);
}

/// The wide members — SEC-DED(39,32), SEC-DED(72,64), and the r > 20
/// Shortened Hamming(85,64): zero, all-ones, every unit vector, walking
/// adjacent pairs, and 256 seeded random messages each.
#[test]
fn wide_secded_members_are_bit_exact_on_structured_and_random_sweeps() {
    let config = EquivalenceConfig {
        exhaustive_limit_k: 16,
        random_samples: 256,
        ..Default::default()
    };
    for kind in [
        EncoderKind::SecDed(5),
        EncoderKind::SecDed(6),
        EncoderKind::WideHamming8564,
    ] {
        let design = EncoderDesign::build(kind);
        assert!(design.k() > config.exhaustive_limit_k);
        let checked = verify_encoder(design.netlist(), design.generator(), &config)
            .unwrap_or_else(|mis| panic!("{}: {mis}", design.name()));
        assert_eq!(checked, 2 + 2 * design.k() + 256, "{}", design.name());
    }
}

/// The scalar codec agrees with the gate-level netlist through the
/// `EncoderDesign` API as well (encode_gate_level samples the DC word at the
/// design's latency, the path the link experiments use).
#[test]
fn encode_gate_level_matches_the_scalar_codec_for_every_catalog_member() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xD1FF_5EED);
    for kind in EncoderKind::catalog() {
        let design = EncoderDesign::build(kind);
        for _ in 0..16 {
            let msg: sfq_ecc::gf2::BitVec = (0..design.k())
                .map(|_| rng.random::<u64>() & 1 == 1)
                .collect();
            assert_eq!(
                design.encode_gate_level(&msg),
                design.encode_reference(&msg),
                "{} on {}",
                design.name(),
                msg.to_string01()
            );
        }
    }
}

/// Every pipeline netlist in the catalog passes the SFQ design rules — the
/// same check CI runs via `examples/drc_catalog.rs`.
#[test]
fn every_catalog_netlist_is_drc_clean() {
    for design in EncoderDesign::build_catalog() {
        let violations = drc::check(design.netlist());
        assert!(violations.is_empty(), "{}: {violations:?}", design.name());
    }
}

/// The optimizing pipeline never loses to the naive sharing-free flow on any
/// catalog member, and never changes the encoding latency.
#[test]
fn pipeline_never_regresses_cost_or_latency_versus_the_naive_flow() {
    let lib = CellLibrary::coldflux();
    for design in EncoderDesign::build_catalog() {
        let Some(naive) = design.naive_netlist() else {
            continue;
        };
        let optimized = design.stats(&lib).cost.jj_count;
        let baseline = sfq_ecc::netlist::NetlistStats::compute(&naive, &lib)
            .cost
            .jj_count;
        assert!(
            optimized <= baseline,
            "{}: {optimized} vs naive {baseline}",
            design.name()
        );
        assert_eq!(
            design.netlist().logic_depth(),
            naive.logic_depth(),
            "{}: latency must not regress",
            design.name()
        );
    }
    // And the headline acceptance number: ≥ 20 % JJ saving at (72,64).
    let rows = catalog_table_rows(&lib);
    let wide = rows
        .iter()
        .find(|r| r.encoder == "SEC-DED(72,64)")
        .expect("wide member present");
    assert!(
        wide.jj_saving_pct().unwrap() >= 20.0,
        "{:?}",
        wide.jj_saving_pct()
    );
}

/// The headline numbers of the cost-driven pipeline: the planner picks the
/// cancellation-aware schedule for the wide SEC-DED members and beats the
/// fixed Paar pipeline's XOR and JJ counts, while the encoding latency (the
/// paper's "never worsen" contract) is untouched. The exact cell counts are
/// pinned by `tests/golden/circuit_costs.txt`; this test guards the
/// relative claims.
#[test]
fn cost_driven_planner_beats_the_paar_schedule_on_wide_secded() {
    use sfq_ecc::cells::CellKind;
    let lib = CellLibrary::coldflux();
    for (kind, paar_xor) in [
        (EncoderKind::SecDed(3), 15),
        (EncoderKind::SecDed(5), 71),
        (EncoderKind::SecDed(6), 144),
    ] {
        let design = EncoderDesign::build(kind);
        let plan = design.schedule_plan().expect("coded design");
        assert_eq!(
            plan.chosen.factoring,
            FactoringKind::Cancellation,
            "{}",
            kind.name()
        );
        let xor = design.netlist().count_cells(CellKind::Xor);
        assert!(
            xor < paar_xor,
            "{}: {xor} XOR must beat the Paar schedule's {paar_xor}",
            kind.name()
        );
        // The chosen schedule is the cheapest candidate under the library,
        // and planning matched the emitted netlist exactly.
        let chosen = plan
            .candidates
            .iter()
            .find(|c| c.schedule == plan.chosen)
            .expect("chosen candidate");
        assert!(plan.candidates.iter().all(|c| chosen.jj <= c.jj));
        assert_eq!(chosen.planned.xor, xor as u64, "{}", kind.name());
        assert_eq!(
            chosen.jj,
            design.stats(&lib).cost.jj_count,
            "{}",
            kind.name()
        );
        // Latency contract: the depth budget of the naive flow is kept.
        let naive = design.naive_netlist().expect("coded design");
        assert_eq!(design.netlist().logic_depth(), naive.logic_depth());
    }
}

/// SEC-DED(72,64) acceptance: 232 naive → 144 Paar → 136 cancellation-aware
/// XOR at depth 6 (the exact numbers are golden-pinned; here the chain of
/// strict improvements and the latency contract are asserted).
#[test]
fn secded_7264_xor_chain_naive_paar_cancellation() {
    use sfq_ecc::cells::CellKind;
    let design = EncoderDesign::build(EncoderKind::SecDed(6));
    let lib = CellLibrary::coldflux();
    let rows = catalog_table_rows(&lib);
    let wide = rows
        .iter()
        .find(|r| r.encoder == "SEC-DED(72,64)")
        .expect("wide member present");
    let naive_xor = wide.naive_xor_gates.expect("naive column");
    let paar_xor = wide.paar_xor_gates.expect("paar column");
    assert!(
        paar_xor < naive_xor && wide.xor_gates < paar_xor,
        "naive {naive_xor} -> paar {paar_xor} -> cancellation {}",
        wide.xor_gates
    );
    assert_eq!(wide.xor_gates, 136, "golden-pinned cancellation XOR count");
    assert_eq!(design.netlist().count_cells(CellKind::Xor), 136);
    assert_eq!(design.netlist().logic_depth(), 6, "depth 6 preserved");
    // ≥ 22 % JJ saving vs the naive flow at the default operating point.
    assert!(wide.jj_saving_pct().unwrap() >= 22.0);
}

/// A random `k × n` generator with no zero columns (every codeword bit must
/// have at least one source).
fn random_generator(k: usize, n: usize, bits: Vec<bool>) -> BitMat {
    let mut g = BitMat::zeros(k, n);
    let mut idx = 0;
    for i in 0..k {
        for j in 0..n {
            g.set(i, j, bits[idx]);
            idx += 1;
        }
    }
    for j in 0..n {
        if (0..k).all(|i| !g.get(i, j)) {
            g.set(j % k, j, true);
        }
    }
    g
}

proptest! {
    /// Random GF(2) generator matrices survive the full pass stack
    /// bit-exactly, under both operand disciplines and both factoring
    /// algorithms (the cancellation-aware netlists are the ones whose
    /// intermediate supports overlap — exactly the cases a structural
    /// check could not prove), and the emitted netlist is always DRC-clean
    /// with the naive flow's logic depth.
    #[test]
    fn random_generators_survive_the_full_pass_stack(
        k in 1usize..=8,
        extra in 0usize..=8,
        bits in prop::collection::vec(any::<bool>(), 8 * 16),
        align in any::<bool>(),
    ) {
        let n = k + extra;
        let g = random_generator(k, n, bits);
        let options = PipelineOptions {
            discipline: if align { InputDiscipline::Align } else { InputDiscipline::Hold },
            ..Default::default()
        };
        let result = synth::synthesize_encoder("random", &g, options);
        let violations = drc::check(&result.netlist);
        prop_assert!(violations.is_empty(), "{violations:?}");
        let checked = verify_encoder(&result.netlist, &g, &EquivalenceConfig::default())
            .unwrap_or_else(|m| panic!("k={k} n={n} align={align}: {m}"));
        prop_assert_eq!(checked, 1usize << k);

        let cancel = PassManager::with_schedule(options, Schedule::cancellation())
            .run("random_cancel", &g)
            .unwrap_or_else(|e| panic!("k={k} n={n} align={align}: {e}"));
        let violations = drc::check(&cancel.netlist);
        prop_assert!(violations.is_empty(), "{violations:?}");
        let checked = verify_encoder(&cancel.netlist, &g, &EquivalenceConfig::default())
            .unwrap_or_else(|m| panic!("cancel k={k} n={n} align={align}: {m}"));
        prop_assert_eq!(checked, 1usize << k);
        prop_assert_eq!(cancel.netlist.logic_depth(), result.netlist.logic_depth());
    }
}
