//! Property-based tests (proptest) over the core data structures and
//! invariants of the workspace.

use proptest::prelude::*;
use sfq_ecc::ecc::{BlockCode, Hamming74, Hamming84, HardDecoder, ReedMuller, Rm13};
use sfq_ecc::encoders::{EncoderDesign, EncoderKind};
use sfq_ecc::gf2::{BitMat, BitVec};
use sfq_ecc::netlist::synth;

fn bitvec_strategy(len: usize) -> impl Strategy<Value = BitVec> {
    prop::collection::vec(any::<bool>(), len).prop_map(|bits| BitVec::from_bits(&bits))
}

proptest! {
    /// XOR on BitVec is associative, commutative, and self-inverse.
    #[test]
    fn bitvec_xor_group_laws(a in bitvec_strategy(16), b in bitvec_strategy(16), c in bitvec_strategy(16)) {
        prop_assert_eq!(&(&a ^ &b) ^ &c, &a ^ &(&b ^ &c));
        prop_assert_eq!(&a ^ &b, &b ^ &a);
        prop_assert!((&a ^ &a).is_zero());
    }

    /// Hamming distance is a metric (identity, symmetry, triangle inequality)
    /// and equals the weight of the XOR.
    #[test]
    fn hamming_distance_is_a_metric(a in bitvec_strategy(12), b in bitvec_strategy(12), c in bitvec_strategy(12)) {
        prop_assert_eq!(a.hamming_distance(&a), 0);
        prop_assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
        prop_assert_eq!(a.hamming_distance(&b), (&a ^ &b).weight());
        prop_assert!(a.hamming_distance(&c) <= a.hamming_distance(&b) + b.hamming_distance(&c));
    }

    /// Round trip between u64 and BitVec representations.
    #[test]
    fn bitvec_u64_roundtrip(value in 0u64..=u64::MAX, len in 1usize..=64) {
        let masked = if len == 64 { value } else { value & ((1u64 << len) - 1) };
        let v = BitVec::from_u64(len, masked);
        prop_assert_eq!(v.to_u64(), masked);
        prop_assert_eq!(v.len(), len);
    }

    /// RREF of any small random matrix is idempotent and preserves the rank.
    #[test]
    fn rref_is_idempotent(rows in 1usize..6, cols in 1usize..8, seed in any::<u64>()) {
        let mut bits = Vec::new();
        let mut state = seed;
        for _ in 0..rows {
            let mut row = Vec::new();
            for _ in 0..cols {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                row.push(state >> 63 == 1);
            }
            bits.push(BitVec::from_bits(&row));
        }
        let m = BitMat::from_rows(bits);
        let (r1, pivots) = m.rref();
        let (r2, pivots2) = r1.rref();
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(pivots.len(), m.rank());
        prop_assert_eq!(pivots, pivots2);
    }

    /// Encoding is linear: E(a ⊕ b) = E(a) ⊕ E(b) for every code in the paper.
    #[test]
    fn encoding_is_linear(a in 0u64..16, b in 0u64..16) {
        let va = BitVec::from_u64(4, a);
        let vb = BitVec::from_u64(4, b);
        let sum = &va ^ &vb;
        let h74 = Hamming74::new();
        let h84 = Hamming84::new();
        let rm = Rm13::new();
        prop_assert_eq!(h74.encode(&sum), &h74.encode(&va) ^ &h74.encode(&vb));
        prop_assert_eq!(h84.encode(&sum), &h84.encode(&va) ^ &h84.encode(&vb));
        prop_assert_eq!(rm.encode(&sum), &rm.encode(&va) ^ &rm.encode(&vb));
    }

    /// Every codeword of every paper code has zero syndrome, and every
    /// single-bit corruption is corrected back to the transmitted message.
    #[test]
    fn single_error_correction_property(message in 0u64..16, position in 0usize..8) {
        let msg = BitVec::from_u64(4, message);
        let h84 = Hamming84::new();
        let cw = h84.encode(&msg);
        prop_assert!(h84.is_codeword(&cw));
        let mut corrupted = cw.clone();
        corrupted.flip(position % 8);
        let decoded = h84.decode(&corrupted);
        prop_assert!(decoded.message_is(&msg));

        let h74 = Hamming74::new();
        let cw = h74.encode(&msg);
        let mut corrupted = cw.clone();
        corrupted.flip(position % 7);
        prop_assert!(h74.decode(&corrupted).message_is(&msg));

        let rm = Rm13::new();
        let cw = rm.encode(&msg);
        let mut corrupted = cw.clone();
        corrupted.flip(position % 8);
        prop_assert!(rm.decode(&corrupted).message_is(&msg));
    }

    /// The gate-level circuits agree with the reference encoders on random
    /// messages (beyond the exhaustive 4-bit check, this guards the
    /// stimulus/trace plumbing).
    #[test]
    fn gate_level_encoding_matches_reference(message in 0u64..16) {
        let msg = BitVec::from_u64(4, message);
        for kind in [EncoderKind::Hamming74, EncoderKind::Hamming84, EncoderKind::Rm13, EncoderKind::None] {
            let design = EncoderDesign::build(kind);
            prop_assert_eq!(design.encode_gate_level(&msg), design.encode_reference(&msg));
        }
    }

    /// Generic synthesis of any first-order Reed-Muller code yields a DRC-clean
    /// netlist whose gate-level behaviour matches the generator matrix.
    #[test]
    fn generic_synthesis_is_correct_for_rm1m(m in 2usize..=4, message in any::<u64>()) {
        let code = ReedMuller::new(1, m);
        let netlist = synth::synthesize_linear_encoder(
            "rm_generic",
            code.generator(),
            synth::SynthesisOptions::default(),
        );
        prop_assert!(sfq_ecc::netlist::drc::is_clean(&netlist));
        let sim = sfq_ecc::sim::GateLevelSim::new(&netlist);
        let latency = netlist.logic_depth();
        let msg = BitVec::from_u64(code.k(), message & ((1 << code.k()) - 1));
        let mut stim = sfq_ecc::sim::Stimulus::new(&netlist);
        stim.apply_word(&msg, 0);
        let word = sim.run(&stim, latency + 1).dc_word_at(latency);
        prop_assert_eq!(word, code.encode(&msg));
    }

    /// The splitter-insertion pass always produces exactly `loads` usable
    /// ports and `loads - 1` splitters.
    #[test]
    fn fanout_invariants(loads in 1usize..12) {
        let mut nl = sfq_ecc::netlist::Netlist::new("fanout_prop");
        let input = nl.add_input("x");
        let ports = synth::fanout(&mut nl, sfq_ecc::netlist::PortRef::of(input), loads, "x");
        prop_assert_eq!(ports.len(), loads);
        prop_assert_eq!(nl.count_cells(sfq_ecc::cells::CellKind::Splitter), loads - 1);
        // All ports are distinct.
        let mut unique = ports.clone();
        unique.sort_by_key(|p| (p.node.0, p.port));
        unique.dedup();
        prop_assert_eq!(unique.len(), loads);
    }
}
