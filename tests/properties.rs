//! Property-based tests (proptest) over the core data structures and
//! invariants of the workspace.

use proptest::prelude::*;
use sfq_ecc::ecc::{
    generator_right_inverse, Bch, BchSpec, BlockCode, DecodeOutcome, Hamming74, Hamming84,
    HardDecoder, Ldpc, ReedMuller, Rm13, SecDed, ShortenedHamming, Uncoded,
};
use sfq_ecc::encoders::{EncoderDesign, EncoderKind};
use sfq_ecc::gf2::{BitMat, BitSlice64, BitVec, Gf2m};
use sfq_ecc::netlist::synth;

fn bitvec_strategy(len: usize) -> impl Strategy<Value = BitVec> {
    prop::collection::vec(any::<bool>(), len).prop_map(|bits| BitVec::from_bits(&bits))
}

/// Every scalar code behind the `EncoderKind::catalog()` registry, boxed for
/// uniform property checks. Driven by the registry itself — with an
/// exhaustive match per member — so a newly added catalog code fails to
/// compile here instead of being silently skipped by a hand-maintained list.
fn catalog_codes() -> Vec<Box<dyn HardDecoder>> {
    EncoderKind::catalog()
        .into_iter()
        .map(|kind| -> Box<dyn HardDecoder> {
            match kind {
                EncoderKind::None => Box::new(Uncoded::new(4)),
                EncoderKind::Hamming74 => Box::new(Hamming74::new()),
                EncoderKind::Hamming84 => Box::new(Hamming84::new()),
                EncoderKind::Rm13 => Box::new(Rm13::new()),
                EncoderKind::SecDed(m) => Box::new(SecDed::new(usize::from(m))),
                EncoderKind::WideHamming8564 => Box::new(ShortenedHamming::wide_85_64()),
                EncoderKind::Bch(spec) => Box::new(Bch::from_spec(spec)),
                EncoderKind::Ldpc => Box::new(Ldpc::gallager_60_32()),
            }
        })
        .collect()
}

/// Deterministic pseudo-random message for a given code width and seed.
fn seeded_message(k: usize, seed: u64) -> BitVec {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k).map(|_| rng.random::<u64>() & 1 == 1).collect()
}

proptest! {
    /// XOR on BitVec is associative, commutative, and self-inverse.
    #[test]
    fn bitvec_xor_group_laws(a in bitvec_strategy(16), b in bitvec_strategy(16), c in bitvec_strategy(16)) {
        prop_assert_eq!(&(&a ^ &b) ^ &c, &a ^ &(&b ^ &c));
        prop_assert_eq!(&a ^ &b, &b ^ &a);
        prop_assert!((&a ^ &a).is_zero());
    }

    /// Hamming distance is a metric (identity, symmetry, triangle inequality)
    /// and equals the weight of the XOR.
    #[test]
    fn hamming_distance_is_a_metric(a in bitvec_strategy(12), b in bitvec_strategy(12), c in bitvec_strategy(12)) {
        prop_assert_eq!(a.hamming_distance(&a), 0);
        prop_assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
        prop_assert_eq!(a.hamming_distance(&b), (&a ^ &b).weight());
        prop_assert!(a.hamming_distance(&c) <= a.hamming_distance(&b) + b.hamming_distance(&c));
    }

    /// Round trip between u64 and BitVec representations.
    #[test]
    fn bitvec_u64_roundtrip(value in 0u64..=u64::MAX, len in 1usize..=64) {
        let masked = if len == 64 { value } else { value & ((1u64 << len) - 1) };
        let v = BitVec::from_u64(len, masked);
        prop_assert_eq!(v.to_u64(), masked);
        prop_assert_eq!(v.len(), len);
    }

    /// RREF of any small random matrix is idempotent and preserves the rank.
    #[test]
    fn rref_is_idempotent(rows in 1usize..6, cols in 1usize..8, seed in any::<u64>()) {
        let mut bits = Vec::new();
        let mut state = seed;
        for _ in 0..rows {
            let mut row = Vec::new();
            for _ in 0..cols {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                row.push(state >> 63 == 1);
            }
            bits.push(BitVec::from_bits(&row));
        }
        let m = BitMat::from_rows(bits);
        let (r1, pivots) = m.rref();
        let (r2, pivots2) = r1.rref();
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(pivots.len(), m.rank());
        prop_assert_eq!(pivots, pivots2);
    }

    /// Encoding is linear: E(a ⊕ b) = E(a) ⊕ E(b) for every code in the paper.
    #[test]
    fn encoding_is_linear(a in 0u64..16, b in 0u64..16) {
        let va = BitVec::from_u64(4, a);
        let vb = BitVec::from_u64(4, b);
        let sum = &va ^ &vb;
        let h74 = Hamming74::new();
        let h84 = Hamming84::new();
        let rm = Rm13::new();
        prop_assert_eq!(h74.encode(&sum), &h74.encode(&va) ^ &h74.encode(&vb));
        prop_assert_eq!(h84.encode(&sum), &h84.encode(&va) ^ &h84.encode(&vb));
        prop_assert_eq!(rm.encode(&sum), &rm.encode(&va) ^ &rm.encode(&vb));
    }

    /// Every codeword of every paper code has zero syndrome, and every
    /// single-bit corruption is corrected back to the transmitted message.
    #[test]
    fn single_error_correction_property(message in 0u64..16, position in 0usize..8) {
        let msg = BitVec::from_u64(4, message);
        let h84 = Hamming84::new();
        let cw = h84.encode(&msg);
        prop_assert!(h84.is_codeword(&cw));
        let mut corrupted = cw.clone();
        corrupted.flip(position % 8);
        let decoded = h84.decode(&corrupted);
        prop_assert!(decoded.message_is(&msg));

        let h74 = Hamming74::new();
        let cw = h74.encode(&msg);
        let mut corrupted = cw.clone();
        corrupted.flip(position % 7);
        prop_assert!(h74.decode(&corrupted).message_is(&msg));

        let rm = Rm13::new();
        let cw = rm.encode(&msg);
        let mut corrupted = cw.clone();
        corrupted.flip(position % 8);
        prop_assert!(rm.decode(&corrupted).message_is(&msg));
    }

    /// The gate-level circuits agree with the reference encoders on random
    /// messages (beyond the exhaustive 4-bit check, this guards the
    /// stimulus/trace plumbing).
    #[test]
    fn gate_level_encoding_matches_reference(message in 0u64..16) {
        let msg = BitVec::from_u64(4, message);
        for kind in [EncoderKind::Hamming74, EncoderKind::Hamming84, EncoderKind::Rm13, EncoderKind::None] {
            let design = EncoderDesign::build(kind);
            prop_assert_eq!(design.encode_gate_level(&msg), design.encode_reference(&msg));
        }
    }

    /// Generic synthesis of any first-order Reed-Muller code yields a DRC-clean
    /// netlist whose gate-level behaviour matches the generator matrix.
    #[test]
    fn generic_synthesis_is_correct_for_rm1m(m in 2usize..=4, message in any::<u64>()) {
        let code = ReedMuller::new(1, m);
        let netlist = synth::synthesize_linear_encoder(
            "rm_generic",
            code.generator(),
            synth::SynthesisOptions::default(),
        );
        prop_assert!(sfq_ecc::netlist::drc::is_clean(&netlist));
        let sim = sfq_ecc::sim::GateLevelSim::new(&netlist);
        let latency = netlist.logic_depth();
        let msg = BitVec::from_u64(code.k(), message & ((1 << code.k()) - 1));
        let mut stim = sfq_ecc::sim::Stimulus::new(&netlist);
        stim.apply_word(&msg, 0);
        let word = sim.run(&stim, latency + 1).dc_word_at(latency);
        prop_assert_eq!(word, code.encode(&msg));
    }

    /// Batch pack/unpack round-trips at arbitrary lane counts and across
    /// limb boundaries: any vector length (including the wide SEC-DED words)
    /// and any batch size (including 0, exact multiples of 64, and ragged
    /// tails) survives the transpose unchanged, element for element.
    #[test]
    fn bitslice_pack_unpack_roundtrip(bits in 1usize..=96, batch in 0usize..=200, seed in any::<u64>()) {
        let vectors: Vec<BitVec> = (0..batch)
            .map(|i| seeded_message(bits, seed ^ (i as u64).wrapping_mul(0x9E37_79B9)))
            .collect();
        let sliced = BitSlice64::pack(&vectors);
        prop_assert_eq!(sliced.batch(), batch);
        prop_assert_eq!(sliced.words(), batch.div_ceil(64));
        prop_assert_eq!(sliced.unpack(), vectors.clone());
        for (i, v) in vectors.iter().enumerate() {
            prop_assert_eq!(sliced.extract(i), v.clone());
            for b in (0..bits).step_by(7) {
                prop_assert_eq!(sliced.get(i, b), v.get(b));
            }
        }
    }

    /// `generator_right_inverse` is a left identity on the encoding map for
    /// every catalog code: recombining a codeword's pivot bits through the
    /// transform recovers the original message exactly.
    #[test]
    fn generator_right_inverse_left_identity_for_catalog_codes(seed in any::<u64>()) {
        for code in catalog_codes() {
            let (pivots, transform) = generator_right_inverse(code.generator());
            prop_assert_eq!(pivots.len(), code.k());
            let msg = seeded_message(code.k(), seed);
            let cw = code.encode(&msg);
            let mut recovered = BitVec::zeros(code.k());
            for (i, &p) in pivots.iter().enumerate() {
                if cw.get(p) {
                    recovered.xor_assign(transform.row(i));
                }
            }
            prop_assert_eq!(recovered, msg, "{}", code.name());
        }
    }

    /// Decode idempotence for every catalog code: re-encoding a decoded
    /// message and decoding again is a no-op — the second pass sees a clean
    /// codeword, corrects nothing, and returns the same message.
    #[test]
    fn decoding_is_idempotent_for_catalog_codes(seed in any::<u64>(), weight in 0usize..=2) {
        for code in catalog_codes() {
            let msg = seeded_message(code.k(), seed);
            let mut received = code.encode(&msg);
            // Corrupt `weight` distinct deterministic positions.
            let n = code.n();
            let first = (seed as usize) % n;
            let second = (first + 1 + (seed >> 32) as usize % (n - 1)) % n;
            if weight >= 1 { received.flip(first); }
            if weight >= 2 && second != first { received.flip(second); }

            let once = code.decode(&received);
            if let Some(decoded_msg) = &once.message {
                let reencoded = code.encode(decoded_msg);
                prop_assert_eq!(
                    Some(&reencoded), once.codeword.as_ref(),
                    "{}: decoded message must re-encode to the decoded codeword", code.name()
                );
                let twice = code.decode(&reencoded);
                prop_assert_eq!(twice.outcome, DecodeOutcome::NoErrorDetected, "{}", code.name());
                prop_assert_eq!(twice.message.as_ref(), Some(decoded_msg), "{}", code.name());
                prop_assert_eq!(twice.codeword, Some(reencoded), "{}", code.name());
            }
        }
    }

    /// GF(2^m) field axioms for every extension degree the field layer
    /// supports beyond the toy sizes (m ∈ 4..=8, covering both registry
    /// fields GF(2^5) and GF(2^6) and the headroom degrees): addition and
    /// multiplication are associative and commutative, multiplication
    /// distributes over addition, 1 is the multiplicative identity, and
    /// every non-zero element's inverse round-trips through `inv` and `div`.
    #[test]
    fn gf2m_field_axioms(m in 4usize..=8, ra in any::<u16>(), rb in any::<u16>(), rc in any::<u16>()) {
        let field = Gf2m::new(m);
        let mask = (field.size() - 1) as u16;
        let (a, b, c) = (ra & mask, rb & mask, rc & mask);

        // Additive group (characteristic 2): commutative, associative,
        // self-inverse.
        prop_assert_eq!(field.add(a, b), field.add(b, a));
        prop_assert_eq!(field.add(field.add(a, b), c), field.add(a, field.add(b, c)));
        prop_assert_eq!(field.add(a, a), 0);

        // Multiplicative monoid: commutative, associative, identity 1,
        // absorbing 0.
        prop_assert_eq!(field.mul(a, b), field.mul(b, a));
        prop_assert_eq!(field.mul(field.mul(a, b), c), field.mul(a, field.mul(b, c)));
        prop_assert_eq!(field.mul(a, 1), a);
        prop_assert_eq!(field.mul(a, 0), 0);

        // Distributivity ties the two together.
        prop_assert_eq!(
            field.mul(a, field.add(b, c)),
            field.add(field.mul(a, b), field.mul(a, c))
        );

        // Inverses: a · a⁻¹ = 1 and division round-trips, for a, b ≠ 0.
        if a != 0 {
            prop_assert_eq!(field.mul(a, field.inv(a)), 1);
            prop_assert_eq!(field.pow(a, field.order()), 1, "Fermat: a^(2^m - 1) = 1");
            prop_assert_eq!(field.alpha_pow(field.log(a)), a, "log/alpha_pow round trip");
        }
        if b != 0 {
            prop_assert_eq!(field.mul(field.div(a, b), b), a);
        }
    }

    /// BCH(31,16) encode ∘ decode is the identity under any error pattern of
    /// weight ≤ t = 2: the decoder returns exactly the transmitted message
    /// and codeword, with the outcome matching the number of flips.
    #[test]
    fn bch_decode_inverts_encode_under_radius_two_errors(
        message in any::<u64>(),
        first in 0usize..31,
        offset in 0usize..30,
        weight in 0usize..=2,
    ) {
        let code = Bch::bch_31_16();
        let msg = BitVec::from_u64(code.k(), message & 0xFFFF);
        let cw = code.encode(&msg);
        prop_assert!(code.is_codeword(&cw));

        let mut received = cw.clone();
        let second = (first + 1 + offset) % code.n();
        if weight >= 1 { received.flip(first); }
        if weight >= 2 { received.flip(second); }
        let flips = received.hamming_distance(&cw);

        let decoded = code.decode(&received);
        prop_assert!(decoded.message_is(&msg), "weight-{flips} pattern must correct");
        prop_assert_eq!(decoded.codeword, Some(cw));
        let expected = if flips == 0 {
            DecodeOutcome::NoErrorDetected
        } else {
            DecodeOutcome::Corrected { bits_flipped: flips }
        };
        prop_assert_eq!(decoded.outcome, expected);
    }

    /// Every BCH registry member's encode ∘ decode is the identity under any
    /// error pattern whose weight is within the member's decode radius: the
    /// decoder returns exactly the transmitted message and codeword, with
    /// the outcome matching the number of flips. Randomizing over the spec
    /// itself keeps the property honest for whatever the registry grows to
    /// hold — a member whose radius its decoder cannot actually deliver
    /// fails here.
    #[test]
    fn bch_registry_decode_inverts_encode_within_radius(
        spec_index in 0usize..BchSpec::REGISTRY.len(),
        seed in any::<u64>(),
        weight_seed in any::<u32>(),
    ) {
        let spec = BchSpec::REGISTRY[spec_index];
        let code = Bch::from_spec(spec);
        let radius = usize::from(spec.decode_radius);
        let weight = weight_seed as usize % (radius + 1);
        let msg = seeded_message(code.k(), seed);
        let cw = code.encode(&msg);
        prop_assert!(code.is_codeword(&cw));

        let mut received = cw.clone();
        let mut positions = std::collections::BTreeSet::new();
        let mut state = seed | 1;
        while positions.len() < weight {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            positions.insert((state >> 32) as usize % code.n());
        }
        for &p in &positions {
            received.flip(p);
        }

        let decoded = code.decode(&received);
        prop_assert!(
            decoded.message_is(&msg),
            "{}: weight-{} pattern {:?} must correct", code.name(), weight, positions
        );
        prop_assert_eq!(decoded.codeword, Some(cw));
        let expected = if weight == 0 {
            DecodeOutcome::NoErrorDetected
        } else {
            DecodeOutcome::Corrected { bits_flipped: weight }
        };
        prop_assert_eq!(decoded.outcome, expected);
    }

    /// LDPC(60,32) bit-flip decoding always terminates within its iteration
    /// cap and classifies honestly: single errors converge (in one round)
    /// back to the transmitted message, and any heavier pattern either
    /// converges to a *valid* codeword or reports its non-convergence as
    /// `DetectedUncorrectable` — a stalled or oscillating pattern is never
    /// delivered silently as data.
    #[test]
    fn ldpc_bit_flip_converges_or_flags(
        seed in any::<u64>(),
        single in 0usize..60,
        weight in 0usize..=5,
    ) {
        let code = Ldpc::gallager_60_32();
        let msg = seeded_message(code.k(), seed);
        let cw = code.encode(&msg);
        prop_assert!(code.is_codeword(&cw));

        let one = {
            let mut r = cw.clone();
            r.flip(single);
            r
        };
        let decoded = code.decode(&one);
        prop_assert!(decoded.message_is(&msg), "single error at {} must correct", single);
        prop_assert_eq!(decoded.outcome, DecodeOutcome::Corrected { bits_flipped: 1 });

        let mut received = cw.clone();
        let mut state = seed | 1;
        for _ in 0..weight {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            received.flip((state >> 32) as usize % code.n());
        }
        let decoded = code.decode(&received);
        match decoded.outcome {
            DecodeOutcome::DetectedUncorrectable => {
                // Explicit non-convergence: no message is delivered.
                prop_assert!(decoded.message.is_none());
            }
            _ => {
                let corrected = decoded.codeword.as_ref().expect("converged codeword");
                prop_assert!(code.is_codeword(corrected), "converged word must satisfy every check");
            }
        }
    }

    /// Lane interleaving restores single-error correctability under
    /// correlated bursts: a burst flipping `w ≤ d` adjacent physical lanes of
    /// a depth-`d` interleaved frame lands on at most one lane of each
    /// codeword block, so a SEC-DED decode of every de-interleaved block
    /// corrects cleanly back to the transmitted messages — no flags, no
    /// residual errors — for every burst width up to the interleave depth.
    #[test]
    fn interleaving_restores_burst_correctability(
        depth in 1usize..=5,
        width_offset in 0usize..5,
        batch in 1usize..=150,
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sfq_ecc::batch::BatchCodec;
        use sfq_ecc::ecc::{BatchDecode, BatchEncode};
        use sfq_ecc::link::burst::{BurstSource, Interleaver};

        let width = 1 + width_offset % depth;
        let codec = BatchCodec::sec_ded(3); // SEC-DED(13,8)
        let interleaver = Interleaver::new(depth);

        let blocks: Vec<(Vec<BitVec>, BitSlice64)> = (0..depth)
            .map(|b| {
                let messages: Vec<BitVec> = (0..batch)
                    .map(|i| seeded_message(8, seed ^ ((b * batch + i) as u64)))
                    .collect();
                let encoded = codec.encode_batch(&BitSlice64::pack(&messages));
                (messages, encoded)
            })
            .collect();

        let mut frame = interleaver.interleave(
            &blocks.iter().map(|(_, e)| e.clone()).collect::<Vec<_>>(),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        BurstSource::new(width, 1.0).strike(&mut rng, &mut frame);

        for (block, (messages, _)) in interleaver.deinterleave(&frame).iter().zip(&blocks) {
            let decoded = codec.decode_batch(block);
            prop_assert_eq!(
                decoded.flagged_count(), 0,
                "depth {} width {}: every block must correct", depth, width
            );
            prop_assert_eq!(&decoded.messages.unpack(), messages);
        }
    }

    /// The splitter-insertion pass always produces exactly `loads` usable
    /// ports and `loads - 1` splitters.
    #[test]
    fn fanout_invariants(loads in 1usize..12) {
        let mut nl = sfq_ecc::netlist::Netlist::new("fanout_prop");
        let input = nl.add_input("x");
        let ports = synth::fanout(&mut nl, sfq_ecc::netlist::PortRef::of(input), loads, "x");
        prop_assert_eq!(ports.len(), loads);
        prop_assert_eq!(nl.count_cells(sfq_ecc::cells::CellKind::Splitter), loads - 1);
        // All ports are distinct.
        let mut unique = ports.clone();
        unique.sort_by_key(|p| (p.node.0, p.port));
        unique.dedup();
        prop_assert_eq!(unique.len(), loads);
    }
}
