//! End-to-end link tests: encoder circuit + PPV faults + cable + decoder.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sfq_ecc::cells::CellLibrary;
use sfq_ecc::encoders::{EncoderDesign, EncoderKind};
use sfq_ecc::gf2::BitVec;
use sfq_ecc::link::{ChannelConfig, CryoLink, ErrorCounting, Fig5Experiment, LinkOutcome};
use sfq_ecc::sim::PpvModel;

/// With no process variations and an ideal channel, every design delivers
/// every message of an exhaustive sweep.
#[test]
fn fault_free_link_is_error_free_for_all_designs_and_messages() {
    let mut rng = StdRng::seed_from_u64(99);
    for kind in EncoderKind::ALL {
        let design = EncoderDesign::build(kind);
        let link = CryoLink::ideal(&design);
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            let result = link.transmit(&msg, &mut rng);
            assert_eq!(
                result.outcome,
                LinkOutcome::Correct,
                "{} {m:04b}",
                design.name()
            );
        }
    }
}

/// A moderately noisy channel: the coded links must deliver at least as many
/// messages correctly as the uncoded link, and Hamming(8,4) must flag rather
/// than silently deliver a substantial share of its failures.
#[test]
fn coding_gain_on_a_noisy_channel() {
    let mut rng = StdRng::seed_from_u64(7);
    let channel = ChannelConfig::with_snr_db(11.0);
    let messages: Vec<BitVec> = (0..400).map(|i| BitVec::from_u64(4, i % 16)).collect();

    let run = |kind: EncoderKind, rng: &mut StdRng| {
        let design = EncoderDesign::build(kind);
        let link = CryoLink::new(
            &design,
            sfq_ecc::sim::FaultMap::healthy(design.netlist()),
            channel,
        );
        link.transmit_batch(&messages, rng)
    };

    let (uncoded_ok, _, uncoded_silent) = run(EncoderKind::None, &mut rng);
    let (h84_ok, h84_flagged, h84_silent) = run(EncoderKind::Hamming84, &mut rng);

    assert!(
        h84_ok > uncoded_ok,
        "Hamming(8,4) should deliver more messages than uncoded ({h84_ok} vs {uncoded_ok})"
    );
    assert!(
        h84_silent < uncoded_silent,
        "Hamming(8,4) should have fewer silent errors ({h84_silent} vs {uncoded_silent})"
    );
    // The error flag is doing real work on this channel.
    assert!(h84_flagged > 0);
}

/// A reduced-size Fig. 5 run must reproduce the headline qualitative results
/// of the paper: every encoder beats the uncoded link, and the extended
/// Hamming(8,4) code is the best of the three encoders.
#[test]
fn reduced_fig5_preserves_paper_ordering() {
    let library = CellLibrary::coldflux();
    let experiment = Fig5Experiment {
        chips: 400,
        messages_per_chip: 60,
        threads: 4,
        ..Fig5Experiment::paper_setup()
    };
    let result = experiment.run_all(&library);
    let p = |kind: EncoderKind| result.curve(kind).unwrap().zero_error_probability();

    let none = p(EncoderKind::None);
    let h74 = p(EncoderKind::Hamming74);
    let h84 = p(EncoderKind::Hamming84);
    let rm = p(EncoderKind::Rm13);

    assert!(h84 > none, "Hamming(8,4) {h84} must beat no-encoder {none}");
    assert!(h74 > none, "Hamming(7,4) {h74} must beat no-encoder {none}");
    assert!(rm > none, "RM(1,3) {rm} must beat no-encoder {none}");
    assert!(
        h84 >= h74 && h84 >= rm,
        "Hamming(8,4) must be the best encoder (h84={h84}, h74={h74}, rm={rm})"
    );
}

/// Counting flagged messages as erroneous can only lower the zero-error
/// probability, and the CDF is monotone non-decreasing in N.
#[test]
fn fig5_cdf_is_monotone_and_counting_policy_behaves() {
    let library = CellLibrary::coldflux();
    let base = Fig5Experiment {
        chips: 150,
        messages_per_chip: 40,
        threads: 4,
        ..Fig5Experiment::paper_setup()
    };
    let design = EncoderDesign::build(EncoderKind::Hamming84);
    let silent = base.run_design(&design, &library);
    let any = Fig5Experiment {
        counting: ErrorCounting::AnyWrong,
        ..base
    }
    .run_design(&design, &library);

    assert!(any.zero_error_probability() <= silent.zero_error_probability() + 1e-12);
    let mut last = 0.0;
    for n in 0..=base.messages_per_chip {
        let value = silent.cdf(n);
        assert!(value + 1e-12 >= last, "CDF must be monotone at N={n}");
        last = value;
    }
    assert!((silent.cdf(base.messages_per_chip) - 1.0).abs() < 1e-12);
}

/// Chips sampled at a tighter spread produce no more faults than chips
/// sampled at the paper's ±20 %, for the same seed.
#[test]
fn ppv_fault_count_scales_with_spread() {
    let library = CellLibrary::coldflux();
    let design = EncoderDesign::build(EncoderKind::Rm13);
    let count_faults = |spread: f64| -> usize {
        let model = PpvModel::paper_defaults().with_spread(spread);
        let mut rng = StdRng::seed_from_u64(1234);
        (0..200)
            .map(|_| {
                model
                    .sample_chip(design.netlist(), &library, &mut rng)
                    .faults
                    .faulty_count()
            })
            .sum()
    };
    let tight = count_faults(0.10);
    let paper = count_faults(0.20);
    let loose = count_faults(0.30);
    assert!(tight <= paper, "{tight} > {paper}");
    assert!(paper <= loose, "{paper} > {loose}");
}
