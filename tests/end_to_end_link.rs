//! End-to-end link tests: encoder circuit + PPV faults + cable + decoder.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sfq_ecc::cells::CellLibrary;
use sfq_ecc::encoders::{EncoderDesign, EncoderKind};
use sfq_ecc::gf2::BitVec;
use sfq_ecc::link::{ChannelConfig, CryoLink, ErrorCounting, Fig5Experiment, LinkOutcome};
use sfq_ecc::sim::PpvModel;

/// With no process variations and an ideal channel, every design delivers
/// every message of an exhaustive sweep.
#[test]
fn fault_free_link_is_error_free_for_all_designs_and_messages() {
    let mut rng = StdRng::seed_from_u64(99);
    for kind in EncoderKind::ALL {
        let design = EncoderDesign::build(kind);
        let link = CryoLink::ideal(&design);
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            let result = link.transmit(&msg, &mut rng);
            assert_eq!(
                result.outcome,
                LinkOutcome::Correct,
                "{} {m:04b}",
                design.name()
            );
        }
    }
}

/// A moderately noisy channel: the coded links must deliver at least as many
/// messages correctly as the uncoded link, and Hamming(8,4) must flag rather
/// than silently deliver a substantial share of its failures.
#[test]
fn coding_gain_on_a_noisy_channel() {
    let mut rng = StdRng::seed_from_u64(7);
    let channel = ChannelConfig::with_snr_db(11.0);
    let messages: Vec<BitVec> = (0..400).map(|i| BitVec::from_u64(4, i % 16)).collect();

    let run = |kind: EncoderKind, rng: &mut StdRng| {
        let design = EncoderDesign::build(kind);
        let link = CryoLink::new(
            &design,
            sfq_ecc::sim::FaultMap::healthy(design.netlist()),
            channel,
        );
        link.transmit_batch(&messages, rng)
    };

    let (uncoded_ok, _, uncoded_silent) = run(EncoderKind::None, &mut rng);
    let (h84_ok, h84_flagged, h84_silent) = run(EncoderKind::Hamming84, &mut rng);

    assert!(
        h84_ok > uncoded_ok,
        "Hamming(8,4) should deliver more messages than uncoded ({h84_ok} vs {uncoded_ok})"
    );
    assert!(
        h84_silent < uncoded_silent,
        "Hamming(8,4) should have fewer silent errors ({h84_silent} vs {uncoded_silent})"
    );
    // The error flag is doing real work on this channel.
    assert!(h84_flagged > 0);
}

/// A reduced-size Fig. 5 run must reproduce the headline qualitative results
/// of the paper — every encoder beats the uncoded link, and the extended
/// Hamming(8,4) code is the best of the three encoders — *statistically*:
/// each ordering claim is asserted as non-overlap of 95 % Wilson confidence
/// intervals derived from the actual chip count, not as a point comparison
/// tuned to one seed.
#[test]
fn reduced_fig5_preserves_paper_ordering() {
    let library = CellLibrary::coldflux();
    let experiment = Fig5Experiment {
        chips: 400,
        messages_per_chip: 60,
        threads: 4,
        ..Fig5Experiment::paper_setup()
    };
    let result = experiment.run_all(&library);
    let ci = |kind: EncoderKind| result.curve(kind).unwrap().zero_error_wilson_interval(1.96);

    let none = ci(EncoderKind::None);
    let h74 = ci(EncoderKind::Hamming74);
    let h84 = ci(EncoderKind::Hamming84);
    let rm = ci(EncoderKind::Rm13);

    for (name, coded) in [
        ("Hamming(8,4)", h84),
        ("Hamming(7,4)", h74),
        ("RM(1,3)", rm),
    ] {
        assert!(
            coded.0 > none.1,
            "{name} must significantly beat no-encoder ({coded:?} vs {none:?})"
        );
    }
    assert!(
        h84.0 > h74.1 && h84.0 > rm.1,
        "Hamming(8,4) must be significantly the best encoder (h84={h84:?}, h74={h74:?}, rm={rm:?})"
    );
}

/// The Fig. 5 per-chip seeding contract (`seed + chip_index` drives each
/// chip's RNG): curves are **bit-identical** regardless of the worker-thread
/// count, on both the scalar pulse-level path and the bit-sliced batch path.
/// This is the determinism guarantee `montecarlo.rs` documents; here it is
/// asserted at the workspace level for 1 vs 8 threads.
#[test]
fn fig5_curves_are_bit_identical_for_one_and_eight_threads() {
    let library = CellLibrary::coldflux();
    let serial = Fig5Experiment {
        chips: 26, // not a multiple of 8: exercises ragged chunking
        messages_per_chip: 12,
        threads: 1,
        ..Fig5Experiment::paper_setup()
    };
    let eight = Fig5Experiment {
        threads: 8,
        ..serial
    };
    for kind in [EncoderKind::Hamming84, EncoderKind::SecDed(3)] {
        let design = EncoderDesign::build(kind);
        let a = serial.run_design(&design, &library);
        let b = eight.run_design(&design, &library);
        assert_eq!(
            a.errors_per_chip,
            b.errors_per_chip,
            "scalar path diverged across thread counts for {}",
            design.name()
        );
        let a = serial.run_design_batched(&design, &library);
        let b = eight.run_design_batched(&design, &library);
        assert_eq!(
            a.errors_per_chip,
            b.errors_per_chip,
            "batched path diverged across thread counts for {}",
            design.name()
        );
    }
}

/// The wide-word scenario of the ISSUE: SEC-DED(72,64) words through the
/// cryo link under ±20 % PPV, on both the scalar pulse-level path and the
/// bit-sliced batch driver. The curves must agree: overlapping 95 % Wilson
/// intervals on the zero-error probability and a small gap between the point
/// estimates (the batch fault model is a correlated approximation, not a
/// bit-exact replay).
#[test]
fn wide_word_secded72_scenario_agrees_between_scalar_and_batched() {
    let library = CellLibrary::coldflux();
    let experiment = Fig5Experiment::wide_word_setup();
    let design = EncoderDesign::build(EncoderKind::SecDed(6));
    assert_eq!((design.n(), design.k()), (72, 64));

    let scalar = experiment.run_design(&design, &library);
    let batched = experiment.run_design_batched(&design, &library);
    assert_eq!(scalar.chips(), experiment.chips);
    assert_eq!(batched.chips(), experiment.chips);

    let s = scalar.zero_error_probability();
    let b = batched.zero_error_probability();
    let s_ci = scalar.zero_error_wilson_interval(1.96);
    let b_ci = batched.zero_error_wilson_interval(1.96);
    assert!(
        s_ci.0 <= b_ci.1 && b_ci.0 <= s_ci.1,
        "Wilson intervals must overlap: scalar {s_ci:?} vs batched {b_ci:?}"
    );
    // The gap budget covers both the systematic approximation error and the
    // sampling noise of two independent draws at this chip count (σ of the
    // difference ≈ 0.07): the cancellation-aware netlists share wider XOR
    // cones, which strengthens the correlated-flip approximation's bias a
    // little compared to the Paar-era netlists.
    assert!(
        (s - b).abs() <= 0.15,
        "zero-error probabilities must track: scalar {s} vs batched {b}"
    );
    // Both paths see a meaningfully faulty process at this scale: the chips
    // are not all perfect, and not all broken.
    assert!(s > 0.5 && s < 1.0, "scalar zero-error {s}");
    assert!(b > 0.5 && b < 1.0, "batched zero-error {b}");
}

/// The multi-error claim, measured across the BCH registry: under the
/// correlated per-cell fault model with no retransmission path
/// ([`ErrorCounting::AnyWrong`]), both multi-error BCH links beat the
/// classic SEC-DED(72,64) link on zero-error probability — asserted as
/// non-overlap of 95 % Wilson intervals, not as point comparisons. A spread
/// sweep locates *where* the win appears: at zero process spread all three
/// links are perfect and indistinguishable; by the paper's ±20 % each BCH
/// lower bound has cleared the SEC-DED upper bound decisively, because a
/// faulty cell whose fan-out cone spans two or three codeword bits is
/// corrected by `t ≥ 2` but only flagged (= erroneous without
/// retransmission) by SEC-DED.
///
/// Between the two BCH members the *smaller circuit* wins: the BCH(63,45)
/// encoder carries ~3× the JJ count of BCH(31,16)'s, so its chips fault
/// proportionally more often, and the extra unit of correction radius does
/// not buy the exposure back under this fault model (measured ≈ 0.42 vs
/// 0.57 zero-error). That is the same circuit-size effect the paper's own
/// Fig. 5 exhibits between RM(1,3) and Hamming(8,4) — two codes with
/// identical weight distributions (see `paper_claims.rs`) — coding power
/// and hardware exposure trade off.
#[test]
fn bch_registry_beats_secded72_with_separated_wilson_intervals() {
    use sfq_ecc::ecc::BchSpec;
    let library = CellLibrary::coldflux();
    let bch63 = EncoderDesign::build(EncoderKind::Bch(BchSpec::BCH_63_45));
    let bch31 = EncoderDesign::build(EncoderKind::Bch(BchSpec::BCH_31_16));
    let secded = EncoderDesign::build(EncoderKind::SecDed(6));
    assert_eq!((bch63.n(), bch63.k()), (63, 45));
    assert_eq!((bch31.n(), bch31.k()), (31, 16));

    let curves = |spread: f64| {
        let experiment = Fig5Experiment {
            ppv: sfq_ecc::sim::PpvModel::paper_defaults().with_spread(spread),
            threads: 4,
            ..Fig5Experiment::multi_error_setup()
        };
        [
            experiment.run_design_batched(&bch63, &library),
            experiment.run_design_batched(&bch31, &library),
            experiment.run_design_batched(&secded, &library),
        ]
    };

    // Sweep point 1 — no process spread: every link delivers everything.
    for curve in curves(0.0) {
        assert!((curve.zero_error_probability() - 1.0).abs() < 1e-12);
    }

    // Sweep point 2 — the paper's ±20 %: both BCH intervals separate from
    // SEC-DED's, with each BCH lower bound clear of the SEC-DED upper bound.
    let [b63, b31, sd] = curves(0.20);
    let b63_ci = b63.zero_error_wilson_interval(1.96);
    let b31_ci = b31.zero_error_wilson_interval(1.96);
    let sd_ci = sd.zero_error_wilson_interval(1.96);
    for (name, ci) in [("BCH(63,45)", b63_ci), ("BCH(31,16)", b31_ci)] {
        assert!(
            ci.0 > sd_ci.1,
            "{name} must significantly beat SEC-DED(72,64) at ±20 % spread \
             ({ci:?} vs secded {sd_ci:?})"
        );
    }
    // And the wins are substantive, not boundary grazes.
    assert!(
        b63.mean_errors() < sd.mean_errors() && b31.mean_errors() < sd.mean_errors(),
        "bch means {} / {} vs secded mean {}",
        b63.mean_errors(),
        b31.mean_errors(),
        sd.mean_errors()
    );
    // The circuit-size effect holds at this chip count with fully separated
    // intervals, so a point comparison is stable: the ~3× larger BCH(63,45)
    // encoder loses zero-error probability to BCH(31,16) despite radius 3.
    assert!(
        b63.zero_error_probability() < b31.zero_error_probability(),
        "expected the smaller circuit to win: bch63 {} vs bch31 {}",
        b63.zero_error_probability(),
        b31.zero_error_probability()
    );
}

/// Counting flagged messages as erroneous can only lower the zero-error
/// probability, and the CDF is monotone non-decreasing in N.
#[test]
fn fig5_cdf_is_monotone_and_counting_policy_behaves() {
    let library = CellLibrary::coldflux();
    let base = Fig5Experiment {
        chips: 150,
        messages_per_chip: 40,
        threads: 4,
        ..Fig5Experiment::paper_setup()
    };
    let design = EncoderDesign::build(EncoderKind::Hamming84);
    let silent = base.run_design(&design, &library);
    let any = Fig5Experiment {
        counting: ErrorCounting::AnyWrong,
        ..base
    }
    .run_design(&design, &library);

    assert!(any.zero_error_probability() <= silent.zero_error_probability() + 1e-12);
    let mut last = 0.0;
    for n in 0..=base.messages_per_chip {
        let value = silent.cdf(n);
        assert!(value + 1e-12 >= last, "CDF must be monotone at N={n}");
        last = value;
    }
    assert!((silent.cdf(base.messages_per_chip) - 1.0).abs() < 1e-12);
}

/// Chips sampled at a tighter spread produce no more faults than chips
/// sampled at the paper's ±20 %, for the same seed.
#[test]
fn ppv_fault_count_scales_with_spread() {
    let library = CellLibrary::coldflux();
    let design = EncoderDesign::build(EncoderKind::Rm13);
    let count_faults = |spread: f64| -> usize {
        let model = PpvModel::paper_defaults().with_spread(spread);
        let mut rng = StdRng::seed_from_u64(1234);
        (0..200)
            .map(|_| {
                model
                    .sample_chip(design.netlist(), &library, &mut rng)
                    .faults
                    .faulty_count()
            })
            .sum()
    };
    let tight = count_faults(0.10);
    let paper = count_faults(0.20);
    let loose = count_faults(0.30);
    assert!(tight <= paper, "{tight} > {paper}");
    assert!(paper <= loose, "{paper} > {loose}");
}
