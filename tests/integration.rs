//! Cross-crate integration tests: codes ↔ netlists ↔ simulator ↔ cell library.

use sfq_ecc::cells::{CellKind, CellLibrary};
use sfq_ecc::ecc::{BlockCode, Hamming84, ShortenedHamming3832};
use sfq_ecc::encoders::{EncoderDesign, EncoderKind};
use sfq_ecc::gf2::BitVec;
use sfq_ecc::netlist::{drc, synth, NetlistStats};
use sfq_ecc::sim::{GateLevelSim, Stimulus};

/// The naive tree-synthesis flow and the pass-pipeline circuit the catalog
/// ships (which reproduces the paper's Fig. 2 cell budget) must agree
/// functionally on every message, even though their structure differs.
#[test]
fn generic_synthesis_and_paper_circuit_agree_functionally() {
    let code = Hamming84::new();
    let generic = synth::synthesize_linear_encoder(
        "hamming84_generic",
        code.generator(),
        synth::SynthesisOptions::default(),
    );
    assert!(drc::is_clean(&generic));
    let sim = GateLevelSim::new(&generic);
    let latency = generic.logic_depth();

    let paper_design = EncoderDesign::build(EncoderKind::Hamming84);
    for m in 0u64..16 {
        let msg = BitVec::from_u64(4, m);
        let mut stim = Stimulus::new(&generic);
        stim.apply_word(&msg, 0);
        let generic_word = sim.run(&stim, latency + 1).dc_word_at(latency);
        let paper_word = paper_design.encode_gate_level(&msg);
        assert_eq!(generic_word, paper_word, "message {m:04b}");
        assert_eq!(generic_word, code.encode(&msg), "message {m:04b}");
    }
}

/// The pipeline-synthesized circuits (which factor shared subexpressions the
/// way the paper's Section III does by hand) are strictly smaller than the
/// naive tree-synthesis result for the same code.
#[test]
fn paper_circuits_are_smaller_than_generic_synthesis() {
    let lib = CellLibrary::coldflux();
    let code = Hamming84::new();
    let generic = synth::synthesize_linear_encoder(
        "hamming84_generic",
        code.generator(),
        synth::SynthesisOptions::default(),
    );
    let generic_stats = NetlistStats::compute(&generic, &lib);
    let paper_stats = EncoderDesign::build(EncoderKind::Hamming84).stats(&lib);
    assert!(paper_stats.cost.jj_count < generic_stats.cost.jj_count);
    assert!(
        paper_stats.histogram.count(CellKind::Xor) <= generic_stats.histogram.count(CellKind::Xor)
    );
}

/// The (38,32) prior-art baseline of reference [14] synthesizes, passes DRC,
/// and encodes correctly at gate level for a handful of messages.
#[test]
fn baseline_3832_encoder_is_functional_at_gate_level() {
    let code = ShortenedHamming3832::new();
    let netlist = synth::synthesize_linear_encoder(
        "peng3832",
        code.generator(),
        synth::SynthesisOptions::default(),
    );
    assert!(drc::is_clean(&netlist));
    let sim = GateLevelSim::new(&netlist);
    let latency = netlist.logic_depth();
    for message_value in [0u64, 1, 0xDEAD_BEEF, 0xFFFF_FFFF, 0x1234_5678] {
        let msg = BitVec::from_u64(32, message_value);
        let mut stim = Stimulus::new(&netlist);
        stim.apply_word(&msg, 0);
        let word = sim.run(&stim, latency + 1).dc_word_at(latency);
        assert_eq!(word, code.encode(&msg), "message {message_value:#x}");
    }
}

/// Table II costs follow directly from netlist histograms and the library;
/// verify the full pipeline (netlist -> histogram -> cost) for all designs.
#[test]
fn stats_pipeline_is_consistent_for_all_designs() {
    let lib = CellLibrary::coldflux();
    for kind in EncoderKind::ALL {
        let design = EncoderDesign::build(kind);
        let stats = design.stats(&lib);
        let mut jj = 0;
        for (cell, count) in stats.histogram.as_map() {
            jj += u64::from(lib.params(*cell).jj_count) * count;
        }
        assert_eq!(jj, stats.cost.jj_count, "{}", design.name());
        assert_eq!(stats.num_inputs, 4, "{}", design.name());
        assert_eq!(stats.num_outputs, design.n(), "{}", design.name());
    }
}

/// Logic depth reported by the netlist matches the number of cycles the
/// simulator actually needs before the codeword settles.
#[test]
fn reported_latency_matches_simulated_settling_time() {
    for kind in [
        EncoderKind::Hamming74,
        EncoderKind::Hamming84,
        EncoderKind::Rm13,
    ] {
        let design = EncoderDesign::build(kind);
        let msg = BitVec::from_str01("1111");
        let trace = design.simulate(&msg);
        let settled = trace.dc_word_at(design.latency());
        assert_eq!(settled, design.encode_reference(&msg), "{}", design.name());
        // One cycle earlier the word has not settled for at least one message.
        let mut any_unsettled = false;
        for m in 1u64..16 {
            let msg = BitVec::from_u64(4, m);
            let trace = design.simulate(&msg);
            if design.latency() > 0
                && trace.dc_word_at(design.latency() - 1) != design.encode_reference(&msg)
            {
                any_unsettled = true;
                break;
            }
        }
        assert!(any_unsettled, "{}: latency should be tight", design.name());
    }
}
