//! Direct checks of the quantitative claims printed in the paper's text,
//! tables, and figure captions.

use sfq_ecc::cells::{CellKind, CellLibrary};
use sfq_ecc::ecc::analysis::{table1_row, CodeAnalysis, DecodingPolicy};
use sfq_ecc::ecc::{BlockCode, Hamming74, Hamming84, Rm13, ShortenedHamming3832};
use sfq_ecc::encoders::{paper_table2, table2_rows, EncoderDesign, EncoderKind};
use sfq_ecc::gf2::BitVec;
use sfq_ecc::link::{paper_zero_error_probabilities, Fig5Experiment};

/// Section I: "[the (38,32) code] can detect 2-bit and correct 1-bit errors
/// using a circuit consisting of 84 XOR gates and 135 DFFs" — we verify the
/// code parameters (the circuit itself belongs to reference [14]).
#[test]
fn prior_art_3832_code_parameters() {
    let code = ShortenedHamming3832::new();
    assert_eq!(code.n(), 38);
    assert_eq!(code.k(), 32);
    assert_eq!(code.parity_check().rows(), 6, "six parity bits");
    assert_eq!(code.min_distance(), 3);
}

/// Section II, Eq. (1): the generator matrix of Hamming(8,4).
#[test]
fn equation_1_generator_matrix() {
    let expected = [
        "11100001", // row for m1
        "10011001", // row for m2
        "01010101", // row for m3
        "11010010", // row for m4
    ];
    let code = Hamming84::new();
    for (i, row) in expected.iter().enumerate() {
        assert_eq!(code.generator().row(i).to_string01(), *row, "row {i}");
    }
}

/// Section II-A: extending Hamming(7,4) raises d_min from 3 to 4, "enabling
/// reliable detection of all 2- and 3-bit errors, while preserving
/// single-error correction" (detection-only mode).
#[test]
fn extended_hamming_detects_all_two_and_three_bit_errors() {
    let code = Hamming84::new();
    let analysis = CodeAnalysis::exhaustive(&code, DecodingPolicy::DetectOnly, 3);
    assert_eq!(analysis.per_weight[2].undetected, 0);
    assert_eq!(analysis.per_weight[3].undetected, 0);
    let hw = CodeAnalysis::exhaustive(&code, DecodingPolicy::HardwareDecoder, 1);
    assert_eq!(hw.per_weight[1].corrected, hw.per_weight[1].total);
}

/// Section II-C: "[Hamming(7,4)] can correctly identify 28 out of the 35
/// possible 3-bit error patterns, an 80 % detection rate."
#[test]
fn hamming74_three_bit_detection_rate_is_eighty_percent() {
    let row = table1_row(&Hamming74::new());
    assert!((row.weight3_detection_rate - 0.80).abs() < 1e-9);
}

/// Table I: minimum distances and the worst-case single-error correction of
/// all three codes; RM(1,3)'s best-case 2-bit correction.
#[test]
fn table1_capabilities() {
    let h74 = table1_row(&Hamming74::new());
    let h84 = table1_row(&Hamming84::new());
    let rm = table1_row(&Rm13::new());
    assert_eq!((h74.dmin, h84.dmin, rm.dmin), (3, 4, 4));
    assert_eq!(
        (h74.worst_corrected, h84.worst_corrected, rm.worst_corrected),
        (1, 1, 1)
    );
    assert_eq!(
        h74.worst_detected, 1,
        "Hamming(7,4) worst case: miscorrects 2-bit errors"
    );
    assert_eq!(
        rm.best_corrected, 2,
        "RM(1,3) best case corrects some 2-bit patterns"
    );
    assert_eq!(h84.best_corrected, 1);
}

/// Section III: the Hamming(8,4) encoder has logic depth two and needs two
/// DFFs on each of the four systematic outputs; message `1011` produces
/// codeword `01100110` (Fig. 3).
#[test]
fn section3_hamming84_circuit_claims() {
    let design = EncoderDesign::build(EncoderKind::Hamming84);
    assert_eq!(design.latency(), 2);
    assert_eq!(design.netlist().count_cells(CellKind::Dff), 8);
    let cw = design.encode_gate_level(&BitVec::from_str01("1011"));
    assert_eq!(cw.to_string01(), "01100110");
}

/// Section III: "in addition to, e.g., 10 SFQ splitters in the Hamming(8,4)
/// code encoder (Fig. 2), 13 more splitters are needed to form a clock
/// distribution network" — 23 splitters in total.
#[test]
fn hamming84_splitter_budget() {
    let design = EncoderDesign::build(EncoderKind::Hamming84);
    let total = design.netlist().count_cells(CellKind::Splitter);
    assert_eq!(total, 23);
    // 13 of them belong to the clock tree (14 clocked cells).
    let clocked =
        design.netlist().count_cells(CellKind::Xor) + design.netlist().count_cells(CellKind::Dff);
    assert_eq!(clocked, 14);
    assert_eq!(total - (clocked - 1), 10, "10 data splitters");
}

/// Table II: standard-cell counts, JJ counts, power, and area of the three
/// encoders.
#[test]
fn table2_is_reproduced_exactly() {
    let lib = CellLibrary::coldflux();
    let computed = table2_rows(&lib);
    for (ours, theirs) in computed.iter().zip(paper_table2()) {
        assert_eq!(ours.jj_count, theirs.jj_count, "{}", theirs.encoder);
        assert!(
            (ours.power_uw - theirs.power_uw).abs() < 0.05,
            "{}",
            theirs.encoder
        );
        assert!(
            (ours.area_mm2 - theirs.area_mm2).abs() < 0.0005,
            "{}",
            theirs.encoder
        );
        assert_eq!(
            (ours.xor_gates, ours.dffs, ours.splitters, ours.sfq_to_dc),
            (
                theirs.xor_gates,
                theirs.dffs,
                theirs.splitters,
                theirs.sfq_to_dc
            ),
            "{}",
            theirs.encoder
        );
    }
}

/// Section IV: "RM(1,3) code encoder has a larger number of JJs as compared
/// to the Hamming(8,4) code encoder", and Hamming(7,4) has the fewest JJs of
/// the three — the complexity-versus-size trade-off.
#[test]
fn section4_jj_count_ordering() {
    let lib = CellLibrary::coldflux();
    let jj = |kind: EncoderKind| EncoderDesign::build(kind).stats(&lib).cost.jj_count;
    let rm = jj(EncoderKind::Rm13);
    let h84 = jj(EncoderKind::Hamming84);
    let h74 = jj(EncoderKind::Hamming74);
    assert!(rm > h84 && h84 > h74);
    assert_eq!((rm, h84, h74), (305, 278, 247));
}

/// Beyond the paper: the grown catalog is no longer single-error-correcting.
/// Enumerated through `EncoderKind::catalog()` (so a new member can't be
/// silently skipped), every coded member corrects all single-bit errors, and
/// the BCH registry members go further — every one of the C(n,2) double-bit
/// error patterns is corrected back to the transmitted message for each
/// radius ≥ 2 member, which no d_min ≤ 4 paper code can do. (The exhaustive
/// and sampled *triple*-error sweeps of the radius-3 BCH(63,45) member live
/// in `tests/batch_equivalence.rs`.)
#[test]
fn catalog_has_outgrown_single_error_correction() {
    use sfq_ecc::ecc::BchSpec;
    let kinds = EncoderKind::catalog();
    for spec in BchSpec::REGISTRY {
        assert!(
            kinds.contains(&EncoderKind::Bch(spec)),
            "the catalog registry must include the {} member",
            spec.name()
        );
    }
    assert!(
        kinds.contains(&EncoderKind::Ldpc),
        "the catalog registry must include the iterative member"
    );
    for kind in kinds {
        let design = EncoderDesign::build(kind);
        if design.n() == design.k() {
            continue; // the uncoded baseline corrects nothing
        }
        let mask = if design.k() >= 64 {
            u64::MAX
        } else {
            (1u64 << design.k()) - 1
        };
        let msg = BitVec::from_u64(design.k(), 0xB5A3_C96D_0F1E_2D3C & mask);
        let cw = design.encode_reference(&msg);
        for pos in 0..design.n() {
            let mut received = cw.clone();
            received.flip(pos);
            assert!(
                design.decode(&received).message_is(&msg),
                "{}: single-bit error at {pos} must be corrected",
                kind.name()
            );
        }
        if let EncoderKind::Bch(spec) = kind {
            // …and every radius ≥ 2 registry member corrects all of its
            // C(n,2) double-bit patterns on top.
            assert!(spec.decode_radius >= 2, "{}", kind.name());
            let mut doubles = 0;
            for i in 0..design.n() {
                for j in (i + 1)..design.n() {
                    let mut received = cw.clone();
                    received.flip(i);
                    received.flip(j);
                    assert!(
                        design.decode(&received).message_is(&msg),
                        "{}: double error at ({i},{j}) must be corrected",
                        kind.name()
                    );
                    doubles += 1;
                }
            }
            assert_eq!(doubles, design.n() * (design.n() - 1) / 2);
        }
    }
}

/// The RM(1,3) and Hamming(8,4) codes have identical error-correcting power
/// as codes (same weight distribution); the paper's Fig. 5 difference between
/// them is therefore a *circuit-size* effect, not a coding-theory one.
#[test]
fn rm13_and_hamming84_have_identical_weight_distributions() {
    use sfq_ecc::ecc::weight::WeightDistribution;
    let a = WeightDistribution::of_code(&Rm13::new());
    let b = WeightDistribution::of_code(&Hamming84::new());
    assert_eq!(a.counts, b.counts);
}

/// Fig. 5, statistically honest: a reduced scalar run at the paper's 100
/// messages per chip, judged through Wilson confidence intervals derived
/// from the actual chip count rather than point values with hand-tuned
/// tolerances.
///
/// What the fault model actually commits to:
/// * the *calibration anchor* — the paper's 80.0 % zero-error probability for
///   the uncoded link — must fall inside the uncoded curve's 95 % interval;
/// * every encoder's coding gain over the uncoded link must be significant
///   (disjoint intervals), reproducing the paper's qualitative Fig. 5 claim;
/// * Hamming(8,4) must be significantly the best encoder, matching the
///   paper's headline ordering.
///
/// The paper's *absolute* encoder probabilities (86.7/89.8/92.7 %) are not
/// asserted: only the uncoded anchor is calibrated, and the model predicts
/// stronger coding gains than the paper measures.
#[test]
fn fig5_wilson_intervals_support_paper_anchor_and_ordering() {
    let library = CellLibrary::coldflux();
    let experiment = Fig5Experiment {
        chips: 400,
        messages_per_chip: 100,
        threads: 4,
        ..Fig5Experiment::paper_setup()
    };
    let result = experiment.run_all(&library);
    let ci = |kind: EncoderKind| result.curve(kind).unwrap().zero_error_wilson_interval(1.96);

    let paper_uncoded = paper_zero_error_probabilities()
        .into_iter()
        .find(|(kind, _)| *kind == EncoderKind::None)
        .map(|(_, p)| p)
        .unwrap();
    let none = ci(EncoderKind::None);
    assert!(
        none.0 <= paper_uncoded && paper_uncoded <= none.1,
        "paper's uncoded anchor {paper_uncoded} must lie in the Wilson interval {none:?}"
    );

    let h84 = ci(EncoderKind::Hamming84);
    let h74 = ci(EncoderKind::Hamming74);
    let rm = ci(EncoderKind::Rm13);
    for (name, coded) in [
        ("Hamming(8,4)", h84),
        ("Hamming(7,4)", h74),
        ("RM(1,3)", rm),
    ] {
        assert!(
            coded.0 > none.1,
            "{name} coding gain must be significant: {coded:?} vs uncoded {none:?}"
        );
    }
    assert!(
        h84.0 > h74.1 && h84.0 > rm.1,
        "Hamming(8,4) must be significantly the best (h84={h84:?}, h74={h74:?}, rm={rm:?})"
    );
}
