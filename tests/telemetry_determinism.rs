//! Telemetry never influences results: the same committed output
//! fingerprints must hold with instrumentation compiled in (the default
//! `telemetry` feature), compiled out (`--no-default-features` — CI runs
//! this suite under both legs), recording toggled off at runtime, and at
//! any worker-thread count. Metrics are write-only from the instrumented
//! code's point of view and no RNG stream passes through the telemetry
//! crate, so every assertion here is feature-independent by construction —
//! these tests exist to catch anyone accidentally breaking that contract.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfq_ecc::batch::BatchCodec;
use sfq_ecc::cells::CellLibrary;
use sfq_ecc::ecc::{BatchDecode, BatchEncode, BchSpec};
use sfq_ecc::encoders::{EncoderDesign, EncoderKind};
use sfq_ecc::gf2::{BitSlice64, BitVec};
use sfq_ecc::link::Fig5Experiment;

/// FNV-1a over a stream of `u64` words, used to pin outputs as committed
/// constants that both CI feature legs assert against.
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for word in words {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// The reduced Fig. 5 configuration every test in this file runs.
fn experiment(threads: usize) -> Fig5Experiment {
    Fig5Experiment {
        chips: 40,
        messages_per_chip: 50,
        threads,
        ..Fig5Experiment::paper_setup()
    }
}

fn fig5_error_fingerprint(threads: usize) -> u64 {
    let library = CellLibrary::coldflux();
    let design = EncoderDesign::build(EncoderKind::Hamming84);
    let curve = experiment(threads).run_design_batched(&design, &library);
    assert_eq!(curve.errors_per_chip.len(), 40);
    fnv1a(curve.errors_per_chip.iter().map(|&e| e as u64))
}

/// Committed fingerprint of the Fig. 5 per-chip error counts above. The
/// same value must come out of the default build and the
/// `--no-default-features` build; update it only when the simulation
/// itself (not telemetry) intentionally changes.
const FIG5_ERRORS_FNV: u64 = 0xf05e_74aa_1eda_9c25;

/// Committed fingerprint of the SEC-DED(72,64) batch-decode output below.
const SECDED_DECODE_FNV: u64 = 0x1cbf_80f6_f8ae_c63b;

fn secded_decode_fingerprint() -> u64 {
    let codec = BatchCodec::new(&sfq_ecc::ecc::SecDed::new(6));
    let mut rng = StdRng::seed_from_u64(0x00DE_7E81);
    let messages: Vec<BitVec> = (0..256)
        .map(|_| BitVec::from_u64(64, rng.random::<u64>()))
        .collect();
    let mut received = codec.encode_batch(&BitSlice64::pack(&messages));
    // A mix of clean lanes, single errors (correctable), and double errors
    // (detected), so the hash covers every decoder outcome path.
    for i in 0..256 {
        for flip in 0..(i % 3) {
            let pos = (i * 7 + flip * 31) % 72;
            received.set(i, pos, !received.get(i, pos));
        }
    }
    let decoded = codec.decode_batch(&received);
    let mut words: Vec<u64> = Vec::new();
    for j in 0..codec.k() {
        words.extend_from_slice(decoded.messages.lane(j));
    }
    words.extend_from_slice(&decoded.flagged);
    words.extend_from_slice(&decoded.corrected);
    fnv1a(words)
}

/// Committed fingerprint of the multi-error registry batch-decode output
/// below: all three BCH registry members plus LDPC(60,32), each decoding a
/// seeded corpus that mixes clean lanes with error weights 0–4 (covering
/// the correct, flag, and — for the radius-2 members at weight 4 —
/// miscorrect paths).
const REGISTRY_DECODE_FNV: u64 = 0x659d_be88_a366_4393;

fn registry_decode_fingerprint() -> u64 {
    let mut words: Vec<u64> = Vec::new();
    let mut rng = StdRng::seed_from_u64(0xBC4_1D9C);
    for codec in [
        BatchCodec::bch(),
        BatchCodec::bch_63_51(),
        BatchCodec::bch_63_45(),
        BatchCodec::ldpc(),
    ] {
        let (n, k) = (codec.n(), codec.k());
        let messages: Vec<BitVec> = (0..192)
            .map(|_| (0..k).map(|_| rng.random::<u64>() & 1 == 1).collect())
            .collect();
        let mut received = codec.encode_batch(&BitSlice64::pack(&messages));
        for i in 0..192 {
            for flip in 0..(i % 5) {
                let pos = (i * 11 + flip * 17) % n;
                received.set(i, pos, !received.get(i, pos));
            }
        }
        let decoded = codec.decode_batch(&received);
        for j in 0..k {
            words.extend_from_slice(decoded.messages.lane(j));
        }
        words.extend_from_slice(&decoded.flagged);
        words.extend_from_slice(&decoded.corrected);
    }
    fnv1a(words)
}

#[test]
fn registry_batch_decode_matches_the_committed_fingerprint() {
    assert_eq!(
        registry_decode_fingerprint(),
        REGISTRY_DECODE_FNV,
        "BCH registry / LDPC batch-decode output changed; if the decoder \
         change is intentional, update REGISTRY_DECODE_FNV (and never \
         because of telemetry)"
    );
}

/// The per-chip seeding contract extends to the multi-error members: the
/// batched Fig. 5 curves of the strongest BCH member and the iterative
/// LDPC member are bit-identical at every worker count.
#[test]
fn multi_error_fig5_outputs_are_identical_across_worker_counts() {
    let library = CellLibrary::coldflux();
    for kind in [EncoderKind::Bch(BchSpec::BCH_63_45), EncoderKind::Ldpc] {
        let design = EncoderDesign::build(kind);
        let fingerprint = |threads: usize| {
            let curve = Fig5Experiment {
                chips: 24,
                messages_per_chip: 30,
                threads,
                ..Fig5Experiment::multi_error_setup()
            }
            .run_design_batched(&design, &library);
            fnv1a(curve.errors_per_chip.iter().map(|&e| e as u64))
        };
        let serial = fingerprint(1);
        for threads in [2, 8] {
            assert_eq!(
                fingerprint(threads),
                serial,
                "{}: {threads}-worker run diverged from the serial run",
                design.name()
            );
        }
    }
}

#[test]
fn fig5_outputs_match_the_committed_fingerprint() {
    assert_eq!(
        fig5_error_fingerprint(1),
        FIG5_ERRORS_FNV,
        "Fig. 5 per-chip error counts changed; if the simulation change is \
         intentional, update FIG5_ERRORS_FNV (and never because of telemetry)"
    );
}

#[test]
fn fig5_outputs_are_identical_across_worker_counts() {
    let serial = fig5_error_fingerprint(1);
    for threads in [2, 8] {
        assert_eq!(
            fig5_error_fingerprint(threads),
            serial,
            "{threads}-worker run diverged from the serial run"
        );
    }
}

#[test]
fn batch_decode_matches_the_committed_fingerprint() {
    assert_eq!(
        secded_decode_fingerprint(),
        SECDED_DECODE_FNV,
        "SEC-DED(72,64) batch-decode output changed; if the decoder change \
         is intentional, update SECDED_DECODE_FNV"
    );
}

#[test]
fn runtime_recording_toggle_never_changes_outputs() {
    // Meaningful in the default build (recording flips real atomics) and
    // trivially true in the --no-default-features build (set_recording is
    // a no-op); asserted under both so the contract is load-bearing.
    let on = {
        sfq_ecc::telemetry::set_recording(true);
        (fig5_error_fingerprint(1), secded_decode_fingerprint())
    };
    let off = {
        sfq_ecc::telemetry::set_recording(false);
        let r = (fig5_error_fingerprint(1), secded_decode_fingerprint());
        sfq_ecc::telemetry::set_recording(true);
        r
    };
    assert_eq!(on, off);
}

#[test]
fn parallelism_report_reflects_the_worker_layout_without_affecting_results() {
    let library = CellLibrary::coldflux();
    let design = EncoderDesign::build(EncoderKind::Hamming84);
    let curve = experiment(4).run_design_batched(&design, &library);
    // 40 chips over 4 workers: ceil(40/4) = 10 chips each.
    assert_eq!(curve.parallelism.threads, 4);
    assert_eq!(curve.parallelism.chips_per_worker, vec![10, 10, 10, 10]);
    assert_eq!(
        fnv1a(curve.errors_per_chip.iter().map(|&e| e as u64)),
        FIG5_ERRORS_FNV,
        "the layout report must never perturb the simulation"
    );
}
