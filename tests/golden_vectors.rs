//! Golden-vector regression tests: checked-in encode/syndrome vectors for
//! every catalog code under `tests/golden/`, so that any change to a
//! generator matrix, bit ordering, or syndrome layout fails loudly instead
//! of silently re-deriving both sides of an equivalence check.
//!
//! Each code's file is a line-oriented record set (written by
//! [`GoldenFile::render`], which doubles as the serializer — the workspace's
//! offline `serde` shim is marker-only, so the format is implemented here
//! and the record types carry the derives for the day the real crate is
//! swapped back in):
//!
//! ```text
//! code <name> n <n> k <k>
//! msg <k bits> cw <n bits>            # seeded-StdRng messages
//! syn pos <p> <n-k bits>              # syndrome of cw0 + e_p, every p
//! ```
//!
//! Regenerate after an *intentional* layout change with:
//!
//! ```text
//! cargo test --test golden_vectors -- --ignored regenerate_golden_files
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sfq_ecc::cells::CellLibrary;
use sfq_ecc::ecc::{
    Bch, BchSpec, BlockCode, Hamming74, Hamming84, HardDecoder, Ldpc, Rm13, SecDed,
    ShortenedHamming, Uncoded,
};
use sfq_ecc::gf2::BitVec;
use std::path::PathBuf;

/// One catalog code's golden data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct GoldenFile {
    name: String,
    n: usize,
    k: usize,
    /// `(message, codeword)` pairs.
    encodings: Vec<(BitVec, BitVec)>,
    /// `(error position, syndrome)` for single-bit corruptions of the first
    /// codeword.
    syndromes: Vec<(usize, BitVec)>,
}

impl GoldenFile {
    fn compute<C: BlockCode + HardDecoder + ?Sized>(code: &C, slug_seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(slug_seed);
        let encodings: Vec<(BitVec, BitVec)> = (0..8)
            .map(|_| {
                let msg = BitVec::from_u64(code.k(), rng.random::<u64>() & mask_of(code.k()));
                let cw = code.encode(&msg);
                (msg, cw)
            })
            .collect();
        let cw0 = &encodings[0].1;
        let syndromes = (0..code.n())
            .map(|pos| {
                let mut r = cw0.clone();
                r.flip(pos);
                (pos, code.syndrome(&r))
            })
            .collect();
        GoldenFile {
            name: code.name().to_string(),
            n: code.n(),
            k: code.k(),
            encodings,
            syndromes,
        }
    }

    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("code {} n {} k {}\n", self.name, self.n, self.k));
        for (msg, cw) in &self.encodings {
            out.push_str(&format!(
                "msg {} cw {}\n",
                msg.to_string01(),
                cw.to_string01()
            ));
        }
        for (pos, syndrome) in &self.syndromes {
            out.push_str(&format!("syn pos {pos} {}\n", syndrome.to_string01()));
        }
        out
    }
}

/// Mask of the low `k` bits.
fn mask_of(k: usize) -> u64 {
    if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// Every catalog code with its golden-file slug, scalar decoder, and golden
/// data. Driven by `EncoderKind::catalog()` with an exhaustive match per
/// member, so a newly added catalog code fails to compile here instead of
/// shipping without golden vectors.
fn golden_cases() -> Vec<(String, Box<dyn HardDecoder>, GoldenFile)> {
    use sfq_ecc::encoders::EncoderKind;
    EncoderKind::catalog()
        .into_iter()
        .map(|kind| -> (String, Box<dyn HardDecoder>, u64) {
            match kind {
                EncoderKind::None => ("uncoded_4".into(), Box::new(Uncoded::new(4)), 0x04),
                EncoderKind::Hamming74 => ("hamming_7_4".into(), Box::new(Hamming74::new()), 0x74),
                EncoderKind::Hamming84 => ("hamming_8_4".into(), Box::new(Hamming84::new()), 0x84),
                EncoderKind::Rm13 => ("rm_1_3".into(), Box::new(Rm13::new()), 0x13),
                EncoderKind::SecDed(m) => {
                    let (k, seed) = match m {
                        3 => (8, 0x1308),
                        4 => (16, 0x2216),
                        5 => (32, 0x3932),
                        6 => (64, 0x7264),
                        _ => panic!("SEC-DED(m={m}) needs a golden slug and seed"),
                    };
                    let n = k + usize::from(m) + 2;
                    (
                        format!("secded_{n}_{k}"),
                        Box::new(SecDed::new(usize::from(m))),
                        seed,
                    )
                }
                EncoderKind::WideHamming8564 => (
                    "shamming_85_64".into(),
                    Box::new(ShortenedHamming::wide_85_64()),
                    0x8564,
                ),
                EncoderKind::Bch(spec) => {
                    let (n, k) = spec.dimensions();
                    // BCH(31,16) keeps its historical seed so its vectors
                    // stay byte-identical across the registry refactor.
                    let seed = match spec {
                        BchSpec::BCH_31_16 => 0x3116,
                        _ => 0xBC_0000 | ((n as u64) << 8) | k as u64,
                    };
                    (format!("bch_{n}_{k}"), Box::new(Bch::from_spec(spec)), seed)
                }
                EncoderKind::Ldpc => (
                    "ldpc_60_32".into(),
                    Box::new(Ldpc::gallager_60_32()),
                    0x6032,
                ),
            }
        })
        .map(|(slug, code, seed)| {
            let golden = GoldenFile::compute(&*code, seed);
            (slug, code, golden)
        })
        .collect()
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Renders the synthesized-netlist cost fingerprint of every coded catalog
/// member: one line per design with the optimized cell counts, JJ total,
/// logic depth, and the naive-flow XOR/JJ baseline. Checked in under
/// `tests/golden/` so a pass-pipeline change that silently regresses circuit
/// cost fails like a codec regression would.
fn render_cost_fingerprints() -> String {
    use sfq_ecc::encoders::{table2_row_for, EncoderDesign};
    use sfq_ecc::netlist::NetlistStats;
    let lib = CellLibrary::coldflux();
    let mut out = String::from(
        "# synthesized-netlist cost fingerprints (regenerate with \
         `cargo test --test golden_vectors -- --ignored regenerate_golden_files`)\n",
    );
    for design in EncoderDesign::build_catalog() {
        let Some(naive) = design.naive_netlist() else {
            continue; // the uncoded baseline has no encoder logic to cost
        };
        let row = table2_row_for(&design, &lib).with_naive(&NetlistStats::compute(&naive, &lib));
        out.push_str(&format!(
            "design {} xor {} dff {} spl {} sfqdc {} jj {} depth {} naive_xor {} naive_jj {}\n",
            row.encoder.replace(' ', "_"),
            row.xor_gates,
            row.dffs,
            row.splitters,
            row.sfq_to_dc,
            row.jj_count,
            design.netlist().logic_depth(),
            row.naive_xor_gates
                .expect("with_naive populates the column"),
            row.naive_jj_count.expect("with_naive populates the column"),
        ));
    }
    out
}

const COST_FINGERPRINT_FILE: &str = "circuit_costs.txt";

/// Slack range of the golden Pareto sweep (0, 1, 2 — three points per code).
const PARETO_MAX_SLACK: usize = 2;

/// Renders the latency/area Pareto fingerprint of every coded catalog
/// member: one line per `depth_slack` point with the planner's chosen
/// schedule, exact planned cell counts, JJ price under the ColdFlux
/// library, and whether the point is on the Pareto front. Checked in under
/// `tests/golden/` so a planner or factoring change that silently moves any
/// sweep point fails like a codec regression.
fn render_pareto_fingerprints() -> String {
    use sfq_ecc::cells::CellLibrary;
    use sfq_ecc::encoders::EncoderKind;
    let lib = CellLibrary::coldflux();
    let mut out = String::from(
        "# latency/area pareto fingerprints (regenerate with \
         `cargo test --test golden_vectors -- --ignored regenerate_golden_files`)\n",
    );
    for kind in EncoderKind::catalog() {
        for point in kind.pareto_sweep(&lib, PARETO_MAX_SLACK) {
            out.push_str(&format!(
                "design {} slack {} sched {} depth {} xor {} dff {} spl {} sfqdc {} jj {} front {}\n",
                kind.name().replace(' ', "_"),
                point.depth_slack,
                point.schedule.label(),
                point.planned.depth,
                point.planned.xor,
                point.planned.dff,
                point.planned.splitter,
                point.planned.sfq_to_dc,
                point.jj,
                u8::from(point.on_front),
            ));
        }
    }
    out
}

const PARETO_FINGERPRINT_FILE: &str = "pareto_front.txt";

#[test]
fn golden_pareto_fingerprints_match_checked_in_file() {
    let path = golden_dir().join(PARETO_FINGERPRINT_FILE);
    let checked_in = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             `cargo test --test golden_vectors -- --ignored regenerate_golden_files`",
            path.display()
        )
    });
    assert_eq!(
        checked_in,
        render_pareto_fingerprints(),
        "the latency/area Pareto sweep changed. If the planner/factoring \
         change is intentional, regenerate tests/golden/ and review the \
         sweep diff like a codec diff."
    );
}

#[test]
fn golden_cost_fingerprints_match_checked_in_file() {
    let path = golden_dir().join(COST_FINGERPRINT_FILE);
    let checked_in = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             `cargo test --test golden_vectors -- --ignored regenerate_golden_files`",
            path.display()
        )
    });
    assert_eq!(
        checked_in,
        render_cost_fingerprints(),
        "synthesized circuit costs changed. If the pass-pipeline change is \
         intentional, regenerate tests/golden/ and review the cost diff like \
         a codec diff."
    );
}

#[test]
fn golden_vectors_match_checked_in_files() {
    for (slug, _, computed) in golden_cases() {
        let path = golden_dir().join(format!("{slug}.txt"));
        let checked_in = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); regenerate with \
                 `cargo test --test golden_vectors -- --ignored regenerate_golden_files`",
                path.display()
            )
        });
        assert_eq!(
            checked_in,
            computed.render(),
            "{slug}: encode/syndrome bit layout changed. If intentional, \
             regenerate tests/golden/ with \
             `cargo test --test golden_vectors -- --ignored regenerate_golden_files` \
             and review the diff."
        );
    }
}

/// The golden corpus itself must be self-consistent: each stored codeword
/// decodes cleanly back to its stored message with the *current* decoders.
#[test]
fn golden_codewords_decode_to_their_messages() {
    assert_eq!(
        golden_cases().len(),
        sfq_ecc::encoders::EncoderKind::catalog().len(),
        "every catalog code carries golden vectors"
    );
    for (slug, code, golden) in golden_cases() {
        assert_eq!(golden.encodings.len(), 8, "{slug}");
        for (msg, cw) in &golden.encodings {
            assert_eq!(msg.len(), golden.k, "{slug}");
            assert_eq!(cw.len(), golden.n, "{slug}");
            let decoded = code.decode(cw);
            assert!(
                !decoded.outcome.error_flag() && !decoded.outcome.corrected(),
                "{slug}: stored codeword must decode cleanly, got {:?}",
                decoded.outcome
            );
            assert_eq!(
                decoded.message.as_ref(),
                Some(msg),
                "{slug}: decoder no longer recovers the stored message"
            );
        }
        assert_eq!(golden.syndromes.len(), golden.n, "{slug}");
        // Zero-syndrome sanity: the stored syndromes of single-bit errors are
        // nonzero for every code with parity (n > k).
        if golden.n > golden.k {
            for (pos, syndrome) in &golden.syndromes {
                assert!(!syndrome.is_zero(), "{slug}: position {pos}");
            }
        }
    }
}

/// Round trip between the regenerator and the checked-in directory: the set
/// of files under `tests/golden/` is exactly the set the regenerator would
/// write — a case added without regenerating, or a file orphaned by a
/// removed case, fails here instead of silently going stale.
#[test]
fn golden_directory_round_trips_with_the_regenerator() {
    let mut expected: Vec<String> = golden_cases()
        .iter()
        .map(|(slug, _, _)| format!("{slug}.txt"))
        .collect();
    expected.push(COST_FINGERPRINT_FILE.to_string());
    expected.push(PARETO_FINGERPRINT_FILE.to_string());
    expected.sort();

    let mut on_disk: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("tests/golden exists")
        .map(|entry| {
            entry
                .expect("readable entry")
                .file_name()
                .into_string()
                .unwrap()
        })
        .collect();
    on_disk.sort();

    assert_eq!(
        on_disk, expected,
        "tests/golden/ is out of sync with golden_cases(); regenerate with \
         `cargo test --test golden_vectors -- --ignored regenerate_golden_files` \
         and delete any orphaned files"
    );
}

#[test]
#[ignore = "writes tests/golden/; run explicitly after intentional layout changes"]
fn regenerate_golden_files() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    for (slug, _, computed) in golden_cases() {
        let path = dir.join(format!("{slug}.txt"));
        std::fs::write(&path, computed.render()).expect("write golden file");
        println!("wrote {}", path.display());
    }
    let path = dir.join(COST_FINGERPRINT_FILE);
    std::fs::write(&path, render_cost_fingerprints()).expect("write cost fingerprints");
    println!("wrote {}", path.display());
    let path = dir.join(PARETO_FINGERPRINT_FILE);
    std::fs::write(&path, render_pareto_fingerprints()).expect("write pareto fingerprints");
    println!("wrote {}", path.display());
}
