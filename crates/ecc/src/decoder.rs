//! Common decoder output types shared by every code in this crate.

use gf2::BitVec;
use serde::{Deserialize, Serialize};

/// Classification of a single decoding attempt.
///
/// The categories follow the terminology used in Section II-C of the paper
/// when comparing the "worst case" and "best case" behaviour of each code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeOutcome {
    /// The received word was already a codeword; no correction applied.
    ///
    /// Note that this does *not* imply the transmission was error free: an
    /// error pattern equal to a nonzero codeword is invisible to the decoder.
    NoErrorDetected,
    /// The decoder corrected one or more bits and produced a codeword.
    Corrected {
        /// Number of bit positions the decoder flipped.
        bits_flipped: usize,
    },
    /// The decoder established that errors are present but could not correct
    /// them (e.g. a double error under an extended-Hamming decoder). The
    /// error flag of Fig. 1 is raised.
    DetectedUncorrectable,
}

impl DecodeOutcome {
    /// Returns `true` if the decoder raised the error flag (detected but did
    /// not correct).
    #[must_use]
    pub fn error_flag(&self) -> bool {
        matches!(self, DecodeOutcome::DetectedUncorrectable)
    }

    /// Returns `true` if the decoder performed a correction.
    #[must_use]
    pub fn corrected(&self) -> bool {
        matches!(self, DecodeOutcome::Corrected { .. })
    }
}

/// How a hard decoder's decision depends on the syndrome — the contract that
/// lets batch engines compile the decoder into lane operations without
/// enumerating the `2^(n-k)` syndrome space.
///
/// Every decoder in this crate is *coset-invariant* (the correction depends
/// only on the syndrome); this enum refines that with the shape of the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyndromeClass {
    /// Textbook single-error syndrome decoding with detection fallback:
    ///
    /// * zero syndrome → accept the word;
    /// * syndrome equal to column `j` of the parity-check matrix → flip
    ///   position `j`;
    /// * any other syndrome → [`DecodeOutcome::DetectedUncorrectable`].
    ///
    /// Batch engines exploit this to match syndromes against the `n` columns
    /// of `H` directly (`O(n · (n-k))` bit-ops per limb), with construction
    /// cost independent of `2^(n-k)` — this is what admits codes with large
    /// redundancy. For perfect codes the fallback arm is simply unreachable.
    ColumnFlip,
    /// Multi-error algebraic decoding (e.g. BCH): the correction is computed
    /// from an error-locator polynomial (Berlekamp–Massey + Chien search)
    /// rather than looked up per column, and the set of correctable syndromes
    /// is far too large to tabulate (`Σ C(n,i)` for `i ≤ t`).
    ///
    /// Batch engines handle this class by accumulating the syndrome
    /// bit-slices per limb exactly as for [`SyndromeClass::ColumnFlip`]
    /// (keeping the clean-limb short-circuit), then falling back to the
    /// scalar decoder on the rare *dirty* lanes only — the expected cost per
    /// limb stays near the all-clean XOR cost in Monte-Carlo traffic.
    Algebraic,
    /// Iterative message-passing decoding (e.g. LDPC bit flipping): the
    /// correction emerges from repeated whole-word check/flip rounds, not
    /// from a per-syndrome lookup or a locator polynomial. Batch engines run
    /// the *same synchronous schedule bit-sliced* — each round is whole-limb
    /// AND/XOR/majority work shared by 64 lanes — so even all-dirty limbs
    /// never leave the sliced domain (see `ecc::IterativeDecode`).
    Iterative,
    /// Any other coset-invariant map (e.g. majority-vote repetition decoding,
    /// whose corrections flip several bits at once). Batch engines must
    /// interrogate the decoder once per syndrome value, which is only
    /// tractable for small `n - k`.
    General,
}

impl SyndromeClass {
    /// Whether a batch engine may compile this decoder into a
    /// *direct-dispatch* kernel for the given redundancy `r = n − k`:
    /// syndrome bytes index a `2^r`-entry action table directly instead of
    /// walking matcher entries.
    ///
    /// Eligible when the full syndrome→action map is tabulated at
    /// construction — [`SyndromeClass::ColumnFlip`] and
    /// [`SyndromeClass::General`] with `r ≤ 8` (so the table has at most 256
    /// entries and a syndrome fits one byte). [`SyndromeClass::Algebraic`]
    /// and [`SyndromeClass::Iterative`] decoders compute corrections instead
    /// of looking them up, so they are never eligible regardless of `r`.
    #[must_use]
    pub fn direct_dispatch_eligible(self, redundancy: usize) -> bool {
        match self {
            SyndromeClass::ColumnFlip | SyndromeClass::General => redundancy <= 8,
            SyndromeClass::Algebraic | SyndromeClass::Iterative => false,
        }
    }
}

/// Result of decoding one received word.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decoded {
    /// The decoder's estimate of the transmitted codeword, when it produced
    /// one. `None` when the outcome is [`DecodeOutcome::DetectedUncorrectable`].
    pub codeword: Option<BitVec>,
    /// The decoder's estimate of the transmitted message, when available.
    pub message: Option<BitVec>,
    /// What the decoder concluded about the received word.
    pub outcome: DecodeOutcome,
}

impl Decoded {
    /// Constructs a result for a received word accepted as a codeword.
    #[must_use]
    pub fn clean(codeword: BitVec, message: BitVec) -> Self {
        Decoded {
            codeword: Some(codeword),
            message: Some(message),
            outcome: DecodeOutcome::NoErrorDetected,
        }
    }

    /// Constructs a result for a corrected word.
    #[must_use]
    pub fn corrected(codeword: BitVec, message: BitVec, bits_flipped: usize) -> Self {
        Decoded {
            codeword: Some(codeword),
            message: Some(message),
            outcome: DecodeOutcome::Corrected { bits_flipped },
        }
    }

    /// Constructs a result for a detected-but-uncorrectable word.
    #[must_use]
    pub fn detected() -> Self {
        Decoded {
            codeword: None,
            message: None,
            outcome: DecodeOutcome::DetectedUncorrectable,
        }
    }

    /// Returns `true` if the decoded message equals `expected`.
    ///
    /// A detected-uncorrectable outcome returns `false`.
    #[must_use]
    pub fn message_is(&self, expected: &BitVec) -> bool {
        self.message.as_ref() == Some(expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_flags() {
        assert!(!DecodeOutcome::NoErrorDetected.error_flag());
        assert!(!DecodeOutcome::NoErrorDetected.corrected());
        assert!(DecodeOutcome::Corrected { bits_flipped: 1 }.corrected());
        assert!(!DecodeOutcome::Corrected { bits_flipped: 1 }.error_flag());
        assert!(DecodeOutcome::DetectedUncorrectable.error_flag());
    }

    #[test]
    fn constructors_populate_fields() {
        let cw = BitVec::from_str01("01100110");
        let msg = BitVec::from_str01("1011");
        let d = Decoded::clean(cw.clone(), msg.clone());
        assert!(d.message_is(&msg));
        assert_eq!(d.codeword.as_ref().unwrap(), &cw);

        let c = Decoded::corrected(cw, msg.clone(), 1);
        assert_eq!(c.outcome, DecodeOutcome::Corrected { bits_flipped: 1 });
        assert!(c.message_is(&msg));

        let det = Decoded::detected();
        assert!(det.message.is_none());
        assert!(!det.message_is(&msg));
        assert!(det.outcome.error_flag());
    }
}
