//! Lightweight error-correction codes for short blocklengths.
//!
//! This crate implements the coding-theory layer of the paper *"Lightweight
//! Error-Correction Code Encoders in Superconducting Electronic Systems"*
//! (SOCC 2025): the Hamming(7,4) code, the extended Hamming(8,4) code, the
//! first-order Reed–Muller RM(1,3) code, the general Hamming and RM(1,m)
//! families they belong to, and the (38,32) linear block code used by the
//! prior-art SFQ encoder the paper compares against.
//!
//! Besides encoding and decoding, the crate provides the *exhaustive
//! error-pattern analysis* that generates Table I of the paper: for every
//! code and every error weight it classifies each error pattern as corrected,
//! detected, miscorrected, or undetected, under both a correction-oriented
//! ("worst case") and a detection-oriented ("best case") decoding policy.
//!
//! # Quick start
//!
//! ```
//! use ecc::codes::hamming::Hamming84;
//! use ecc::{BlockCode, HardDecoder};
//! use gf2::BitVec;
//!
//! let code = Hamming84::new();
//! // The stimulus used in Fig. 3 of the paper: message 1011 -> codeword 01100110.
//! let msg = BitVec::from_str01("1011");
//! let cw = code.encode(&msg);
//! assert_eq!(cw.to_string01(), "01100110");
//!
//! // A single bit error anywhere is corrected.
//! let mut received = cw.clone();
//! received.flip(5);
//! let decoded = code.decode(&received);
//! assert_eq!(decoded.message.unwrap(), msg);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebraic;
pub mod analysis;
pub mod batch;
pub mod codes;
pub mod decoder;
pub mod iterative;
pub mod weight;

pub use algebraic::{AlgebraicAction, AlgebraicDecode, SlicedSyndromePlan};
pub use analysis::{CodeAnalysis, DecodingPolicy, ErrorPatternStats};
pub use batch::{BatchDecode, BatchDecoded, BatchEncode, BatchScratch};
pub use codes::bch::{Bch, BchSpec};
pub use codes::hamming::ShortenedHamming;
pub use codes::hamming::{Hamming74, Hamming84, HammingCode, ShortenedHamming3832};
pub use codes::ldpc::Ldpc;
pub use codes::reed_muller::{ReedMuller, Rm13};
pub use codes::repetition::Repetition;
pub use codes::sec_ded::{SecDed, SECDED_MAX_M, SECDED_MIN_M};
pub use codes::uncoded::Uncoded;
pub use decoder::{DecodeOutcome, Decoded, SyndromeClass};
pub use iterative::{BitFlipPlan, IterativeDecode};

use gf2::{BitMat, BitVec};

/// A binary linear block code of length `n` and dimension `k`.
///
/// Implementations expose the generator matrix `G` (k × n) and parity-check
/// matrix `H` ((n−k) × n). Encoding is `codeword = message · G (mod 2)`,
/// exactly Eq. (2) of the paper.
pub trait BlockCode {
    /// Human-readable name of the code, e.g. `"Hamming(8,4)"`.
    fn name(&self) -> &str;

    /// Codeword length `n` in bits.
    fn n(&self) -> usize;

    /// Message length `k` in bits.
    fn k(&self) -> usize;

    /// The k × n generator matrix.
    fn generator(&self) -> &BitMat;

    /// The (n−k) × n parity-check matrix.
    fn parity_check(&self) -> &BitMat;

    /// Encodes a `k`-bit message into an `n`-bit codeword.
    ///
    /// # Panics
    /// Panics if `message.len() != self.k()`.
    fn encode(&self, message: &BitVec) -> BitVec {
        assert_eq!(message.len(), self.k(), "message length must equal k");
        self.generator().left_mul_vec(message)
    }

    /// Computes the syndrome `H · rᵀ` of a received word.
    ///
    /// # Panics
    /// Panics if `received.len() != self.n()`.
    fn syndrome(&self, received: &BitVec) -> BitVec {
        assert_eq!(received.len(), self.n(), "received length must equal n");
        self.parity_check().mul_vec(received)
    }

    /// Returns `true` if `word` is a codeword (zero syndrome).
    fn is_codeword(&self, word: &BitVec) -> bool {
        self.syndrome(word).is_zero()
    }

    /// The minimum Hamming distance of the code, computed by exhaustive
    /// enumeration of the 2^k − 1 nonzero codewords.
    fn min_distance(&self) -> usize {
        let k = self.k();
        assert!(
            k <= 24,
            "exhaustive min-distance only supported for k <= 24"
        );
        (1u64..(1 << k))
            .map(|m| self.encode(&BitVec::from_u64(k, m)).weight())
            .min()
            .unwrap_or(0)
    }

    /// Enumerates every codeword (message, codeword) pair.
    ///
    /// Only intended for short codes (`k ≤ 24`).
    fn codebook(&self) -> Vec<(BitVec, BitVec)> {
        let k = self.k();
        assert!(k <= 24, "codebook enumeration only supported for k <= 24");
        (0u64..(1 << k))
            .map(|m| {
                let msg = BitVec::from_u64(k, m);
                let cw = self.encode(&msg);
                (msg, cw)
            })
            .collect()
    }

    /// Recovers the message from a *codeword* (not an arbitrary word).
    ///
    /// The default implementation solves `m · G = c` by Gaussian elimination
    /// — `O(k·n)` bit-row operations, valid for any `k` — via
    /// [`generator_right_inverse`]; systematic codes override this with
    /// direct bit extraction.
    ///
    /// Returns `None` if `codeword` is not in the code.
    fn message_of(&self, codeword: &BitVec) -> Option<BitVec> {
        if !self.is_codeword(codeword) {
            return None;
        }
        let (pivots, transform) = generator_right_inverse(self.generator());
        let k = self.k();
        let mut message = BitVec::zeros(k);
        for (i, &p) in pivots.iter().enumerate() {
            if codeword.get(p) {
                message.xor_assign(transform.row(i));
            }
        }
        Some(message)
    }

    /// Code rate `k / n`.
    fn rate(&self) -> f64 {
        self.k() as f64 / self.n() as f64
    }
}

/// Hard-decision decoding of a received `n`-bit word.
pub trait HardDecoder: BlockCode {
    /// Decodes a hard-decision received word.
    ///
    /// # Panics
    /// Panics if `received.len() != self.n()`.
    fn decode(&self, received: &BitVec) -> Decoded;

    /// The shape of this decoder's syndrome → action map (see
    /// [`SyndromeClass`]). The conservative default is
    /// [`SyndromeClass::General`]; decoders that implement textbook
    /// single-error correction with detection fallback should override this
    /// to [`SyndromeClass::ColumnFlip`] so batch engines can compile them
    /// without enumerating the syndrome space. Batch/scalar equivalence is
    /// enforced by the workspace's exhaustive tests, and batch construction
    /// re-verifies the column arm with one scalar probe per position.
    fn syndrome_class(&self) -> SyndromeClass {
        SyndromeClass::General
    }

    /// Best-effort decoding: like [`HardDecoder::decode`] but ambiguous
    /// received words are resolved with a deterministic tie-break instead of
    /// being flagged as uncorrectable.
    ///
    /// Codes whose decoder never flags ambiguity (e.g. the perfect
    /// Hamming(7,4) code) behave identically under both methods. The RM(1,3)
    /// decoder overrides this to resolve Hadamard-spectrum ties, which is
    /// what lets it correct certain 2-bit error patterns (the "best case"
    /// column of Table I of the paper).
    fn decode_best_effort(&self, received: &BitVec) -> Decoded {
        self.decode(received)
    }
}

/// Soft-decision decoding from per-bit log-likelihood ratios.
///
/// Positive LLR means "bit is more likely 0" (the convention used by the
/// receiver model in the `cryolink` crate).
pub trait SoftDecoder: BlockCode {
    /// Decodes a soft-decision received word given per-bit LLRs.
    ///
    /// # Panics
    /// Panics if `llrs.len() != self.n()`.
    fn decode_soft(&self, llrs: &[f64]) -> Decoded;
}

/// Solves the encoding map for inversion: returns `(pivots, transform)` such
/// that for any codeword `c`, the message is recovered as
/// `m = Σ_{i : c[pivots[i]] = 1} transform.row(i)`.
///
/// Derivation: row-reducing the augmented matrix `[G | I_k]` yields
/// `[R | T]` with `R = T · G` in reduced row-echelon form. Because `G` has
/// full row rank `k`, all `k` pivots land in the first `n` columns. `R`'s
/// rows are a basis of the code with `R[i][pivots[j]] = δ_ij`, so any
/// codeword satisfies `c = Σ_i c[pivots[i]] · R.row(i)` and therefore
/// `m = Σ_i c[pivots[i]] · T.row(i)`.
///
/// This is also the construction behind the batch codec's message-extraction
/// lanes (`sfq-batch`).
///
/// # Panics
/// Panics if `g` does not have full row rank.
#[must_use]
pub fn generator_right_inverse(g: &BitMat) -> (Vec<usize>, BitMat) {
    let (k, n) = (g.rows(), g.cols());
    let augmented = g.hconcat(&BitMat::identity(k));
    let (reduced, pivots) = augmented.rref();
    assert_eq!(pivots.len(), k, "generator matrix must have full row rank");
    assert!(
        pivots.iter().all(|&p| p < n),
        "generator matrix must have full row rank within its own columns"
    );
    let transform = BitMat::from_rows(
        (0..k)
            .map(|i| (0..k).map(|j| reduced.get(i, n + j)).collect())
            .collect(),
    );
    (pivots, transform)
}

/// Validates that `g` and `h` describe the same code: `G · Hᵀ = 0` and the
/// ranks are `k` and `n − k` respectively.
///
/// Used by the constructors of every concrete code in this crate as an
/// internal consistency check.
///
/// # Panics
/// Panics if the matrices are inconsistent.
pub fn validate_code_matrices(g: &BitMat, h: &BitMat) {
    let n = g.cols();
    let k = g.rows();
    assert_eq!(h.cols(), n, "G and H must have the same number of columns");
    assert_eq!(h.rows(), n - k, "H must have n-k rows");
    assert_eq!(g.rank(), k, "G must have full row rank");
    assert_eq!(h.rank(), n - k, "H must have full row rank");
    let prod = g.mul(&h.transpose());
    assert!(prod.is_zero(), "G * H^T must be zero");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::hamming::{Hamming74, Hamming84};
    use crate::codes::reed_muller::Rm13;

    #[test]
    fn paper_codes_have_expected_parameters() {
        let h74 = Hamming74::new();
        assert_eq!((h74.n(), h74.k(), h74.min_distance()), (7, 4, 3));
        let h84 = Hamming84::new();
        assert_eq!((h84.n(), h84.k(), h84.min_distance()), (8, 4, 4));
        let rm = Rm13::new();
        assert_eq!((rm.n(), rm.k(), rm.min_distance()), (8, 4, 4));
    }

    #[test]
    fn rate_matches_k_over_n() {
        let h84 = Hamming84::new();
        assert!((h84.rate() - 0.5).abs() < 1e-12);
        let h74 = Hamming74::new();
        assert!((h74.rate() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn codebook_size_is_two_to_k() {
        let h74 = Hamming74::new();
        let cb = h74.codebook();
        assert_eq!(cb.len(), 16);
        // All codewords distinct.
        let mut words: Vec<u64> = cb.iter().map(|(_, c)| c.to_u64()).collect();
        words.sort_unstable();
        words.dedup();
        assert_eq!(words.len(), 16);
    }

    #[test]
    fn message_of_inverts_encode() {
        let h84 = Hamming84::new();
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            let cw = h84.encode(&msg);
            assert_eq!(h84.message_of(&cw), Some(msg));
        }
        // Non-codeword returns None.
        let mut bad = h84.encode(&BitVec::from_u64(4, 5));
        bad.flip(0);
        assert_eq!(h84.message_of(&bad), None);
    }

    #[test]
    fn validate_code_matrices_accepts_consistent_codes() {
        let h84 = Hamming84::new();
        validate_code_matrices(h84.generator(), h84.parity_check());
    }

    #[test]
    fn generator_right_inverse_recovers_messages() {
        for g in [
            Hamming84::new().generator().clone(),
            Hamming74::new().generator().clone(),
            Rm13::new().generator().clone(),
        ] {
            let (pivots, transform) = generator_right_inverse(&g);
            assert_eq!(pivots.len(), g.rows());
            for m in 0u64..(1 << g.rows()) {
                let msg = BitVec::from_u64(g.rows(), m);
                let cw = g.left_mul_vec(&msg);
                let mut recovered = BitVec::zeros(g.rows());
                for (i, &p) in pivots.iter().enumerate() {
                    if cw.get(p) {
                        recovered.xor_assign(transform.row(i));
                    }
                }
                assert_eq!(recovered, msg);
            }
        }
    }

    #[test]
    fn default_message_of_handles_k_32_without_brute_force() {
        // A wrapper that hides the systematic override of the (38,32) code so
        // the trait's default Gaussian-elimination path is exercised at a
        // dimension (2^32 messages) the old brute-force search could never
        // enumerate.
        struct Opaque(crate::ShortenedHamming3832);
        impl BlockCode for Opaque {
            fn name(&self) -> &str {
                "opaque(38,32)"
            }
            fn n(&self) -> usize {
                self.0.n()
            }
            fn k(&self) -> usize {
                self.0.k()
            }
            fn generator(&self) -> &BitMat {
                self.0.generator()
            }
            fn parity_check(&self) -> &BitMat {
                self.0.parity_check()
            }
        }
        let code = Opaque(crate::ShortenedHamming3832::new());
        for value in [0u64, 1, 0xDEAD_BEEF, 0xFFFF_FFFF, 0x1357_9BDF] {
            let msg = BitVec::from_u64(32, value);
            let cw = code.0.encode(&msg);
            assert_eq!(code.message_of(&cw), Some(msg));
        }
        // Non-codewords still return None.
        let mut bad = code.0.encode(&BitVec::from_u64(32, 42));
        bad.flip(0);
        assert_eq!(code.message_of(&bad), None);
    }
}
