//! Syndrome-only algebraic decoding contracts for batch engines.
//!
//! A scalar [`HardDecoder`](crate::HardDecoder) consumes a full received
//! word. That forces a batch engine to *un-transpose* every dirty lane —
//! allocate a [`BitVec`](gf2::BitVec), gather `n` bits, decode, diff the
//! result back — which dominates the all-dirty cost of algebraic codes. For
//! syndrome-only decoders (every decoder in this workspace is
//! coset-invariant) none of that is necessary: the correction is a function
//! of the syndrome alone, and the power syndromes a BCH decoder starts from
//! are GF(2)-linear in the received bits, so a batch engine can accumulate
//! them *bit-sliced* across a whole limb and hand each dirty lane its
//! syndromes for free.
//!
//! This module defines that contract. [`AlgebraicDecode`] is implemented by
//! codes whose decoder can run from `(power syndromes, full syndrome)` alone
//! and answer with an [`AlgebraicAction`] — either "detected, flag the lane"
//! or "flip exactly these positions". [`SlicedSyndromePlan`] is the
//! constant data a batch kernel needs to accumulate the power syndromes
//! bit-sliced: per odd power, one support mask per field bit (the even
//! powers follow from Frobenius, `S_{2i} = S_i²`, via the included squaring
//! table).

use serde::{Deserialize, Serialize};

use crate::HardDecoder;

/// The action a syndrome-only decoder takes on one dirty lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgebraicAction {
    /// Errors present but uncorrectable: raise the lane's error flag.
    Detected,
    /// Flip exactly the codeword positions set in the mask (bit `j` ↦
    /// position `j`); the result is guaranteed to be a codeword.
    Flip(u128),
}

/// Constant data for bit-sliced power-syndrome accumulation.
///
/// For a code over GF(2^m) with `2t` decoding syndromes, only the odd
/// powers `S_1, S_3, …, S_{2t−1}` need accumulating: each is GF(2)-linear
/// in the received bits, so bit `b` of `S_i` is the parity of the received
/// bits selected by a fixed support mask — one AND-free XOR reduction per
/// (odd power, field bit) per limb when the received word is bit-sliced.
/// The even powers follow pointwise from `S_{2i} = S_i²`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlicedSyndromePlan {
    /// Field extension degree `m` (syndromes are `m`-bit values).
    pub field_bits: usize,
    /// Total number of decoding syndromes, `2t`.
    pub syndrome_count: usize,
    /// `odd_supports[h][b]`: positions of the received word (bit `j` ↦
    /// position `j`) whose parity gives bit `b` of `S_{2h+1}`.
    pub odd_supports: Vec<Vec<u128>>,
    /// Squaring table over GF(2^m): `square[a] = a²`, indexed by the
    /// polynomial bitmask of `a`. Length `2^m`.
    pub square: Vec<u16>,
}

impl SlicedSyndromePlan {
    /// Number of odd power syndromes (`t`): the rows a kernel accumulates.
    #[must_use]
    pub fn odd_count(&self) -> usize {
        self.syndrome_count.div_ceil(2)
    }

    /// Completes a per-lane syndrome vector from its odd entries.
    ///
    /// On entry, `syndromes[i − 1]` must hold `S_i` for every odd `i`; on
    /// return the even entries are filled via `S_{2i} = S_i²`.
    ///
    /// # Panics
    /// Panics if `syndromes` is shorter than [`Self::syndrome_count`].
    #[inline]
    pub fn fill_even_syndromes(&self, syndromes: &mut [u16]) {
        for i in (2..=self.syndrome_count).step_by(2) {
            syndromes[i - 1] = self.square[syndromes[i / 2 - 1] as usize];
        }
    }
}

/// A hard decoder whose decision is computable from syndromes alone, in the
/// form batch engines consume.
///
/// Implementations must be *outcome-identical* to their scalar
/// [`decode`](crate::HardDecoder::decode): for any received word `r` with
/// nonzero full syndrome, `decode_action(power_syndromes(r), H·rᵀ)` must
/// return [`AlgebraicAction::Detected`] exactly when `decode(r)` flags
/// uncorrectable, and otherwise a flip mask reproducing `decode(r)`'s
/// corrected codeword. The workspace's equivalence suites assert this
/// exhaustively over the syndrome space.
pub trait AlgebraicDecode: HardDecoder {
    /// The constant accumulation plan for this code's power syndromes.
    fn sliced_syndrome_plan(&self) -> SlicedSyndromePlan;

    /// Decides one dirty lane from its power syndromes and full syndrome.
    ///
    /// `power_syndromes` holds `S_1 … S_{2t}` (as produced by a
    /// [`SlicedSyndromePlan`]); `full_syndrome` is `H·rᵀ` with bit `u` =
    /// syndrome row `u`, guaranteed nonzero by the caller (zero-syndrome
    /// lanes never reach the fallback).
    fn decode_action(&self, power_syndromes: &[u16], full_syndrome: u128) -> AlgebraicAction;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_even_syndromes_applies_frobenius() {
        // GF(2^4) squaring table via gf2.
        let f = gf2::Gf2m::new(4);
        let square: Vec<u16> = (0..16).map(|a| f.square(a)).collect();
        let plan = SlicedSyndromePlan {
            field_bits: 4,
            syndrome_count: 4,
            odd_supports: vec![vec![0; 4]; 2],
            square,
        };
        assert_eq!(plan.odd_count(), 2);
        let s1 = f.alpha_pow(3);
        let s3 = f.alpha_pow(11);
        let mut syndromes = [s1, 0, s3, 0];
        plan.fill_even_syndromes(&mut syndromes);
        assert_eq!(syndromes[1], f.square(s1));
        assert_eq!(syndromes[3], f.square(f.square(s1)));
        assert_eq!(syndromes[2], s3);
    }
}
