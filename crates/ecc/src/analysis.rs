//! Exhaustive error-pattern analysis — the machinery behind Table I of the
//! paper.
//!
//! For a short code every error pattern of every weight can be enumerated
//! over every transmitted codeword. Each (codeword, pattern) pair is
//! classified into one of four categories:
//!
//! * **corrected** — the decoder returned the transmitted message;
//! * **detected** — the decoder raised the error flag (Fig. 1) without
//!   returning a message;
//! * **miscorrected** — the decoder returned a *wrong* message without any
//!   flag (the dangerous outcome);
//! * **undetected** — the error pattern mapped the codeword onto another
//!   valid codeword and the decoder accepted it silently.
//!
//! Three decoding policies are evaluated because the paper's "worst case" and
//! "best case" columns correspond to different operating modes of the same
//! code: a correction-oriented decoder, a detection-only decoder, and a
//! maximum-likelihood decoder with deterministic tie-breaking.

use crate::decoder::DecodeOutcome;
use crate::{BlockCode, HardDecoder};
use gf2::{BitVec, WeightPatterns};
use serde::{Deserialize, Serialize};

/// Decoding policy used by the exhaustive analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodingPolicy {
    /// Use the code's own hardware decoder ([`HardDecoder::decode`]), which
    /// attempts correction. This is the "worst case" operating mode discussed
    /// in Section II-C of the paper.
    HardwareDecoder,
    /// Detection only: any nonzero syndrome raises the error flag, nothing is
    /// ever corrected. This is the "best case" detection mode (a code with
    /// minimum distance d detects favourable patterns up to weight d and all
    /// patterns up to weight d−1).
    DetectOnly,
    /// Maximum-likelihood (nearest-codeword) decoding with deterministic
    /// tie-breaking toward the lowest message index. Shows the best-case
    /// correction capability of the *code* irrespective of its decoder.
    MaximumLikelihood,
    /// The code's own decoder with ambiguities resolved instead of flagged
    /// ([`HardDecoder::decode_best_effort`]). For RM(1,3) this is the FHT
    /// decoder with spectral tie-breaking, which corrects certain 2-bit error
    /// patterns (the "best case" column of Table I).
    BestEffort,
}

/// Classification counts for all error patterns of one weight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorPatternStats {
    /// Error-pattern weight this row describes.
    pub weight: usize,
    /// Total number of (codeword, pattern) pairs evaluated.
    pub total: u64,
    /// Decoder returned the transmitted message.
    pub corrected: u64,
    /// Decoder raised the error flag.
    pub detected: u64,
    /// Decoder returned a wrong message without a flag.
    pub miscorrected: u64,
    /// Received word was a different valid codeword; accepted silently.
    pub undetected: u64,
}

impl ErrorPatternStats {
    /// Fraction of patterns that were *caught* (corrected or flagged).
    #[must_use]
    pub fn caught_fraction(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        (self.corrected + self.detected) as f64 / self.total as f64
    }

    /// Fraction of patterns corrected back to the transmitted message.
    #[must_use]
    pub fn corrected_fraction(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.corrected as f64 / self.total as f64
    }

    /// Fraction of patterns that were flagged as uncorrectable.
    #[must_use]
    pub fn detected_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.detected as f64 / self.total as f64
    }
}

/// Complete error-pattern analysis of one code under one decoding policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CodeAnalysis {
    /// Name of the analyzed code.
    pub code_name: String,
    /// Decoding policy used.
    pub policy: DecodingPolicy,
    /// Minimum distance of the code.
    pub min_distance: usize,
    /// Per-weight statistics, indexed by weight (0..=n).
    pub per_weight: Vec<ErrorPatternStats>,
}

impl CodeAnalysis {
    /// Exhaustively analyzes `code` under `policy` for error weights
    /// `0..=max_weight` over every codeword.
    ///
    /// # Panics
    /// Panics if the code is too long (`n > 24`) or too large (`k > 16`) for
    /// exhaustive enumeration.
    pub fn exhaustive<C>(code: &C, policy: DecodingPolicy, max_weight: usize) -> Self
    where
        C: BlockCode + HardDecoder,
    {
        let n = code.n();
        let k = code.k();
        assert!(n <= 24, "exhaustive analysis supports n <= 24");
        assert!(k <= 16, "exhaustive analysis supports k <= 16");
        let max_weight = max_weight.min(n);
        let codebook = code.codebook();
        let min_distance = code.min_distance();

        let mut per_weight = Vec::with_capacity(max_weight + 1);
        for w in 0..=max_weight {
            let mut stats = ErrorPatternStats {
                weight: w,
                ..Default::default()
            };
            for pattern in WeightPatterns::new(n, w) {
                let error = BitVec::from_u64(n, pattern);
                for (msg, cw) in &codebook {
                    let received = cw ^ &error;
                    let classified = classify(code, &codebook, policy, msg, &received, w);
                    stats.total += 1;
                    match classified {
                        Classification::Corrected => stats.corrected += 1,
                        Classification::Detected => stats.detected += 1,
                        Classification::Miscorrected => stats.miscorrected += 1,
                        Classification::Undetected => stats.undetected += 1,
                    }
                }
            }
            per_weight.push(stats);
        }

        CodeAnalysis {
            code_name: code.name().to_string(),
            policy,
            min_distance,
            per_weight,
        }
    }

    /// Largest weight `w ≥ 1` such that *every* error pattern of weight `1..=w`
    /// is corrected. Returns 0 if even single errors are not all corrected.
    #[must_use]
    pub fn guaranteed_corrected(&self) -> usize {
        self.largest_prefix(|s| s.corrected == s.total)
    }

    /// Largest weight `w ≥ 1` such that every error pattern of weight `1..=w`
    /// is caught (corrected or flagged) — nothing slips through silently.
    #[must_use]
    pub fn guaranteed_caught(&self) -> usize {
        self.largest_prefix(|s| s.corrected + s.detected == s.total)
    }

    /// Largest weight with at least one corrected pattern.
    #[must_use]
    pub fn best_case_corrected(&self) -> usize {
        self.per_weight
            .iter()
            .skip(1)
            .filter(|s| s.corrected > 0)
            .map(|s| s.weight)
            .max()
            .unwrap_or(0)
    }

    /// Largest weight `w` such that every pattern of weight `< w` is caught
    /// and at least one pattern of weight `w` is caught — the "favourable
    /// patterns can still be detected" number quoted by the paper (e.g. 28 of
    /// the 35 weight-3 patterns for Hamming(7,4)).
    ///
    /// Note: for the distance-4 codes this evaluates to 4 (a majority of
    /// weight-4 patterns is still detected), whereas Table I of the paper
    /// lists the *guaranteed* value 3; EXPERIMENTS.md discusses the
    /// difference.
    #[must_use]
    pub fn best_case_detected(&self) -> usize {
        let guaranteed = self.guaranteed_caught();
        let next = guaranteed + 1;
        match self.per_weight.get(next) {
            Some(stats) if stats.corrected + stats.detected > 0 => next,
            _ => guaranteed,
        }
    }

    /// Fraction of weight-`w` patterns that are caught.
    #[must_use]
    pub fn detection_rate(&self, w: usize) -> f64 {
        self.per_weight
            .get(w)
            .map_or(0.0, ErrorPatternStats::caught_fraction)
    }

    fn largest_prefix(&self, pred: impl Fn(&ErrorPatternStats) -> bool) -> usize {
        let mut best = 0;
        for stats in self.per_weight.iter().skip(1) {
            if pred(stats) {
                best = stats.weight;
            } else {
                break;
            }
        }
        best
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Classification {
    Corrected,
    Detected,
    Miscorrected,
    Undetected,
}

fn classify<C>(
    code: &C,
    codebook: &[(BitVec, BitVec)],
    policy: DecodingPolicy,
    transmitted_msg: &BitVec,
    received: &BitVec,
    weight: usize,
) -> Classification
where
    C: BlockCode + HardDecoder,
{
    match policy {
        DecodingPolicy::HardwareDecoder | DecodingPolicy::BestEffort => {
            let decoded = if policy == DecodingPolicy::HardwareDecoder {
                code.decode(received)
            } else {
                code.decode_best_effort(received)
            };
            match decoded.outcome {
                DecodeOutcome::DetectedUncorrectable => Classification::Detected,
                DecodeOutcome::NoErrorDetected => {
                    if decoded.message_is(transmitted_msg) {
                        if weight == 0 {
                            Classification::Corrected
                        } else {
                            // Error pattern was a nonzero codeword but the
                            // message happens to coincide — impossible for
                            // linear codes with distinct codewords, treated as
                            // undetected for safety.
                            Classification::Undetected
                        }
                    } else {
                        Classification::Undetected
                    }
                }
                DecodeOutcome::Corrected { .. } => {
                    if decoded.message_is(transmitted_msg) {
                        Classification::Corrected
                    } else {
                        Classification::Miscorrected
                    }
                }
            }
        }
        DecodingPolicy::DetectOnly => {
            if code.is_codeword(received) {
                let msg = code
                    .message_of(received)
                    .expect("valid codeword has a message");
                if &msg == transmitted_msg {
                    Classification::Corrected
                } else {
                    Classification::Undetected
                }
            } else {
                Classification::Detected
            }
        }
        DecodingPolicy::MaximumLikelihood => {
            // Nearest codeword, tie broken toward the lowest message index
            // (the codebook is ordered by message value).
            let mut best: Option<(&BitVec, usize)> = None;
            for (msg, cw) in codebook {
                let d = cw.hamming_distance(received);
                match best {
                    Some((_, bd)) if d >= bd => {}
                    _ => best = Some((msg, d)),
                }
            }
            let (decoded_msg, _) = best.expect("codebook is never empty");
            if decoded_msg == transmitted_msg {
                Classification::Corrected
            } else {
                Classification::Miscorrected
            }
        }
    }
}

/// One row of Table I: the error-detection/correction capabilities of a code
/// in its worst-case (correction-enabled decoder) and best-case
/// (detection-only / maximum-likelihood) operating modes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Code name.
    pub code: String,
    /// Minimum distance.
    pub dmin: usize,
    /// Guaranteed caught weight under the correction-enabled decoder.
    pub worst_detected: usize,
    /// Guaranteed corrected weight under the correction-enabled decoder.
    pub worst_corrected: usize,
    /// Best-case detected weight (detection-only mode, favourable patterns).
    pub best_detected: usize,
    /// Best-case corrected weight (maximum-likelihood with tie-breaking).
    pub best_corrected: usize,
    /// Fraction of weight-3 patterns caught in detection-only mode — the
    /// "28 out of 35, 80%" figure quoted for Hamming(7,4).
    pub weight3_detection_rate: f64,
}

/// Computes a Table I row for a code by running all three policies.
pub fn table1_row<C>(code: &C) -> Table1Row
where
    C: BlockCode + HardDecoder,
{
    let max_w = code.n().min(4);
    let hw = CodeAnalysis::exhaustive(code, DecodingPolicy::HardwareDecoder, max_w);
    let det = CodeAnalysis::exhaustive(code, DecodingPolicy::DetectOnly, max_w);
    let best = CodeAnalysis::exhaustive(code, DecodingPolicy::BestEffort, max_w);
    Table1Row {
        code: code.name().to_string(),
        dmin: hw.min_distance,
        worst_detected: hw.guaranteed_caught(),
        worst_corrected: hw.guaranteed_corrected(),
        best_detected: det.best_case_detected(),
        best_corrected: best.best_case_corrected().max(hw.guaranteed_corrected()),
        weight3_detection_rate: det.detection_rate(3),
    }
}

/// The values the paper lists in Table I, for side-by-side comparison in the
/// benchmark output and in EXPERIMENTS.md.
#[must_use]
pub fn paper_table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            code: "Hamming(7,4)".to_string(),
            dmin: 3,
            worst_detected: 1,
            worst_corrected: 1,
            best_detected: 3,
            best_corrected: 1,
            weight3_detection_rate: 0.80,
        },
        Table1Row {
            code: "Hamming(8,4)".to_string(),
            dmin: 4,
            worst_detected: 3,
            worst_corrected: 1,
            best_detected: 3,
            best_corrected: 1,
            weight3_detection_rate: 1.0,
        },
        Table1Row {
            code: "RM(1,3)".to_string(),
            dmin: 4,
            worst_detected: 3,
            worst_corrected: 1,
            best_detected: 3,
            best_corrected: 2,
            weight3_detection_rate: 1.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::hamming::{Hamming74, Hamming84};
    use crate::codes::reed_muller::Rm13;

    #[test]
    fn hamming74_detects_28_of_35_triple_errors_in_detection_mode() {
        let code = Hamming74::new();
        let analysis = CodeAnalysis::exhaustive(&code, DecodingPolicy::DetectOnly, 3);
        let w3 = &analysis.per_weight[3];
        assert_eq!(w3.total, 35 * 16);
        // 7 weight-3 codewords are invisible per transmitted codeword.
        assert_eq!(w3.detected, 28 * 16);
        assert_eq!(w3.undetected, 7 * 16);
        assert!((analysis.detection_rate(3) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn hamming74_worst_case_matches_paper() {
        let code = Hamming74::new();
        let hw = CodeAnalysis::exhaustive(&code, DecodingPolicy::HardwareDecoder, 3);
        assert_eq!(hw.guaranteed_corrected(), 1);
        assert_eq!(hw.guaranteed_caught(), 1);
        // All double errors are miscorrected by the perfect code's decoder.
        assert_eq!(hw.per_weight[2].miscorrected, hw.per_weight[2].total);
    }

    #[test]
    fn hamming84_guarantees() {
        let code = Hamming84::new();
        let hw = CodeAnalysis::exhaustive(&code, DecodingPolicy::HardwareDecoder, 4);
        assert_eq!(hw.guaranteed_corrected(), 1);
        // Single errors corrected, double errors all detected.
        assert_eq!(hw.per_weight[1].corrected, hw.per_weight[1].total);
        assert_eq!(hw.per_weight[2].detected, hw.per_weight[2].total);
        assert_eq!(hw.guaranteed_caught(), 2);
        let det = CodeAnalysis::exhaustive(&code, DecodingPolicy::DetectOnly, 4);
        // Detection-only mode catches every pattern up to weight 3.
        assert_eq!(det.guaranteed_caught(), 3);
        assert!((det.detection_rate(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rm13_ml_corrects_some_double_errors() {
        let code = Rm13::new();
        let ml = CodeAnalysis::exhaustive(&code, DecodingPolicy::MaximumLikelihood, 2);
        let w2 = &ml.per_weight[2];
        assert!(
            w2.corrected > 0,
            "ML tie-breaking corrects some 2-bit patterns"
        );
        assert!(w2.miscorrected > 0, "but not all of them");
        assert_eq!(ml.best_case_corrected(), 2);
    }

    #[test]
    fn zero_weight_is_always_clean() {
        let code = Hamming84::new();
        for policy in [
            DecodingPolicy::HardwareDecoder,
            DecodingPolicy::DetectOnly,
            DecodingPolicy::MaximumLikelihood,
        ] {
            let a = CodeAnalysis::exhaustive(&code, policy, 0);
            assert_eq!(a.per_weight[0].corrected, a.per_weight[0].total);
        }
    }

    #[test]
    fn table1_rows_reproduce_key_paper_claims() {
        let h74 = table1_row(&Hamming74::new());
        assert_eq!(h74.dmin, 3);
        assert_eq!(h74.worst_corrected, 1);
        assert_eq!(h74.worst_detected, 1);
        assert_eq!(h74.best_detected, 3);
        assert_eq!(h74.best_corrected, 1);
        assert!((h74.weight3_detection_rate - 0.8).abs() < 1e-12);

        let h84 = table1_row(&Hamming84::new());
        assert_eq!(h84.dmin, 4);
        assert_eq!(h84.worst_corrected, 1);
        // The paper lists 3 (guaranteed); our favourable-pattern metric also
        // counts the 80% of weight-4 patterns that remain detectable.
        assert_eq!(h84.best_detected, 4);
        assert_eq!(h84.best_corrected, 1);

        let rm = table1_row(&Rm13::new());
        assert_eq!(rm.dmin, 4);
        assert_eq!(rm.worst_corrected, 1);
        assert_eq!(rm.best_detected, 4);
        assert_eq!(
            rm.best_corrected, 2,
            "RM(1,3) best case corrects 2-bit patterns"
        );
    }

    #[test]
    fn paper_table1_has_three_rows() {
        let rows = paper_table1();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].code, "Hamming(7,4)");
        assert_eq!(rows[2].best_corrected, 2);
    }
}
