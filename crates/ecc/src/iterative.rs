//! Iterative bit-flipping decoding contracts for batch engines.
//!
//! Algebraic codes keep a scalar region — Berlekamp–Massey and the locator
//! solve run per dirty lane. An LDPC bit-flipping decoder has no such
//! region: every round is "compute check parities, flip the variables whose
//! checks disagree", and both halves are GF(2)-parallel across a batch. A
//! batch engine can therefore run the *whole* decoder bit-sliced — each
//! round is one XOR reduction per check row plus one majority per variable,
//! shared by 64 lanes — and never unpack a lane even when every lane is
//! dirty.
//!
//! The contract that makes batch and scalar bit-identical is the
//! **synchronous schedule**: every round computes all check parities from
//! the same snapshot, then applies all flips at once. A lane whose checks
//! are all satisfied flips nothing and stays fixed, so per-lane early exit
//! (scalar) and run-to-cap (batch) converge to the same word. The flip
//! decision depends only on check parities, which depend only on the error
//! pattern — the decoder is coset-invariant like every other in this crate.
//!
//! [`IterativeDecode`] is implemented by codes that expose this schedule as
//! a [`BitFlipPlan`]; the batch crate compiles the plan into its bit-flip
//! kernel, and the scalar [`decode`](crate::HardDecoder::decode) must follow
//! the identical schedule.

use serde::{Deserialize, Serialize};

use crate::HardDecoder;

/// Constant data for one synchronous bit-flipping schedule.
///
/// The plan describes the *decoding* parity-check matrix — for a regular
/// LDPC code the low-density `H` whose row space equals (but whose row count
/// exceeds) the full-rank `H′` reported by
/// [`BlockCode::parity_check`](crate::BlockCode::parity_check) — plus the
/// flip rule and the iteration cap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitFlipPlan {
    /// `check_supports[c]`: codeword positions (bit `j` ↦ position `j`)
    /// participating in check `c`.
    pub check_supports: Vec<u128>,
    /// `var_checks[j]`: the checks variable `j` participates in. Every
    /// variable has exactly three (column weight 3), which is what lets the
    /// flip rule be a whole-limb 3-input majority.
    pub var_checks: Vec<[usize; 3]>,
    /// Maximum number of synchronous flip rounds before the decoder gives
    /// up and flags the lane.
    pub max_iterations: usize,
}

impl BitFlipPlan {
    /// Number of decoding checks (rows of the low-density matrix).
    #[must_use]
    pub fn checks(&self) -> usize {
        self.check_supports.len()
    }

    /// Validates internal consistency: every variable's checks are in
    /// range and mutually distinct, and each lists the variable in its
    /// support.
    ///
    /// # Panics
    /// Panics on an inconsistent plan (a construction bug).
    pub fn validate(&self) {
        assert!(self.max_iterations > 0, "iteration cap must be positive");
        for (j, checks) in self.var_checks.iter().enumerate() {
            assert!(
                checks[0] != checks[1] && checks[0] != checks[2] && checks[1] != checks[2],
                "variable {j} lists a check twice"
            );
            for &c in checks {
                assert!(
                    self.check_supports[c] & (1u128 << j) != 0,
                    "check {c} does not cover variable {j}"
                );
            }
        }
    }
}

/// A hard decoder that decodes by synchronous bit flipping, in the form
/// batch engines consume.
///
/// Implementations must be *outcome-identical* to their scalar
/// [`decode`](crate::HardDecoder::decode): running the plan's schedule on
/// any received word must reproduce the scalar decoder's corrected codeword
/// or error flag bit for bit. The workspace's equivalence suites assert
/// this over exhaustive low-weight patterns and random noise.
pub trait IterativeDecode: HardDecoder {
    /// The constant synchronous bit-flipping schedule for this code.
    fn bit_flip_plan(&self) -> BitFlipPlan;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_validation_accepts_a_consistent_toy_plan() {
        let plan = BitFlipPlan {
            check_supports: vec![0b011, 0b101, 0b110, 0b111],
            var_checks: vec![[0, 1, 3], [0, 2, 3], [1, 2, 3]],
            max_iterations: 8,
        };
        assert_eq!(plan.checks(), 4);
        plan.validate();
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn plan_validation_rejects_a_check_missing_its_variable() {
        let plan = BitFlipPlan {
            check_supports: vec![0b010, 0b101, 0b110],
            var_checks: vec![[0, 1, 2]; 1],
            max_iterations: 8,
        };
        plan.validate();
    }
}
