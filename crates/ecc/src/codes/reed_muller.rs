//! Reed–Muller codes.
//!
//! The paper uses the first-order RM(1,3) code: length 8, dimension 4,
//! minimum distance 4 — the same parameters as the extended Hamming(8,4)
//! code, but with a recursive (Plotkin) structure and a decoder based on the
//! fast Hadamard transform that can additionally correct certain 2-bit error
//! patterns (the "best case" column of Table I).
//!
//! [`ReedMuller`] implements the general RM(r,m) family through the monomial
//! (Boolean polynomial) construction; [`Rm13`] is the concrete instance used
//! by the paper's encoder together with its FHT decoder.

use crate::decoder::Decoded;
use crate::{validate_code_matrices, BlockCode, HardDecoder, SoftDecoder};
use gf2::{BitMat, BitVec};

/// A binary Reed–Muller code RM(r,m) of length `2^m`.
///
/// The generator matrix rows are the truth tables of all monomials of degree
/// at most `r` in the `m` Boolean variables, ordered by degree and then
/// lexicographically. For `r = 1` the rows are the all-ones vector followed by
/// the coordinate functions `x_1, …, x_m`, which is the layout used by the
/// paper's RM(1,3) encoder circuit (Fig. 4).
#[derive(Debug, Clone)]
pub struct ReedMuller {
    r: usize,
    m: usize,
    g: BitMat,
    h: BitMat,
    name: String,
    monomials: Vec<Vec<usize>>,
}

impl ReedMuller {
    /// Constructs RM(r,m).
    ///
    /// # Panics
    /// Panics if `r > m` or `m` is 0 or larger than 16.
    #[must_use]
    pub fn new(r: usize, m: usize) -> Self {
        assert!((1..=16).contains(&m), "m must be in 1..=16");
        assert!(r <= m, "order r must not exceed m");
        let n = 1usize << m;
        let monomials = Self::monomials_up_to_degree(r, m);
        let rows: Vec<BitVec> = monomials
            .iter()
            .map(|vars| {
                (0..n)
                    .map(|point| vars.iter().all(|&v| (point >> v) & 1 == 1))
                    .collect::<BitVec>()
            })
            .collect();
        let g = BitMat::from_rows(rows);
        let h = g.null_space();
        if h.rows() > 0 {
            validate_code_matrices(&g, &h);
        }
        let name = format!("RM({r},{m})");
        ReedMuller {
            r,
            m,
            g,
            h,
            name,
            monomials,
        }
    }

    fn monomials_up_to_degree(r: usize, m: usize) -> Vec<Vec<usize>> {
        // All subsets of {0..m-1} of size <= r, ordered by size then lexicographically.
        let mut out: Vec<Vec<usize>> = Vec::new();
        for degree in 0..=r {
            let mut subset: Vec<usize> = (0..degree).collect();
            loop {
                out.push(subset.clone());
                if degree == 0 {
                    break;
                }
                // Next combination of `degree` elements from 0..m.
                let mut i = degree;
                loop {
                    if i == 0 {
                        subset.clear();
                        break;
                    }
                    i -= 1;
                    if subset[i] < m - (degree - i) {
                        subset[i] += 1;
                        for j in i + 1..degree {
                            subset[j] = subset[j - 1] + 1;
                        }
                        break;
                    }
                }
                if subset.is_empty() {
                    break;
                }
            }
        }
        out
    }

    /// Order `r` of the code.
    #[must_use]
    pub fn order(&self) -> usize {
        self.r
    }

    /// Number of Boolean variables `m` (the code length is `2^m`).
    #[must_use]
    pub fn variables(&self) -> usize {
        self.m
    }

    /// The monomial (set of variable indices) associated with each message bit.
    #[must_use]
    pub fn monomials(&self) -> &[Vec<usize>] {
        &self.monomials
    }

    /// The designed minimum distance `2^(m-r)`.
    #[must_use]
    pub fn designed_distance(&self) -> usize {
        1 << (self.m - self.r)
    }
}

impl BlockCode for ReedMuller {
    fn name(&self) -> &str {
        &self.name
    }
    fn n(&self) -> usize {
        1 << self.m
    }
    fn k(&self) -> usize {
        self.g.rows()
    }
    fn generator(&self) -> &BitMat {
        &self.g
    }
    fn parity_check(&self) -> &BitMat {
        &self.h
    }
}

/// Computes the fast (Walsh–)Hadamard transform of `values` in place.
///
/// The length of `values` must be a power of two. This is the "Green machine"
/// decoder kernel for first-order Reed–Muller codes (Be'ery & Snyders,
/// reference [34] of the paper).
pub fn fast_hadamard_transform(values: &mut [f64]) {
    let n = values.len();
    assert!(n.is_power_of_two(), "FHT length must be a power of two");
    let mut h = 1;
    while h < n {
        for block in (0..n).step_by(2 * h) {
            for i in block..block + h {
                let a = values[i];
                let b = values[i + h];
                values[i] = a + b;
                values[i + h] = a - b;
            }
        }
        h *= 2;
    }
}

/// First-order Reed–Muller decoding shared by hard and soft decoders.
///
/// `channel_values[i]` is positive when bit `i` is more likely `0`. Returns
/// `(message, codeword, unique)` where `unique` is false when the Hadamard
/// spectrum has a tie for the maximum magnitude (ambiguous decoding). Ties are
/// always *resolved* toward the lowest spectral index so that callers may
/// either use the returned estimate (best-effort mode) or report detection.
fn rm1_fht_decode(code: &ReedMuller, channel_values: &[f64]) -> (BitVec, BitVec, bool) {
    let m = code.variables();
    let mut spectrum: Vec<f64> = channel_values.to_vec();
    fast_hadamard_transform(&mut spectrum);
    // Find the index with the largest |spectrum| value and detect ties.
    let mut best_idx = 0usize;
    let mut best_mag = f64::NEG_INFINITY;
    let mut unique = true;
    for (idx, &val) in spectrum.iter().enumerate() {
        let mag = val.abs();
        if mag > best_mag + 1e-9 {
            best_mag = mag;
            best_idx = idx;
            unique = true;
        } else if (mag - best_mag).abs() <= 1e-9 && idx != best_idx {
            unique = false;
        }
    }
    let constant_term = spectrum[best_idx] < 0.0;
    // Message layout: bit 0 is the constant (all-ones row) coefficient, bit
    // 1 + j is the coefficient of variable x_j. The Hadamard index `best_idx`
    // has bit j set exactly when x_j participates in the affine function.
    let mut message = BitVec::zeros(m + 1);
    message.set(0, constant_term);
    for j in 0..m {
        message.set(1 + j, (best_idx >> j) & 1 == 1);
    }
    let codeword = code.encode(&message);
    (message, codeword, unique)
}

impl HardDecoder for ReedMuller {
    /// FHT (Green machine) decoding for first-order codes.
    ///
    /// A unique spectral maximum yields a maximum-likelihood codeword; a tie
    /// is reported as [`crate::DecodeOutcome::DetectedUncorrectable`], which
    /// is how the decoder detects 2-bit (and most 3-bit) error patterns.
    ///
    /// # Panics
    /// Panics if the order is not 1 (higher orders only support encoding).
    fn decode(&self, received: &BitVec) -> Decoded {
        assert_eq!(
            self.r, 1,
            "hard decoding is implemented for first-order RM codes"
        );
        assert_eq!(received.len(), self.n(), "received word length mismatch");
        let values: Vec<f64> = received
            .iter()
            .map(|bit| if bit { -1.0 } else { 1.0 })
            .collect();
        let (message, codeword, unique) = rm1_fht_decode(self, &values);
        if !unique {
            return Decoded::detected();
        }
        let flips = codeword.hamming_distance(received);
        if flips == 0 {
            Decoded::clean(codeword, message)
        } else {
            Decoded::corrected(codeword, message, flips)
        }
    }

    /// Best-effort FHT decoding: Hadamard-spectrum ties are resolved toward
    /// the lowest index instead of raising the error flag. In this mode the
    /// decoder corrects some 2-bit error patterns, the property Table I of the
    /// paper attributes to RM(1,3).
    fn decode_best_effort(&self, received: &BitVec) -> Decoded {
        assert_eq!(
            self.r, 1,
            "hard decoding is implemented for first-order RM codes"
        );
        assert_eq!(received.len(), self.n(), "received word length mismatch");
        let values: Vec<f64> = received
            .iter()
            .map(|bit| if bit { -1.0 } else { 1.0 })
            .collect();
        let (message, codeword, _unique) = rm1_fht_decode(self, &values);
        let flips = codeword.hamming_distance(received);
        if flips == 0 {
            Decoded::clean(codeword, message)
        } else {
            Decoded::corrected(codeword, message, flips)
        }
    }
}

impl SoftDecoder for ReedMuller {
    /// Soft-decision FHT decoding from per-bit LLRs (positive = bit 0 likely).
    ///
    /// # Panics
    /// Panics if the order is not 1.
    fn decode_soft(&self, llrs: &[f64]) -> Decoded {
        assert_eq!(
            self.r, 1,
            "soft decoding is implemented for first-order RM codes"
        );
        assert_eq!(llrs.len(), self.n(), "LLR length mismatch");
        let (message, codeword, unique) = rm1_fht_decode(self, llrs);
        if !unique {
            return Decoded::detected();
        }
        Decoded::corrected(codeword, message, 0)
    }
}

/// The RM(1,3) code used by the paper's third encoder: length 8, dimension 4,
/// minimum distance 4, decoded with the fast Hadamard transform.
#[derive(Debug, Clone)]
pub struct Rm13 {
    inner: ReedMuller,
}

impl Rm13 {
    /// Constructs RM(1,3).
    #[must_use]
    pub fn new() -> Self {
        Rm13 {
            inner: ReedMuller::new(1, 3),
        }
    }

    /// Access to the generic Reed–Muller implementation.
    #[must_use]
    pub fn as_reed_muller(&self) -> &ReedMuller {
        &self.inner
    }

    /// Returns the boolean expression of codeword bit `j` (0-indexed) as the
    /// list of message-bit indices (0-indexed) that are XORed together, i.e.
    /// `c_{j+1} = ⊕_{i ∈ terms} m_{i+1}`. This is the netlist specification
    /// used by the `encoders` crate to build the Fig. 4 circuit.
    #[must_use]
    pub fn output_terms(j: usize) -> Vec<usize> {
        assert!(j < 8, "RM(1,3) has 8 codeword bits");
        let mut terms = vec![0]; // m1 (all-ones row) always participates.
        for var in 0..3 {
            if (j >> var) & 1 == 1 {
                terms.push(1 + var);
            }
        }
        terms
    }
}

impl Default for Rm13 {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockCode for Rm13 {
    fn name(&self) -> &str {
        "RM(1,3)"
    }
    fn n(&self) -> usize {
        8
    }
    fn k(&self) -> usize {
        4
    }
    fn generator(&self) -> &BitMat {
        self.inner.generator()
    }
    fn parity_check(&self) -> &BitMat {
        self.inner.parity_check()
    }
}

impl HardDecoder for Rm13 {
    fn decode(&self, received: &BitVec) -> Decoded {
        self.inner.decode(received)
    }
    fn decode_best_effort(&self, received: &BitVec) -> Decoded {
        self.inner.decode_best_effort(received)
    }

    /// The tie-*detecting* FHT decoder of the (8,4) instance is column
    /// matching in disguise: the 16 cosets split into the zero coset, the 8
    /// single-error cosets (unique spectral maximum → flip that position),
    /// and 7 weight-2 cosets whose spectra always tie → detected. This does
    /// **not** hold for wider RM(1,m) codes (their ML decoders correct
    /// multi-bit errors), which is why the generic [`ReedMuller`] keeps the
    /// `General` default.
    fn syndrome_class(&self) -> crate::SyndromeClass {
        crate::SyndromeClass::ColumnFlip
    }
}

impl SoftDecoder for Rm13 {
    fn decode_soft(&self, llrs: &[f64]) -> Decoded {
        self.inner.decode_soft(llrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::WeightPatterns;

    #[test]
    fn rm13_parameters() {
        let code = Rm13::new();
        assert_eq!(code.n(), 8);
        assert_eq!(code.k(), 4);
        assert_eq!(code.min_distance(), 4);
        assert_eq!(code.as_reed_muller().designed_distance(), 4);
    }

    #[test]
    fn rm_family_dimensions() {
        // k(RM(r,m)) = sum_{i<=r} C(m,i).
        let cases = [
            (0, 3, 1),
            (1, 3, 4),
            (2, 3, 7),
            (3, 3, 8),
            (1, 4, 5),
            (2, 4, 11),
            (1, 5, 6),
        ];
        for (r, m, k) in cases {
            let code = ReedMuller::new(r, m);
            assert_eq!(code.k(), k, "RM({r},{m})");
            assert_eq!(code.n(), 1 << m);
        }
    }

    #[test]
    fn rm_min_distance_matches_designed() {
        for (r, m) in [(1, 3), (1, 4), (2, 4), (2, 3)] {
            let code = ReedMuller::new(r, m);
            assert_eq!(code.min_distance(), code.designed_distance(), "RM({r},{m})");
        }
    }

    #[test]
    fn rm13_generator_rows_are_constant_and_coordinates() {
        let code = Rm13::new();
        let g = code.generator();
        assert_eq!(g.row(0).to_string01(), "11111111");
        assert_eq!(g.row(1).to_string01(), "01010101");
        assert_eq!(g.row(2).to_string01(), "00110011");
        assert_eq!(g.row(3).to_string01(), "00001111");
    }

    #[test]
    fn output_terms_match_generator_columns() {
        let code = Rm13::new();
        let g = code.generator();
        for j in 0..8 {
            let terms = Rm13::output_terms(j);
            for i in 0..4 {
                assert_eq!(g.get(i, j), terms.contains(&i), "column {j} bit {i}");
            }
        }
    }

    #[test]
    fn fht_of_constant_sequence() {
        let mut v = vec![1.0; 8];
        fast_hadamard_transform(&mut v);
        assert_eq!(v[0], 8.0);
        assert!(v[1..].iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn rm13_corrects_every_single_error() {
        let code = Rm13::new();
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            let cw = code.encode(&msg);
            for pos in 0..8 {
                let mut r = cw.clone();
                r.flip(pos);
                let d = code.decode(&r);
                assert!(d.message_is(&msg), "msg {m:04b} pos {pos}");
            }
        }
    }

    #[test]
    fn rm13_double_errors_are_detected_or_corrected_never_silently_wrong() {
        // The FHT decoder either corrects a 2-bit pattern (best case of Table I)
        // or reports it as uncorrectable; it never returns the wrong message.
        let code = Rm13::new();
        let mut corrected_any = false;
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            let cw = code.encode(&msg);
            for pattern in WeightPatterns::new(8, 2) {
                let mut r = cw.clone();
                for pos in 0..8 {
                    if (pattern >> pos) & 1 == 1 {
                        r.flip(pos);
                    }
                }
                let d = code.decode(&r);
                match d.message {
                    Some(decoded) => {
                        assert_eq!(decoded, msg, "2-bit miscorrection at {pattern:08b}");
                        corrected_any = true;
                    }
                    None => assert!(d.outcome.error_flag()),
                }
            }
        }
        assert!(
            !corrected_any,
            "for RM(1,3) all weight-2 cosets are tied in the Hadamard spectrum"
        );
    }

    #[test]
    fn rm13_soft_decoding_beats_hard_decision_on_erasure_like_input() {
        let code = Rm13::new();
        let msg = BitVec::from_str01("1010");
        let cw = code.encode(&msg);
        // Two bits received with very low confidence but wrong sign, the rest
        // strongly correct: soft decoding recovers the message.
        let mut llrs: Vec<f64> = cw.iter().map(|bit| if bit { -4.0 } else { 4.0 }).collect();
        llrs[0] = -0.1 * llrs[0].signum();
        llrs[3] = -0.1 * llrs[3].signum();
        let d = code.decode_soft(&llrs);
        assert!(d.message_is(&msg));
    }

    #[test]
    fn rm13_and_hamming84_are_distinct_but_equivalent_weight_distributions() {
        use crate::codes::hamming::Hamming84;
        let rm = Rm13::new();
        let h84 = Hamming84::new();
        let weight_hist = |code: &dyn BlockCode| {
            let mut hist = [0usize; 9];
            for (_, cw) in code.codebook() {
                hist[cw.weight()] += 1;
            }
            hist
        };
        assert_eq!(weight_hist(&rm), weight_hist(&h84));
        // But the generator matrices are not identical (different circuits).
        assert_ne!(rm.generator(), h84.generator());
    }
}
