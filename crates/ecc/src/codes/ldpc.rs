//! A short regular Gallager LDPC code with a synchronous bit-flipping
//! decoder — the catalog's first iteratively decoded member.
//!
//! [`Ldpc::gallager_60_32`] constructs a (60, 32) regular LDPC code in
//! Gallager's original form: the low-density parity-check matrix `H` is
//! three *tiers* of 10 checks each, every tier a partition of the 60
//! codeword positions into blocks of 6 (row weight 6), so every position
//! participates in exactly three checks (column weight 3). The second and
//! third tiers are affine permutations of the first, chosen so that **any
//! two columns share at most one check** — girth ≥ 6, no 4-cycles — which
//! is exactly the property that makes one synchronous round of bit flipping
//! correct every single-bit error: the flipped position sees all 3 of its
//! checks unsatisfied, while any other position shares at most one of them
//! and stays below the majority threshold.
//!
//! `H` has rank 28 (each tier's rows sum to the all-ones vector, giving two
//! dependencies), so `k = 32`. The full-rank 28-row matrix `H′` reported by
//! [`BlockCode::parity_check`] is the row-reduced form of `H` — same row
//! space, so the two agree on what a codeword is — and the generator sets
//! each message bit at one of `H′`'s 32 non-pivot columns with the pivot
//! columns completing the parity.
//!
//! # Decoding
//!
//! [`HardDecoder::decode`] is Gallager's parallel (synchronous) bit-flip
//! rule: each round computes all 30 check parities from the current word,
//! then flips every position where at least 2 of its 3 checks are
//! unsatisfied, and repeats up to [`Ldpc::MAX_ITERATIONS`] rounds. A word
//! whose checks never all clear is flagged
//! [`DecodeOutcome::DetectedUncorrectable`](crate::DecodeOutcome). The flip
//! decision depends only on check parities — the decoder is coset-invariant
//! — and the synchronous schedule is shared verbatim with the batch
//! engine's whole-limb kernel through [`IterativeDecode::bit_flip_plan`],
//! which is what makes scalar and batch decoding bit-identical even on
//! all-dirty limbs.

use crate::decoder::Decoded;
use crate::iterative::{BitFlipPlan, IterativeDecode};
use crate::{validate_code_matrices, BlockCode, HardDecoder};
use gf2::{BitMat, BitVec};

/// A regular Gallager LDPC code with a synchronous bit-flipping decoder.
#[derive(Debug, Clone)]
pub struct Ldpc {
    n: usize,
    k: usize,
    /// The low-density decoding matrix (30 × 60, row weight 6, column
    /// weight 3) — redundant rows, same row space as `h_full_rank`.
    check_supports: Vec<u128>,
    /// `var_checks[j]`: the three checks position `j` participates in.
    var_checks: Vec<[usize; 3]>,
    g: BitMat,
    /// Row-reduced full-rank form of the decoding matrix (28 × 60).
    h_full_rank: BitMat,
    /// The 32 non-pivot columns of `h_full_rank`: message bit `i` lives at
    /// codeword position `free_cols[i]`.
    free_cols: Vec<usize>,
    name: String,
}

/// Tier block assignments of the (60, 32) construction: each tier maps a
/// codeword position to one of 10 blocks of 6. The affine multipliers (7
/// and 11, both coprime to 60) were chosen so the three partitions pairwise
/// intersect in at most one position — the girth ≥ 6 condition, re-verified
/// at construction.
fn tier_block(tier: usize, j: usize) -> usize {
    match tier {
        0 => j / 6,
        1 => (7 * j % 60) / 6,
        _ => ((11 * j + 1) % 60) / 6,
    }
}

impl Ldpc {
    /// Synchronous flip rounds before the decoder gives up on a word.
    pub const MAX_ITERATIONS: usize = 20;

    /// Constructs the (60, 32) regular Gallager code (`j = 3` checks per
    /// position, `k = 6` positions per check, girth ≥ 6).
    ///
    /// # Panics
    /// Panics if the construction's internal consistency checks fail (a
    /// bug, not an input condition).
    #[must_use]
    pub fn gallager_60_32() -> Self {
        let n = 60usize;
        let checks = 30usize;

        let mut check_supports = vec![0u128; checks];
        for tier in 0..3 {
            for j in 0..n {
                check_supports[tier * 10 + tier_block(tier, j)] |= 1u128 << j;
            }
        }
        let mut var_checks = Vec::with_capacity(n);
        for j in 0..n {
            let mine: Vec<usize> = (0..checks)
                .filter(|&c| check_supports[c] & (1u128 << j) != 0)
                .collect();
            assert_eq!(mine.len(), 3, "column weight must be 3");
            var_checks.push([mine[0], mine[1], mine[2]]);
        }
        for support in &check_supports {
            assert_eq!(support.count_ones(), 6, "row weight must be 6");
        }
        // Girth ≥ 6: any two positions share at most one check, the
        // property behind guaranteed single-error correction.
        for a in 0..n {
            for b in (a + 1)..n {
                let shared = (0..3)
                    .filter(|&t| tier_block(t, a) == tier_block(t, b))
                    .count();
                assert!(shared <= 1, "positions {a},{b} share {shared} checks");
            }
        }

        // Full-rank H′ = the nonzero rows of rref(H); same row space, so
        // "zero syndrome" means the same thing under both matrices.
        let mut h_dense = BitMat::zeros(checks, n);
        for (c, &support) in check_supports.iter().enumerate() {
            for j in 0..n {
                if support & (1u128 << j) != 0 {
                    h_dense.set(c, j, true);
                }
            }
        }
        let (reduced, pivots) = h_dense.rref();
        let rank = pivots.len();
        let k = n - rank;
        let h_full_rank = BitMat::from_rows(
            (0..rank)
                .map(|i| (0..n).map(|j| reduced.get(i, j)).collect())
                .collect(),
        );

        // Generator: message bit i sits at free (non-pivot) column f_i, and
        // each pivot column p (pivot row r_p) carries R[r_p][f_i] so every
        // check clears.
        let free_cols: Vec<usize> = (0..n).filter(|j| !pivots.contains(j)).collect();
        assert_eq!(free_cols.len(), k);
        let mut g = BitMat::zeros(k, n);
        for (i, &f) in free_cols.iter().enumerate() {
            g.set(i, f, true);
            for (r, &p) in pivots.iter().enumerate() {
                if reduced.get(r, f) {
                    g.set(i, p, true);
                }
            }
        }
        validate_code_matrices(&g, &h_full_rank);

        Ldpc {
            n,
            k,
            check_supports,
            var_checks,
            g,
            h_full_rank,
            free_cols,
            name: format!("LDPC({n},{k})"),
        }
    }

    /// Extracts the message from a codeword: bit `i` is the codeword bit at
    /// the `i`-th free column.
    #[must_use]
    pub fn extract_message(&self, codeword: &BitVec) -> BitVec {
        self.free_cols.iter().map(|&f| codeword.get(f)).collect()
    }

    /// The word as a position bitmask (bit `j` ↦ position `j`).
    fn word_mask(&self, word: &BitVec) -> u128 {
        (0..self.n)
            .filter(|&j| word.get(j))
            .fold(0u128, |acc, j| acc | (1u128 << j))
    }

    /// Parities of the 30 low-density checks over a word mask.
    fn check_parities(&self, word: u128) -> u32 {
        self.check_supports
            .iter()
            .enumerate()
            .fold(0u32, |acc, (c, &support)| {
                acc | (((word & support).count_ones() & 1) << c)
            })
    }
}

impl BlockCode for Ldpc {
    fn name(&self) -> &str {
        &self.name
    }
    fn n(&self) -> usize {
        self.n
    }
    fn k(&self) -> usize {
        self.k
    }
    fn generator(&self) -> &BitMat {
        &self.g
    }
    fn parity_check(&self) -> &BitMat {
        &self.h_full_rank
    }
    fn message_of(&self, codeword: &BitVec) -> Option<BitVec> {
        if self.is_codeword(codeword) {
            Some(self.extract_message(codeword))
        } else {
            None
        }
    }
}

impl HardDecoder for Ldpc {
    /// Gallager's parallel bit-flip rule under the synchronous schedule of
    /// the module docs — identical, round for round, to the batch engine's
    /// whole-limb kernel.
    fn decode(&self, received: &BitVec) -> Decoded {
        assert_eq!(received.len(), self.n, "received word length mismatch");
        let start = self.word_mask(received);
        let mut word = start;
        for _ in 0..Self::MAX_ITERATIONS {
            let parities = self.check_parities(word);
            if parities == 0 {
                break;
            }
            let mut flips = 0u128;
            for (j, checks) in self.var_checks.iter().enumerate() {
                let unsat = checks.iter().filter(|&&c| parities & (1 << c) != 0).count();
                if unsat >= 2 {
                    flips |= 1u128 << j;
                }
            }
            if flips == 0 {
                break;
            }
            word ^= flips;
        }
        if self.check_parities(word) != 0 {
            return Decoded::detected();
        }
        let codeword: BitVec = (0..self.n).map(|j| word & (1u128 << j) != 0).collect();
        let msg = self.extract_message(&codeword);
        if word == start {
            Decoded::clean(codeword, msg)
        } else {
            let flipped = (word ^ start).count_ones() as usize;
            Decoded::corrected(codeword, msg, flipped)
        }
    }

    /// Iterative bit flipping: batch engines run the same synchronous
    /// schedule whole-limb and never unpack a lane.
    fn syndrome_class(&self) -> crate::SyndromeClass {
        crate::SyndromeClass::Iterative
    }
}

impl IterativeDecode for Ldpc {
    fn bit_flip_plan(&self) -> BitFlipPlan {
        let plan = BitFlipPlan {
            check_supports: self.check_supports.clone(),
            var_checks: self.var_checks.clone(),
            max_iterations: Self::MAX_ITERATIONS,
        };
        plan.validate();
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecodeOutcome;

    fn sample_messages(k: usize, count: usize) -> Vec<BitVec> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x1D9C_6032);
        (0..count)
            .map(|_| (0..k).map(|_| rng.random::<u64>() & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn construction_has_the_gallager_parameters() {
        let code = Ldpc::gallager_60_32();
        assert_eq!((code.n(), code.k()), (60, 32));
        assert_eq!(code.name(), "LDPC(60,32)");
        assert_eq!(code.parity_check().rows(), 28);
        assert_eq!(code.check_supports.len(), 30);
        assert!((code.rate() - 32.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn encode_is_message_recoverable_and_checks_clear() {
        let code = Ldpc::gallager_60_32();
        for msg in sample_messages(code.k(), 8) {
            let cw = code.encode(&msg);
            assert!(code.is_codeword(&cw));
            // The low-density checks agree with the full-rank matrix.
            assert_eq!(code.check_parities(code.word_mask(&cw)), 0);
            assert_eq!(code.extract_message(&cw), msg);
            assert_eq!(code.message_of(&cw), Some(msg));
        }
    }

    #[test]
    fn every_single_error_corrects_in_one_round() {
        let code = Ldpc::gallager_60_32();
        for msg in sample_messages(code.k(), 2) {
            let cw = code.encode(&msg);
            for pos in 0..code.n() {
                let mut r = cw.clone();
                r.flip(pos);
                let d = code.decode(&r);
                assert_eq!(
                    d.outcome,
                    DecodeOutcome::Corrected { bits_flipped: 1 },
                    "pos {pos}"
                );
                assert!(d.message_is(&msg), "pos {pos}");
                assert_eq!(d.codeword, Some(cw.clone()));
            }
        }
    }

    #[test]
    fn double_errors_either_correct_or_flag_but_never_miscorrect() {
        let code = Ldpc::gallager_60_32();
        let msg = sample_messages(code.k(), 1).pop().unwrap();
        let cw = code.encode(&msg);
        let (mut corrected, mut detected) = (0usize, 0usize);
        for a in 0..code.n() {
            for b in (a + 1)..code.n() {
                let mut r = cw.clone();
                r.flip(a);
                r.flip(b);
                let d = code.decode(&r);
                match d.outcome {
                    DecodeOutcome::DetectedUncorrectable => detected += 1,
                    _ => {
                        assert!(d.message_is(&msg), "({a},{b}) miscorrected");
                        corrected += 1;
                    }
                }
            }
        }
        assert_eq!(corrected + detected, 60 * 59 / 2);
        assert!(corrected > 0, "some doubles converge");
        assert!(detected > 0, "some doubles exceed the decoder");
    }

    #[test]
    fn non_convergent_patterns_are_flagged_not_looped_forever() {
        let code = Ldpc::gallager_60_32();
        let msg = sample_messages(code.k(), 1).pop().unwrap();
        let cw = code.encode(&msg);
        // Find a deterministic double that does not converge and pin its
        // outcome: the iteration cap must end in a flag, never a wrong
        // message.
        let mut flagged = None;
        'search: for a in 0..code.n() {
            for b in (a + 1)..code.n() {
                let mut r = cw.clone();
                r.flip(a);
                r.flip(b);
                if code.decode(&r).outcome == DecodeOutcome::DetectedUncorrectable {
                    flagged = Some((a, b, r));
                    break 'search;
                }
            }
        }
        let (a, b, r) = flagged.expect("some double must defeat bit flipping");
        let d = code.decode(&r);
        assert_eq!(d.outcome, DecodeOutcome::DetectedUncorrectable, "({a},{b})");
        assert!(d.message.is_none());
    }

    #[test]
    fn decoding_is_syndrome_only() {
        let code = Ldpc::gallager_60_32();
        let msgs = sample_messages(code.k(), 2);
        let (cw0, cw1) = (code.encode(&msgs[0]), code.encode(&msgs[1]));
        for pattern in [[0usize, 33], [5, 47], [12, 59]] {
            let mut r0 = cw0.clone();
            let mut r1 = cw1.clone();
            for &p in &pattern {
                r0.flip(p);
                r1.flip(p);
            }
            let (d0, d1) = (code.decode(&r0), code.decode(&r1));
            assert_eq!(d0.outcome, d1.outcome, "{pattern:?}");
        }
    }

    #[test]
    fn syndrome_class_is_iterative_and_plan_matches_the_matrices() {
        let code = Ldpc::gallager_60_32();
        assert_eq!(code.syndrome_class(), crate::SyndromeClass::Iterative);
        let plan = code.bit_flip_plan();
        assert_eq!(plan.checks(), 30);
        assert_eq!(plan.max_iterations, Ldpc::MAX_ITERATIONS);
        assert_eq!(plan.check_supports, code.check_supports);
        assert_eq!(plan.var_checks, code.var_checks);
    }
}
