//! Hamming codes: the (7,4) code, the extended (8,4) code exactly as given in
//! Eq. (1) of the paper, the general (2^r − 1, 2^r − 1 − r) family, and the
//! shortened (38,32) code used by the prior-art SFQ encoder of Peng et al.
//! (reference [14] of the paper).

use crate::decoder::Decoded;
use crate::{validate_code_matrices, BlockCode, HardDecoder};
use gf2::{BitMat, BitVec};

/// The generator matrix of the extended Hamming(8,4) code, exactly Eq. (1) of
/// the paper (rows are messages bits m1..m4, columns are codeword bits c1..c8).
pub const G_HAMMING84_ROWS: [&str; 4] = ["11100001", "10011001", "01010101", "11010010"];

/// Returns the paper's Hamming(8,4) generator matrix as a [`BitMat`].
#[must_use]
pub fn hamming84_generator() -> BitMat {
    BitMat::from_str_rows(&G_HAMMING84_ROWS)
}

/// Returns the paper's Hamming(7,4) generator matrix: the Hamming(8,4) matrix
/// of Eq. (1) with the final (overall-parity) column `c8` removed.
#[must_use]
pub fn hamming74_generator() -> BitMat {
    let g84 = hamming84_generator();
    g84.select_cols(&[0, 1, 2, 3, 4, 5, 6])
}

fn parity_check_from_generator(g: &BitMat) -> BitMat {
    g.null_space()
}

/// The Hamming(7,4) single-error-correcting code, `d_min = 3`.
///
/// The encoder uses the boolean equations of Eq. (3) in the paper without the
/// overall parity bit `c8`:
/// `c1 = m1⊕m2⊕m4`, `c2 = m1⊕m3⊕m4`, `c3 = m1`, `c4 = m2⊕m3⊕m4`,
/// `c5 = m2`, `c6 = m3`, `c7 = m4`.
#[derive(Debug, Clone)]
pub struct Hamming74 {
    g: BitMat,
    h: BitMat,
    /// Syndrome (as integer) → error position, for single-error correction.
    syndrome_table: Vec<Option<usize>>,
}

impl Hamming74 {
    /// Constructs the code and its syndrome-decoding table.
    #[must_use]
    pub fn new() -> Self {
        let g = hamming74_generator();
        let h = parity_check_from_generator(&g);
        validate_code_matrices(&g, &h);
        let mut syndrome_table = vec![None; 1 << h.rows()];
        for pos in 0..7 {
            let mut e = BitVec::zeros(7);
            e.set(pos, true);
            let s = h.mul_vec(&e).to_u64() as usize;
            debug_assert!(syndrome_table[s].is_none(), "duplicate syndrome");
            syndrome_table[s] = Some(pos);
        }
        Hamming74 {
            g,
            h,
            syndrome_table,
        }
    }

    /// Extracts the message from a codeword using the systematic positions
    /// `c3, c5, c6, c7` (0-indexed columns 2, 4, 5, 6).
    #[must_use]
    pub fn extract_message(codeword: &BitVec) -> BitVec {
        BitVec::from_bits(&[
            codeword.get(2),
            codeword.get(4),
            codeword.get(5),
            codeword.get(6),
        ])
    }
}

impl Default for Hamming74 {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockCode for Hamming74 {
    fn name(&self) -> &str {
        "Hamming(7,4)"
    }
    fn n(&self) -> usize {
        7
    }
    fn k(&self) -> usize {
        4
    }
    fn generator(&self) -> &BitMat {
        &self.g
    }
    fn parity_check(&self) -> &BitMat {
        &self.h
    }
    fn message_of(&self, codeword: &BitVec) -> Option<BitVec> {
        if self.is_codeword(codeword) {
            Some(Self::extract_message(codeword))
        } else {
            None
        }
    }
}

impl HardDecoder for Hamming74 {
    /// Classic syndrome decoding: every nonzero syndrome is interpreted as a
    /// single-bit error and corrected. This is the "worst case" policy of
    /// Table I — 2- and 3-bit errors are miscorrected or pass undetected.
    fn decode(&self, received: &BitVec) -> Decoded {
        assert_eq!(received.len(), 7, "received word must be 7 bits");
        let syndrome = self.syndrome(received).to_u64() as usize;
        if syndrome == 0 {
            let msg = Self::extract_message(received);
            return Decoded::clean(received.clone(), msg);
        }
        match self.syndrome_table[syndrome] {
            Some(pos) => {
                let mut corrected = received.clone();
                corrected.flip(pos);
                let msg = Self::extract_message(&corrected);
                Decoded::corrected(corrected, msg, 1)
            }
            // For the perfect (7,4) code every syndrome maps to a position, so
            // this branch is unreachable; kept for robustness.
            None => Decoded::detected(),
        }
    }
}

/// The extended Hamming(8,4) code of Eq. (1), `d_min = 4` — the paper's
/// best-performing encoder under process parameter variations.
#[derive(Debug, Clone)]
pub struct Hamming84 {
    g: BitMat,
    h: BitMat,
    inner: Hamming74,
}

impl Hamming84 {
    /// Constructs the code from the paper's generator matrix.
    #[must_use]
    pub fn new() -> Self {
        let g = hamming84_generator();
        let h = parity_check_from_generator(&g);
        validate_code_matrices(&g, &h);
        Hamming84 {
            g,
            h,
            inner: Hamming74::new(),
        }
    }

    /// Extracts the message from a codeword using the systematic positions
    /// `c3, c5, c6, c7` (0-indexed columns 2, 4, 5, 6).
    #[must_use]
    pub fn extract_message(codeword: &BitVec) -> BitVec {
        BitVec::from_bits(&[
            codeword.get(2),
            codeword.get(4),
            codeword.get(5),
            codeword.get(6),
        ])
    }

    /// Overall parity of the 8-bit word (true = odd number of ones).
    #[must_use]
    pub fn overall_parity(word: &BitVec) -> bool {
        word.weight() % 2 == 1
    }
}

impl Default for Hamming84 {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockCode for Hamming84 {
    fn name(&self) -> &str {
        "Hamming(8,4)"
    }
    fn n(&self) -> usize {
        8
    }
    fn k(&self) -> usize {
        4
    }
    fn generator(&self) -> &BitMat {
        &self.g
    }
    fn parity_check(&self) -> &BitMat {
        &self.h
    }
    fn message_of(&self, codeword: &BitVec) -> Option<BitVec> {
        if self.is_codeword(codeword) {
            Some(Self::extract_message(codeword))
        } else {
            None
        }
    }
}

impl HardDecoder for Hamming84 {
    /// Standard extended-Hamming decoding:
    ///
    /// * zero syndrome on the (7,4) part and even overall parity → accept;
    /// * odd overall parity → assume a single error, correct it via the (7,4)
    ///   syndrome (or flip the parity bit itself);
    /// * even overall parity with nonzero (7,4) syndrome → a double error:
    ///   detected but not correctable (raises the error flag of Fig. 1).
    fn decode(&self, received: &BitVec) -> Decoded {
        assert_eq!(received.len(), 8, "received word must be 8 bits");
        let inner_word = received.slice(0..7);
        let inner_syndrome = self.inner.syndrome(&inner_word).to_u64() as usize;
        let parity_odd = Self::overall_parity(received);

        if inner_syndrome == 0 && !parity_odd {
            let msg = Self::extract_message(received);
            return Decoded::clean(received.clone(), msg);
        }
        if parity_odd {
            // Odd number of errors assumed to be exactly one.
            let mut corrected = received.clone();
            if inner_syndrome == 0 {
                // The error is in the overall parity bit c8 itself.
                corrected.flip(7);
            } else if let Some(pos) = self.inner.syndrome_table[inner_syndrome] {
                corrected.flip(pos);
            } else {
                return Decoded::detected();
            }
            let msg = Self::extract_message(&corrected);
            return Decoded::corrected(corrected, msg, 1);
        }
        // Even parity, nonzero syndrome: an even (≥2) number of errors.
        Decoded::detected()
    }
}

/// A general binary Hamming code of redundancy `r`: parameters
/// `(2^r − 1, 2^r − 1 − r, 3)`.
///
/// The parity-check matrix has as columns the binary representations of
/// 1..2^r − 1, giving the textbook construction; the generator matrix is
/// derived from its null space. Used by the scaling study in the ablation
/// benches and to validate the (7,4) member against the paper's matrix.
#[derive(Debug, Clone)]
pub struct HammingCode {
    r: usize,
    g: BitMat,
    h: BitMat,
    name: String,
    /// Cached `(pivots, transform)` of [`crate::generator_right_inverse`]:
    /// the decoder calls `message_of` per received word, so the Gaussian
    /// elimination is done once at construction.
    extractor: (Vec<usize>, BitMat),
}

impl HammingCode {
    /// Constructs the Hamming code with `r` parity bits (`r ≥ 2`).
    ///
    /// # Panics
    /// Panics if `r < 2` or `r > 10`.
    #[must_use]
    pub fn new(r: usize) -> Self {
        assert!(
            (2..=10).contains(&r),
            "Hamming code redundancy must be in 2..=10"
        );
        let n = (1usize << r) - 1;
        // H columns are the numbers 1..=n in binary.
        let mut h = BitMat::zeros(r, n);
        for col in 0..n {
            let value = col + 1;
            for row in 0..r {
                if (value >> row) & 1 == 1 {
                    h.set(row, col, true);
                }
            }
        }
        let g = h.null_space();
        validate_code_matrices(&g, &h);
        let k = n - r;
        let extractor = crate::generator_right_inverse(&g);
        HammingCode {
            r,
            g,
            h,
            name: format!("Hamming({n},{k})"),
            extractor,
        }
    }

    /// Number of parity bits.
    #[must_use]
    pub fn redundancy(&self) -> usize {
        self.r
    }
}

impl BlockCode for HammingCode {
    fn name(&self) -> &str {
        &self.name
    }
    fn n(&self) -> usize {
        (1 << self.r) - 1
    }
    fn k(&self) -> usize {
        self.n() - self.r
    }
    fn generator(&self) -> &BitMat {
        &self.g
    }
    fn parity_check(&self) -> &BitMat {
        &self.h
    }
    fn message_of(&self, codeword: &BitVec) -> Option<BitVec> {
        if !self.is_codeword(codeword) {
            return None;
        }
        let (pivots, transform) = &self.extractor;
        let mut message = BitVec::zeros(self.k());
        for (i, &p) in pivots.iter().enumerate() {
            if codeword.get(p) {
                message.xor_assign(transform.row(i));
            }
        }
        Some(message)
    }
}

impl HardDecoder for HammingCode {
    fn decode(&self, received: &BitVec) -> Decoded {
        assert_eq!(received.len(), self.n(), "received word length mismatch");
        let syndrome = self.syndrome(received).to_u64() as usize;
        if syndrome == 0 {
            let msg = self
                .message_of(received)
                .expect("zero syndrome implies codeword");
            return Decoded::clean(received.clone(), msg);
        }
        // For the textbook construction the syndrome value is the 1-based
        // index of the erroneous position.
        let pos = syndrome - 1;
        let mut corrected = received.clone();
        corrected.flip(pos);
        match self.message_of(&corrected) {
            Some(msg) => Decoded::corrected(corrected, msg, 1),
            None => Decoded::detected(),
        }
    }
}

/// The (38,32) linear block code of the prior-art SFQ error-correction encoder
/// (Peng et al., reference [14] of the paper): a Hamming(63,57) code shortened
/// to a 32-bit message with six parity bits, detecting 2-bit and correcting
/// 1-bit errors.
#[derive(Debug, Clone)]
pub struct ShortenedHamming3832 {
    g: BitMat,
    h: BitMat,
}

impl ShortenedHamming3832 {
    /// Constructs the shortened code by expurgating message positions of the
    /// Hamming(63,57) parent until 32 information bits remain.
    #[must_use]
    pub fn new() -> Self {
        let parent = HammingCode::new(6);
        // Systematic form of the parent: [I_57 | P]; shortening keeps the
        // first 32 information positions and all 6 parity positions.
        let (sys, _) = parent.generator().to_systematic();
        let keep_rows: Vec<usize> = (0..32).collect();
        let keep_cols: Vec<usize> = (0..32).chain(57..63).collect();
        let rows: Vec<BitVec> = keep_rows
            .iter()
            .map(|&r| keep_cols.iter().map(|&c| sys.get(r, c)).collect::<BitVec>())
            .collect();
        let g = BitMat::from_rows(rows);
        let h = g.null_space();
        validate_code_matrices(&g, &h);
        ShortenedHamming3832 { g, h }
    }
}

impl Default for ShortenedHamming3832 {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockCode for ShortenedHamming3832 {
    fn name(&self) -> &str {
        "Shortened Hamming(38,32)"
    }
    fn n(&self) -> usize {
        38
    }
    fn k(&self) -> usize {
        32
    }
    fn generator(&self) -> &BitMat {
        &self.g
    }
    fn parity_check(&self) -> &BitMat {
        &self.h
    }
    fn min_distance(&self) -> usize {
        // 2^32 codewords are too many to enumerate; the shortened Hamming code
        // inherits d_min = 3 from its parent. Verified structurally in tests
        // by exhibiting a weight-3 codeword and checking no weight-1/2 ones.
        3
    }
    fn message_of(&self, codeword: &BitVec) -> Option<BitVec> {
        if self.is_codeword(codeword) {
            // Systematic: the first 32 positions are the message.
            Some(codeword.slice(0..32))
        } else {
            None
        }
    }
}

impl HardDecoder for ShortenedHamming3832 {
    fn decode(&self, received: &BitVec) -> Decoded {
        assert_eq!(received.len(), 38, "received word must be 38 bits");
        let syndrome = self.syndrome(received);
        if syndrome.is_zero() {
            let msg = received.slice(0..32);
            return Decoded::clean(received.clone(), msg);
        }
        // Single-error correction: find the column of H equal to the syndrome.
        for pos in 0..38 {
            if self.h.col(pos) == syndrome {
                let mut corrected = received.clone();
                corrected.flip(pos);
                let msg = corrected.slice(0..32);
                return Decoded::corrected(corrected, msg, 1);
            }
        }
        Decoded::detected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::WeightPatterns;

    #[test]
    fn hamming84_matches_paper_equations() {
        let code = Hamming84::new();
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            let cw = code.encode(&msg);
            let (m1, m2, m3, m4) = (msg.get(0), msg.get(1), msg.get(2), msg.get(3));
            // Eq. (3) of the paper.
            assert_eq!(cw.get(0), m1 ^ m2 ^ m4, "c1 mismatch for m={m:04b}");
            assert_eq!(cw.get(1), m1 ^ m3 ^ m4, "c2 mismatch");
            assert_eq!(cw.get(2), m1, "c3 mismatch");
            assert_eq!(cw.get(3), m2 ^ m3 ^ m4, "c4 mismatch");
            assert_eq!(cw.get(4), m2, "c5 mismatch");
            assert_eq!(cw.get(5), m3, "c6 mismatch");
            assert_eq!(cw.get(6), m4, "c7 mismatch");
            assert_eq!(cw.get(7), m1 ^ m2 ^ m3, "c8 mismatch");
        }
    }

    #[test]
    fn fig3_stimulus_message_1011_gives_01100110() {
        let code = Hamming84::new();
        let cw = code.encode(&BitVec::from_str01("1011"));
        assert_eq!(cw.to_string01(), "01100110");
    }

    #[test]
    fn hamming74_is_hamming84_without_c8() {
        let h74 = Hamming74::new();
        let h84 = Hamming84::new();
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            let c74 = h74.encode(&msg);
            let c84 = h84.encode(&msg);
            assert_eq!(c74, c84.slice(0..7));
        }
    }

    #[test]
    fn minimum_distances() {
        assert_eq!(Hamming74::new().min_distance(), 3);
        assert_eq!(Hamming84::new().min_distance(), 4);
    }

    #[test]
    fn hamming74_corrects_every_single_error() {
        let code = Hamming74::new();
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            let cw = code.encode(&msg);
            for pos in 0..7 {
                let mut r = cw.clone();
                r.flip(pos);
                let d = code.decode(&r);
                assert!(d.message_is(&msg), "failed at msg {m:04b} pos {pos}");
                assert!(d.outcome.corrected());
            }
        }
    }

    #[test]
    fn hamming84_corrects_every_single_error() {
        let code = Hamming84::new();
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            let cw = code.encode(&msg);
            for pos in 0..8 {
                let mut r = cw.clone();
                r.flip(pos);
                let d = code.decode(&r);
                assert!(d.message_is(&msg), "failed at msg {m:04b} pos {pos}");
            }
        }
    }

    #[test]
    fn hamming84_detects_every_double_error() {
        let code = Hamming84::new();
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            let cw = code.encode(&msg);
            for pattern in WeightPatterns::new(8, 2) {
                let mut r = cw.clone();
                for pos in 0..8 {
                    if (pattern >> pos) & 1 == 1 {
                        r.flip(pos);
                    }
                }
                let d = code.decode(&r);
                assert_eq!(
                    d.outcome,
                    crate::DecodeOutcome::DetectedUncorrectable,
                    "double error not detected for msg {m:04b} pattern {pattern:08b}"
                );
            }
        }
    }

    #[test]
    fn hamming74_miscorrects_some_double_errors() {
        // The perfect (7,4) code cannot distinguish double errors from single
        // errors; verify the decoder indeed miscorrects at least one pattern
        // (the "worst case" column of Table I).
        let code = Hamming74::new();
        let msg = BitVec::from_str01("1011");
        let cw = code.encode(&msg);
        let mut r = cw.clone();
        r.flip(0);
        r.flip(1);
        let d = code.decode(&r);
        assert!(d.message.is_some());
        assert!(!d.message_is(&msg), "expected a miscorrection");
    }

    #[test]
    fn hamming84_weight_distribution_is_self_dual() {
        // Extended Hamming(8,4): 1 word of weight 0, 14 of weight 4, 1 of weight 8.
        let code = Hamming84::new();
        let mut hist = [0usize; 9];
        for (_, cw) in code.codebook() {
            hist[cw.weight()] += 1;
        }
        assert_eq!(hist[0], 1);
        assert_eq!(hist[4], 14);
        assert_eq!(hist[8], 1);
        assert_eq!(hist.iter().sum::<usize>(), 16);
    }

    #[test]
    fn hamming74_weight_distribution() {
        // (7,4): weights 0,3,4,7 with multiplicities 1,7,7,1.
        let code = Hamming74::new();
        let mut hist = [0usize; 8];
        for (_, cw) in code.codebook() {
            hist[cw.weight()] += 1;
        }
        assert_eq!(hist, [1, 0, 0, 7, 7, 0, 0, 1]);
    }

    #[test]
    fn general_hamming_family_parameters() {
        for r in 2..=5 {
            let code = HammingCode::new(r);
            assert_eq!(code.n(), (1 << r) - 1);
            assert_eq!(code.k(), code.n() - r);
            if code.k() <= 12 {
                assert_eq!(code.min_distance(), 3, "r={r}");
            }
            assert_eq!(code.redundancy(), r);
        }
    }

    #[test]
    fn general_hamming_corrects_single_errors() {
        let code = HammingCode::new(4); // (15,11)
        let msg = BitVec::from_u64(11, 0b101_0110_1001);
        let cw = code.encode(&msg);
        for pos in 0..15 {
            let mut r = cw.clone();
            r.flip(pos);
            let d = code.decode(&r);
            assert!(d.message_is(&msg), "failed at pos {pos}");
        }
    }

    #[test]
    fn shortened_3832_parameters_match_reference_14() {
        let code = ShortenedHamming3832::new();
        assert_eq!(code.n(), 38);
        assert_eq!(code.k(), 32);
        assert_eq!(code.generator().rows(), 32);
        assert_eq!(code.generator().cols(), 38);
        assert_eq!(code.parity_check().rows(), 6);
    }

    #[test]
    fn shortened_3832_corrects_single_errors() {
        let code = ShortenedHamming3832::new();
        let msg = BitVec::from_u64(32, 0xDEAD_BEEF);
        let cw = code.encode(&msg);
        assert_eq!(cw.slice(0..32), msg, "code must be systematic");
        for pos in [0, 7, 15, 31, 32, 37] {
            let mut r = cw.clone();
            r.flip(pos);
            let d = code.decode(&r);
            assert!(d.message_is(&msg), "failed at pos {pos}");
        }
    }

    #[test]
    fn shortened_3832_has_no_low_weight_codewords() {
        // d_min = 3: no nonzero codeword of weight 1 or 2 exists. Check by
        // confirming no column of H is zero and no two columns are equal.
        let code = ShortenedHamming3832::new();
        let h = code.parity_check();
        let cols: Vec<u64> = (0..38).map(|c| h.col(c).to_u64()).collect();
        for (i, &ci) in cols.iter().enumerate() {
            assert_ne!(ci, 0, "column {i} of H is zero");
            for (j, &cj) in cols.iter().enumerate().skip(i + 1) {
                assert_ne!(ci, cj, "columns {i} and {j} of H coincide");
            }
        }
    }
}
