//! Hamming codes: the (7,4) code, the extended (8,4) code exactly as given in
//! Eq. (1) of the paper, the general (2^r − 1, 2^r − 1 − r) family, and the
//! shortened (38,32) code used by the prior-art SFQ encoder of Peng et al.
//! (reference [14] of the paper).

use crate::decoder::{Decoded, SyndromeClass};
use crate::{validate_code_matrices, BlockCode, HardDecoder};
use gf2::{BitMat, BitVec};
use std::collections::HashMap;

/// The generator matrix of the extended Hamming(8,4) code, exactly Eq. (1) of
/// the paper (rows are messages bits m1..m4, columns are codeword bits c1..c8).
pub const G_HAMMING84_ROWS: [&str; 4] = ["11100001", "10011001", "01010101", "11010010"];

/// Returns the paper's Hamming(8,4) generator matrix as a [`BitMat`].
#[must_use]
pub fn hamming84_generator() -> BitMat {
    BitMat::from_str_rows(&G_HAMMING84_ROWS)
}

/// Returns the paper's Hamming(7,4) generator matrix: the Hamming(8,4) matrix
/// of Eq. (1) with the final (overall-parity) column `c8` removed.
#[must_use]
pub fn hamming74_generator() -> BitMat {
    let g84 = hamming84_generator();
    g84.select_cols(&[0, 1, 2, 3, 4, 5, 6])
}

fn parity_check_from_generator(g: &BitMat) -> BitMat {
    g.null_space()
}

/// The Hamming(7,4) single-error-correcting code, `d_min = 3`.
///
/// The encoder uses the boolean equations of Eq. (3) in the paper without the
/// overall parity bit `c8`:
/// `c1 = m1⊕m2⊕m4`, `c2 = m1⊕m3⊕m4`, `c3 = m1`, `c4 = m2⊕m3⊕m4`,
/// `c5 = m2`, `c6 = m3`, `c7 = m4`.
#[derive(Debug, Clone)]
pub struct Hamming74 {
    g: BitMat,
    h: BitMat,
    /// Syndrome (as integer) → error position, for single-error correction.
    syndrome_table: Vec<Option<usize>>,
}

impl Hamming74 {
    /// Constructs the code and its syndrome-decoding table.
    #[must_use]
    pub fn new() -> Self {
        let g = hamming74_generator();
        let h = parity_check_from_generator(&g);
        validate_code_matrices(&g, &h);
        let mut syndrome_table = vec![None; 1 << h.rows()];
        for pos in 0..7 {
            let mut e = BitVec::zeros(7);
            e.set(pos, true);
            let s = h.mul_vec(&e).to_u64() as usize;
            debug_assert!(syndrome_table[s].is_none(), "duplicate syndrome");
            syndrome_table[s] = Some(pos);
        }
        Hamming74 {
            g,
            h,
            syndrome_table,
        }
    }

    /// Extracts the message from a codeword using the systematic positions
    /// `c3, c5, c6, c7` (0-indexed columns 2, 4, 5, 6).
    #[must_use]
    pub fn extract_message(codeword: &BitVec) -> BitVec {
        BitVec::from_bits(&[
            codeword.get(2),
            codeword.get(4),
            codeword.get(5),
            codeword.get(6),
        ])
    }
}

impl Default for Hamming74 {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockCode for Hamming74 {
    fn name(&self) -> &str {
        "Hamming(7,4)"
    }
    fn n(&self) -> usize {
        7
    }
    fn k(&self) -> usize {
        4
    }
    fn generator(&self) -> &BitMat {
        &self.g
    }
    fn parity_check(&self) -> &BitMat {
        &self.h
    }
    fn message_of(&self, codeword: &BitVec) -> Option<BitVec> {
        if self.is_codeword(codeword) {
            Some(Self::extract_message(codeword))
        } else {
            None
        }
    }
}

impl HardDecoder for Hamming74 {
    /// Classic syndrome decoding: every nonzero syndrome is interpreted as a
    /// single-bit error and corrected. This is the "worst case" policy of
    /// Table I — 2- and 3-bit errors are miscorrected or pass undetected.
    fn decode(&self, received: &BitVec) -> Decoded {
        assert_eq!(received.len(), 7, "received word must be 7 bits");
        let syndrome = self.syndrome(received).to_u64() as usize;
        if syndrome == 0 {
            let msg = Self::extract_message(received);
            return Decoded::clean(received.clone(), msg);
        }
        match self.syndrome_table[syndrome] {
            Some(pos) => {
                let mut corrected = received.clone();
                corrected.flip(pos);
                let msg = Self::extract_message(&corrected);
                Decoded::corrected(corrected, msg, 1)
            }
            // For the perfect (7,4) code every syndrome maps to a position, so
            // this branch is unreachable; kept for robustness.
            None => Decoded::detected(),
        }
    }

    fn syndrome_class(&self) -> SyndromeClass {
        SyndromeClass::ColumnFlip
    }
}

/// The extended Hamming(8,4) code of Eq. (1), `d_min = 4` — the paper's
/// best-performing encoder under process parameter variations.
#[derive(Debug, Clone)]
pub struct Hamming84 {
    g: BitMat,
    h: BitMat,
    inner: Hamming74,
}

impl Hamming84 {
    /// Constructs the code from the paper's generator matrix.
    #[must_use]
    pub fn new() -> Self {
        let g = hamming84_generator();
        let h = parity_check_from_generator(&g);
        validate_code_matrices(&g, &h);
        Hamming84 {
            g,
            h,
            inner: Hamming74::new(),
        }
    }

    /// Extracts the message from a codeword using the systematic positions
    /// `c3, c5, c6, c7` (0-indexed columns 2, 4, 5, 6).
    #[must_use]
    pub fn extract_message(codeword: &BitVec) -> BitVec {
        BitVec::from_bits(&[
            codeword.get(2),
            codeword.get(4),
            codeword.get(5),
            codeword.get(6),
        ])
    }

    /// Overall parity of the 8-bit word (true = odd number of ones).
    #[must_use]
    pub fn overall_parity(word: &BitVec) -> bool {
        word.weight() % 2 == 1
    }
}

impl Default for Hamming84 {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockCode for Hamming84 {
    fn name(&self) -> &str {
        "Hamming(8,4)"
    }
    fn n(&self) -> usize {
        8
    }
    fn k(&self) -> usize {
        4
    }
    fn generator(&self) -> &BitMat {
        &self.g
    }
    fn parity_check(&self) -> &BitMat {
        &self.h
    }
    fn message_of(&self, codeword: &BitVec) -> Option<BitVec> {
        if self.is_codeword(codeword) {
            Some(Self::extract_message(codeword))
        } else {
            None
        }
    }
}

impl HardDecoder for Hamming84 {
    /// Standard extended-Hamming decoding:
    ///
    /// * zero syndrome on the (7,4) part and even overall parity → accept;
    /// * odd overall parity → assume a single error, correct it via the (7,4)
    ///   syndrome (or flip the parity bit itself);
    /// * even overall parity with nonzero (7,4) syndrome → a double error:
    ///   detected but not correctable (raises the error flag of Fig. 1).
    fn decode(&self, received: &BitVec) -> Decoded {
        assert_eq!(received.len(), 8, "received word must be 8 bits");
        let inner_word = received.slice(0..7);
        let inner_syndrome = self.inner.syndrome(&inner_word).to_u64() as usize;
        let parity_odd = Self::overall_parity(received);

        if inner_syndrome == 0 && !parity_odd {
            let msg = Self::extract_message(received);
            return Decoded::clean(received.clone(), msg);
        }
        if parity_odd {
            // Odd number of errors assumed to be exactly one.
            let mut corrected = received.clone();
            if inner_syndrome == 0 {
                // The error is in the overall parity bit c8 itself.
                corrected.flip(7);
            } else if let Some(pos) = self.inner.syndrome_table[inner_syndrome] {
                corrected.flip(pos);
            } else {
                return Decoded::detected();
            }
            let msg = Self::extract_message(&corrected);
            return Decoded::corrected(corrected, msg, 1);
        }
        // Even parity, nonzero syndrome: an even (≥2) number of errors.
        Decoded::detected()
    }

    /// Extended-Hamming decoding is exactly column matching against `H`:
    /// single errors reproduce their column, doubles land on even-overall
    /// syndromes that match no column and are detected.
    fn syndrome_class(&self) -> SyndromeClass {
        SyndromeClass::ColumnFlip
    }
}

/// A general binary Hamming code of redundancy `r`: parameters
/// `(2^r − 1, 2^r − 1 − r, 3)`.
///
/// The parity-check matrix has as columns the binary representations of
/// 1..2^r − 1, giving the textbook construction; the generator matrix is
/// derived from its null space. Used by the scaling study in the ablation
/// benches and to validate the (7,4) member against the paper's matrix.
#[derive(Debug, Clone)]
pub struct HammingCode {
    r: usize,
    g: BitMat,
    h: BitMat,
    name: String,
    /// Cached `(pivots, transform)` of [`crate::generator_right_inverse`]:
    /// the decoder calls `message_of` per received word, so the Gaussian
    /// elimination is done once at construction.
    extractor: (Vec<usize>, BitMat),
}

impl HammingCode {
    /// Constructs the Hamming code with `r` parity bits (`r ≥ 2`).
    ///
    /// # Panics
    /// Panics if `r < 2` or `r > 10`.
    #[must_use]
    pub fn new(r: usize) -> Self {
        assert!(
            (2..=10).contains(&r),
            "Hamming code redundancy must be in 2..=10"
        );
        let n = (1usize << r) - 1;
        // H columns are the numbers 1..=n in binary.
        let mut h = BitMat::zeros(r, n);
        for col in 0..n {
            let value = col + 1;
            for row in 0..r {
                if (value >> row) & 1 == 1 {
                    h.set(row, col, true);
                }
            }
        }
        let g = h.null_space();
        validate_code_matrices(&g, &h);
        let k = n - r;
        let extractor = crate::generator_right_inverse(&g);
        HammingCode {
            r,
            g,
            h,
            name: format!("Hamming({n},{k})"),
            extractor,
        }
    }

    /// Number of parity bits.
    #[must_use]
    pub fn redundancy(&self) -> usize {
        self.r
    }
}

impl BlockCode for HammingCode {
    fn name(&self) -> &str {
        &self.name
    }
    fn n(&self) -> usize {
        (1 << self.r) - 1
    }
    fn k(&self) -> usize {
        self.n() - self.r
    }
    fn generator(&self) -> &BitMat {
        &self.g
    }
    fn parity_check(&self) -> &BitMat {
        &self.h
    }
    fn message_of(&self, codeword: &BitVec) -> Option<BitVec> {
        if !self.is_codeword(codeword) {
            return None;
        }
        let (pivots, transform) = &self.extractor;
        let mut message = BitVec::zeros(self.k());
        for (i, &p) in pivots.iter().enumerate() {
            if codeword.get(p) {
                message.xor_assign(transform.row(i));
            }
        }
        Some(message)
    }
}

impl HardDecoder for HammingCode {
    fn decode(&self, received: &BitVec) -> Decoded {
        assert_eq!(received.len(), self.n(), "received word length mismatch");
        let syndrome = self.syndrome(received).to_u64() as usize;
        if syndrome == 0 {
            let msg = self
                .message_of(received)
                .expect("zero syndrome implies codeword");
            return Decoded::clean(received.clone(), msg);
        }
        // For the textbook construction the syndrome value is the 1-based
        // index of the erroneous position.
        let pos = syndrome - 1;
        let mut corrected = received.clone();
        corrected.flip(pos);
        match self.message_of(&corrected) {
            Some(msg) => Decoded::corrected(corrected, msg, 1),
            None => Decoded::detected(),
        }
    }

    fn syndrome_class(&self) -> SyndromeClass {
        SyndromeClass::ColumnFlip
    }
}

/// The (38,32) linear block code of the prior-art SFQ error-correction encoder
/// (Peng et al., reference [14] of the paper): a Hamming(63,57) code shortened
/// to a 32-bit message with six parity bits, detecting 2-bit and correcting
/// 1-bit errors.
#[derive(Debug, Clone)]
pub struct ShortenedHamming3832 {
    g: BitMat,
    h: BitMat,
}

impl ShortenedHamming3832 {
    /// Constructs the shortened code by expurgating message positions of the
    /// Hamming(63,57) parent until 32 information bits remain.
    #[must_use]
    pub fn new() -> Self {
        let parent = HammingCode::new(6);
        // Systematic form of the parent: [I_57 | P]; shortening keeps the
        // first 32 information positions and all 6 parity positions.
        let (sys, _) = parent.generator().to_systematic();
        let keep_rows: Vec<usize> = (0..32).collect();
        let keep_cols: Vec<usize> = (0..32).chain(57..63).collect();
        let rows: Vec<BitVec> = keep_rows
            .iter()
            .map(|&r| keep_cols.iter().map(|&c| sys.get(r, c)).collect::<BitVec>())
            .collect();
        let g = BitMat::from_rows(rows);
        let h = g.null_space();
        validate_code_matrices(&g, &h);
        ShortenedHamming3832 { g, h }
    }
}

impl Default for ShortenedHamming3832 {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockCode for ShortenedHamming3832 {
    fn name(&self) -> &str {
        "Shortened Hamming(38,32)"
    }
    fn n(&self) -> usize {
        38
    }
    fn k(&self) -> usize {
        32
    }
    fn generator(&self) -> &BitMat {
        &self.g
    }
    fn parity_check(&self) -> &BitMat {
        &self.h
    }
    fn min_distance(&self) -> usize {
        // 2^32 codewords are too many to enumerate; the shortened Hamming code
        // inherits d_min = 3 from its parent. Verified structurally in tests
        // by exhibiting a weight-3 codeword and checking no weight-1/2 ones.
        3
    }
    fn message_of(&self, codeword: &BitVec) -> Option<BitVec> {
        if self.is_codeword(codeword) {
            // Systematic: the first 32 positions are the message.
            Some(codeword.slice(0..32))
        } else {
            None
        }
    }
}

impl HardDecoder for ShortenedHamming3832 {
    fn decode(&self, received: &BitVec) -> Decoded {
        assert_eq!(received.len(), 38, "received word must be 38 bits");
        let syndrome = self.syndrome(received);
        if syndrome.is_zero() {
            let msg = received.slice(0..32);
            return Decoded::clean(received.clone(), msg);
        }
        // Single-error correction: find the column of H equal to the syndrome.
        for pos in 0..38 {
            if self.h.col(pos) == syndrome {
                let mut corrected = received.clone();
                corrected.flip(pos);
                let msg = corrected.slice(0..32);
                return Decoded::corrected(corrected, msg, 1);
            }
        }
        Decoded::detected()
    }

    fn syndrome_class(&self) -> SyndromeClass {
        SyndromeClass::ColumnFlip
    }
}

/// A parameterized shortened Hamming code with (optionally) replicated
/// parity: `k` data bits protected by `r = base_r × copies` check bits
/// (`n = k + r`, `d_min = 3`), single-error-correcting with detection of any
/// other nonzero syndrome.
///
/// The construction generalizes [`ShortenedHamming3832`]: data position `i`
/// is assigned the `i`-th non-power-of-two column code `c_i ∈ {3, 5, 6, 7,
/// 9, …}` of the base Hamming code with `base_r` parity bits, replicated
/// `copies` times across independent `base_r`-bit parity fields
/// (`v_i = c_i | c_i << base_r | …`), and the layout is systematic:
///
/// ```text
/// [ d_0 … d_{k-1} | p_0 … p_{r-1} ]      p_t = ⊕ { d_i : bit t of v_i is 1 }
/// ```
///
/// All columns of `H` are distinct and nonzero (replicated data codes have
/// weight ≥ 2·copies, parity columns are unit vectors), so `d_min = 3`
/// regardless of the replication factor. The redundancy is therefore a free
/// parameter, deliberately *not* tied to the information-theoretic minimum:
/// [`ShortenedHamming::wide_85_64`] spends `r = 3 × 7 = 21` check bits on a
/// 64-bit word — far beyond the 8 a (72,64) SEC-DED code needs — which makes
/// it the workspace's demonstration that the batch engine handles
/// redundancies `n − k > 20`, where a `2^(n-k)`-entry syndrome table could
/// never be built. Its decoder is pure column matching
/// ([`SyndromeClass::ColumnFlip`]): a `HashMap` from column value to
/// position replaces any table indexed by syndrome value.
#[derive(Debug, Clone)]
pub struct ShortenedHamming {
    k: usize,
    r: usize,
    g: BitMat,
    h: BitMat,
    name: String,
    /// Column value (syndrome as integer) → codeword position.
    column_of: HashMap<u64, usize>,
}

impl ShortenedHamming {
    /// Constructs the shortened Hamming code with `k` data bits and
    /// `base_r × copies` check bits.
    ///
    /// # Panics
    /// Panics if the parameters are out of range (`base_r < 2`, `copies <
    /// 1`, `base_r × copies > 63`, `k = 0`), the base code is too short
    /// (`k > 2^base_r − base_r − 1`), or `k` is too small to give every base
    /// check bit a data source (which would leave constant-zero parity bits
    /// — not an error-correction code worth building circuits for).
    #[must_use]
    pub fn new(k: usize, base_r: usize, copies: usize) -> Self {
        assert!(base_r >= 2, "base check-bit count must be at least 2");
        assert!(copies >= 1, "at least one parity copy");
        let r = base_r * copies;
        assert!(r <= 63, "total check-bit count must be at most 63");
        assert!(k >= 1, "at least one data bit");
        let n = k + r;

        // Base column codes of the data positions: the first k
        // non-power-of-two values (the parity positions take the powers of
        // two).
        let base_codes: Vec<u64> = (3..(1u64 << base_r))
            .filter(|v| !v.is_power_of_two())
            .take(k)
            .collect();
        assert_eq!(
            base_codes.len(),
            k,
            "base Hamming({}, {}) too short for k={k}",
            (1u64 << base_r) - 1,
            (1u64 << base_r) - 1 - base_r as u64,
        );
        for t in 0..base_r {
            assert!(
                base_codes.iter().any(|c| (c >> t) & 1 == 1),
                "column codes leave base check bit {t} unused (k={k} too small \
                 for base_r={base_r})"
            );
        }
        // Replicate each base code across the `copies` parity fields.
        let codes: Vec<u64> = base_codes
            .iter()
            .map(|&c| (0..copies).fold(0u64, |v, j| v | (c << (j * base_r))))
            .collect();

        // Systematic generator [ I_k | P ] and parity check [ Pᵀ | I_r ].
        let mut g = BitMat::zeros(k, n);
        let mut h = BitMat::zeros(r, n);
        for (i, &v) in codes.iter().enumerate() {
            g.set(i, i, true);
            for t in 0..r {
                if (v >> t) & 1 == 1 {
                    g.set(i, k + t, true);
                    h.set(t, i, true);
                }
            }
        }
        for t in 0..r {
            h.set(t, k + t, true);
        }
        validate_code_matrices(&g, &h);

        let column_of = (0..n)
            .map(|pos| {
                let value = if pos < k {
                    codes[pos]
                } else {
                    1u64 << (pos - k)
                };
                (value, pos)
            })
            .collect();

        ShortenedHamming {
            k,
            r,
            g,
            h,
            name: format!("Shortened Hamming({n},{k})"),
            column_of,
        }
    }

    /// The wide demonstration member: 64 data bits, 3 × 7 = 21 check bits —
    /// the first catalog code whose redundancy exceeds the old batch-engine
    /// action-table limit of 20.
    #[must_use]
    pub fn wide_85_64() -> Self {
        Self::new(64, 7, 3)
    }

    /// Number of check bits `r = n − k`.
    #[must_use]
    pub fn check_bits(&self) -> usize {
        self.r
    }

    /// Extracts the message from a codeword: the code is systematic, so the
    /// message is the first `k` positions.
    #[must_use]
    pub fn extract_message(&self, codeword: &BitVec) -> BitVec {
        codeword.slice(0..self.k)
    }
}

impl BlockCode for ShortenedHamming {
    fn name(&self) -> &str {
        &self.name
    }
    fn n(&self) -> usize {
        self.k + self.r
    }
    fn k(&self) -> usize {
        self.k
    }
    fn generator(&self) -> &BitMat {
        &self.g
    }
    fn parity_check(&self) -> &BitMat {
        &self.h
    }
    fn min_distance(&self) -> usize {
        // Structural lower bound: all columns of H are nonzero and pairwise
        // distinct (distinct integers by construction), so no codeword of
        // weight ≤ 2 exists. For k ≥ 3 the bound is met: data codes 3 and 5
        // XOR to 6, the column code of the third data position, giving a
        // weight-3 codeword. With fewer data bits no such triple exists and
        // replicated parity pushes the distance higher; those codebooks
        // have at most 3 nonzero words, so enumerate them. Verified in
        // tests.
        if self.k >= 3 {
            3
        } else {
            (1u64..(1 << self.k))
                .map(|m| self.encode(&BitVec::from_u64(self.k, m)).weight())
                .min()
                .expect("at least one nonzero codeword")
        }
    }
    fn message_of(&self, codeword: &BitVec) -> Option<BitVec> {
        if self.is_codeword(codeword) {
            Some(self.extract_message(codeword))
        } else {
            None
        }
    }
}

impl HardDecoder for ShortenedHamming {
    /// Column-matching syndrome decoding: zero syndrome → accept; syndrome
    /// equal to a column of `H` → flip that position; anything else →
    /// detected but uncorrectable.
    fn decode(&self, received: &BitVec) -> Decoded {
        assert_eq!(received.len(), self.n(), "received word length mismatch");
        let syndrome = self.syndrome(received).to_u64();
        if syndrome == 0 {
            let msg = self.extract_message(received);
            return Decoded::clean(received.clone(), msg);
        }
        match self.column_of.get(&syndrome) {
            Some(&pos) => {
                let mut corrected = received.clone();
                corrected.flip(pos);
                let msg = self.extract_message(&corrected);
                Decoded::corrected(corrected, msg, 1)
            }
            None => Decoded::detected(),
        }
    }

    fn syndrome_class(&self) -> SyndromeClass {
        SyndromeClass::ColumnFlip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::WeightPatterns;

    #[test]
    fn hamming84_matches_paper_equations() {
        let code = Hamming84::new();
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            let cw = code.encode(&msg);
            let (m1, m2, m3, m4) = (msg.get(0), msg.get(1), msg.get(2), msg.get(3));
            // Eq. (3) of the paper.
            assert_eq!(cw.get(0), m1 ^ m2 ^ m4, "c1 mismatch for m={m:04b}");
            assert_eq!(cw.get(1), m1 ^ m3 ^ m4, "c2 mismatch");
            assert_eq!(cw.get(2), m1, "c3 mismatch");
            assert_eq!(cw.get(3), m2 ^ m3 ^ m4, "c4 mismatch");
            assert_eq!(cw.get(4), m2, "c5 mismatch");
            assert_eq!(cw.get(5), m3, "c6 mismatch");
            assert_eq!(cw.get(6), m4, "c7 mismatch");
            assert_eq!(cw.get(7), m1 ^ m2 ^ m3, "c8 mismatch");
        }
    }

    #[test]
    fn fig3_stimulus_message_1011_gives_01100110() {
        let code = Hamming84::new();
        let cw = code.encode(&BitVec::from_str01("1011"));
        assert_eq!(cw.to_string01(), "01100110");
    }

    #[test]
    fn hamming74_is_hamming84_without_c8() {
        let h74 = Hamming74::new();
        let h84 = Hamming84::new();
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            let c74 = h74.encode(&msg);
            let c84 = h84.encode(&msg);
            assert_eq!(c74, c84.slice(0..7));
        }
    }

    #[test]
    fn minimum_distances() {
        assert_eq!(Hamming74::new().min_distance(), 3);
        assert_eq!(Hamming84::new().min_distance(), 4);
    }

    #[test]
    fn hamming74_corrects_every_single_error() {
        let code = Hamming74::new();
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            let cw = code.encode(&msg);
            for pos in 0..7 {
                let mut r = cw.clone();
                r.flip(pos);
                let d = code.decode(&r);
                assert!(d.message_is(&msg), "failed at msg {m:04b} pos {pos}");
                assert!(d.outcome.corrected());
            }
        }
    }

    #[test]
    fn hamming84_corrects_every_single_error() {
        let code = Hamming84::new();
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            let cw = code.encode(&msg);
            for pos in 0..8 {
                let mut r = cw.clone();
                r.flip(pos);
                let d = code.decode(&r);
                assert!(d.message_is(&msg), "failed at msg {m:04b} pos {pos}");
            }
        }
    }

    #[test]
    fn hamming84_detects_every_double_error() {
        let code = Hamming84::new();
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            let cw = code.encode(&msg);
            for pattern in WeightPatterns::new(8, 2) {
                let mut r = cw.clone();
                for pos in 0..8 {
                    if (pattern >> pos) & 1 == 1 {
                        r.flip(pos);
                    }
                }
                let d = code.decode(&r);
                assert_eq!(
                    d.outcome,
                    crate::DecodeOutcome::DetectedUncorrectable,
                    "double error not detected for msg {m:04b} pattern {pattern:08b}"
                );
            }
        }
    }

    #[test]
    fn hamming74_miscorrects_some_double_errors() {
        // The perfect (7,4) code cannot distinguish double errors from single
        // errors; verify the decoder indeed miscorrects at least one pattern
        // (the "worst case" column of Table I).
        let code = Hamming74::new();
        let msg = BitVec::from_str01("1011");
        let cw = code.encode(&msg);
        let mut r = cw.clone();
        r.flip(0);
        r.flip(1);
        let d = code.decode(&r);
        assert!(d.message.is_some());
        assert!(!d.message_is(&msg), "expected a miscorrection");
    }

    #[test]
    fn hamming84_weight_distribution_is_self_dual() {
        // Extended Hamming(8,4): 1 word of weight 0, 14 of weight 4, 1 of weight 8.
        let code = Hamming84::new();
        let mut hist = [0usize; 9];
        for (_, cw) in code.codebook() {
            hist[cw.weight()] += 1;
        }
        assert_eq!(hist[0], 1);
        assert_eq!(hist[4], 14);
        assert_eq!(hist[8], 1);
        assert_eq!(hist.iter().sum::<usize>(), 16);
    }

    #[test]
    fn hamming74_weight_distribution() {
        // (7,4): weights 0,3,4,7 with multiplicities 1,7,7,1.
        let code = Hamming74::new();
        let mut hist = [0usize; 8];
        for (_, cw) in code.codebook() {
            hist[cw.weight()] += 1;
        }
        assert_eq!(hist, [1, 0, 0, 7, 7, 0, 0, 1]);
    }

    #[test]
    fn general_hamming_family_parameters() {
        for r in 2..=5 {
            let code = HammingCode::new(r);
            assert_eq!(code.n(), (1 << r) - 1);
            assert_eq!(code.k(), code.n() - r);
            if code.k() <= 12 {
                assert_eq!(code.min_distance(), 3, "r={r}");
            }
            assert_eq!(code.redundancy(), r);
        }
    }

    #[test]
    fn general_hamming_corrects_single_errors() {
        let code = HammingCode::new(4); // (15,11)
        let msg = BitVec::from_u64(11, 0b101_0110_1001);
        let cw = code.encode(&msg);
        for pos in 0..15 {
            let mut r = cw.clone();
            r.flip(pos);
            let d = code.decode(&r);
            assert!(d.message_is(&msg), "failed at pos {pos}");
        }
    }

    #[test]
    fn shortened_3832_parameters_match_reference_14() {
        let code = ShortenedHamming3832::new();
        assert_eq!(code.n(), 38);
        assert_eq!(code.k(), 32);
        assert_eq!(code.generator().rows(), 32);
        assert_eq!(code.generator().cols(), 38);
        assert_eq!(code.parity_check().rows(), 6);
    }

    #[test]
    fn shortened_3832_corrects_single_errors() {
        let code = ShortenedHamming3832::new();
        let msg = BitVec::from_u64(32, 0xDEAD_BEEF);
        let cw = code.encode(&msg);
        assert_eq!(cw.slice(0..32), msg, "code must be systematic");
        for pos in [0, 7, 15, 31, 32, 37] {
            let mut r = cw.clone();
            r.flip(pos);
            let d = code.decode(&r);
            assert!(d.message_is(&msg), "failed at pos {pos}");
        }
    }

    #[test]
    fn shortened_family_parameters_and_roundtrip() {
        for (k, base_r, copies) in [(4usize, 3usize, 1usize), (8, 4, 1), (32, 6, 2), (64, 7, 3)] {
            let r = base_r * copies;
            let code = ShortenedHamming::new(k, base_r, copies);
            assert_eq!((code.n(), code.k()), (k + r, k));
            assert_eq!(code.check_bits(), r);
            assert_eq!(code.name(), format!("Shortened Hamming({},{k})", k + r));
            assert_eq!(code.syndrome_class(), SyndromeClass::ColumnFlip);
            let msg: BitVec = (0..k).map(|i| i % 3 == 0).collect();
            let cw = code.encode(&msg);
            assert_eq!(cw.slice(0..k), msg, "systematic");
            assert_eq!(code.message_of(&cw), Some(msg));
        }
    }

    #[test]
    fn wide_85_64_corrects_singles_and_flags_non_column_syndromes() {
        let code = ShortenedHamming::wide_85_64();
        assert_eq!((code.n(), code.k(), code.check_bits()), (85, 64, 21));
        let msg = BitVec::from_u64(64, 0xDEAD_BEEF_0123_4567);
        let cw = code.encode(&msg);
        for pos in [0usize, 17, 63, 64, 84] {
            let mut r = cw.clone();
            r.flip(pos);
            let d = code.decode(&r);
            assert!(d.message_is(&msg), "pos {pos}");
            assert_eq!(d.codeword, Some(cw.clone()));
        }
        // Two flipped parity bits XOR to a two-bit syndrome confined to one
        // parity field; every data column repeats its base code across all
        // three fields, so the syndrome matches no column of H — detected.
        let mut r = cw.clone();
        r.flip(64 + 20);
        r.flip(64 + 19);
        assert_eq!(
            code.decode(&r).outcome,
            crate::DecodeOutcome::DetectedUncorrectable
        );
    }

    #[test]
    fn wide_85_64_has_distinct_nonzero_columns() {
        let code = ShortenedHamming::wide_85_64();
        let h = code.parity_check();
        let mut cols: Vec<u64> = (0..code.n()).map(|c| h.col(c).to_u64()).collect();
        cols.sort_unstable();
        assert!(cols[0] != 0, "no zero column");
        cols.dedup();
        assert_eq!(cols.len(), 85, "columns pairwise distinct (d_min = 3)");
        assert_eq!(code.min_distance(), 3);
        // The structural weight-3 codeword: data codes 3 ^ 5 = 6.
        let mut msg = BitVec::zeros(64);
        msg.set(0, true);
        msg.set(1, true);
        msg.set(2, true);
        assert_eq!(code.encode(&msg).weight(), 3);
    }

    #[test]
    fn shortened_family_min_distance_is_exact_below_three_data_bits() {
        // k ≥ 3: the structural weight-3 codeword exists regardless of the
        // replication factor.
        assert_eq!(ShortenedHamming::new(3, 3, 2).min_distance(), 3);
        // k = 2, doubled parity: rows have weight 1 + 2·2 = 5 and the pair
        // sums to weight 2 + 2·2 = 6, so d_min is 5, not the generic 3.
        assert_eq!(ShortenedHamming::new(2, 3, 2).min_distance(), 5);
        assert_eq!(ShortenedHamming::new(2, 3, 1).min_distance(), 3);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn shortened_family_rejects_overlong_k() {
        let _ = ShortenedHamming::new(5, 3, 1); // (7,4) base has only 4 data columns
    }

    #[test]
    #[should_panic(expected = "unused")]
    fn shortened_family_rejects_unused_check_bits() {
        // k = 1 uses only column code 3 = 0b011, leaving base check bit 2
        // with no data source — a constant-zero parity bit.
        let _ = ShortenedHamming::new(1, 3, 1);
    }

    #[test]
    fn shortened_3832_has_no_low_weight_codewords() {
        // d_min = 3: no nonzero codeword of weight 1 or 2 exists. Check by
        // confirming no column of H is zero and no two columns are equal.
        let code = ShortenedHamming3832::new();
        let h = code.parity_check();
        let cols: Vec<u64> = (0..38).map(|c| h.col(c).to_u64()).collect();
        for (i, &ci) in cols.iter().enumerate() {
            assert_ne!(ci, 0, "column {i} of H is zero");
            for (j, &cj) in cols.iter().enumerate().skip(i + 1) {
                assert_ne!(ci, cj, "columns {i} and {j} of H coincide");
            }
        }
    }
}
