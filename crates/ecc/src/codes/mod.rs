//! Concrete code constructions: the three codes the paper evaluates plus the
//! families they come from and the baselines it cites.

pub mod bch;
pub mod hamming;
pub mod ldpc;
pub mod reed_muller;
pub mod repetition;
pub mod sec_ded;
pub mod uncoded;
