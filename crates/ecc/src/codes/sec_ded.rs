//! Parameterized SEC-DED (single-error-correcting, double-error-detecting)
//! codes: shortened *extended* Hamming codes for power-of-two data widths.
//!
//! The paper's extended Hamming(8,4) code is the smallest member of a family
//! that real superconducting memory and link deployments use at much wider
//! words — most prominently the (72,64) code protecting 64-bit words with
//! eight check bits. [`SecDed::new(m)`] constructs the member with `k = 2^m`
//! data bits:
//!
//! | `m` | code      | check bits |
//! |-----|-----------|------------|
//! | 2   | (8,4)     | 4          |
//! | 3   | (13,8)    | 5          |
//! | 4   | (22,16)   | 6          |
//! | 5   | (39,32)   | 7          |
//! | 6   | (72,64)   | 8          |
//!
//! # Construction
//!
//! Take the binary Hamming code with `r = m + 1` parity bits (length
//! `2^r − 1`), shorten its data positions down to `k = 2^m`, and extend the
//! result with an overall parity bit. Concretely, each data bit `i` is
//! assigned a distinct non-power-of-two column code `v_i ∈ {3, 5, 6, 7, 9, …}`
//! and the codeword layout is systematic:
//!
//! ```text
//! [ d_0 … d_{k-1} | p_0 … p_{r-1} | q ]
//!   p_t = ⊕ { d_i : bit t of v_i is 1 }       (inner Hamming parity)
//!   q   = ⊕ all other n−1 codeword bits       (overall parity)
//! ```
//!
//! The parity-check matrix has `r` inner rows (column `j` carries the binary
//! code of position `j`) plus an all-ones overall-parity row, so every column
//! is distinct and every column has a `1` in the last row. A single error
//! reproduces its column as the syndrome (odd overall parity); a double error
//! XORs two columns, which zeroes the overall-parity row and therefore can
//! never be mistaken for a column — the decoder raises
//! [`DecodeOutcome::DetectedUncorrectable`](crate::DecodeOutcome) instead.
//! This is the structural argument behind `d_min = 4` for every member.
//!
//! The family is deliberately decoder-friendly for the bit-sliced batch
//! engine: the hard decision depends only on the `(n−k)`-bit syndrome
//! (≤ 256 values at (72,64)), so the `sfq-batch` syndrome-action table stays
//! exact.

use crate::decoder::Decoded;
use crate::{validate_code_matrices, BlockCode, HardDecoder};
use gf2::{BitMat, BitVec};

/// Smallest supported data-width exponent (`k = 4`, the paper's word size).
pub const SECDED_MIN_M: usize = 2;
/// Largest supported data-width exponent (`k = 64`, the (72,64) code).
pub const SECDED_MAX_M: usize = 6;

/// A shortened extended-Hamming SEC-DED code with `2^m` data bits.
#[derive(Debug, Clone)]
pub struct SecDed {
    m: usize,
    k: usize,
    /// Inner Hamming redundancy (`m + 1`); total check bits are `r + 1`.
    r: usize,
    g: BitMat,
    h: BitMat,
    name: String,
    /// Syndrome (as integer) → error position, for single-error correction.
    /// `None` entries are syndromes reachable only by ≥2 errors.
    syndrome_table: Vec<Option<usize>>,
}

impl SecDed {
    /// Constructs the SEC-DED code with `k = 2^m` data bits.
    ///
    /// # Panics
    /// Panics if `m` is outside [`SECDED_MIN_M`]`..=`[`SECDED_MAX_M`].
    #[must_use]
    pub fn new(m: usize) -> Self {
        assert!(
            (SECDED_MIN_M..=SECDED_MAX_M).contains(&m),
            "SEC-DED data-width exponent must be in {SECDED_MIN_M}..={SECDED_MAX_M} (got {m})"
        );
        let k = 1usize << m;
        let r = m + 1;
        let n = k + r + 1;

        // Column codes of the data positions: the first k non-power-of-two
        // values, exactly the data columns of the parent Hamming code that
        // survive shortening.
        let codes: Vec<usize> = (3..(1usize << r))
            .filter(|v| !v.is_power_of_two())
            .take(k)
            .collect();
        assert_eq!(codes.len(), k, "parent Hamming code too short for k={k}");

        // Systematic generator: [ I_k | P | q ].
        let mut g = BitMat::zeros(k, n);
        for (i, &v) in codes.iter().enumerate() {
            g.set(i, i, true);
            for t in 0..r {
                if (v >> t) & 1 == 1 {
                    g.set(i, k + t, true);
                }
            }
            // Overall parity keeps every row (hence every codeword) even.
            g.set(i, n - 1, (1 + v.count_ones() as usize) % 2 == 1);
        }

        // Parity check: r inner rows + the all-ones overall-parity row.
        let mut h = BitMat::zeros(r + 1, n);
        for t in 0..r {
            for (i, &v) in codes.iter().enumerate() {
                if (v >> t) & 1 == 1 {
                    h.set(t, i, true);
                }
            }
            h.set(t, k + t, true);
        }
        for j in 0..n {
            h.set(r, j, true);
        }
        validate_code_matrices(&g, &h);

        // Every column of H, as an integer, names the single-error syndrome
        // of its position.
        let mut syndrome_table = vec![None; 1 << (r + 1)];
        for pos in 0..n {
            let s = (0..=r).fold(0usize, |acc, t| acc | (usize::from(h.get(t, pos)) << t));
            debug_assert!(syndrome_table[s].is_none(), "duplicate column in H");
            syndrome_table[s] = Some(pos);
        }

        SecDed {
            m,
            k,
            r,
            g,
            h,
            name: format!("SEC-DED({n},{k})"),
            syndrome_table,
        }
    }

    /// Every catalog member from (13,8) up to (72,64).
    #[must_use]
    pub fn family() -> Vec<SecDed> {
        (3..=SECDED_MAX_M).map(SecDed::new).collect()
    }

    /// The data-width exponent `m` (`k = 2^m`).
    #[must_use]
    pub fn data_exponent(&self) -> usize {
        self.m
    }

    /// Number of check bits (`n − k = m + 2`).
    #[must_use]
    pub fn check_bits(&self) -> usize {
        self.r + 1
    }

    /// Extracts the message from a codeword: the code is systematic, so the
    /// message is the first `k` positions.
    #[must_use]
    pub fn extract_message(&self, codeword: &BitVec) -> BitVec {
        codeword.slice(0..self.k)
    }
}

impl BlockCode for SecDed {
    fn name(&self) -> &str {
        &self.name
    }
    fn n(&self) -> usize {
        self.k + self.r + 1
    }
    fn k(&self) -> usize {
        self.k
    }
    fn generator(&self) -> &BitMat {
        &self.g
    }
    fn parity_check(&self) -> &BitMat {
        &self.h
    }
    fn min_distance(&self) -> usize {
        // Exhaustive enumeration is impossible at k = 64; the distance is
        // structural: no column of H is zero, columns are pairwise distinct,
        // and any two columns XOR to an even-last-row value that matches no
        // column, so no codeword of weight ≤ 3 exists — while two data
        // columns plus the two matching parity columns form a weight-4
        // codeword. Verified structurally in the unit tests.
        4
    }
    fn message_of(&self, codeword: &BitVec) -> Option<BitVec> {
        if self.is_codeword(codeword) {
            Some(self.extract_message(codeword))
        } else {
            None
        }
    }
}

impl HardDecoder for SecDed {
    /// Standard SEC-DED syndrome decoding:
    ///
    /// * zero syndrome → accept;
    /// * syndrome equals a column of `H` (odd overall parity) → flip that
    ///   position;
    /// * any other syndrome (in particular every double error, whose overall
    ///   parity is even) → detected but uncorrectable.
    ///
    /// The decision depends only on the syndrome, which is what lets the
    /// bit-sliced batch engine tabulate this decoder exactly.
    fn decode(&self, received: &BitVec) -> Decoded {
        assert_eq!(received.len(), self.n(), "received word length mismatch");
        let syndrome = self.syndrome(received).to_u64() as usize;
        if syndrome == 0 {
            let msg = self.extract_message(received);
            return Decoded::clean(received.clone(), msg);
        }
        match self.syndrome_table[syndrome] {
            Some(pos) => {
                let mut corrected = received.clone();
                corrected.flip(pos);
                let msg = self.extract_message(&corrected);
                Decoded::corrected(corrected, msg, 1)
            }
            None => Decoded::detected(),
        }
    }

    /// The decision rule above *is* column matching against `H` (the
    /// syndrome table is keyed by column values), so the batch engine may
    /// compile this decoder without enumerating syndromes.
    fn syndrome_class(&self) -> crate::SyndromeClass {
        crate::SyndromeClass::ColumnFlip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecodeOutcome;

    fn sample_messages(k: usize, count: usize) -> Vec<BitVec> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15);
        (0..count)
            .map(|_| (0..k).map(|_| rng.random::<u64>() & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn family_parameters_match_the_table() {
        let expected = [(2, 8, 4), (3, 13, 8), (4, 22, 16), (5, 39, 32), (6, 72, 64)];
        for (m, n, k) in expected {
            let code = SecDed::new(m);
            assert_eq!((code.n(), code.k()), (n, k), "m={m}");
            assert_eq!(code.check_bits(), m + 2);
            assert_eq!(code.name(), format!("SEC-DED({n},{k})"));
            assert_eq!(code.data_exponent(), m);
        }
        assert_eq!(SecDed::family().len(), 4);
    }

    #[test]
    fn code_is_systematic() {
        for m in SECDED_MIN_M..=SECDED_MAX_M {
            let code = SecDed::new(m);
            for msg in sample_messages(code.k(), 8) {
                let cw = code.encode(&msg);
                assert_eq!(cw.slice(0..code.k()), msg, "m={m}");
                assert_eq!(code.message_of(&cw), Some(msg), "m={m}");
            }
        }
    }

    #[test]
    fn every_single_error_is_corrected() {
        for m in SECDED_MIN_M..=SECDED_MAX_M {
            let code = SecDed::new(m);
            for msg in sample_messages(code.k(), 4) {
                let cw = code.encode(&msg);
                for pos in 0..code.n() {
                    let mut r = cw.clone();
                    r.flip(pos);
                    let d = code.decode(&r);
                    assert!(d.message_is(&msg), "m={m} pos={pos}");
                    assert_eq!(d.outcome, DecodeOutcome::Corrected { bits_flipped: 1 });
                    assert_eq!(d.codeword, Some(cw.clone()));
                }
            }
        }
    }

    #[test]
    fn every_double_error_is_detected() {
        for m in SECDED_MIN_M..=SECDED_MAX_M {
            let code = SecDed::new(m);
            for msg in sample_messages(code.k(), 2) {
                let cw = code.encode(&msg);
                for a in 0..code.n() {
                    for b in (a + 1)..code.n() {
                        let mut r = cw.clone();
                        r.flip(a);
                        r.flip(b);
                        assert_eq!(
                            code.decode(&r).outcome,
                            DecodeOutcome::DetectedUncorrectable,
                            "m={m} pattern ({a},{b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn minimum_distance_is_structurally_four() {
        for m in SECDED_MIN_M..=SECDED_MAX_M {
            let code = SecDed::new(m);
            let h = code.parity_check();
            let n = code.n();
            let cols: Vec<u64> = (0..n).map(|j| h.col(j).to_u64()).collect();
            // Weight 1: no zero column. Weight 2: no repeated column.
            // Weight 3: any two columns XOR to an even-overall value, every
            // column is odd-overall, so the XOR matches no third column.
            let overall_bit = 1u64 << code.check_bits().saturating_sub(1);
            for (i, &ci) in cols.iter().enumerate() {
                assert_ne!(ci, 0, "m={m}: column {i} is zero");
                assert_ne!(ci & overall_bit, 0, "m={m}: column {i} even overall");
                for &cj in cols.iter().skip(i + 1) {
                    assert_ne!(ci, cj, "m={m}: repeated column");
                }
            }
            assert_eq!(code.min_distance(), 4);
            // A weight-4 codeword exists: encode a weight-2 message whose two
            // column codes XOR into two parity positions. Data codes 3 and 5
            // (bits 0+1 and 0+2) XOR to 6 = parity bits 1 and 2.
            let mut msg = BitVec::zeros(code.k());
            msg.set(0, true); // column code 3
            msg.set(1, true); // column code 5
            assert_eq!(code.encode(&msg).weight(), 4, "m={m}");
        }
    }

    #[test]
    fn smallest_member_matches_extended_hamming_84_capability() {
        let secded = SecDed::new(2);
        let h84 = crate::Hamming84::new();
        assert_eq!((secded.n(), secded.k()), (h84.n(), h84.k()));
        assert_eq!(secded.min_distance(), h84.min_distance());
        // Same weight distribution (both are (8,4) d=4 self-dual codes).
        use crate::weight::WeightDistribution;
        assert_eq!(
            WeightDistribution::of_code(&secded).counts,
            WeightDistribution::of_code(&h84).counts
        );
    }

    #[test]
    fn non_codeword_yields_no_message() {
        let code = SecDed::new(6);
        let msg = sample_messages(64, 1).pop().unwrap();
        let mut bad = code.encode(&msg);
        bad.flip(0);
        assert_eq!(code.message_of(&bad), None);
    }

    #[test]
    #[should_panic(expected = "data-width exponent")]
    fn rejects_out_of_range_m() {
        let _ = SecDed::new(7);
    }
}
