//! Binary primitive BCH codes: the workspace's first multi-error-correcting
//! (`t ≥ 2`) family.
//!
//! [`Bch::new(m, t)`] constructs the primitive binary BCH code of length
//! `n = 2^m − 1` with designed distance `2t + 1`: the generator polynomial is
//! the least common multiple of the minimal polynomials of `α, α², …, α^{2t}`
//! over GF(2), where `α` generates GF(2^m) (the [`gf2::field::Gf2m`]
//! log/antilog machinery built for this module). The code is systematic —
//! `[ d_0 … d_{k−1} | p_0 … p_{r−1} ]` with bit `i` holding the coefficient
//! of `x^{n−1−i}` — so message extraction is a prefix slice.
//!
//! The flagship catalog member is **BCH(31,16)** ([`Bch::bch_31_16`]):
//! `m = 5`, generator `m₁(x)·m₃(x)·m₅(x)` of degree 15, true minimum
//! distance 7, shipped with a *bounded-distance* decoder of radius `t = 2`.
//! Capping the radius below the designed `t = 3` is deliberate: every
//! 1- and 2-bit error is corrected, while every 3-bit error is **detected**
//! (`d_min = 7` leaves no codeword within distance 2 of a weight-3
//! corruption), which gives the link an error flag where SEC-DED would
//! already miscorrect — and it halves the syndrome work per dirty lane.
//!
//! # Decoding
//!
//! Hard decoding is the textbook algebraic chain, entirely over GF(2^m):
//!
//! 1. **Syndromes** `S_i = r(α^i)` for `i = 1 … 2t` (all zero → accept);
//! 2. **Berlekamp–Massey** builds the error-locator polynomial `σ(x)` (at
//!    the shipped `t = 2` this collapses to Peterson's direct solution, but
//!    the general iteration costs the same here and covers any radius);
//! 3. **Chien search** evaluates `σ` at `α^{−e}` for every position; the
//!    roots name the error locations. A locator degree above `t`, a root
//!    count below the degree, or a post-correction syndrome check failure
//!    all raise [`DecodeOutcome::DetectedUncorrectable`](crate::DecodeOutcome).
//!
//! The decision depends only on the syndrome (the error pattern), so the
//! decoder is coset-invariant like every other code in this crate; its
//! [`SyndromeClass::Algebraic`](crate::SyndromeClass) marks that batch
//! engines should bit-slice the syndrome accumulation and fall back to this
//! scalar decoder on dirty lanes only.

use crate::algebraic::{AlgebraicAction, AlgebraicDecode, SlicedSyndromePlan};
use crate::decoder::Decoded;
use crate::{validate_code_matrices, BlockCode, HardDecoder};
use gf2::field::{poly_degree, poly_rem, Gf2m};
use gf2::{BitMat, BitVec};
use serde::{Deserialize, Serialize};

/// A config-driven description of one binary primitive BCH family member:
/// codes are *data*, not code. A spec names the field extension degree `m`
/// (blocklength `2^m − 1`), the designed correction capability `t` (the
/// generator has roots `α … α^{2t}`), and the bounded decoding radius
/// (`≤ t`; capping below `t` trades correction for detection margin, see
/// [`Bch::bch_31_16`]).
///
/// [`BchSpec::REGISTRY`] lists the members the workspace ships end-to-end
/// (catalog, synthesis, batch engine, Monte-Carlo curves); any other valid
/// spec still constructs through [`Bch::from_spec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BchSpec {
    /// Field extension degree: the code lives in GF(2^m), `n = 2^m − 1`.
    pub m: u8,
    /// Designed correction capability (designed distance `2t + 1`).
    pub t: u8,
    /// Decoder radius: error patterns of weight ≤ `decode_radius` are
    /// corrected; heavier patterns inside the design margin are detected.
    pub decode_radius: u8,
}

impl BchSpec {
    /// The flagship BCH(31,16): designed distance 7, decoded at radius 2 so
    /// every double error corrects and every triple error is *detected*.
    pub const BCH_31_16: BchSpec = BchSpec {
        m: 5,
        t: 3,
        decode_radius: 2,
    };

    /// BCH(63,51): the high-rate `t = 2` member over GF(64).
    pub const BCH_63_51: BchSpec = BchSpec {
        m: 6,
        t: 2,
        decode_radius: 2,
    };

    /// BCH(63,45): the strongest shipped member — `t = 3` decoded at full
    /// radius, correcting every ≤ 3-bit error pattern.
    pub const BCH_63_45: BchSpec = BchSpec {
        m: 6,
        t: 3,
        decode_radius: 3,
    };

    /// Every BCH member the workspace ships through all layers.
    pub const REGISTRY: [BchSpec; 3] = [Self::BCH_31_16, Self::BCH_63_51, Self::BCH_63_45];

    /// The `(n, k)` parameters this spec produces, computed from the
    /// generator degree without building the full code matrices.
    ///
    /// # Panics
    /// Panics on the same invalid specs as [`Bch::from_spec`].
    #[must_use]
    pub fn dimensions(&self) -> (usize, usize) {
        let field = Gf2m::new(usize::from(self.m));
        let n = field.order();
        let r = poly_degree(field.bch_generator(usize::from(self.t)));
        assert!(r < n, "generator degree {r} leaves no information bits");
        (n, n - r)
    }

    /// Display name in the literature's `BCH(n,k)` convention.
    #[must_use]
    pub fn name(&self) -> String {
        let (n, k) = self.dimensions();
        format!("BCH({n},{k})")
    }
}

/// A binary primitive BCH code over GF(2^m) with a bounded-distance decoder.
#[derive(Debug, Clone)]
pub struct Bch {
    spec: BchSpec,
    field: Gf2m,
    n: usize,
    k: usize,
    /// Designed correction capability: the generator has `α … α^{2t}` roots.
    design_t: usize,
    /// Decoder radius: patterns of weight ≤ `decode_t` are corrected.
    decode_t: usize,
    g: BitMat,
    h: BitMat,
    /// Column `j` of `H` as a syndrome bitmask (bit `u` = row `u`): flipping
    /// position `j` toggles exactly this in the full syndrome. Lets the
    /// syndrome-only decode path verify a candidate correction without
    /// reconstructing the word.
    col_syndromes: Vec<u128>,
    name: String,
}

impl Bch {
    /// Constructs the primitive BCH code of length `2^m − 1` with designed
    /// distance `2t + 1`, decoding up to `t` errors.
    ///
    /// # Panics
    /// Panics if `m` is outside `2..=8`, `t = 0`, or the designed distance
    /// exceeds the blocklength (no information bits would remain).
    #[must_use]
    pub fn new(m: usize, t: usize) -> Self {
        Bch::with_decode_radius(m, t, t)
    }

    /// Constructs the designed-distance-`2·design_t + 1` code but decodes
    /// only up to `decode_t ≤ design_t` errors (bounded-distance decoding
    /// with a wider detection margin; see [`Bch::bch_31_16`]).
    ///
    /// # Panics
    /// Panics on out-of-range `m`, `decode_t = 0`, `decode_t > design_t`, or
    /// a generator that swallows the whole blocklength.
    #[must_use]
    pub fn with_decode_radius(m: usize, design_t: usize, decode_t: usize) -> Self {
        assert!(decode_t >= 1, "decoder radius must be at least 1");
        assert!(
            decode_t <= design_t,
            "decoder radius cannot exceed design t"
        );
        let field = Gf2m::new(m);
        let n = field.order();
        let gen = field.bch_generator(design_t);
        let r = poly_degree(gen);
        assert!(r < n, "generator degree {r} leaves no information bits");
        let k = n - r;

        // Systematic generator row i: x^{n-1-i} + (x^{n-1-i} mod gen), with
        // bit j of the row holding the coefficient of x^{n-1-j}.
        let mut g = BitMat::zeros(k, n);
        for i in 0..k {
            g.set(i, i, true);
            let rem = poly_rem(1u128 << (n - 1 - i), gen);
            for d in 0..r {
                if rem & (1u128 << d) != 0 {
                    g.set(i, n - 1 - d, true);
                }
            }
        }

        // Parity check row u, column j: coefficient of x^{r-1-u} in
        // (x^{n-1-j} mod gen) — the syndrome H·rᵀ is r(x) mod gen.
        let mut h = BitMat::zeros(r, n);
        for j in 0..n {
            let rem = poly_rem(1u128 << (n - 1 - j), gen);
            for u in 0..r {
                if rem & (1u128 << (r - 1 - u)) != 0 {
                    h.set(u, j, true);
                }
            }
        }
        validate_code_matrices(&g, &h);
        let col_syndromes = (0..n)
            .map(|j| {
                (0..r)
                    .filter(|&u| h.get(u, j))
                    .fold(0u128, |acc, u| acc | (1u128 << u))
            })
            .collect();

        Bch {
            spec: BchSpec {
                m: m as u8,
                t: design_t as u8,
                decode_radius: decode_t as u8,
            },
            field,
            n,
            k,
            design_t,
            decode_t,
            g,
            h,
            col_syndromes,
            name: format!("BCH({n},{k})"),
        }
    }

    /// Constructs the family member a [`BchSpec`] describes — the
    /// config-driven entry point behind the encoder catalog and the batch
    /// codec registry.
    ///
    /// # Panics
    /// Panics under the same conditions as [`Bch::with_decode_radius`].
    #[must_use]
    pub fn from_spec(spec: BchSpec) -> Self {
        Bch::with_decode_radius(
            usize::from(spec.m),
            usize::from(spec.t),
            usize::from(spec.decode_radius),
        )
    }

    /// The spec this code was built from (round-trips through
    /// [`Bch::from_spec`]).
    #[must_use]
    pub fn spec(&self) -> BchSpec {
        self.spec
    }

    /// The flagship catalog member: BCH(31,16), designed distance 7
    /// (`g = m₁·m₃·m₅` over GF(32)), decoded with radius `t = 2` so every
    /// double error is corrected and every triple error is detected.
    #[must_use]
    pub fn bch_31_16() -> Self {
        Bch::from_spec(BchSpec::BCH_31_16)
    }

    /// The high-rate BCH(63,51) member (`t = 2` over GF(64)).
    #[must_use]
    pub fn bch_63_51() -> Self {
        Bch::from_spec(BchSpec::BCH_63_51)
    }

    /// The strongest shipped member: BCH(63,45), `t = 3` at full radius.
    #[must_use]
    pub fn bch_63_45() -> Self {
        Bch::from_spec(BchSpec::BCH_63_45)
    }

    /// The extension degree `m` of the underlying field GF(2^m).
    #[must_use]
    pub fn field_degree(&self) -> usize {
        self.field.degree()
    }

    /// The decoder's correction radius `t` (errors of weight ≤ `t` correct).
    #[must_use]
    pub fn correction_radius(&self) -> usize {
        self.decode_t
    }

    /// The designed distance `2t + 1` of the generator construction.
    #[must_use]
    pub fn designed_distance(&self) -> usize {
        2 * self.design_t + 1
    }

    /// Extracts the message from a codeword: the code is systematic, so the
    /// message is the first `k` positions.
    #[must_use]
    pub fn extract_message(&self, codeword: &BitVec) -> BitVec {
        codeword.slice(0..self.k)
    }

    /// The number of Chien-search evaluations one scalar decode of a dirty
    /// word performs (one locator evaluation per codeword position). Batch
    /// engines use this to meter locator-evaluation work.
    #[must_use]
    pub fn locator_evaluations_per_word(&self) -> usize {
        self.n
    }

    /// Power-sum syndromes `S_1 … S_{2t}` of a received word over GF(2^m).
    fn power_syndromes(&self, received: &BitVec) -> Vec<u16> {
        let f = &self.field;
        (1..=2 * self.decode_t)
            .map(|i| {
                let mut acc = 0u16;
                for j in 0..self.n {
                    if received.get(j) {
                        acc ^= f.alpha_pow(i * (self.n - 1 - j));
                    }
                }
                acc
            })
            .collect()
    }

    /// Berlekamp–Massey: the minimal LFSR `σ(x)` generating the syndrome
    /// sequence. Returns the locator coefficients (`σ[0] = 1`) and degree.
    fn error_locator(&self, syndromes: &[u16]) -> (Vec<u16>, usize) {
        let f = &self.field;
        let mut sigma: Vec<u16> = vec![1];
        let mut prev: Vec<u16> = vec![1];
        let mut l = 0usize;
        let mut shift = 1usize;
        let mut prev_disc = 1u16;
        for nth in 0..syndromes.len() {
            let mut disc = syndromes[nth];
            for i in 1..=l.min(sigma.len() - 1) {
                disc ^= f.mul(sigma[i], syndromes[nth - i]);
            }
            if disc == 0 {
                shift += 1;
                continue;
            }
            let coef = f.div(disc, prev_disc);
            let update = |target: &mut Vec<u16>, basis: &[u16]| {
                if target.len() < basis.len() + shift {
                    target.resize(basis.len() + shift, 0);
                }
                for (i, &b) in basis.iter().enumerate() {
                    target[i + shift] ^= f.mul(coef, b);
                }
            };
            if 2 * l <= nth {
                let keep = sigma.clone();
                update(&mut sigma, &prev);
                l = nth + 1 - l;
                prev = keep;
                prev_disc = disc;
                shift = 1;
            } else {
                update(&mut sigma, &prev.clone());
                shift += 1;
            }
        }
        (sigma, l)
    }

    /// Chien search: positions `j` where `σ(α^{−(n−1−j)}) = 0`.
    fn chien_positions(&self, sigma: &[u16], degree: usize) -> Vec<usize> {
        let f = &self.field;
        let mut positions = Vec::with_capacity(degree);
        for e in 0..self.n {
            let x = f.alpha_pow(self.n - e % self.n);
            let mut acc = 0u16;
            let mut xp = 1u16;
            for &c in sigma.iter() {
                acc ^= f.mul(c, xp);
                xp = f.mul(xp, x);
            }
            if acc == 0 {
                // Root α^{-e} ⇒ locator X = α^e ⇒ position n−1−e.
                positions.push(self.n - 1 - e);
            }
        }
        positions
    }

    /// Roots of a locator of degree ≤ 2 in closed form: returns the flip
    /// mask (bit `j` = position `j`) and the number of distinct roots a
    /// Chien search over the full multiplicative group would find.
    ///
    /// Degree 1 always has the single root `x = 1/σ₁`. Degree 2 reduces to
    /// `z² + z = σ₂/σ₁²` by the substitution `x = (σ₁/σ₂)·z`, solved O(1)
    /// via [`Gf2m::solve_quadratic`]; trace 1 means both roots live in the
    /// extension field only (count 0), and `σ₁ = 0` collapses the quadratic
    /// to `x² = 1/σ₂`, whose lone (Frobenius-repeated) root makes the count
    /// 1 ≠ 2 so the caller detects, matching the Chien sweep exactly.
    fn direct_locator_mask(&self, sigma: &[u16], degree: usize) -> (u128, usize) {
        let f = &self.field;
        let position = |x: u16| -> usize {
            // Root x of σ ⇒ locator X = 1/x ⇒ position n−1−log(X).
            self.n - 1 - f.log(f.inv(x))
        };
        match degree {
            1 => {
                let x = f.inv(sigma[1]);
                (1u128 << position(x), 1)
            }
            _ => {
                let (s1, s2) = (sigma[1], sigma[2]);
                if s1 == 0 {
                    // x² = 1/σ₂: squaring is bijective, one root exactly.
                    return (0, 1);
                }
                let c = f.div(s2, f.square(s1));
                match f.solve_quadratic(c) {
                    None => (0, 0),
                    Some(z) => {
                        let a = f.div(s1, s2);
                        let x1 = f.mul(a, z);
                        let x2 = f.mul(a, z ^ 1);
                        ((1u128 << position(x1)) | (1u128 << position(x2)), 2)
                    }
                }
            }
        }
    }
}

impl BlockCode for Bch {
    fn name(&self) -> &str {
        &self.name
    }
    fn n(&self) -> usize {
        self.n
    }
    fn k(&self) -> usize {
        self.k
    }
    fn generator(&self) -> &BitMat {
        &self.g
    }
    fn parity_check(&self) -> &BitMat {
        &self.h
    }
    fn message_of(&self, codeword: &BitVec) -> Option<BitVec> {
        if self.is_codeword(codeword) {
            Some(self.extract_message(codeword))
        } else {
            None
        }
    }
}

impl HardDecoder for Bch {
    /// Syndrome → Berlekamp–Massey → Chien search, bounded at radius `t`.
    fn decode(&self, received: &BitVec) -> Decoded {
        assert_eq!(received.len(), self.n, "received word length mismatch");
        // Membership is checked against the full generator (H), not just the
        // 2t power syndromes: at a capped radius (decode_t < design_t) the
        // power syndromes only span the designed-distance-(2·decode_t + 1)
        // supercode, and a word clean there can still miss this code.
        if self.is_codeword(received) {
            let msg = self.extract_message(received);
            return Decoded::clean(received.clone(), msg);
        }
        let syndromes = self.power_syndromes(received);
        if syndromes.iter().all(|&s| s == 0) {
            // Non-codeword invisible to the decoding syndromes: detected by
            // the supercode gap alone.
            return Decoded::detected();
        }
        let (sigma, degree) = self.error_locator(&syndromes);
        if degree == 0 || degree > self.decode_t || sigma.len() <= degree || sigma[degree] == 0 {
            return Decoded::detected();
        }
        let positions = self.chien_positions(&sigma, degree);
        if positions.len() != degree {
            return Decoded::detected();
        }
        let mut corrected = received.clone();
        for &p in &positions {
            corrected.flip(p);
        }
        if !self.is_codeword(&corrected) {
            return Decoded::detected();
        }
        let msg = self.extract_message(&corrected);
        Decoded::corrected(corrected, msg, degree)
    }

    /// Multi-error algebraic decoding: batch engines bit-slice the syndrome
    /// accumulation and fall back to this decoder on dirty lanes only.
    fn syndrome_class(&self) -> crate::SyndromeClass {
        crate::SyndromeClass::Algebraic
    }
}

impl AlgebraicDecode for Bch {
    fn sliced_syndrome_plan(&self) -> SlicedSyndromePlan {
        let f = &self.field;
        let m = f.degree();
        // Bit b of S_i is the parity of received bits j with bit b of
        // α^{i·(n−1−j)} set — the bit-sliced form of `power_syndromes`.
        let odd_supports = (0..self.decode_t)
            .map(|h| {
                let i = 2 * h + 1;
                (0..m)
                    .map(|b| {
                        (0..self.n)
                            .filter(|&j| (f.alpha_pow(i * (self.n - 1 - j)) >> b) & 1 == 1)
                            .fold(0u128, |acc, j| acc | (1u128 << j))
                    })
                    .collect()
            })
            .collect();
        SlicedSyndromePlan {
            field_bits: m,
            syndrome_count: 2 * self.decode_t,
            odd_supports,
            square: (0..f.size() as u16).map(|a| f.square(a)).collect(),
        }
    }

    /// The syndrome-only mirror of [`HardDecoder::decode`]: same
    /// Berlekamp–Massey chain and the same detection gates, but degree ≤ 2
    /// locators are solved in closed form instead of Chien-swept, and the
    /// post-correction codeword check becomes `full_syndrome == Σ H columns
    /// at the flips` (equivalent because `H·(r + e)ᵀ = H·rᵀ + H·eᵀ`).
    fn decode_action(&self, power_syndromes: &[u16], full_syndrome: u128) -> AlgebraicAction {
        debug_assert_eq!(power_syndromes.len(), 2 * self.decode_t);
        debug_assert_ne!(full_syndrome, 0, "clean lanes never reach the fallback");
        if power_syndromes.iter().all(|&s| s == 0) {
            return AlgebraicAction::Detected;
        }
        let (sigma, degree) = self.error_locator(power_syndromes);
        if degree == 0 || degree > self.decode_t || sigma.len() <= degree || sigma[degree] == 0 {
            return AlgebraicAction::Detected;
        }
        let (mask, roots) = if degree <= 2 {
            self.direct_locator_mask(&sigma, degree)
        } else {
            let positions = self.chien_positions(&sigma, degree);
            (
                positions.iter().fold(0u128, |acc, &p| acc | (1u128 << p)),
                positions.len(),
            )
        };
        if roots != degree {
            return AlgebraicAction::Detected;
        }
        let mut expected = 0u128;
        let mut rest = mask;
        while rest != 0 {
            let p = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            expected ^= self.col_syndromes[p];
        }
        if expected == full_syndrome {
            AlgebraicAction::Flip(mask)
        } else {
            AlgebraicAction::Detected
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecodeOutcome;

    fn sample_messages(k: usize, count: usize) -> Vec<BitVec> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xBC11_0031);
        (0..count)
            .map(|_| (0..k).map(|_| rng.random::<u64>() & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn family_parameters_match_the_textbook() {
        // (n, k) of primitive BCH codes, Lin & Costello Table 6.1.
        let expected = [
            (3, 1, (7, 4)),
            (4, 1, (15, 11)),
            (4, 2, (15, 7)),
            (4, 3, (15, 5)),
            (5, 1, (31, 26)),
            (5, 2, (31, 21)),
            (5, 3, (31, 16)),
            (6, 2, (63, 51)),
            (6, 3, (63, 45)),
        ];
        for (m, t, (n, k)) in expected {
            let code = Bch::new(m, t);
            assert_eq!((code.n(), code.k()), (n, k), "m={m} t={t}");
            assert_eq!(code.name(), format!("BCH({n},{k})"));
        }
    }

    #[test]
    fn flagship_member_is_31_16_with_true_distance_7() {
        let code = Bch::bch_31_16();
        assert_eq!((code.n(), code.k()), (31, 16));
        assert_eq!(code.correction_radius(), 2);
        assert_eq!(code.designed_distance(), 7);
        assert_eq!(code.field_degree(), 5);
        assert_eq!(code.locator_evaluations_per_word(), 31);
        // Exhaustive: the designed distance is met with equality.
        assert_eq!(code.min_distance(), 7);
    }

    #[test]
    fn code_is_systematic() {
        for code in [Bch::new(4, 2), Bch::bch_31_16()] {
            for msg in sample_messages(code.k(), 8) {
                let cw = code.encode(&msg);
                assert_eq!(cw.slice(0..code.k()), msg);
                assert_eq!(code.message_of(&cw), Some(msg));
            }
        }
    }

    #[test]
    fn every_single_and_double_error_is_corrected() {
        let code = Bch::bch_31_16();
        for msg in sample_messages(code.k(), 2) {
            let cw = code.encode(&msg);
            for a in 0..code.n() {
                let mut r1 = cw.clone();
                r1.flip(a);
                let d = code.decode(&r1);
                assert_eq!(d.outcome, DecodeOutcome::Corrected { bits_flipped: 1 });
                assert!(d.message_is(&msg), "single at {a}");
                for b in (a + 1)..code.n() {
                    let mut r2 = r1.clone();
                    r2.flip(b);
                    let d = code.decode(&r2);
                    assert_eq!(
                        d.outcome,
                        DecodeOutcome::Corrected { bits_flipped: 2 },
                        "double ({a},{b})"
                    );
                    assert!(d.message_is(&msg), "double ({a},{b})");
                    assert_eq!(d.codeword, Some(cw.clone()));
                }
            }
        }
    }

    #[test]
    fn every_triple_error_is_detected_at_radius_two() {
        // d_min = 7 with a radius-2 decoder: a weight-3 corruption can never
        // be within distance 2 of any codeword, so detection is certain.
        let code = Bch::bch_31_16();
        let msg = sample_messages(code.k(), 1).pop().unwrap();
        let cw = code.encode(&msg);
        for a in 0..8 {
            for b in (a + 1)..code.n() {
                for c in (b + 1)..code.n() {
                    let mut r = cw.clone();
                    r.flip(a);
                    r.flip(b);
                    r.flip(c);
                    assert_eq!(
                        code.decode(&r).outcome,
                        DecodeOutcome::DetectedUncorrectable,
                        "triple ({a},{b},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn full_radius_decoder_corrects_triples() {
        let code = Bch::new(5, 3);
        let msg = sample_messages(code.k(), 1).pop().unwrap();
        let cw = code.encode(&msg);
        let mut r = cw.clone();
        for p in [2usize, 11, 29] {
            r.flip(p);
        }
        let d = code.decode(&r);
        assert_eq!(d.outcome, DecodeOutcome::Corrected { bits_flipped: 3 });
        assert!(d.message_is(&msg));
    }

    #[test]
    fn hamming_is_the_t1_member() {
        // BCH(7,4) at t=1 is Hamming(7,4): same parameters and distance.
        let code = Bch::new(3, 1);
        assert_eq!((code.n(), code.k(), code.min_distance()), (7, 4, 3));
        let msg = BitVec::from_str01("1011");
        let cw = code.encode(&msg);
        for pos in 0..7 {
            let mut r = cw.clone();
            r.flip(pos);
            assert!(code.decode(&r).message_is(&msg));
        }
    }

    #[test]
    fn decoding_is_syndrome_only() {
        // The same error pattern on two different codewords produces the
        // same outcome and the same flipped positions (coset invariance).
        let code = Bch::bch_31_16();
        let msgs = sample_messages(code.k(), 2);
        let (cw0, cw1) = (code.encode(&msgs[0]), code.encode(&msgs[1]));
        for pattern in [[1usize, 17], [0, 30], [5, 6]] {
            let mut r0 = cw0.clone();
            let mut r1 = cw1.clone();
            for &p in &pattern {
                r0.flip(p);
                r1.flip(p);
            }
            let (d0, d1) = (code.decode(&r0), code.decode(&r1));
            assert_eq!(d0.outcome, d1.outcome);
            assert_eq!(d0.codeword, Some(cw0.clone()));
            assert_eq!(d1.codeword, Some(cw1.clone()));
        }
    }

    #[test]
    fn syndrome_class_is_algebraic() {
        assert_eq!(
            Bch::bch_31_16().syndrome_class(),
            crate::SyndromeClass::Algebraic
        );
    }

    /// Full syndrome of a received word as a bitmask (bit `u` = row `u`).
    fn full_syndrome_mask(code: &Bch, received: &BitVec) -> u128 {
        let s = code.syndrome(received);
        (0..s.len())
            .filter(|&u| s.get(u))
            .fold(0u128, |acc, u| acc | (1u128 << u))
    }

    #[test]
    fn sliced_syndrome_plan_reproduces_power_syndromes() {
        for code in [Bch::new(4, 2), Bch::bch_31_16(), Bch::new(5, 3)] {
            let plan = code.sliced_syndrome_plan();
            assert_eq!(plan.field_bits, code.field_degree());
            assert_eq!(plan.syndrome_count, 2 * code.correction_radius());
            for msg in sample_messages(code.k(), 3) {
                let mut received = code.encode(&msg);
                received.flip(1);
                received.flip(code.n() - 2);
                let reference = code.power_syndromes(&received);
                let word: u128 = (0..code.n())
                    .filter(|&j| received.get(j))
                    .fold(0u128, |acc, j| acc | (1u128 << j));
                let mut syndromes = vec![0u16; plan.syndrome_count];
                for (h, supports) in plan.odd_supports.iter().enumerate() {
                    let mut s = 0u16;
                    for (b, &mask) in supports.iter().enumerate() {
                        s |= u16::from((word & mask).count_ones() & 1 == 1) << b;
                    }
                    syndromes[2 * h] = s;
                }
                plan.fill_even_syndromes(&mut syndromes);
                assert_eq!(syndromes, reference, "{}", code.name());
            }
        }
    }

    /// The decision of a BCH decode depends only on the syndrome, and every
    /// syndrome value is realized by a word supported on the parity tail
    /// (where `r(x) = s(x)` directly). Sweeping all `2^r` syndromes
    /// therefore covers every coset — `decode_action` is proven equivalent
    /// to the scalar `decode` on *all* received words, not a sample.
    #[test]
    fn decode_action_matches_scalar_decode_over_the_whole_syndrome_space() {
        let code = Bch::bch_31_16();
        let r_bits = code.n() - code.k();
        for s in 0u32..(1 << r_bits) {
            let mut received = BitVec::zeros(code.n());
            for d in 0..r_bits {
                if (s >> d) & 1 == 1 {
                    received.set(code.n() - 1 - d, true);
                }
            }
            let scalar = code.decode(&received);
            if s == 0 {
                assert_eq!(scalar.outcome, DecodeOutcome::NoErrorDetected);
                continue;
            }
            let power = code.power_syndromes(&received);
            let full = full_syndrome_mask(&code, &received);
            assert_ne!(full, 0, "nonzero parity tail ⇒ nonzero syndrome");
            let action = code.decode_action(&power, full);
            match (scalar.outcome, action) {
                (DecodeOutcome::DetectedUncorrectable, AlgebraicAction::Detected) => {}
                (DecodeOutcome::Corrected { bits_flipped }, AlgebraicAction::Flip(mask)) => {
                    assert_eq!(mask.count_ones() as usize, bits_flipped, "syndrome {s:#x}");
                    let mut fixed = received.clone();
                    let mut rest = mask;
                    while rest != 0 {
                        let p = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        fixed.flip(p);
                    }
                    assert_eq!(Some(fixed), scalar.codeword, "syndrome {s:#x}");
                }
                (outcome, action) => {
                    panic!("syndrome {s:#x}: scalar {outcome:?} vs action {action:?}")
                }
            }
        }
    }

    #[test]
    fn decode_action_matches_scalar_at_full_radius_chien_path() {
        // Radius 3 exercises the degree-3 Chien branch of decode_action.
        let code = Bch::new(5, 3);
        let msg = sample_messages(code.k(), 1).pop().unwrap();
        let cw = code.encode(&msg);
        for pattern in [
            vec![4usize],
            vec![0, 30],
            vec![2, 11, 29],
            vec![1, 2, 3, 4], // weight 4: must detect
        ] {
            let mut received = cw.clone();
            for &p in &pattern {
                received.flip(p);
            }
            if code.is_codeword(&received) {
                continue;
            }
            let scalar = code.decode(&received);
            let action = code.decode_action(
                &code.power_syndromes(&received),
                full_syndrome_mask(&code, &received),
            );
            match (scalar.outcome, action) {
                (DecodeOutcome::DetectedUncorrectable, AlgebraicAction::Detected) => {}
                (DecodeOutcome::Corrected { bits_flipped }, AlgebraicAction::Flip(mask)) => {
                    assert_eq!(mask.count_ones() as usize, bits_flipped);
                }
                (outcome, action) => panic!("{pattern:?}: {outcome:?} vs {action:?}"),
            }
        }
    }

    #[test]
    fn registry_specs_round_trip_and_name_their_members() {
        let expected = [
            (BchSpec::BCH_31_16, (31, 16), 2),
            (BchSpec::BCH_63_51, (63, 51), 2),
            (BchSpec::BCH_63_45, (63, 45), 3),
        ];
        assert_eq!(BchSpec::REGISTRY.len(), expected.len());
        for (spec, (n, k), radius) in expected {
            assert!(BchSpec::REGISTRY.contains(&spec));
            assert_eq!(spec.dimensions(), (n, k));
            assert_eq!(spec.name(), format!("BCH({n},{k})"));
            let code = Bch::from_spec(spec);
            assert_eq!((code.n(), code.k()), (n, k));
            assert_eq!(code.correction_radius(), radius);
            assert_eq!(code.spec(), spec);
        }
        assert_eq!(Bch::bch_63_51().spec(), BchSpec::BCH_63_51);
        assert_eq!(Bch::bch_63_45().spec(), BchSpec::BCH_63_45);
    }

    #[test]
    fn bch_63_45_corrects_triples_and_detects_sampled_quadruples() {
        let code = Bch::bch_63_45();
        let msg = sample_messages(code.k(), 1).pop().unwrap();
        let cw = code.encode(&msg);
        for pattern in [[0usize, 31, 62], [5, 6, 7], [10, 30, 50]] {
            let mut r = cw.clone();
            for &p in &pattern {
                r.flip(p);
            }
            let d = code.decode(&r);
            assert_eq!(d.outcome, DecodeOutcome::Corrected { bits_flipped: 3 });
            assert!(d.message_is(&msg), "{pattern:?}");
        }
        // Weight-4 patterns sit past the packing radius; a pattern inside
        // another codeword's radius-3 sphere would miscorrect (d_min = 7
        // admits weight-7 codewords), so these samples are ones checked to
        // lie outside every sphere — the decoder must flag them.
        for pattern in [[0usize, 1, 2, 3], [7, 19, 33, 60], [2, 20, 40, 62]] {
            let mut r = cw.clone();
            for &p in &pattern {
                r.flip(p);
            }
            assert_eq!(
                code.decode(&r).outcome,
                DecodeOutcome::DetectedUncorrectable,
                "{pattern:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "radius cannot exceed")]
    fn rejects_radius_above_design() {
        let _ = Bch::with_decode_radius(5, 2, 3);
    }

    #[test]
    #[should_panic(expected = "designed distance exceeds")]
    fn rejects_degenerate_design() {
        let _ = Bch::new(3, 4);
    }
}
