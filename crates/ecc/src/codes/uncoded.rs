//! The "no encoder" baseline of Fig. 5: the 4-bit message is sent directly
//! over 4 of the 8 output channels with no redundancy.

use crate::decoder::Decoded;
use crate::{BlockCode, HardDecoder};
use gf2::{BitMat, BitVec};

/// The identity (uncoded) transmission of `k` bits: `n = k`, no detection or
/// correction capability. `d_min` is reported as 1 by convention (any single
/// bit flip produces another valid "codeword").
#[derive(Debug, Clone)]
pub struct Uncoded {
    k: usize,
    g: BitMat,
    h: BitMat,
    name: String,
}

impl Uncoded {
    /// Creates an uncoded channel of width `k` bits.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > 64`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0 && k <= 64, "k must be in 1..=64");
        Uncoded {
            k,
            g: BitMat::identity(k),
            h: BitMat::zeros(0, k),
            name: format!("No encoder ({k}-bit)"),
        }
    }
}

impl BlockCode for Uncoded {
    fn name(&self) -> &str {
        &self.name
    }
    fn n(&self) -> usize {
        self.k
    }
    fn k(&self) -> usize {
        self.k
    }
    fn generator(&self) -> &BitMat {
        &self.g
    }
    fn parity_check(&self) -> &BitMat {
        &self.h
    }
    fn min_distance(&self) -> usize {
        1
    }
    fn syndrome(&self, received: &BitVec) -> BitVec {
        assert_eq!(received.len(), self.k, "received word length mismatch");
        BitVec::zeros(0)
    }
    fn is_codeword(&self, _word: &BitVec) -> bool {
        true
    }
    fn message_of(&self, codeword: &BitVec) -> Option<BitVec> {
        Some(codeword.clone())
    }
}

impl HardDecoder for Uncoded {
    fn decode(&self, received: &BitVec) -> Decoded {
        assert_eq!(received.len(), self.k, "received word length mismatch");
        Decoded::clean(received.clone(), received.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncoded_passes_bits_through() {
        let code = Uncoded::new(4);
        let msg = BitVec::from_str01("1011");
        assert_eq!(code.encode(&msg), msg);
        assert_eq!(code.decode(&msg).message.unwrap(), msg);
        assert_eq!(code.n(), 4);
        assert_eq!(code.k(), 4);
        assert_eq!(code.min_distance(), 1);
    }

    #[test]
    fn uncoded_never_detects_errors() {
        let code = Uncoded::new(4);
        let msg = BitVec::from_str01("0000");
        let mut r = code.encode(&msg);
        r.flip(2);
        let d = code.decode(&r);
        assert!(!d.outcome.error_flag());
        assert!(!d.message_is(&msg), "error goes through silently");
    }

    #[test]
    fn every_word_is_a_codeword() {
        let code = Uncoded::new(4);
        for w in 0u64..16 {
            assert!(code.is_codeword(&BitVec::from_u64(4, w)));
        }
    }
}
