//! Repetition codes — the simplest lightweight code, used as an additional
//! baseline in the ablation experiments (a designer constrained to 8 output
//! channels could also simply send each of the 4 message bits twice).

use crate::decoder::Decoded;
use crate::{validate_code_matrices, BlockCode, HardDecoder};
use gf2::{BitMat, BitVec};

/// A code that repeats each of `k` message bits `factor` times, giving
/// `n = k · factor`. With `factor = 2` it detects single errors per bit pair;
/// with `factor ≥ 3` it corrects by majority vote.
#[derive(Debug, Clone)]
pub struct Repetition {
    k: usize,
    factor: usize,
    g: BitMat,
    h: BitMat,
    name: String,
}

impl Repetition {
    /// Creates a repetition code for `k` message bits repeated `factor` times.
    ///
    /// # Panics
    /// Panics if `k == 0` or `factor == 0` or `k * factor > 64`.
    #[must_use]
    pub fn new(k: usize, factor: usize) -> Self {
        assert!(k > 0 && factor > 0, "k and factor must be positive");
        let n = k * factor;
        assert!(n <= 64, "repetition code length limited to 64 bits");
        let mut g = BitMat::zeros(k, n);
        for i in 0..k {
            for rep in 0..factor {
                g.set(i, i * factor + rep, true);
            }
        }
        let h = g.null_space();
        if h.rows() > 0 {
            validate_code_matrices(&g, &h);
        }
        Repetition {
            k,
            factor,
            g,
            h,
            name: format!("Repetition(x{factor}, k={k})"),
        }
    }

    /// The repetition factor.
    #[must_use]
    pub fn factor(&self) -> usize {
        self.factor
    }
}

impl BlockCode for Repetition {
    fn name(&self) -> &str {
        &self.name
    }
    fn n(&self) -> usize {
        self.k * self.factor
    }
    fn k(&self) -> usize {
        self.k
    }
    fn generator(&self) -> &BitMat {
        &self.g
    }
    fn parity_check(&self) -> &BitMat {
        &self.h
    }
    fn message_of(&self, codeword: &BitVec) -> Option<BitVec> {
        if self.is_codeword(codeword) {
            Some((0..self.k).map(|i| codeword.get(i * self.factor)).collect())
        } else {
            None
        }
    }
}

impl HardDecoder for Repetition {
    /// Majority vote per bit group. An exact tie (possible only for even
    /// repetition factors) is reported as detected-uncorrectable.
    fn decode(&self, received: &BitVec) -> Decoded {
        assert_eq!(received.len(), self.n(), "received word length mismatch");
        let mut message = BitVec::zeros(self.k);
        let mut flips = 0usize;
        for i in 0..self.k {
            let ones = (0..self.factor)
                .filter(|&rep| received.get(i * self.factor + rep))
                .count();
            let zeros = self.factor - ones;
            if ones == zeros {
                return Decoded::detected();
            }
            let bit = ones > zeros;
            message.set(i, bit);
            flips += if bit { zeros } else { ones };
        }
        let codeword = self.encode(&message);
        if flips == 0 {
            Decoded::clean(codeword, message)
        } else {
            Decoded::corrected(codeword, message, flips)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplication_code_parameters() {
        let code = Repetition::new(4, 2);
        assert_eq!(code.n(), 8);
        assert_eq!(code.k(), 4);
        assert_eq!(code.min_distance(), 2);
        assert_eq!(code.factor(), 2);
    }

    #[test]
    fn triplication_corrects_single_errors() {
        let code = Repetition::new(2, 3);
        assert_eq!(code.min_distance(), 3);
        for m in 0u64..4 {
            let msg = BitVec::from_u64(2, m);
            let cw = code.encode(&msg);
            for pos in 0..6 {
                let mut r = cw.clone();
                r.flip(pos);
                assert!(code.decode(&r).message_is(&msg), "m={m:02b} pos={pos}");
            }
        }
    }

    #[test]
    fn duplication_detects_single_errors_as_ties() {
        let code = Repetition::new(4, 2);
        let msg = BitVec::from_str01("1011");
        let cw = code.encode(&msg);
        let mut r = cw.clone();
        r.flip(3);
        let d = code.decode(&r);
        assert!(d.outcome.error_flag());
    }

    #[test]
    fn encode_repeats_bits() {
        let code = Repetition::new(3, 2);
        let cw = code.encode(&BitVec::from_str01("101"));
        assert_eq!(cw.to_string01(), "110011");
    }

    #[test]
    fn message_of_round_trips() {
        let code = Repetition::new(4, 2);
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            let cw = code.encode(&msg);
            assert_eq!(code.message_of(&cw), Some(msg));
        }
    }
}
