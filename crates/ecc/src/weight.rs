//! Weight distributions and analytical error-rate bounds.
//!
//! These utilities complement the exhaustive analysis of [`crate::analysis`]
//! with the standard closed-form expressions used to sanity-check the
//! Monte-Carlo link experiments (Fig. 5): the weight enumerator of a code,
//! the probability of undetected error on a binary symmetric channel, and the
//! block-error probability of bounded-distance decoding.

use crate::BlockCode;
use gf2::binomial;
use serde::{Deserialize, Serialize};

/// The weight enumerator `A_0, A_1, …, A_n` of a code: `A_w` is the number of
/// codewords of Hamming weight `w`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightDistribution {
    /// Code length `n`.
    pub n: usize,
    /// `counts[w]` = number of codewords of weight `w`.
    pub counts: Vec<u64>,
}

impl WeightDistribution {
    /// Computes the weight distribution of a code by enumerating its codebook.
    ///
    /// # Panics
    /// Panics if `k > 24` (enumeration would be too large).
    pub fn of_code<C: BlockCode + ?Sized>(code: &C) -> Self {
        let n = code.n();
        let mut counts = vec![0u64; n + 1];
        for (_, cw) in code.codebook() {
            counts[cw.weight()] += 1;
        }
        WeightDistribution { n, counts }
    }

    /// Total number of codewords (must equal `2^k`).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Minimum distance: the smallest nonzero weight with a nonzero count.
    #[must_use]
    pub fn min_distance(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .skip(1)
            .find(|(_, &c)| c > 0)
            .map_or(0, |(w, _)| w)
    }

    /// Probability that an error pattern on a binary symmetric channel with
    /// crossover probability `p` equals a nonzero codeword — i.e. the
    /// probability of an *undetected* error when the code is used for error
    /// detection only.
    #[must_use]
    pub fn undetected_error_probability(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.counts
            .iter()
            .enumerate()
            .skip(1)
            .map(|(w, &a)| a as f64 * p.powi(w as i32) * (1.0 - p).powi((self.n - w) as i32))
            .sum()
    }

    /// Applies the MacWilliams identity to obtain the weight distribution of
    /// the dual code, given the dimension `k` of this code.
    #[must_use]
    pub fn dual(&self, k: usize) -> WeightDistribution {
        let n = self.n;
        let mut dual_counts = vec![0f64; n + 1];
        // B_j = (1 / 2^k) * sum_w A_w * K_j(w), with Krawtchouk polynomial K.
        for (j, slot) in dual_counts.iter_mut().enumerate() {
            let mut acc = 0f64;
            for (w, &a) in self.counts.iter().enumerate() {
                acc += a as f64 * krawtchouk(n, j, w);
            }
            *slot = acc / 2f64.powi(k as i32);
        }
        WeightDistribution {
            n,
            counts: dual_counts.iter().map(|&x| x.round() as u64).collect(),
        }
    }
}

/// Krawtchouk polynomial `K_j(w)` over GF(2) of length `n`:
/// `K_j(w) = Σ_i (-1)^i C(w, i) C(n-w, j-i)`.
#[must_use]
pub fn krawtchouk(n: usize, j: usize, w: usize) -> f64 {
    let mut acc = 0f64;
    for i in 0..=j.min(w) {
        if j - i > n - w {
            continue;
        }
        let term =
            binomial(w as u64, i as u64) as f64 * binomial((n - w) as u64, (j - i) as u64) as f64;
        if i % 2 == 0 {
            acc += term;
        } else {
            acc -= term;
        }
    }
    acc
}

/// Block-error probability of bounded-distance decoding that corrects up to
/// `t` errors on a binary symmetric channel with crossover probability `p`:
/// `P_block = Σ_{w > t} C(n, w) p^w (1-p)^(n-w)`.
#[must_use]
pub fn bounded_distance_block_error(n: usize, t: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    (t + 1..=n)
        .map(|w| {
            binomial(n as u64, w as u64) as f64 * p.powi(w as i32) * (1.0 - p).powi((n - w) as i32)
        })
        .sum()
}

/// Probability that an uncoded `k`-bit message is received with at least one
/// bit error on a BSC with crossover probability `p`.
#[must_use]
pub fn uncoded_message_error(k: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    1.0 - (1.0 - p).powi(k as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::hamming::{Hamming74, Hamming84};
    use crate::codes::reed_muller::Rm13;

    #[test]
    fn hamming74_weight_enumerator() {
        let wd = WeightDistribution::of_code(&Hamming74::new());
        assert_eq!(wd.counts, vec![1, 0, 0, 7, 7, 0, 0, 1]);
        assert_eq!(wd.total(), 16);
        assert_eq!(wd.min_distance(), 3);
    }

    #[test]
    fn hamming84_weight_enumerator_is_self_dual() {
        let wd = WeightDistribution::of_code(&Hamming84::new());
        assert_eq!(wd.counts, vec![1, 0, 0, 0, 14, 0, 0, 0, 1]);
        // The extended Hamming(8,4) code is self-dual: the MacWilliams
        // transform must reproduce the same distribution.
        let dual = wd.dual(4);
        assert_eq!(dual.counts, wd.counts);
    }

    #[test]
    fn rm13_and_hamming84_share_weight_distribution() {
        let a = WeightDistribution::of_code(&Rm13::new());
        let b = WeightDistribution::of_code(&Hamming84::new());
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn hamming74_dual_is_simplex_code() {
        // The dual of Hamming(7,4) is the [7,3] simplex code: all 7 nonzero
        // codewords have weight 4.
        let wd = WeightDistribution::of_code(&Hamming74::new());
        let dual = wd.dual(4);
        assert_eq!(dual.counts, vec![1, 0, 0, 0, 7, 0, 0, 0]);
    }

    #[test]
    fn undetected_error_probability_is_small_for_small_p() {
        let wd = WeightDistribution::of_code(&Hamming84::new());
        let p_ud = wd.undetected_error_probability(1e-3);
        // Dominated by the 14 weight-4 codewords: ~14e-12.
        assert!(p_ud > 1e-12 && p_ud < 1e-10, "P_ud = {p_ud}");
        // Monotone in p over the low-error regime.
        assert!(wd.undetected_error_probability(1e-2) > p_ud);
    }

    #[test]
    fn krawtchouk_zeroth_is_binomial() {
        for w in 0..=8 {
            assert_eq!(krawtchouk(8, 0, w), 1.0);
        }
        assert_eq!(krawtchouk(8, 1, 0), 8.0);
        assert_eq!(krawtchouk(8, 1, 8), -8.0);
    }

    #[test]
    fn bounded_distance_matches_direct_sum() {
        let p: f64 = 0.05;
        let direct: f64 = (2..=7)
            .map(|w| binomial(7, w as u64) as f64 * p.powi(w) * (1.0 - p).powi(7 - w))
            .sum();
        let got = bounded_distance_block_error(7, 1, p);
        assert!((got - direct).abs() < 1e-15);
    }

    #[test]
    fn uncoded_message_error_matches_complement() {
        let p = 0.1;
        let e = uncoded_message_error(4, p);
        assert!((e - (1.0 - 0.9f64.powi(4))).abs() < 1e-15);
        assert_eq!(uncoded_message_error(4, 0.0), 0.0);
        assert!((uncoded_message_error(4, 1.0) - 1.0).abs() < 1e-15);
    }
}
