//! Batch (bit-sliced) encoding and decoding interfaces.
//!
//! These traits are the batch counterparts of [`crate::BlockCode`] and
//! [`crate::HardDecoder`]: instead of one message at a time they operate on a
//! [`BitSlice64`] batch — messages stored transposed, one `u64`-limb lane per
//! bit position, 64 messages per limb — so that implementations can encode,
//! compute syndromes, and hard-decode 64 codewords per word operation.
//!
//! The reference implementation lives in the `sfq-batch` crate
//! (`BatchCodec`), which is constructed from any scalar code + decoder and is
//! bit-exact with the scalar path by construction (verified exhaustively by
//! the workspace's equivalence tests).

use gf2::BitSlice64;

/// Reusable working memory for the batch codec hot path.
///
/// Decoding a batch needs temporaries — syndrome bit-slices and a per-limb
/// lane-gather buffer — that would otherwise be allocated per call. Monte-
/// Carlo loops construct one `BatchScratch` per worker and thread it through
/// [`BatchDecode::decode_batch_with`]; the buffers are re-shaped in place
/// ([`BitSlice64::reset`]) and only ever grow, so the steady-state inner
/// loop touches no allocator at all.
///
/// The fields are public working storage: implementations may use them
/// freely between calls, and callers must not rely on their contents.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// `(n-k)`-lane syndrome slices of the batch being decoded.
    pub syndromes: BitSlice64,
    /// Per-limb gather buffer (one limb per syndrome lane).
    pub gather: Vec<u64>,
}

impl BatchScratch {
    /// An empty scratch; buffers are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Batch encoding of `k`-bit messages into `n`-bit codewords.
pub trait BatchEncode {
    /// Codeword length `n` in bits.
    fn n(&self) -> usize;

    /// Message length `k` in bits.
    fn k(&self) -> usize;

    /// Encodes a batch of messages (`k` lanes) into codewords (`n` lanes).
    ///
    /// # Panics
    /// Panics if `messages.bits() != self.k()`.
    fn encode_batch(&self, messages: &BitSlice64) -> BitSlice64;

    /// Like [`BatchEncode::encode_batch`], but writes into a caller-provided
    /// buffer (re-shaped in place) instead of allocating. The default
    /// falls back to the allocating method; high-throughput implementations
    /// override it.
    ///
    /// # Panics
    /// Panics if `messages.bits() != self.k()`.
    fn encode_batch_into(&self, messages: &BitSlice64, codewords: &mut BitSlice64) {
        *codewords = self.encode_batch(messages);
    }
}

/// Batch hard-decision decoding of `n`-bit received words.
///
/// Semantics match [`crate::HardDecoder::decode`]: ambiguous received words
/// (decoder ties) raise the error flag instead of being resolved, which is
/// the property that makes the per-syndrome behaviour coset-invariant and
/// therefore expressible as pure lane operations.
pub trait BatchDecode: BatchEncode {
    /// Computes the `(n-k)`-lane syndrome batch of a received batch.
    ///
    /// # Panics
    /// Panics if `received.bits() != self.n()`.
    fn syndrome_batch(&self, received: &BitSlice64) -> BitSlice64;

    /// Like [`BatchDecode::syndrome_batch`], but writes into a caller-provided
    /// buffer. The default falls back to the allocating method.
    ///
    /// # Panics
    /// Panics if `received.bits() != self.n()`.
    fn syndrome_batch_into(&self, received: &BitSlice64, syndromes: &mut BitSlice64) {
        *syndromes = self.syndrome_batch(received);
    }

    /// Hard-decodes a batch of received words.
    ///
    /// # Panics
    /// Panics if `received.bits() != self.n()`.
    fn decode_batch(&self, received: &BitSlice64) -> BatchDecoded;

    /// Like [`BatchDecode::decode_batch`], but reuses caller-provided scratch
    /// and output buffers so a steady-state decode loop performs no
    /// allocation. The default ignores the scratch and falls back to the
    /// allocating method; high-throughput implementations override it.
    ///
    /// # Panics
    /// Panics if `received.bits() != self.n()`.
    fn decode_batch_with(
        &self,
        received: &BitSlice64,
        scratch: &mut BatchScratch,
        out: &mut BatchDecoded,
    ) {
        let _ = scratch;
        *out = self.decode_batch(received);
    }
}

/// Result of decoding one batch: per-message codeword/message estimates plus
/// flag masks, all in transposed form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchDecoded {
    /// Decoded messages, `k` lanes. Lanes are zeroed at flagged positions
    /// (the scalar decoder returns no message there).
    pub messages: BitSlice64,
    /// Corrected codewords, `n` lanes. At flagged positions the received word
    /// is passed through unchanged.
    pub codewords: BitSlice64,
    /// Per-message error-flag mask, one limb per 64 messages: bit `i % 64` of
    /// limb `i / 64` is set when message `i` was detected-uncorrectable.
    pub flagged: Vec<u64>,
    /// Per-message correction mask (same layout): set when the decoder
    /// flipped at least one bit.
    pub corrected: Vec<u64>,
}

impl BatchDecoded {
    /// An empty result, ready to be passed to
    /// [`BatchDecode::decode_batch_with`] (which re-shapes it in place).
    #[must_use]
    pub fn empty() -> Self {
        BatchDecoded {
            messages: BitSlice64::default(),
            codewords: BitSlice64::default(),
            flagged: Vec::new(),
            corrected: Vec::new(),
        }
    }

    /// Returns `true` if message `i` raised the error flag.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn is_flagged(&self, i: usize) -> bool {
        assert!(i < self.messages.batch(), "index out of range");
        (self.flagged[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns `true` if the decoder corrected message `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn is_corrected(&self, i: usize) -> bool {
        assert!(i < self.messages.batch(), "index out of range");
        (self.corrected[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of flagged (detected-uncorrectable) messages in the batch.
    #[must_use]
    pub fn flagged_count(&self) -> usize {
        self.flagged.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Number of corrected messages in the batch.
    #[must_use]
    pub fn corrected_count(&self) -> usize {
        self.corrected.iter().map(|l| l.count_ones() as usize).sum()
    }
}
