//! The graceful-degradation ladder.
//!
//! Under sustained overload the scrub service sheds work in defined steps
//! rather than letting its backlog (and therefore every batch's latency)
//! grow without bound:
//!
//! 1. [`ServiceMode::FullCorrection`] — the contract: every batch fully
//!    decoded, errors corrected, uncorrectables flagged.
//! 2. [`ServiceMode::WidenedAdmission`] — batches are coalesced into wider
//!    decode jobs, amortizing the per-job fixed cost. Nothing is lost;
//!    per-batch latency rises slightly in exchange for throughput.
//! 3. [`ServiceMode::DetectionOnly`] — SEC-DED-class codes stop correcting
//!    and merely *detect*: clean words are delivered unchanged, dirty words
//!    are flagged for rescrub. A fraction of the full decode cost.
//! 4. [`ServiceMode::ShedAndRescrub`] — arrivals beyond the intake bound
//!    are dropped *and flagged for rescrub* (never silently lost); the
//!    backlog is actively trimmed.
//!
//! Transitions are driven by backlog depth with **hysteresis** (a rung
//! releases at a fraction of its engage threshold) and a **minimum dwell**
//! (no rung flaps within `min_dwell` cycles), escalating and recovering one
//! rung at a time. The controller is pure integer state — the transition
//! sequence for a seeded scenario is exactly reproducible, which is what
//! the ladder tests assert.

/// The service's operating mode — one rung of the degradation ladder,
/// ordered from full service to maximum shedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceMode {
    /// Full decode: correct everything correctable, flag the rest.
    FullCorrection,
    /// Full decode with widened (coalesced) batch admission.
    WidenedAdmission,
    /// Syndrome screen only: deliver clean words, flag dirty ones.
    DetectionOnly,
    /// Detection plus active shedding of over-bound arrivals.
    ShedAndRescrub,
}

impl ServiceMode {
    /// Every mode, in ladder order.
    pub const ALL: [ServiceMode; 4] = [
        ServiceMode::FullCorrection,
        ServiceMode::WidenedAdmission,
        ServiceMode::DetectionOnly,
        ServiceMode::ShedAndRescrub,
    ];

    /// Ladder rung index (0 = full service).
    #[must_use]
    pub fn rung(self) -> usize {
        match self {
            ServiceMode::FullCorrection => 0,
            ServiceMode::WidenedAdmission => 1,
            ServiceMode::DetectionOnly => 2,
            ServiceMode::ShedAndRescrub => 3,
        }
    }

    /// Stable name, used by telemetry and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServiceMode::FullCorrection => "full-correction",
            ServiceMode::WidenedAdmission => "widened-admission",
            ServiceMode::DetectionOnly => "detection-only",
            ServiceMode::ShedAndRescrub => "shed-and-rescrub",
        }
    }
}

/// Ladder thresholds, all in backlog depth (batches waiting anywhere in the
/// pipeline: deferred at admission, in intake, or queued on a shard).
#[derive(Debug, Clone, Copy)]
pub struct LadderConfig {
    /// Backlog at which rung 1 (widened admission) engages.
    pub widen_engage: usize,
    /// Backlog at which rung 2 (detection-only) engages.
    pub detect_engage: usize,
    /// Backlog at which rung 3 (shed-and-rescrub) engages.
    pub shed_engage: usize,
    /// A rung releases when backlog falls to this percentage of its engage
    /// threshold (hysteresis; 100 would flap, 0 never releases).
    pub release_percent: usize,
    /// Minimum cycles between transitions of the same direction at one rung
    /// (anti-flap dwell).
    pub min_dwell: u64,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            widen_engage: 12,
            detect_engage: 24,
            shed_engage: 48,
            release_percent: 50,
            min_dwell: 512,
        }
    }
}

impl LadderConfig {
    fn engage_threshold(&self, rung: usize) -> usize {
        match rung {
            1 => self.widen_engage,
            2 => self.detect_engage,
            3 => self.shed_engage,
            _ => usize::MAX,
        }
    }

    fn release_threshold(&self, rung: usize) -> usize {
        self.engage_threshold(rung) * self.release_percent / 100
    }
}

/// One recorded mode transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Simulated cycle of the transition.
    pub cycle: u64,
    /// Mode before.
    pub from: ServiceMode,
    /// Mode after.
    pub to: ServiceMode,
}

/// The ladder controller: current mode plus the anti-flap state.
#[derive(Debug, Clone)]
pub struct Ladder {
    config: LadderConfig,
    mode: ServiceMode,
    last_transition: u64,
}

impl Ladder {
    /// A ladder starting at full correction.
    #[must_use]
    pub fn new(config: LadderConfig) -> Self {
        Ladder {
            config,
            mode: ServiceMode::FullCorrection,
            last_transition: 0,
        }
    }

    /// Current operating mode.
    #[must_use]
    pub fn mode(&self) -> ServiceMode {
        self.mode
    }

    /// Re-evaluates the ladder against the current backlog. Escalates or
    /// releases at most one rung, honoring hysteresis and dwell; returns the
    /// transition if one occurred.
    pub fn update(&mut self, backlog: usize, cycle: u64) -> Option<Transition> {
        let rung = self.mode.rung();
        let dwell_ok = cycle.saturating_sub(self.last_transition) >= self.config.min_dwell;

        // Escalation is eager (overload must be answered promptly) but
        // still one rung per update and dwell-limited so a single spike
        // cannot skip the intermediate rungs' telemetry trail.
        if rung < 3 && backlog >= self.config.engage_threshold(rung + 1) && dwell_ok {
            return Some(self.transition_to(ServiceMode::ALL[rung + 1], cycle));
        }
        // Release is conservative: hysteresis below the *current* rung's
        // engage point, plus the dwell.
        if rung > 0 && backlog <= self.config.release_threshold(rung) && dwell_ok {
            return Some(self.transition_to(ServiceMode::ALL[rung - 1], cycle));
        }
        None
    }

    fn transition_to(&mut self, to: ServiceMode, cycle: u64) -> Transition {
        let from = self.mode;
        self.mode = to;
        self.last_transition = cycle;
        Transition { cycle, from, to }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> LadderConfig {
        LadderConfig {
            widen_engage: 10,
            detect_engage: 20,
            shed_engage: 40,
            release_percent: 50,
            min_dwell: 4,
        }
    }

    #[test]
    fn escalates_one_rung_at_a_time() {
        let mut ladder = Ladder::new(quick_config());
        // Backlog jumps straight past every threshold; rungs still step.
        let t = ladder.update(100, 10).expect("must escalate");
        assert_eq!(
            (t.from, t.to),
            (ServiceMode::FullCorrection, ServiceMode::WidenedAdmission)
        );
        assert_eq!(ladder.update(100, 11), None, "dwell blocks the next step");
        let t = ladder.update(100, 14).expect("dwell elapsed");
        assert_eq!(t.to, ServiceMode::DetectionOnly);
        let t = ladder.update(100, 18).expect("dwell elapsed");
        assert_eq!(t.to, ServiceMode::ShedAndRescrub);
        assert_eq!(ladder.update(100, 30), None, "top rung holds");
    }

    #[test]
    fn releases_with_hysteresis() {
        let mut ladder = Ladder::new(quick_config());
        ladder.update(15, 10).expect("engage widen");
        // Backlog at 60% of the widen threshold: inside the hysteresis band,
        // no release.
        assert_eq!(ladder.update(6, 20), None);
        // At 50% the rung releases.
        let t = ladder.update(5, 24).expect("release");
        assert_eq!(
            (t.from, t.to),
            (ServiceMode::WidenedAdmission, ServiceMode::FullCorrection)
        );
    }

    #[test]
    fn recovery_walks_the_whole_ladder_down() {
        let mut ladder = Ladder::new(quick_config());
        ladder.update(50, 4).unwrap();
        ladder.update(50, 8).unwrap();
        ladder.update(50, 12).unwrap();
        assert_eq!(ladder.mode(), ServiceMode::ShedAndRescrub);
        let mut modes = Vec::new();
        let mut cycle = 16;
        while ladder.mode() != ServiceMode::FullCorrection {
            if let Some(t) = ladder.update(0, cycle) {
                modes.push(t.to);
            }
            cycle += 1;
        }
        assert_eq!(
            modes,
            vec![
                ServiceMode::DetectionOnly,
                ServiceMode::WidenedAdmission,
                ServiceMode::FullCorrection
            ]
        );
    }
}
