//! Online memory-scrubbing service with a latency contract.
//!
//! The paper's encoders assume a *continuous* scrubbing regime: a scrub
//! pointer walks cryogenic memory, syndrome batches stream into the decode
//! pipeline on every clock, and the room-temperature stage must keep up —
//! an offline batch decoder that is fast "on average" is useless if its
//! tail latency lets the scrub backlog grow without bound. This crate wraps
//! the bit-sliced [`sfq_batch::BatchCodec`] in exactly that service regime
//! and makes the contract testable:
//!
//! * **[`clock`]** — a deterministic rational-rate arrival process on a
//!   simulated cycle clock.
//! * **[`queue`]** — bounded blocking SPSC/MPSC queues; the admission and
//!   execution backpressure edges.
//! * **[`degrade`]** — the graceful-degradation ladder: full correction →
//!   widened admission → detection-only → shed-and-rescrub, with
//!   hysteresis and anti-flap dwell, always recovering to full correction.
//! * **[`fault`]** — the scripted fault injector: worker stalls, clock-tree
//!   bursts, rate spikes, poisoned batches.
//! * **[`service`]** — the scheduler (a cycle-stepped discrete-event
//!   simulation that owns all latency accounting) plus real decode worker
//!   threads executing the same jobs.
//! * **[`report`]** — run reports whose deterministic section is
//!   bit-identical across machines and worker-thread counts.
//!
//! ```
//! use sfq_stream::{FaultScript, ScrubService, StreamConfig};
//!
//! let mut config = StreamConfig::nominal();
//! config.batch_messages = 256; // keep the doctest quick
//! config.total_cycles = 1 << 12;
//! let report = ScrubService::run(&config, &FaultScript::quiet());
//! report.validate().expect("contract held");
//! assert_eq!(report.deadline_misses, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod degrade;
pub mod fault;
pub mod queue;
pub mod report;
pub mod service;

pub use clock::ArrivalProcess;
pub use degrade::{Ladder, LadderConfig, ServiceMode, Transition};
pub use fault::{Fault, FaultScript};
pub use queue::{BoundedQueue, TryPushError};
pub use report::{LatencySummary, StreamReport};
pub use service::{ScrubService, StreamConfig};
