//! Bounded blocking queues for the scrub pipeline.
//!
//! The service uses two queue shapes, both built on the same
//! [`BoundedQueue`] (a `Mutex<VecDeque>` + two condvars — the workspace's
//! offline `crossbeam` shim provides scoped threads only, so the channels
//! are first-party):
//!
//! * **SPSC job queues** — one per worker, producer = the scheduler,
//!   consumer = that worker. The scheduler's *non-blocking* push is the
//!   admission-control edge: a full job queue exerts backpressure on the
//!   dispatch loop instead of buffering unboundedly.
//! * **MPSC completion queue** — producers = every worker, consumer = the
//!   scheduler loop. Workers block on push (the scheduler is guaranteed to
//!   drain), the scheduler never blocks on pop.
//!
//! Capacity is fixed at construction and never grows; `close` wakes every
//! blocked party, after which pushes fail and pops drain the remaining
//! items then return `None`. That is the whole shutdown protocol.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a non-blocking push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue is closed; the item is handed back.
    Closed(T),
}

struct Inner<T> {
    buf: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

/// A bounded FIFO queue with blocking and non-blocking endpoints, safe for
/// any number of producers and consumers (the service wires it SPSC or
/// MPSC, but nothing in the type depends on that).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue can never move data");
        BoundedQueue {
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(capacity),
                capacity,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocks until there is room (or the queue closes).
    ///
    /// # Errors
    /// Returns the item back if the queue is closed.
    pub fn push_blocking(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        while inner.buf.len() == inner.capacity && !inner.closed {
            inner = self.not_full.wait(inner).expect("queue lock poisoned");
        }
        if inner.closed {
            return Err(item);
        }
        inner.buf.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pushes without blocking.
    ///
    /// # Errors
    /// Returns [`TryPushError::Full`] at capacity, [`TryPushError::Closed`]
    /// after [`BoundedQueue::close`]; both hand the item back.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err(TryPushError::Closed(item));
        }
        if inner.buf.len() == inner.capacity {
            return Err(TryPushError::Full(item));
        }
        inner.buf.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available; `None` once the queue is closed
    /// *and* drained (items pushed before the close are still delivered).
    pub fn pop_blocking(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = inner.buf.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Pops without blocking; `None` when currently empty (closed or not).
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        let item = inner.buf.pop_front();
        drop(inner);
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: wakes every blocked producer and consumer. Pending
    /// items remain poppable; new pushes fail.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current queue depth.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").buf.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(TryPushError::Full(3)));
        assert_eq!(q.try_pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), Some(3));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push_blocking(10).unwrap();
        q.close();
        assert_eq!(q.push_blocking(11), Err(11));
        assert_eq!(q.try_push(12), Err(TryPushError::Closed(12)));
        assert_eq!(q.pop_blocking(), Some(10));
        assert_eq!(q.pop_blocking(), None);
    }

    #[test]
    fn blocking_push_waits_for_room() {
        let q = BoundedQueue::new(1);
        q.push_blocking(0u32).unwrap();
        crossbeam::scope(|s| {
            s.spawn(|_| {
                // Blocks until the main thread pops.
                q.push_blocking(1).unwrap();
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert_eq!(q.pop_blocking(), Some(0));
            assert_eq!(q.pop_blocking(), Some(1));
        })
        .expect("no panic");
    }

    #[test]
    fn mpsc_many_producers_conserve_items() {
        let q = BoundedQueue::new(3);
        let mut received = Vec::new();
        crossbeam::scope(|s| {
            for p in 0..4u64 {
                let q = &q;
                s.spawn(move |_| {
                    for i in 0..50u64 {
                        q.push_blocking(p * 1000 + i).unwrap();
                    }
                });
            }
            for _ in 0..200 {
                received.push(q.pop_blocking().unwrap());
            }
        })
        .expect("no panic");
        received.sort_unstable();
        received.dedup();
        assert_eq!(received.len(), 200, "every pushed item arrives once");
        // Per-producer FIFO: within one producer's items, order held — check
        // via a second pass is unnecessary since dedup proved conservation.
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        crossbeam::scope(|s| {
            s.spawn(|_| {
                assert_eq!(q.pop_blocking(), None);
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.close();
        })
        .expect("no panic");
    }
}
