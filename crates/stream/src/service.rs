//! The scrub service itself: a cycle-stepped deterministic scheduler
//! feeding real decode workers through bounded queues.
//!
//! ## Determinism architecture
//!
//! Everything the latency contract is judged by — admission, shard
//! assignment, completion cycles, deadline misses, backlog, ladder
//! transitions — is computed by a **discrete-event simulation** over a
//! virtual cycle clock with an integer cost model (`fixed + batches ×
//! marginal` cycles per decode job). The simulation depends only on the
//! configuration, seed, and fault script — never on thread timing — so a
//! scenario replays bit-identically on any machine.
//!
//! Real parallelism lives one layer below: every dispatched job is *also*
//! pushed through a bounded SPSC queue to a decode worker thread (shard `s`
//! is served by worker `s % threads`), which regenerates the batch from the
//! seed, injects the scripted errors, runs the real [`BatchCodec`] in the
//! mode the scheduler chose, classifies every message, and reports counts
//! over the MPSC completion queue. Outcome counts are pure functions of
//! `(seed, batch id, mode, faults)` and addition is commutative, so the
//! totals are bit-identical across 1, 2, or 4 workers — that is exactly
//! what the determinism tests assert. Only the wall-clock throughput
//! numbers are machine-dependent, and the report labels them as such.

use crate::clock::ArrivalProcess;
use crate::degrade::{Ladder, LadderConfig, ServiceMode};
use crate::fault::{Fault, FaultScript};
use crate::queue::{BoundedQueue, TryPushError};
use crate::report::{LatencyHistogram, StreamReport};
use cryolink::burst::{BurstSource, SparseFlipSource};
use ecc::{BatchDecode, BatchDecoded, BatchEncode, BatchScratch};
use gf2::BitSlice64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfq_batch::{BatchCodec, KernelEnvError, KernelKind};
use std::collections::VecDeque;

/// Full configuration of one service run. Every field participates in the
/// deterministic section of the report except `threads`, which is purely a
/// real-parallelism knob (the simulated capacity is fixed by `shards` and
/// the cost model).
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Messages per syndrome batch.
    pub batch_messages: usize,
    /// SEC-DED family member: `2^m` data bits (6 → the wide (72,64) code).
    pub secded_m: usize,
    /// Simulated decode shards — these set the service's capacity.
    pub shards: usize,
    /// Real worker threads executing the decode work (must divide into the
    /// shards: worker `w` serves shards `s` with `s % threads == w`).
    pub threads: usize,
    /// The latency contract: a batch must complete within this many cycles
    /// of its arrival.
    pub cycle_budget: u64,
    /// Bounded intake depth (batches) — the admission-control edge.
    pub intake_capacity: usize,
    /// Per-shard job-queue depth (jobs).
    pub shard_queue_capacity: usize,
    /// Real per-worker job-queue depth (jobs) — the execution backpressure
    /// edge.
    pub exec_queue_capacity: usize,
    /// Nominal arrival rate: batches per 1024 cycles.
    pub arrivals_per_1024: u64,
    /// Fixed cycles per decode job (setup, queue hop).
    pub fixed_cost: u64,
    /// Marginal cycles per batch under full correction.
    pub full_cost: u64,
    /// Marginal cycles per batch under detection-only decode.
    pub detect_cost: u64,
    /// Batches coalesced per job at full service.
    pub coalesce: usize,
    /// Batches coalesced per job once admission is widened (rungs ≥ 1).
    pub widened_coalesce: usize,
    /// Degradation-ladder thresholds.
    pub ladder: LadderConfig,
    /// Per-position (lane × message) flip probability of the steady-state
    /// error source.
    pub flip_prob: f64,
    /// Master seed: batch contents and injected errors derive from it.
    pub seed: u64,
    /// Cycles during which batches arrive.
    pub total_cycles: u64,
    /// Extra cycles allowed for the pipeline to drain and the ladder to
    /// recover after arrivals stop.
    pub drain_limit: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self::nominal()
    }
}

impl StreamConfig {
    /// The nominal operating point: SEC-DED(72,64), 4 shards at ~81 %
    /// simulated utilization, a 384-cycle latency budget, and a light error
    /// rate. At this rate the service must show zero deadline misses.
    #[must_use]
    pub fn nominal() -> Self {
        StreamConfig {
            batch_messages: 4096,
            secded_m: 6,
            shards: 4,
            threads: 2,
            cycle_budget: 384,
            intake_capacity: 32,
            shard_queue_capacity: 8,
            exec_queue_capacity: 4,
            arrivals_per_1024: 52,
            fixed_cost: 16,
            full_cost: 48,
            detect_cost: 12,
            coalesce: 1,
            widened_coalesce: 4,
            ladder: LadderConfig::default(),
            flip_prob: 1e-4,
            seed: 0xC0FF_EE11,
            total_cycles: 1 << 16,
            drain_limit: 1 << 16,
        }
    }

    /// The same operating point with the arrival rate scaled by
    /// `factor_milli / 1000` (1500 = the ISSUE's 1.5× overload).
    #[must_use]
    pub fn with_rate_factor(mut self, factor_milli: u64) -> Self {
        self.arrivals_per_1024 = self.arrivals_per_1024 * factor_milli / 1000;
        self
    }

    /// Simulated decode capacity in batches per 1024 cycles at full
    /// correction with unit coalescing — the yardstick overload factors are
    /// measured against.
    #[must_use]
    pub fn capacity_per_1024(&self) -> u64 {
        self.shards as u64 * 1024 / (self.fixed_cost + self.full_cost)
    }
}

/// One scheduled batch, as both the simulation and the workers see it.
#[derive(Debug, Clone, Copy)]
struct TicketSpec {
    id: u64,
    arrival: u64,
    /// Clock-tree burst width to strike this batch with (0 = none).
    burst_width: u8,
    poisoned: bool,
}

/// A decode job in the simulated shard queue; `finish` is fixed at dispatch
/// (integer cost model), which is what makes completions deterministic.
#[derive(Debug)]
struct SimJob {
    finish: u64,
    tickets: Vec<TicketSpec>,
}

#[derive(Debug, Default)]
struct SimShard {
    jobs: VecDeque<SimJob>,
    /// Completion cycle of the last job scheduled on this shard.
    tail_finish: u64,
    /// Stall cycles to charge to the next dispatched job (worker-stall
    /// faults).
    stall_debt: u64,
    /// Batches dispatched to this shard and not yet completed.
    inflight: usize,
}

/// A job as shipped to a real worker thread.
struct ExecJob {
    mode: ServiceMode,
    tickets: Vec<TicketSpec>,
}

/// Message-outcome counts a worker reports per job. Pure sums, so merging
/// is order-independent — the root of cross-thread determinism.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct ExecCounts {
    batches: u64,
    messages: u64,
    delivered_ok: u64,
    corrected: u64,
    flagged: u64,
    detect_rescrub: u64,
    silent: u64,
    poisoned: u64,
}

impl ExecCounts {
    fn merge(&mut self, other: ExecCounts) {
        self.batches += other.batches;
        self.messages += other.messages;
        self.delivered_ok += other.delivered_ok;
        self.corrected += other.corrected;
        self.flagged += other.flagged;
        self.detect_rescrub += other.detect_rescrub;
        self.silent += other.silent;
        self.poisoned += other.poisoned;
    }
}

/// Telemetry handles of the `stream.*` family (see docs/OBSERVABILITY.md).
struct StreamMetrics {
    arrivals: sfq_telemetry::Counter,
    completed: sfq_telemetry::Counter,
    sheds: sfq_telemetry::Counter,
    poisoned: sfq_telemetry::Counter,
    deadline_misses: sfq_telemetry::Counter,
    transitions: sfq_telemetry::Counter,
    stalls: sfq_telemetry::Counter,
    spikes: sfq_telemetry::Counter,
    bursts: sfq_telemetry::Counter,
    backlog: sfq_telemetry::Gauge,
    mode: sfq_telemetry::Gauge,
    latency: sfq_telemetry::Histogram,
    drain: sfq_telemetry::Gauge,
    msgs_delivered: sfq_telemetry::Counter,
    msgs_corrected: sfq_telemetry::Counter,
    msgs_flagged: sfq_telemetry::Counter,
    msgs_detect_rescrub: sfq_telemetry::Counter,
    msgs_silent_wrong: sfq_telemetry::Counter,
}

impl StreamMetrics {
    fn new() -> Self {
        let registry = sfq_telemetry::global();
        StreamMetrics {
            arrivals: registry.counter("stream.arrivals"),
            completed: registry.counter("stream.completed_batches"),
            sheds: registry.counter("stream.shed_batches"),
            poisoned: registry.counter("stream.poisoned_rejected"),
            deadline_misses: registry.counter("stream.deadline_misses"),
            transitions: registry.counter("stream.mode_transitions"),
            stalls: registry.counter("stream.faults.stalls"),
            spikes: registry.counter("stream.faults.spikes"),
            bursts: registry.counter("stream.faults.bursts"),
            backlog: registry.gauge("stream.backlog"),
            mode: registry.gauge("stream.mode"),
            latency: registry.histogram("stream.latency_cycles"),
            drain: registry.gauge("stream.drain_cycles"),
            msgs_delivered: registry.counter("stream.msgs.delivered_ok"),
            msgs_corrected: registry.counter("stream.msgs.corrected"),
            msgs_flagged: registry.counter("stream.msgs.flagged_rescrub"),
            msgs_detect_rescrub: registry.counter("stream.msgs.detect_rescrub"),
            msgs_silent_wrong: registry.counter("stream.msgs.silent_wrong"),
        }
    }
}

/// The continuous scrubbing service.
pub struct ScrubService;

impl ScrubService {
    /// Validates environment configuration a long-running service must not
    /// start with. Codec construction itself degrades gracefully (bad
    /// `SFQ_BATCH_KERNEL` falls back to auto with a warning); a service
    /// entry point should call this first and refuse to start instead, so
    /// the operator sees the config error at deploy time rather than a
    /// warning in a log nobody reads.
    ///
    /// # Errors
    /// Returns the parse error of an invalid `SFQ_BATCH_KERNEL` value.
    pub fn check_environment() -> Result<(), KernelEnvError> {
        KernelKind::from_env().map(|_| ())
    }

    /// Runs one complete service scenario: arrivals for
    /// `config.total_cycles` cycles under the fault script, then drain.
    ///
    /// # Panics
    /// Panics on nonsensical configuration (zero shards, more threads than
    /// shards, zero batch size) and if a worker thread panics.
    #[must_use]
    pub fn run(config: &StreamConfig, faults: &FaultScript) -> StreamReport {
        assert!(config.shards > 0, "need at least one shard");
        assert!(
            config.threads >= 1 && config.threads <= config.shards,
            "threads must be in 1..=shards"
        );
        assert!(config.batch_messages > 0, "empty batches make no progress");
        assert!(config.coalesce >= 1 && config.widened_coalesce >= config.coalesce);
        if let Err(error) = Self::check_environment() {
            eprintln!("warning: scrub service starting with invalid env: {error}");
        }

        let metrics = StreamMetrics::new();
        let job_queues: Vec<BoundedQueue<ExecJob>> = (0..config.threads)
            .map(|_| BoundedQueue::new(config.exec_queue_capacity))
            .collect();
        let completion_queue: BoundedQueue<ExecCounts> = BoundedQueue::new(config.threads * 4);

        let mut report: Option<StreamReport> = None;
        crossbeam::scope(|s| {
            for queue in &job_queues {
                let completion_queue = &completion_queue;
                s.spawn(move |_| worker_loop(config, queue, completion_queue));
            }
            report = Some(Self::schedule(
                config,
                faults,
                &metrics,
                &job_queues,
                &completion_queue,
            ));
        })
        .expect("scrub worker panicked");
        report.expect("scheduler always produces a report")
    }

    /// The scheduler: the deterministic simulation loop plus the real
    /// dispatch/collection edges.
    #[allow(clippy::too_many_lines)]
    fn schedule(
        config: &StreamConfig,
        faults: &FaultScript,
        metrics: &StreamMetrics,
        job_queues: &[BoundedQueue<ExecJob>],
        completion_queue: &BoundedQueue<ExecCounts>,
    ) -> StreamReport {
        let wall_start = std::time::Instant::now();

        let mut arrivals = ArrivalProcess::new(config.arrivals_per_1024);
        let mut ladder = Ladder::new(config.ladder);
        let mut shards: Vec<SimShard> = (0..config.shards).map(|_| SimShard::default()).collect();
        let mut pending: VecDeque<TicketSpec> = VecDeque::new();
        let mut intake: VecDeque<TicketSpec> = VecDeque::new();
        let mut latency = LatencyHistogram::new(config.cycle_budget * 4);
        let events = faults.events();
        let mut fault_idx = 0usize;
        let mut burst_queue: VecDeque<u8> = VecDeque::new();
        let mut pending_poison = 0usize;

        let mut ticket_id = 0u64;
        let mut stat_arrivals = 0u64;
        let mut stat_completed = 0u64;
        let mut stat_shed = 0u64;
        let mut stat_poisoned = 0u64;
        let mut stat_misses = 0u64;
        let mut max_backlog = 0usize;
        let mut transitions = Vec::new();

        let mut agg = ExecCounts::default();
        let mut dispatched_jobs = 0u64;
        let mut received_jobs = 0u64;

        let drain_deadline = config.total_cycles + config.drain_limit;
        let mut cycle = 0u64;
        let mut drained = false;
        let end_cycle;
        loop {
            // 1. Scripted faults due this cycle.
            while fault_idx < events.len() && events[fault_idx].0 <= cycle {
                match events[fault_idx].1 {
                    Fault::WorkerStall { shard, cycles } => {
                        shards[shard % config.shards].stall_debt += cycles;
                        metrics.stalls.inc();
                    }
                    Fault::RateSpike {
                        factor_milli,
                        duration,
                    } => {
                        arrivals.spike(factor_milli, cycle + duration);
                        metrics.spikes.inc();
                    }
                    Fault::ClockTreeBurst { width } => {
                        burst_queue.push_back(width.min(255) as u8);
                        metrics.bursts.inc();
                    }
                    Fault::PoisonedBatch => pending_poison += 1,
                }
                fault_idx += 1;
            }

            // 2. Arrivals (while the run is live).
            if cycle < config.total_cycles {
                for _ in 0..arrivals.tick(cycle) {
                    let burst_width = burst_queue.pop_front().unwrap_or(0);
                    let poisoned = pending_poison > 0;
                    pending_poison = pending_poison.saturating_sub(1);
                    pending.push_back(TicketSpec {
                        id: ticket_id,
                        arrival: cycle,
                        burst_width,
                        poisoned,
                    });
                    ticket_id += 1;
                    stat_arrivals += 1;
                    metrics.arrivals.inc();
                }
            }

            // 3. Admission: bounded intake; overflow defers (backpressure on
            // the scrub pointer) unless the ladder says shed.
            while intake.len() < config.intake_capacity {
                match pending.pop_front() {
                    Some(t) => intake.push_back(t),
                    None => break,
                }
            }
            if ladder.mode() == ServiceMode::ShedAndRescrub {
                // Every shed batch is flagged for rescrub — never silently
                // dropped.
                while pending.pop_front().is_some() {
                    stat_shed += 1;
                    metrics.sheds.inc();
                }
            }

            // 4. Dispatch: coalesce per the mode, place on the
            // least-loaded shard, fix the completion cycle, and ship the
            // job to the real worker.
            let mode = ladder.mode();
            let coalesce = if mode == ServiceMode::FullCorrection {
                config.coalesce
            } else {
                config.widened_coalesce
            };
            let marginal = match mode {
                ServiceMode::DetectionOnly | ServiceMode::ShedAndRescrub => config.detect_cost,
                _ => config.full_cost,
            };
            while !intake.is_empty() {
                let Some(shard_idx) = pick_shard(&shards, config.shard_queue_capacity, cycle)
                else {
                    break; // every shard queue full: backpressure holds
                };
                let take = coalesce.min(intake.len());
                let tickets: Vec<TicketSpec> = intake.drain(..take).collect();
                let cost = config.fixed_cost
                    + tickets
                        .iter()
                        .map(|t| if t.poisoned { 0 } else { marginal })
                        .sum::<u64>();
                let shard = &mut shards[shard_idx];
                let start = shard.tail_finish.max(cycle) + shard.stall_debt;
                shard.stall_debt = 0;
                let finish = start + cost;
                shard.tail_finish = finish;
                shard.inflight += tickets.len();
                shard.jobs.push_back(SimJob {
                    finish,
                    tickets: tickets.clone(),
                });
                push_with_drain(
                    &job_queues[shard_idx % config.threads],
                    ExecJob { mode, tickets },
                    completion_queue,
                    &mut agg,
                    &mut received_jobs,
                );
                dispatched_jobs += 1;
            }

            // 5. Simulated completions due by this cycle.
            for shard in &mut shards {
                while shard.jobs.front().is_some_and(|j| j.finish <= cycle) {
                    let job = shard.jobs.pop_front().expect("front checked");
                    shard.inflight -= job.tickets.len();
                    for t in &job.tickets {
                        if t.poisoned {
                            stat_poisoned += 1;
                            metrics.poisoned.inc();
                            continue;
                        }
                        let lat = job.finish - t.arrival;
                        latency.record(lat);
                        metrics.latency.record(lat);
                        if lat > config.cycle_budget {
                            stat_misses += 1;
                            metrics.deadline_misses.inc();
                        }
                        stat_completed += 1;
                        metrics.completed.inc();
                    }
                }
            }

            // 6. Backlog and the ladder.
            let backlog =
                pending.len() + intake.len() + shards.iter().map(|s| s.inflight).sum::<usize>();
            max_backlog = max_backlog.max(backlog);
            if let Some(t) = ladder.update(backlog, cycle) {
                transitions.push(t);
                metrics.transitions.inc();
                metrics.mode.set(t.to.rung() as i64);
            }
            if cycle.is_multiple_of(256) {
                metrics.backlog.set(backlog as i64);
            }

            // 7. Opportunistic completion drain (keeps workers unblocked).
            while let Some(c) = completion_queue.try_pop() {
                agg.merge(c);
                received_jobs += 1;
            }

            // 8. Termination: arrivals over, pipeline empty, ladder
            // recovered.
            cycle += 1;
            if cycle >= config.total_cycles {
                if backlog == 0 && ladder.mode() == ServiceMode::FullCorrection {
                    drained = true;
                    end_cycle = cycle;
                    break;
                }
                if cycle >= drain_deadline {
                    end_cycle = cycle;
                    break;
                }
            }
        }

        // Shut the pipeline down: close job queues, collect every
        // outstanding completion, then the scope joins the workers.
        for queue in job_queues {
            queue.close();
        }
        while received_jobs < dispatched_jobs {
            let counts = completion_queue
                .pop_blocking()
                .expect("workers exit only after flushing completions");
            agg.merge(counts);
            received_jobs += 1;
        }
        let wall_ns = u64::try_from(wall_start.elapsed().as_nanos()).unwrap_or(u64::MAX);

        // Cross-check the two bookkeeping layers against each other: the
        // simulation and the real workers must have seen the same batches.
        assert_eq!(
            agg.batches, stat_completed,
            "sim and exec disagree on completed batches"
        );
        assert_eq!(
            agg.poisoned, stat_poisoned,
            "sim and exec disagree on poisoned batches"
        );

        metrics.msgs_delivered.add(agg.delivered_ok);
        metrics.msgs_corrected.add(agg.corrected);
        metrics.msgs_flagged.add(agg.flagged);
        metrics.msgs_detect_rescrub.add(agg.detect_rescrub);
        metrics.msgs_silent_wrong.add(agg.silent);

        let time_to_drain = end_cycle.saturating_sub(config.total_cycles);
        metrics.drain.set(time_to_drain as i64);
        let throughput = if wall_ns == 0 {
            0.0
        } else {
            agg.messages as f64 * 1e9 / wall_ns as f64
        };

        StreamReport {
            arrivals: stat_arrivals,
            completed_batches: stat_completed,
            shed_batches: stat_shed,
            poisoned_rejected: stat_poisoned,
            deadline_misses: stat_misses,
            max_backlog,
            time_to_drain,
            drained,
            transitions,
            final_mode: ladder.mode(),
            latency: latency.summary(),
            messages_decoded: agg.messages,
            delivered_ok: agg.delivered_ok,
            corrected: agg.corrected,
            flagged_rescrub: agg.flagged,
            detect_rescrub: agg.detect_rescrub,
            silent_wrong: agg.silent,
            wall_ns,
            throughput_msgs_per_sec: throughput,
            batch_messages: config.batch_messages as u64,
            threads: config.threads,
        }
    }
}

/// Least-loaded shard with queue room (ties to the lowest index —
/// deterministic).
fn pick_shard(shards: &[SimShard], queue_capacity: usize, cycle: u64) -> Option<usize> {
    shards
        .iter()
        .enumerate()
        .filter(|(_, s)| s.jobs.len() < queue_capacity)
        .min_by_key(|(i, s)| (s.tail_finish.max(cycle) + s.stall_debt, *i))
        .map(|(i, _)| i)
}

/// Non-blocking job push that drains completions while waiting — the
/// scheduler never deadlocks against a worker blocked on the completion
/// queue.
fn push_with_drain(
    queue: &BoundedQueue<ExecJob>,
    job: ExecJob,
    completion_queue: &BoundedQueue<ExecCounts>,
    agg: &mut ExecCounts,
    received_jobs: &mut u64,
) {
    let mut job = job;
    loop {
        match queue.try_push(job) {
            Ok(()) => return,
            Err(TryPushError::Full(j)) => {
                job = j;
                let mut drained_any = false;
                while let Some(c) = completion_queue.try_pop() {
                    agg.merge(c);
                    *received_jobs += 1;
                    drained_any = true;
                }
                if !drained_any {
                    std::thread::yield_now();
                }
            }
            Err(TryPushError::Closed(_)) => {
                unreachable!("job queues close only after the scheduler loop")
            }
        }
    }
}

/// SplitMix64-style per-ticket seed derivation: batch `id`'s content is a
/// pure function of `(master seed, id)`, independent of which worker
/// regenerates it.
fn ticket_seed(master: u64, id: u64) -> u64 {
    let mut z = master ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fills every lane with seeded random words, respecting the tail mask so
/// the slice's invariants hold.
fn fill_random(frame: &mut BitSlice64, rng: &mut StdRng) {
    let words = frame.words();
    let tail = frame.tail_mask();
    for lane in 0..frame.bits() {
        let data = frame.lane_mut(lane);
        for (w, slot) in data.iter_mut().enumerate() {
            let mask = if w + 1 == words { tail } else { u64::MAX };
            *slot = rng.random::<u64>() & mask;
        }
    }
}

/// A received frame is structurally valid when its lane count matches the
/// code's block length (poisoned batches fail here and are rejected, never
/// decoded).
fn frame_valid(codec: &BatchCodec, frame: &BitSlice64) -> bool {
    frame.bits() == codec.n() && frame.batch() > 0
}

/// One worker: owns a codec + scratch, regenerates each batch from the
/// seed, injects the scripted errors, decodes in the scheduler-chosen mode,
/// classifies every message, and reports counts per job.
fn worker_loop(
    config: &StreamConfig,
    jobs: &BoundedQueue<ExecJob>,
    completion_queue: &BoundedQueue<ExecCounts>,
) {
    let codec = BatchCodec::sec_ded(config.secded_m);
    let k = codec.k();
    let n = codec.n();
    let flips = SparseFlipSource::new(config.flip_prob);

    let mut scratch = BatchScratch::new();
    let mut decoded = BatchDecoded::empty();
    let mut dirty: Vec<u64> = Vec::new();
    let mut messages = BitSlice64::zeros(k, config.batch_messages);
    let mut clean = BitSlice64::default();
    let mut received = BitSlice64::default();

    while let Some(job) = jobs.pop_blocking() {
        let mut counts = ExecCounts::default();
        for ticket in &job.tickets {
            if ticket.poisoned {
                // The link delivered a malformed frame: wrong lane count.
                // Validation rejects it; the decode path is never entered.
                let malformed = BitSlice64::zeros(n - 1, config.batch_messages);
                assert!(!frame_valid(&codec, &malformed));
                counts.poisoned += 1;
                continue;
            }
            let mut rng = StdRng::seed_from_u64(ticket_seed(config.seed, ticket.id));
            fill_random(&mut messages, &mut rng);
            codec.encode_batch_into(&messages, &mut clean);
            received.copy_from(&clean);
            flips.inject(&mut rng, &mut received);
            if ticket.burst_width > 0 {
                BurstSource::new(usize::from(ticket.burst_width), 1.0)
                    .strike(&mut rng, &mut received);
            }
            match job.mode {
                ServiceMode::FullCorrection | ServiceMode::WidenedAdmission => {
                    codec.decode_batch_with(&received, &mut scratch, &mut decoded);
                    classify_full(&decoded, &messages, k, &mut counts);
                }
                ServiceMode::DetectionOnly | ServiceMode::ShedAndRescrub => {
                    codec.detect_batch_with(&received, &mut scratch, &mut dirty);
                    classify_detect(&received, &clean, &dirty, n, &mut counts);
                }
            }
            counts.batches += 1;
            counts.messages += config.batch_messages as u64;
        }
        completion_queue
            .push_blocking(counts)
            .expect("completion queue outlives the workers");
    }
}

/// Classifies a full decode against ground truth: delivered-correct
/// (including corrections), flagged, or silently wrong.
fn classify_full(decoded: &BatchDecoded, messages: &BitSlice64, k: usize, counts: &mut ExecCounts) {
    let words = messages.words();
    let tail = messages.tail_mask();
    for w in 0..words {
        let valid = if w + 1 == words { tail } else { u64::MAX };
        let flagged = decoded.flagged[w] & valid;
        let mut diff = 0u64;
        for lane in 0..k {
            diff |= decoded.messages.lane(lane)[w] ^ messages.lane(lane)[w];
        }
        let silent = diff & !flagged & valid;
        let ok = valid & !flagged & !silent;
        counts.delivered_ok += u64::from(ok.count_ones());
        counts.corrected += u64::from((decoded.corrected[w] & ok).count_ones());
        counts.flagged += u64::from(flagged.count_ones());
        counts.silent += u64::from(silent.count_ones());
    }
}

/// Classifies a detection-only screen against ground truth: clean words
/// delivered, dirty words flagged for rescrub, undetectable corruption
/// counted silent.
fn classify_detect(
    received: &BitSlice64,
    clean: &BitSlice64,
    dirty: &[u64],
    n: usize,
    counts: &mut ExecCounts,
) {
    let words = received.words();
    let tail = received.tail_mask();
    for (w, &dirty_word) in dirty.iter().enumerate().take(words) {
        let valid = if w + 1 == words { tail } else { u64::MAX };
        let dirty_w = dirty_word & valid;
        let mut diff = 0u64;
        for lane in 0..n {
            diff |= received.lane(lane)[w] ^ clean.lane(lane)[w];
        }
        let silent = diff & !dirty_w & valid;
        counts.detect_rescrub += u64::from(dirty_w.count_ones());
        counts.silent += u64::from(silent.count_ones());
        counts.delivered_ok += u64::from((valid & !dirty_w & !diff).count_ones());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> StreamConfig {
        StreamConfig {
            batch_messages: 256,
            total_cycles: 1 << 13,
            drain_limit: 1 << 14,
            threads: 1,
            ..StreamConfig::nominal()
        }
    }

    #[test]
    fn nominal_run_meets_the_contract_and_conserves_batches() {
        let config = small_config();
        let report = ScrubService::run(&config, &FaultScript::quiet());
        report.validate().expect("invariants hold");
        assert_eq!(report.deadline_misses, 0, "nominal rate must not miss");
        assert!(report.arrivals > 300, "the run actually ran");
        assert_eq!(report.shed_batches, 0);
        assert_eq!(report.transitions, vec![]);
    }

    #[test]
    fn ticket_seed_spreads_ids() {
        let a = ticket_seed(1, 0);
        let b = ticket_seed(1, 1);
        let c = ticket_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, ticket_seed(1, 0), "pure function");
    }

    #[test]
    fn poisoned_batches_are_rejected_not_decoded() {
        let config = small_config();
        let script = FaultScript::quiet().repeat(100, 400, 8, crate::fault::Fault::PoisonedBatch);
        let report = ScrubService::run(&config, &script);
        report.validate().expect("invariants hold");
        assert_eq!(report.poisoned_rejected, 8);
    }

    #[test]
    fn worker_stalls_delay_but_never_lose_batches() {
        let config = small_config();
        let script = FaultScript::quiet().repeat(
            500,
            1000,
            6,
            crate::fault::Fault::WorkerStall {
                shard: 1,
                cycles: 200,
            },
        );
        let report = ScrubService::run(&config, &script);
        report.validate().expect("invariants hold");
        let quiet = ScrubService::run(&config, &FaultScript::quiet());
        assert_eq!(report.arrivals, quiet.arrivals);
        assert!(
            report.latency.max >= quiet.latency.max,
            "stalls must not make latency better"
        );
    }

    #[test]
    fn capacity_yardstick_matches_the_cost_model() {
        let config = StreamConfig::nominal();
        assert_eq!(config.capacity_per_1024(), 64);
        assert!(config.arrivals_per_1024 < config.capacity_per_1024());
    }
}
