//! The fault injector: a deterministic script of pipeline perturbations.
//!
//! Robustness claims are only as good as the faults they were tested
//! against, so the injector perturbs the *pipeline itself*, not just the
//! data: worker stalls (a shard stops decoding for a window), clock-tree
//! burst errors (one event flips adjacent lanes across a whole limb of a
//! batch — see [`cryolink::burst::BurstSource`]), arrival-rate spikes
//! (overload), and poisoned batches (malformed frames that must be rejected
//! gracefully, never decoded or panicked on).
//!
//! Faults are *scripted*: a sorted list of `(cycle, fault)` events replayed
//! by the scheduler, so every seeded scenario — including the CI soak run —
//! perturbs the service identically on every machine. To add a new fault
//! kind, see the "adding a fault injector" guide in `docs/STREAMING.md`.

/// One pipeline perturbation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Shard `shard` stops decoding for `cycles` simulated cycles (its next
    /// job is delayed by that much) — a worker stall.
    WorkerStall {
        /// Stalled shard index.
        shard: usize,
        /// Stall length in cycles.
        cycles: u64,
    },
    /// The arrival rate is multiplied by `factor_milli / 1000` for
    /// `duration` cycles — a scrub-pointer burst or upstream backlog flush.
    RateSpike {
        /// Rate multiplier in milli-units (1500 = 1.5×).
        factor_milli: u64,
        /// Spike window length in cycles.
        duration: u64,
    },
    /// The next arriving batch carries a clock-tree burst: one event flips
    /// `width` adjacent lanes across a whole limb.
    ClockTreeBurst {
        /// Number of adjacent lanes flipped.
        width: usize,
    },
    /// The next arriving batch is poisoned: its frame is malformed and must
    /// be rejected by validation, not decoded.
    PoisonedBatch,
}

impl Fault {
    /// Stable name for telemetry attribution.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Fault::WorkerStall { .. } => "worker-stall",
            Fault::RateSpike { .. } => "rate-spike",
            Fault::ClockTreeBurst { .. } => "clock-tree-burst",
            Fault::PoisonedBatch => "poisoned-batch",
        }
    }
}

/// A deterministic fault schedule: `(cycle, fault)` events, replayed in
/// cycle order by the scheduler.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    events: Vec<(u64, Fault)>,
}

impl FaultScript {
    /// An empty script (no faults).
    #[must_use]
    pub fn quiet() -> Self {
        FaultScript::default()
    }

    /// A script from explicit events; sorted by cycle (stable, so same-cycle
    /// events keep their listed order).
    #[must_use]
    pub fn new(mut events: Vec<(u64, Fault)>) -> Self {
        events.sort_by_key(|&(cycle, _)| cycle);
        FaultScript { events }
    }

    /// Appends one event (builder style).
    #[must_use]
    pub fn with(mut self, cycle: u64, fault: Fault) -> Self {
        self.events.push((cycle, fault));
        self.events.sort_by_key(|&(c, _)| c);
        self
    }

    /// Appends `count` repetitions of a fault starting at `start`, one every
    /// `period` cycles (builder style) — the soak run's background noise.
    #[must_use]
    pub fn repeat(mut self, start: u64, period: u64, count: usize, fault: Fault) -> Self {
        for i in 0..count as u64 {
            self.events.push((start + i * period, fault));
        }
        self.events.sort_by_key(|&(c, _)| c);
        self
    }

    /// The scheduled events, in cycle order.
    #[must_use]
    pub fn events(&self) -> &[(u64, Fault)] {
        &self.events
    }

    /// The standard soak-mix: periodic worker stalls, bursts, and poisoned
    /// batches spread across `total_cycles` over `shards` shards, dense
    /// enough that every fault kind fires many times in a ~30 s run but
    /// light enough that a nominally-loaded service stays inside its
    /// latency contract.
    #[must_use]
    pub fn soak_mix(total_cycles: u64, shards: usize, burst_width: usize) -> Self {
        let mut script = FaultScript::quiet();
        let stall_period = total_cycles / 64;
        for i in 0..48u64 {
            script.events.push((
                stall_period / 2 + i * stall_period,
                Fault::WorkerStall {
                    shard: (i as usize) % shards,
                    cycles: 24,
                },
            ));
        }
        let burst_period = total_cycles / 96;
        for i in 0..90u64 {
            script.events.push((
                burst_period / 3 + i * burst_period,
                Fault::ClockTreeBurst { width: burst_width },
            ));
        }
        let poison_period = total_cycles / 32;
        for i in 0..30u64 {
            script
                .events
                .push((poison_period / 4 + i * poison_period, Fault::PoisonedBatch));
        }
        script.events.sort_by_key(|&(c, _)| c);
        script
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_replay_in_cycle_order() {
        let script = FaultScript::quiet()
            .with(30, Fault::PoisonedBatch)
            .with(10, Fault::ClockTreeBurst { width: 2 })
            .repeat(
                5,
                20,
                2,
                Fault::WorkerStall {
                    shard: 0,
                    cycles: 8,
                },
            );
        let cycles: Vec<u64> = script.events().iter().map(|&(c, _)| c).collect();
        assert_eq!(cycles, vec![5, 10, 25, 30]);
    }

    #[test]
    fn soak_mix_covers_every_fault_kind() {
        let script = FaultScript::soak_mix(1 << 16, 4, 3);
        let names: std::collections::BTreeSet<&str> =
            script.events().iter().map(|(_, f)| f.name()).collect();
        assert!(names.contains("worker-stall"));
        assert!(names.contains("clock-tree-burst"));
        assert!(names.contains("poisoned-batch"));
        assert!(script.events().windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
