//! The seeded simulation clock's arrival process.
//!
//! Syndrome batches arrive on a discrete cycle clock at a *rational* rate:
//! `arrivals_per_1024` batches per 1024 cycles, accumulated in integer
//! arithmetic so that every run with the same configuration produces the
//! same arrival cycle for every batch — the determinism the latency
//! contract's tests are built on. Overload experiments scale the rate by a
//! spike factor in milli-units (`1500` = 1.5×), again exactly.

/// Deterministic batch-arrival process: integer rational-rate accumulator
/// with a multiplicative spike window.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    /// Base rate: batches per 1024 cycles.
    per_1024: u64,
    /// Rate multiplier in milli-units (1000 = nominal).
    factor_milli: u64,
    /// Cycle at which the current spike window ends (factor reverts to
    /// 1000).
    spike_until: u64,
    /// Fixed-point accumulator, in units of 1/(1024·1000) batches.
    acc: u64,
}

/// One accumulator quantum equals a full batch.
const QUANTUM: u64 = 1024 * 1000;

impl ArrivalProcess {
    /// An arrival process at `per_1024` batches per 1024 cycles.
    #[must_use]
    pub fn new(per_1024: u64) -> Self {
        ArrivalProcess {
            per_1024,
            factor_milli: 1000,
            spike_until: 0,
            acc: 0,
        }
    }

    /// Applies a rate spike: the arrival rate is multiplied by
    /// `factor_milli / 1000` until `until_cycle`.
    pub fn spike(&mut self, factor_milli: u64, until_cycle: u64) {
        self.factor_milli = factor_milli;
        self.spike_until = until_cycle;
    }

    /// The rate multiplier active at `cycle`, in milli-units.
    #[must_use]
    pub fn factor_at(&self, cycle: u64) -> u64 {
        if cycle < self.spike_until {
            self.factor_milli
        } else {
            1000
        }
    }

    /// Advances one cycle; returns how many batches arrive this cycle
    /// (usually 0 or 1; more under extreme spikes).
    pub fn tick(&mut self, cycle: u64) -> u64 {
        self.acc += self.per_1024 * self.factor_at(cycle);
        let arrivals = self.acc / QUANTUM;
        self.acc %= QUANTUM;
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_exact_over_long_windows() {
        let mut process = ArrivalProcess::new(52);
        let total: u64 = (0..1024 * 100).map(|c| process.tick(c)).sum();
        assert_eq!(total, 52 * 100, "52 per 1024 cycles, exactly");
    }

    #[test]
    fn spike_scales_the_rate_and_reverts() {
        let mut process = ArrivalProcess::new(64);
        process.spike(1500, 1024);
        let during: u64 = (0..1024).map(|c| process.tick(c)).sum();
        let after: u64 = (1024..2048).map(|c| process.tick(c)).sum();
        assert_eq!(during, 96, "1.5 × 64");
        assert_eq!(after, 64);
    }

    #[test]
    fn arrivals_are_deterministic() {
        let run = || -> Vec<u64> {
            let mut p = ArrivalProcess::new(37);
            (0..5000).map(|c| p.tick(c)).collect()
        };
        assert_eq!(run(), run());
    }
}
