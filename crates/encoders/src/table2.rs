//! Table II — circuit-level comparison of the error-correction code encoders.
//!
//! [`table2_rows`] computes the table from the synthesized netlists and a
//! cell library; [`paper_table2`] holds the values printed in the paper for
//! side-by-side comparison in the benchmark output and EXPERIMENTS.md.
//!
//! Every computed row is derived from [`NetlistStats`] — the one place in
//! the workspace that turns a netlist into a histogram and a cost — via
//! [`Table2Row::from_stats`]; this module adds only the paper's presentation
//! and, for pipeline-synthesized designs, the *naive* (sharing-free) flow's
//! cost next to the optimized one so the value of the pass pipeline is
//! visible per code.

use crate::{EncoderDesign, EncoderKind};
use serde::{Deserialize, Serialize};
use sfq_cells::{CellKind, CellLibrary};
use sfq_netlist::pass::Schedule;
use sfq_netlist::NetlistStats;

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Encoder name as printed in the paper.
    pub encoder: String,
    /// Number of XOR gates.
    pub xor_gates: u64,
    /// Number of D flip-flops.
    pub dffs: u64,
    /// Number of splitters (data + clock distribution).
    pub splitters: u64,
    /// Number of SFQ-to-DC converters.
    pub sfq_to_dc: u64,
    /// Total Josephson-junction count.
    pub jj_count: u64,
    /// Static power dissipation in microwatts.
    pub power_uw: f64,
    /// Layout area in square millimetres.
    pub area_mm2: f64,
    /// XOR count of the naive sharing-free synthesis of the same code
    /// (`None` for rows quoted from the paper).
    pub naive_xor_gates: Option<u64>,
    /// JJ count of the naive sharing-free synthesis of the same code.
    pub naive_jj_count: Option<u64>,
    /// XOR count of the cancellation-free Paar factoring (the fixed
    /// pre-planner schedule), for the naive → Paar → cancellation-aware
    /// comparison. `None` for rows quoted from the paper.
    pub paar_xor_gates: Option<u64>,
    /// JJ count of the cancellation-free Paar factoring.
    pub paar_jj_count: Option<u64>,
}

impl Table2Row {
    /// Builds a row from computed netlist statistics — the single source of
    /// truth for histograms and costs.
    #[must_use]
    pub fn from_stats(encoder: impl Into<String>, stats: &NetlistStats) -> Self {
        Table2Row {
            encoder: encoder.into(),
            xor_gates: stats.histogram.count(CellKind::Xor),
            dffs: stats.histogram.count(CellKind::Dff),
            splitters: stats.histogram.count(CellKind::Splitter),
            sfq_to_dc: stats.histogram.count(CellKind::SfqToDc),
            jj_count: stats.cost.jj_count,
            power_uw: stats.cost.static_power_uw,
            area_mm2: stats.cost.area_mm2,
            naive_xor_gates: None,
            naive_jj_count: None,
            paar_xor_gates: None,
            paar_jj_count: None,
        }
    }

    /// Attaches the naive-flow comparison columns.
    #[must_use]
    pub fn with_naive(mut self, naive: &NetlistStats) -> Self {
        self.naive_xor_gates = Some(naive.histogram.count(CellKind::Xor));
        self.naive_jj_count = Some(naive.cost.jj_count);
        self
    }

    /// Attaches the Paar-factoring comparison columns, read from the
    /// design's recorded schedule plan (the planner already priced the
    /// `Schedule::default()` candidate at build time; its planned cell
    /// counts are library-independent, so any library can re-price them).
    #[must_use]
    pub fn with_paar(mut self, design: &EncoderDesign, library: &CellLibrary) -> Self {
        let paar = design
            .schedule_plan()
            .and_then(|plan| {
                plan.candidates
                    .iter()
                    .find(|c| c.schedule == Schedule::default())
            })
            .map(|c| c.planned);
        self.paar_xor_gates = paar.map(|p| p.xor);
        self.paar_jj_count = paar.map(|p| p.jj(library));
        self
    }

    /// JJ saving of the optimized synthesis versus the naive flow, in
    /// percent, when the naive columns are present.
    #[must_use]
    pub fn jj_saving_pct(&self) -> Option<f64> {
        self.naive_jj_count
            .map(|naive| 100.0 * (naive as f64 - self.jj_count as f64) / naive as f64)
    }

    /// Formats the row like the paper's table, with the naive-vs-optimized
    /// columns appended when available.
    #[must_use]
    pub fn format(&self) -> String {
        let mut row = format!(
            "{:<22} | {:>2} XOR, {:>2} DFF, {:>2} SPL, {:>2} SFQ/DC | {:>4} JJ | {:>6.1} uW | {:>6.3} mm2",
            self.encoder,
            self.xor_gates,
            self.dffs,
            self.splitters,
            self.sfq_to_dc,
            self.jj_count,
            self.power_uw,
            self.area_mm2
        );
        if let (Some(naive_xor), Some(naive_jj), Some(saving)) = (
            self.naive_xor_gates,
            self.naive_jj_count,
            self.jj_saving_pct(),
        ) {
            row.push_str(&format!(
                " | naive {naive_xor} XOR {naive_jj} JJ ({saving:+.1}% JJ)"
            ));
        }
        if let (Some(paar_xor), Some(paar_jj)) = (self.paar_xor_gates, self.paar_jj_count) {
            row.push_str(&format!(" | paar {paar_xor} XOR {paar_jj} JJ"));
        }
        row
    }
}

/// Computes Table II from the three encoder netlists and a cell library.
///
/// Rows are ordered as in the paper: RM(1,3), Hamming(7,4), Hamming(8,4).
#[must_use]
pub fn table2_rows(library: &CellLibrary) -> Vec<Table2Row> {
    [
        EncoderKind::Rm13,
        EncoderKind::Hamming74,
        EncoderKind::Hamming84,
    ]
    .iter()
    .map(|&kind| table2_row_for(&EncoderDesign::build(kind), library))
    .collect()
}

/// Computes a Table-II-style row for one built design.
#[must_use]
pub fn table2_row_for(design: &EncoderDesign, library: &CellLibrary) -> Table2Row {
    Table2Row::from_stats(design.name(), &design.stats(library))
}

/// Table-II-style circuit costs for **every coded catalog member**: the
/// paper's three encoders, the synthesized SEC-DED family up to (72,64), the
/// wide Shortened Hamming(85,64), the BCH registry — (31,16), (63,51) and
/// (63,45) — and the iterative LDPC(60,32), each with the naive sharing-free
/// synthesis cost alongside the pipeline's. The uncoded baseline is omitted
/// (it has no encoder logic to cost).
#[must_use]
pub fn catalog_table_rows(library: &CellLibrary) -> Vec<Table2Row> {
    EncoderDesign::build_catalog()
        .iter()
        .filter(|d| d.kind() != EncoderKind::None)
        .map(|d| {
            let row = table2_row_for(d, library).with_paar(d, library);
            match d.naive_netlist() {
                Some(naive) => row.with_naive(&NetlistStats::compute(&naive, library)),
                None => row,
            }
        })
        .collect()
}

/// The values printed in Table II of the paper.
#[must_use]
pub fn paper_table2() -> Vec<Table2Row> {
    vec![
        Table2Row {
            encoder: "Reed-Muller RM(1,3)".to_string(),
            xor_gates: 8,
            dffs: 7,
            splitters: 26,
            sfq_to_dc: 8,
            jj_count: 305,
            power_uw: 101.5,
            area_mm2: 0.193,
            naive_xor_gates: None,
            naive_jj_count: None,
            paar_xor_gates: None,
            paar_jj_count: None,
        },
        Table2Row {
            encoder: "Hamming(7,4)".to_string(),
            xor_gates: 5,
            dffs: 8,
            splitters: 20,
            sfq_to_dc: 7,
            jj_count: 247,
            power_uw: 81.7,
            area_mm2: 0.158,
            naive_xor_gates: None,
            naive_jj_count: None,
            paar_xor_gates: None,
            paar_jj_count: None,
        },
        Table2Row {
            encoder: "Hamming(8,4)".to_string(),
            xor_gates: 6,
            dffs: 8,
            splitters: 23,
            sfq_to_dc: 8,
            jj_count: 278,
            power_uw: 92.3,
            area_mm2: 0.177,
            naive_xor_gates: None,
            naive_jj_count: None,
            paar_xor_gates: None,
            paar_jj_count: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computed_table2_matches_paper_exactly() {
        let lib = CellLibrary::coldflux();
        let computed = table2_rows(&lib);
        let paper = paper_table2();
        assert_eq!(computed.len(), paper.len());
        for (ours, theirs) in computed.iter().zip(&paper) {
            assert_eq!(ours.xor_gates, theirs.xor_gates, "{}", theirs.encoder);
            assert_eq!(ours.dffs, theirs.dffs, "{}", theirs.encoder);
            assert_eq!(ours.splitters, theirs.splitters, "{}", theirs.encoder);
            assert_eq!(ours.sfq_to_dc, theirs.sfq_to_dc, "{}", theirs.encoder);
            assert_eq!(ours.jj_count, theirs.jj_count, "{}", theirs.encoder);
            assert!(
                (ours.power_uw - theirs.power_uw).abs() < 0.05,
                "{}: {} vs {}",
                theirs.encoder,
                ours.power_uw,
                theirs.power_uw
            );
            assert!(
                (ours.area_mm2 - theirs.area_mm2).abs() < 0.0005,
                "{}: {} vs {}",
                theirs.encoder,
                ours.area_mm2,
                theirs.area_mm2
            );
        }
    }

    #[test]
    fn jj_count_ordering_matches_paper_discussion() {
        // RM(1,3) has the most JJs, Hamming(7,4) the fewest.
        let lib = CellLibrary::coldflux();
        let rows = table2_rows(&lib);
        let rm = &rows[0];
        let h74 = &rows[1];
        let h84 = &rows[2];
        assert!(rm.jj_count > h84.jj_count);
        assert!(h84.jj_count > h74.jj_count);
    }

    #[test]
    fn catalog_table_covers_the_secded_family() {
        let lib = CellLibrary::coldflux();
        let rows = catalog_table_rows(&lib);
        // Three paper encoders + four SEC-DED members + the wide Shortened
        // Hamming(85,64) + the three BCH registry members + LDPC(60,32); no
        // uncoded row.
        assert_eq!(rows.len(), 12);
        assert!(rows.iter().all(|r| r.encoder != "No encoder"));
        let jj_of = |name: &str| {
            rows.iter()
                .find(|r| r.encoder == name)
                .unwrap_or_else(|| panic!("missing row {name}"))
                .jj_count
        };
        // Costs grow monotonically with the data width across the family,
        // and the wide (72,64) member dwarfs the paper's 4-bit encoders.
        let family: Vec<u64> = [
            "SEC-DED(13,8)",
            "SEC-DED(22,16)",
            "SEC-DED(39,32)",
            "SEC-DED(72,64)",
        ]
        .iter()
        .map(|n| jj_of(n))
        .collect();
        assert!(family.windows(2).all(|w| w[0] < w[1]), "{family:?}");
        assert!(family[3] > jj_of("Hamming(8,4)"));
        // The multi-error registry members and the LDPC member are costed
        // too. Both length-63 BCH codes dwarf BCH(31,16); within length 63
        // the stronger t=3 member buys its extra parity logic back in message
        // flip-flops (k=45 vs 51), so its XOR count is higher even though its
        // JJ total is not.
        assert!(jj_of("BCH(63,51)") > jj_of("BCH(31,16)"));
        assert!(jj_of("BCH(63,45)") > jj_of("BCH(31,16)"));
        assert!(jj_of("LDPC(60,32)") > jj_of("BCH(31,16)"));
        let xor_of = |name: &str| {
            rows.iter()
                .find(|r| r.encoder == name)
                .unwrap_or_else(|| panic!("missing row {name}"))
                .xor_gates
        };
        assert!(xor_of("BCH(63,45)") > xor_of("BCH(63,51)"));
        // Every row carries a positive power/area estimate.
        for row in &rows {
            assert!(row.power_uw > 0.0 && row.area_mm2 > 0.0, "{}", row.encoder);
        }
    }

    #[test]
    fn catalog_rows_carry_naive_columns_and_positive_savings() {
        let lib = CellLibrary::coldflux();
        for row in catalog_table_rows(&lib) {
            let naive_xor = row
                .naive_xor_gates
                .unwrap_or_else(|| panic!("{}: missing naive XOR column", row.encoder));
            let naive_jj = row.naive_jj_count.unwrap();
            assert!(
                row.xor_gates <= naive_xor,
                "{}: optimized {} XOR vs naive {naive_xor}",
                row.encoder,
                row.xor_gates
            );
            assert!(
                row.jj_count <= naive_jj,
                "{}: optimized {} JJ vs naive {naive_jj}",
                row.encoder,
                row.jj_count
            );
            let saving = row.jj_saving_pct().unwrap();
            assert!(
                (0.0..100.0).contains(&saving),
                "{}: saving {saving}",
                row.encoder
            );
            assert!(row.format().contains("naive"), "{}", row.format());
        }
        // Rows quoted from the paper carry no naive columns and omit them
        // from the rendering.
        let paper_row = &paper_table2()[0];
        assert_eq!(paper_row.jj_saving_pct(), None);
        assert!(!paper_row.format().contains("naive"));
    }

    #[test]
    fn format_mentions_all_quantities() {
        let row = &paper_table2()[2];
        let text = row.format();
        assert!(text.contains("Hamming(8,4)"));
        assert!(text.contains("278 JJ"));
        assert!(text.contains("92.3"));
    }
}
