//! Lightweight SFQ error-correction code encoders — the primary contribution
//! of the paper.
//!
//! Every coded design in the catalog — the paper's Hamming(7,4),
//! Hamming(8,4) (Fig. 2) and RM(1,3) (Fig. 4) encoders as well as the
//! synthesized SEC-DED family up to (72,64) — is derived from its generator
//! matrix by the optimizing pass pipeline of `sfq-netlist`
//! ([`sfq_netlist::pass`]): greedy common-pair XOR factoring under a depth
//! budget, XOR-tree balancing with pad elision, splitter fan-out and
//! alignment planning, netlist emission, and clock-tree construction. The
//! pipeline reproduces the paper's hand-drawn circuits cell-for-cell
//! (Table II budgets: 5/6/8 XOR for Hamming(7,4)/Hamming(8,4)/RM(1,3)), and
//! every synthesis run ends with a pulse-level simulation check against the
//! reference code. [`EncoderKind::pipeline_options`] records the per-design
//! configuration — RM(1,3) uses the alignment-DFF discipline of Fig. 4, the
//! Hamming and SEC-DED designs the flux-holding discipline of Fig. 2.
//!
//! The only remaining hand-built netlist is
//! [`no_encoder::build_netlist`] — the uncoded 4-bit baseline of Fig. 5,
//! which contains no logic to synthesize.
//!
//! [`EncoderDesign`] bundles a circuit with its reference code (from the
//! `ecc` crate) and its receiver-side decoder, and [`table2`] regenerates the
//! circuit-level comparison of Table II, extended with the naive
//! (sharing-free) synthesis costs the pipeline is measured against.
//!
//! # Example
//!
//! ```
//! use encoders::{EncoderDesign, EncoderKind};
//! use gf2::BitVec;
//!
//! let enc = EncoderDesign::build(EncoderKind::Hamming84);
//! // Gate-level simulation of the circuit reproduces the reference encoding:
//! // message 1011 -> codeword 01100110 (the Fig. 3 stimulus).
//! let cw = enc.encode_gate_level(&BitVec::from_str01("1011"));
//! assert_eq!(cw.to_string01(), "01100110");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod no_encoder;
pub mod table2;

pub use ecc::BchSpec;
pub use table2::{catalog_table_rows, paper_table2, table2_row_for, table2_rows, Table2Row};

use ecc::{
    Bch, BlockCode, Decoded, Hamming74, Hamming84, HardDecoder, Ldpc, Rm13, SecDed,
    ShortenedHamming, Uncoded,
};
use gf2::{BitMat, BitVec};
use serde::{Deserialize, Serialize};
use sfq_cells::CellLibrary;
use sfq_netlist::pass::{
    pareto_sweep, InputDiscipline, ParetoPoint, PassManager, PipelineOptions, PipelineReport,
    SchedulePlan, SynthPlanner,
};
use sfq_netlist::{synth, Netlist, NetlistStats};
use sfq_sim::equivalence::{self, EquivalenceConfig};
use sfq_sim::{FaultMap, GateLevelSim, Stimulus, Trace};

/// Which encoder design to build.
///
/// Beyond the paper's three fixed encoders and the uncoded baseline, the
/// kind space enumerates *parameterized family members*: [`EncoderKind::SecDed`]
/// selects a shortened extended-Hamming SEC-DED code by its data-width
/// exponent (`m = 6` is the wide (72,64) code of real memory/link
/// deployments). [`EncoderKind::catalog`] lists every member the workspace
/// can build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EncoderKind {
    /// Uncoded 4-bit transmission (the "no encoder" curve of Fig. 5).
    None,
    /// Hamming(7,4) encoder.
    Hamming74,
    /// Extended Hamming(8,4) encoder (Fig. 2).
    Hamming84,
    /// First-order Reed–Muller RM(1,3) encoder (Fig. 4).
    Rm13,
    /// SEC-DED family member with `2^m` data bits (`m` in
    /// [`ecc::SECDED_MIN_M`]`..=`[`ecc::SECDED_MAX_M`]); synthesized with
    /// the generic generator-matrix flow rather than a hand-drawn schematic.
    SecDed(u8),
    /// The wide Shortened Hamming(85,64) demonstration code: 21 check bits —
    /// the first catalog member whose redundancy exceeds the batch engine's
    /// old 20-bit action-table limit, decodable only by column matching.
    /// Synthesized with the generic generator-matrix flow.
    WideHamming8564,
    /// A multi-error BCH registry member, selected by its
    /// [`BchSpec`] `(m, t, decode_radius)` triple (see
    /// [`BchSpec::REGISTRY`]: BCH(31,16) `t = 2`, BCH(63,51) `t = 2`, and
    /// BCH(63,45) `t = 3`). The dense cyclic generator polynomials produce
    /// parity equations with far more shared structure than the Hamming
    /// family — a genuine stress test for the cancellation-aware factoring
    /// schedule candidates. Synthesized with the generic
    /// generator-matrix flow.
    Bch(BchSpec),
    /// The regular Gallager LDPC(60,32) code (column weight 3, row weight
    /// 6), decoded by synchronous bit flipping — the catalog's first
    /// iteratively decoded member. Its sparse generator nonetheless has
    /// dense systematic parity columns, so it goes through the same
    /// generator-matrix synthesis flow.
    Ldpc,
}

impl EncoderKind {
    /// The three coded designs plus the uncoded baseline, in the order used
    /// by the paper's figures.
    pub const ALL: [EncoderKind; 4] = [
        EncoderKind::Rm13,
        EncoderKind::Hamming74,
        EncoderKind::Hamming84,
        EncoderKind::None,
    ];

    /// Every buildable design: the paper's four, the SEC-DED family from
    /// (13,8) up to (72,64), the wide Shortened Hamming(85,64)
    /// demonstration code, the three multi-error BCH registry members, and
    /// the regular LDPC(60,32) code.
    #[must_use]
    pub fn catalog() -> Vec<EncoderKind> {
        let mut kinds = Self::ALL.to_vec();
        kinds.extend((3..=ecc::SECDED_MAX_M as u8).map(EncoderKind::SecDed));
        kinds.push(EncoderKind::WideHamming8564);
        kinds.extend(BchSpec::REGISTRY.map(EncoderKind::Bch));
        kinds.push(EncoderKind::Ldpc);
        kinds
    }

    /// Display name matching the paper (and, for family members, the coding
    /// literature's `(n,k)` convention).
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            EncoderKind::None => "No encoder".to_string(),
            EncoderKind::Hamming74 => "Hamming(7,4)".to_string(),
            EncoderKind::Hamming84 => "Hamming(8,4)".to_string(),
            EncoderKind::Rm13 => "Reed-Muller RM(1,3)".to_string(),
            EncoderKind::SecDed(m) => {
                let k = 1usize << m;
                format!("SEC-DED({},{k})", k + usize::from(*m) + 2)
            }
            EncoderKind::WideHamming8564 => "Shortened Hamming(85,64)".to_string(),
            EncoderKind::Bch(spec) => spec.name(),
            EncoderKind::Ldpc => "LDPC(60,32)".to_string(),
        }
    }

    /// The synthesis-pipeline configuration of this design.
    ///
    /// RM(1,3) reproduces Fig. 4, which aligns the operands of every XOR
    /// with shared DFF chains; the Hamming encoders reproduce Fig. 2, which
    /// relies on flux-holding gates and toggling output drivers instead, and
    /// the SEC-DED family inherits that cheaper discipline.
    #[must_use]
    pub fn pipeline_options(&self) -> PipelineOptions {
        let discipline = match self {
            EncoderKind::Rm13 => InputDiscipline::Align,
            _ => InputDiscipline::Hold,
        };
        PipelineOptions {
            discipline,
            ..Default::default()
        }
    }

    /// The generator matrix of this design's reference code, without
    /// building the circuit (used by schedule planning and the Pareto
    /// sweep). The uncoded baseline's generator is the identity.
    #[must_use]
    pub fn generator(&self) -> BitMat {
        reference_code(*self).generator().clone()
    }

    /// The `depth_slack` latency/area Pareto sweep of this design under a
    /// cell library (see [`sfq_netlist::pass::pareto_sweep`]): one planned
    /// point per slack value, with the (encoding latency, JJ count) Pareto
    /// front marked. Returns an empty sweep for the uncoded baseline, which
    /// has no logic to synthesize.
    ///
    /// # Example
    ///
    /// ```
    /// use encoders::EncoderKind;
    /// use sfq_cells::CellLibrary;
    ///
    /// let points = EncoderKind::Hamming84.pareto_sweep(&CellLibrary::coldflux(), 2);
    /// assert_eq!(points.len(), 3);
    /// // Slack 0 is the paper's operating point: latency never regresses.
    /// assert!(points[0].on_front);
    /// assert_eq!(points[0].planned.depth, 2);
    /// ```
    #[must_use]
    pub fn pareto_sweep(&self, library: &CellLibrary, max_slack: usize) -> Vec<ParetoPoint> {
        if *self == EncoderKind::None {
            return Vec::new();
        }
        pareto_sweep(
            &self.generator(),
            &self.pipeline_options(),
            library,
            max_slack,
        )
    }

    /// The netlist name the pipeline gives this design.
    #[must_use]
    pub fn netlist_name(&self) -> String {
        match self {
            EncoderKind::None => "no_encoder".to_string(),
            EncoderKind::Hamming74 => "hamming74_encoder".to_string(),
            EncoderKind::Hamming84 => "hamming84_encoder".to_string(),
            EncoderKind::Rm13 => "rm13_encoder".to_string(),
            EncoderKind::SecDed(m) => {
                let k = 1usize << m;
                format!("secded_{}_{k}_encoder", k + usize::from(*m) + 2)
            }
            EncoderKind::WideHamming8564 => "shamming_85_64_encoder".to_string(),
            EncoderKind::Bch(spec) => {
                let (n, k) = spec.dimensions();
                format!("bch_{n}_{k}_encoder")
            }
            EncoderKind::Ldpc => "ldpc_60_32_encoder".to_string(),
        }
    }
}

/// Builds the reference code implementation behind an encoder kind.
fn reference_code(kind: EncoderKind) -> ReferenceCode {
    match kind {
        EncoderKind::None => ReferenceCode::None(Uncoded::new(4)),
        EncoderKind::Hamming74 => ReferenceCode::Hamming74(Hamming74::new()),
        EncoderKind::Hamming84 => ReferenceCode::Hamming84(Hamming84::new()),
        EncoderKind::Rm13 => ReferenceCode::Rm13(Rm13::new()),
        EncoderKind::SecDed(m) => ReferenceCode::SecDed(SecDed::new(usize::from(m))),
        EncoderKind::WideHamming8564 => ReferenceCode::WideHamming(ShortenedHamming::wide_85_64()),
        EncoderKind::Bch(spec) => ReferenceCode::Bch(Bch::from_spec(spec)),
        EncoderKind::Ldpc => ReferenceCode::Ldpc(Ldpc::gallager_60_32()),
    }
}

/// Reference code + decoder behind an encoder circuit.
enum ReferenceCode {
    None(Uncoded),
    Hamming74(Hamming74),
    Hamming84(Hamming84),
    Rm13(Rm13),
    SecDed(SecDed),
    WideHamming(ShortenedHamming),
    Bch(Bch),
    Ldpc(Ldpc),
}

impl ReferenceCode {
    fn encode(&self, message: &BitVec) -> BitVec {
        match self {
            ReferenceCode::None(c) => c.encode(message),
            ReferenceCode::Hamming74(c) => c.encode(message),
            ReferenceCode::Hamming84(c) => c.encode(message),
            ReferenceCode::Rm13(c) => c.encode(message),
            ReferenceCode::SecDed(c) => c.encode(message),
            ReferenceCode::WideHamming(c) => c.encode(message),
            ReferenceCode::Bch(c) => c.encode(message),
            ReferenceCode::Ldpc(c) => c.encode(message),
        }
    }

    fn decode(&self, received: &BitVec) -> Decoded {
        match self {
            ReferenceCode::None(c) => c.decode(received),
            ReferenceCode::Hamming74(c) => c.decode(received),
            ReferenceCode::Hamming84(c) => c.decode(received),
            // The paper credits RM(1,3) with correcting certain 2-bit error
            // patterns (Table I best case); that corresponds to the FHT
            // decoder with spectral tie-breaking.
            ReferenceCode::Rm13(c) => c.decode_best_effort(received),
            ReferenceCode::SecDed(c) => c.decode(received),
            ReferenceCode::WideHamming(c) => c.decode(received),
            ReferenceCode::Bch(c) => c.decode(received),
            ReferenceCode::Ldpc(c) => c.decode(received),
        }
    }

    fn n(&self) -> usize {
        match self {
            ReferenceCode::None(c) => c.n(),
            ReferenceCode::Hamming74(c) => c.n(),
            ReferenceCode::Hamming84(c) => c.n(),
            ReferenceCode::Rm13(c) => c.n(),
            ReferenceCode::SecDed(c) => c.n(),
            ReferenceCode::WideHamming(c) => c.n(),
            ReferenceCode::Bch(c) => c.n(),
            ReferenceCode::Ldpc(c) => c.n(),
        }
    }

    fn k(&self) -> usize {
        match self {
            ReferenceCode::None(c) => c.k(),
            ReferenceCode::Hamming74(c) => c.k(),
            ReferenceCode::Hamming84(c) => c.k(),
            ReferenceCode::Rm13(c) => c.k(),
            ReferenceCode::SecDed(c) => c.k(),
            ReferenceCode::WideHamming(c) => c.k(),
            ReferenceCode::Bch(c) => c.k(),
            ReferenceCode::Ldpc(c) => c.k(),
        }
    }

    fn generator(&self) -> &BitMat {
        match self {
            ReferenceCode::None(c) => c.generator(),
            ReferenceCode::Hamming74(c) => c.generator(),
            ReferenceCode::Hamming84(c) => c.generator(),
            ReferenceCode::Rm13(c) => c.generator(),
            ReferenceCode::SecDed(c) => c.generator(),
            ReferenceCode::WideHamming(c) => c.generator(),
            ReferenceCode::Bch(c) => c.generator(),
            ReferenceCode::Ldpc(c) => c.generator(),
        }
    }
}

/// An encoder circuit bundled with its reference code, gate-level simulator,
/// and receiver-side decoder.
pub struct EncoderDesign {
    kind: EncoderKind,
    name: String,
    netlist: Netlist,
    sim: GateLevelSim,
    code: ReferenceCode,
    latency: usize,
    synthesis_report: Option<PipelineReport>,
    schedule_plan: Option<SchedulePlan>,
}

impl EncoderDesign {
    /// Builds one of the catalog's encoder designs against the paper's
    /// ColdFlux cell library.
    ///
    /// Every coded design is synthesized from its generator matrix by the
    /// cost-model-driven pass pipeline (a
    /// [`sfq_netlist::pass::SynthPlanner`] prices every [`Schedule`]
    /// candidate and the [`sfq_netlist::pass::PassManager`] runs the
    /// cheapest) with the per-design [`EncoderKind::pipeline_options`], and
    /// the resulting netlist is simulation-checked against the reference
    /// code before it is accepted. The uncoded baseline keeps its trivial
    /// hand-built data path.
    ///
    /// [`Schedule`]: sfq_netlist::pass::Schedule
    ///
    /// # Panics
    /// Panics if the pipeline breaks functional equivalence — a synthesis
    /// bug, caught here rather than in a downstream experiment.
    #[must_use]
    pub fn build(kind: EncoderKind) -> Self {
        Self::build_with_library(kind, &CellLibrary::coldflux())
    }

    /// Builds a design with schedule planning priced against a specific
    /// cell library: libraries with different DFF/splitter cost ratios can
    /// legitimately pick different factoring and tree-shaping schedules
    /// (compare [`EncoderDesign::schedule_plan`] across libraries).
    ///
    /// # Panics
    /// Panics if the pipeline breaks functional equivalence.
    #[must_use]
    pub fn build_with_library(kind: EncoderKind, library: &CellLibrary) -> Self {
        let _span =
            sfq_telemetry::SpanTimer::start(sfq_telemetry::global().histogram("encoders.build_ns"));
        sfq_telemetry::global().counter("encoders.builds").inc();
        let code = reference_code(kind);
        let (netlist, synthesis_report, schedule_plan) = match &code {
            ReferenceCode::None(_) => (no_encoder::build_netlist(), None, None),
            _ => {
                let planner = SynthPlanner::new(kind.pipeline_options(), library);
                let plan = planner.plan(code.generator());
                let result = PassManager::with_schedule(kind.pipeline_options(), plan.chosen)
                    .with_netlist_verifier(equivalence::verifier(EquivalenceConfig::quick()))
                    .run(&kind.netlist_name(), code.generator())
                    .unwrap_or_else(|e| {
                        panic!("synthesis pipeline failed for {}: {e}", kind.name())
                    });
                sfq_netlist::pass::record_plan_metrics(&plan, &result, library);
                (result.netlist, Some(result.report), Some(plan))
            }
        };
        let latency = netlist.logic_depth();
        let sim = GateLevelSim::new(&netlist);
        EncoderDesign {
            kind,
            name: kind.name(),
            netlist,
            sim,
            code,
            latency,
            synthesis_report,
            schedule_plan,
        }
    }

    /// Builds all four designs of the paper (three encoders + uncoded
    /// baseline).
    #[must_use]
    pub fn build_all() -> Vec<EncoderDesign> {
        EncoderKind::ALL.iter().map(|&k| Self::build(k)).collect()
    }

    /// Builds every member of [`EncoderKind::catalog`], including the
    /// synthesized SEC-DED family.
    ///
    /// # Example
    ///
    /// ```
    /// use encoders::{EncoderDesign, EncoderKind};
    ///
    /// let catalog = EncoderDesign::build_catalog();
    /// assert_eq!(catalog.len(), EncoderKind::catalog().len());
    /// // Every coded member was synthesized by the cost-driven pipeline
    /// // and carries its schedule plan; the uncoded baseline has no logic.
    /// for design in &catalog {
    ///     assert_eq!(
    ///         design.schedule_plan().is_some(),
    ///         design.kind() != EncoderKind::None,
    ///     );
    /// }
    /// ```
    #[must_use]
    pub fn build_catalog() -> Vec<EncoderDesign> {
        EncoderKind::catalog()
            .into_iter()
            .map(Self::build)
            .collect()
    }

    /// Which design this is.
    #[must_use]
    pub fn kind(&self) -> EncoderKind {
        self.kind
    }

    /// Display name matching the paper.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The gate-level netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The per-pass synthesis account of the pipeline run that produced this
    /// design (`None` for the uncoded baseline, which has no logic to
    /// synthesize).
    #[must_use]
    pub fn synthesis_report(&self) -> Option<&PipelineReport> {
        self.synthesis_report.as_ref()
    }

    /// The schedule-planning outcome behind this design: every priced
    /// [`Schedule`](sfq_netlist::pass::Schedule) candidate and the winner
    /// the pipeline ran (`None` for the uncoded baseline).
    #[must_use]
    pub fn schedule_plan(&self) -> Option<&SchedulePlan> {
        self.schedule_plan.as_ref()
    }

    /// The `depth_slack` latency/area Pareto sweep of this design (see
    /// [`EncoderKind::pareto_sweep`]).
    #[must_use]
    pub fn pareto_sweep(&self, library: &CellLibrary, max_slack: usize) -> Vec<ParetoPoint> {
        self.kind.pareto_sweep(library, max_slack)
    }

    /// The generator matrix of the reference code.
    #[must_use]
    pub fn generator(&self) -> &BitMat {
        self.code.generator()
    }

    /// The design synthesized by the *naive* sharing-free XOR-tree flow
    /// ([`synth::synthesize_linear_encoder`]) — the cost baseline the
    /// optimizing pipeline is measured against in the extended Table II.
    /// `None` for the uncoded baseline.
    #[must_use]
    pub fn naive_netlist(&self) -> Option<Netlist> {
        if self.kind == EncoderKind::None {
            return None;
        }
        Some(synth::synthesize_linear_encoder(
            &format!("{}_naive", self.kind.netlist_name()),
            self.code.generator(),
            synth::SynthesisOptions::default(),
        ))
    }

    /// Message length: 4 for the paper's designs, up to 64 for the wide
    /// SEC-DED members.
    #[must_use]
    pub fn k(&self) -> usize {
        self.code.k()
    }

    /// Number of output channels used (7, 8, or 4 for the paper's designs;
    /// up to 72 for the SEC-DED family).
    #[must_use]
    pub fn n(&self) -> usize {
        self.code.n()
    }

    /// Encoding latency in clock cycles (the logic depth of the circuit).
    #[must_use]
    pub fn latency(&self) -> usize {
        self.latency
    }

    /// Circuit statistics against a cell library — one row of Table II.
    #[must_use]
    pub fn stats(&self, library: &CellLibrary) -> NetlistStats {
        NetlistStats::compute(&self.netlist, library)
    }

    /// Reference (mathematical) encoding of a `k`-bit message.
    ///
    /// # Panics
    /// Panics if the message is not `k` bits long.
    #[must_use]
    pub fn encode_reference(&self, message: &BitVec) -> BitVec {
        self.code.encode(message)
    }

    /// Receiver-side decoding of an `n`-bit received word.
    #[must_use]
    pub fn decode(&self, received: &BitVec) -> Decoded {
        self.code.decode(received)
    }

    /// Encodes a message by simulating the gate-level circuit fault-free and
    /// sampling the SFQ-to-DC output levels after the encoding latency.
    ///
    /// # Panics
    /// Panics if the message is not `k` bits long.
    #[must_use]
    pub fn encode_gate_level(&self, message: &BitVec) -> BitVec {
        let trace = self.simulate(message);
        trace.dc_word_at(self.latency)
    }

    /// Simulates one fault-free transmission and returns the full trace
    /// (used by the Fig. 3 waveform reproduction).
    #[must_use]
    pub fn simulate(&self, message: &BitVec) -> Trace {
        assert_eq!(
            message.len(),
            self.k(),
            "message width must match the design's data width k"
        );
        let mut stim = Stimulus::new(&self.netlist);
        stim.apply_word(message, 0);
        self.sim.run(&stim, self.latency + 1)
    }

    /// Simulates one transmission on a faulty chip and returns the received
    /// word (the SFQ-to-DC levels sampled after the encoding latency).
    #[must_use]
    pub fn transmit_with_faults<R: rand::Rng + ?Sized>(
        &self,
        message: &BitVec,
        faults: &FaultMap,
        rng: &mut R,
    ) -> BitVec {
        assert_eq!(
            message.len(),
            self.k(),
            "message width must match the design's data width k"
        );
        let mut stim = Stimulus::new(&self.netlist);
        stim.apply_word(message, 0);
        let trace = self
            .sim
            .run_with_faults(&stim, self.latency + 1, faults, rng);
        trace.dc_word_at(self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_netlist::drc;

    #[test]
    fn all_designs_build_and_pass_drc() {
        for design in EncoderDesign::build_all() {
            let violations = drc::check(design.netlist());
            assert!(violations.is_empty(), "{}: {:?}", design.name(), violations);
        }
    }

    #[test]
    fn gate_level_encoding_matches_reference_for_all_messages() {
        for design in EncoderDesign::build_all() {
            for m in 0u64..16 {
                let msg = BitVec::from_u64(4, m);
                let reference = design.encode_reference(&msg);
                let simulated = design.encode_gate_level(&msg);
                assert_eq!(
                    simulated,
                    reference,
                    "{} disagrees on message {m:04b}",
                    design.name()
                );
            }
        }
    }

    #[test]
    fn fig3_stimulus_produces_expected_codeword() {
        let enc = EncoderDesign::build(EncoderKind::Hamming84);
        let cw = enc.encode_gate_level(&BitVec::from_str01("1011"));
        assert_eq!(cw.to_string01(), "01100110");
        assert_eq!(
            enc.latency(),
            2,
            "codeword is produced after two clock cycles"
        );
    }

    #[test]
    fn decode_round_trips_for_every_design() {
        for design in EncoderDesign::build_all() {
            for m in 0u64..16 {
                let msg = BitVec::from_u64(4, m);
                let cw = design.encode_reference(&msg);
                let decoded = design.decode(&cw);
                assert_eq!(decoded.message.unwrap(), msg, "{}", design.name());
            }
        }
    }

    #[test]
    fn coded_designs_correct_single_channel_errors() {
        for kind in [
            EncoderKind::Hamming74,
            EncoderKind::Hamming84,
            EncoderKind::Rm13,
        ] {
            let design = EncoderDesign::build(kind);
            for m in 0u64..16 {
                let msg = BitVec::from_u64(4, m);
                let cw = design.encode_reference(&msg);
                for pos in 0..design.n() {
                    let mut r = cw.clone();
                    r.flip(pos);
                    let decoded = design.decode(&r);
                    assert_eq!(
                        decoded.message,
                        Some(msg.clone()),
                        "{} failed at msg {m:04b} pos {pos}",
                        design.kind().name()
                    );
                }
            }
        }
    }

    #[test]
    fn latencies_match_logic_depths() {
        assert_eq!(EncoderDesign::build(EncoderKind::None).latency(), 0);
        assert_eq!(EncoderDesign::build(EncoderKind::Hamming74).latency(), 2);
        assert_eq!(EncoderDesign::build(EncoderKind::Hamming84).latency(), 2);
        assert_eq!(EncoderDesign::build(EncoderKind::Rm13).latency(), 2);
    }

    fn seeded_message<R: rand::Rng + ?Sized>(k: usize, rng: &mut R) -> BitVec {
        (0..k).map(|_| rng.random::<u64>() & 1 == 1).collect()
    }

    #[test]
    fn pipeline_reproduces_every_paper_cell_budget() {
        use sfq_cells::CellKind;
        // (kind, xor, dff, spl, sfqdc) — Table II of the paper.
        let budgets = [
            (EncoderKind::Hamming74, 5, 8, 20, 7),
            (EncoderKind::Hamming84, 6, 8, 23, 8),
            (EncoderKind::Rm13, 8, 7, 26, 8),
        ];
        for (kind, xor, dff, spl, sfqdc) in budgets {
            let nl = EncoderDesign::build(kind).netlist().clone();
            let count = |k: CellKind| nl.count_cells(k);
            assert_eq!(
                (
                    count(CellKind::Xor),
                    count(CellKind::Dff),
                    count(CellKind::Splitter),
                    count(CellKind::SfqToDc)
                ),
                (xor, dff, spl, sfqdc),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn coded_designs_carry_a_synthesis_report_and_the_baseline_does_not() {
        for design in EncoderDesign::build_all() {
            match design.kind() {
                EncoderKind::None => {
                    assert!(design.synthesis_report().is_none());
                    assert!(design.naive_netlist().is_none());
                }
                _ => {
                    let report = design.synthesis_report().expect("pipeline report");
                    assert_eq!(report.passes.len(), 5, "{}", design.name());
                    let final_cost = report.final_cost();
                    assert_eq!(
                        final_cost.xor,
                        design.netlist().count_cells(sfq_cells::CellKind::Xor) as u64,
                        "{}: report must describe the shipped netlist",
                        design.name()
                    );
                }
            }
        }
    }

    #[test]
    fn rm13_uses_the_alignment_discipline_and_hamming_designs_do_not() {
        use sfq_netlist::pass::InputDiscipline;
        assert_eq!(
            EncoderKind::Rm13.pipeline_options().discipline,
            InputDiscipline::Align
        );
        for kind in [
            EncoderKind::Hamming74,
            EncoderKind::Hamming84,
            EncoderKind::SecDed(6),
        ] {
            assert_eq!(kind.pipeline_options().discipline, InputDiscipline::Hold);
        }
    }

    #[test]
    fn catalog_enumerates_paper_designs_and_secded_family() {
        let catalog = EncoderKind::catalog();
        assert_eq!(catalog.len(), 13);
        for kind in EncoderKind::ALL {
            assert!(catalog.contains(&kind));
        }
        for m in 3u8..=6 {
            assert!(catalog.contains(&EncoderKind::SecDed(m)));
        }
        assert!(catalog.contains(&EncoderKind::WideHamming8564));
        for spec in BchSpec::REGISTRY {
            assert!(catalog.contains(&EncoderKind::Bch(spec)));
        }
        assert!(catalog.contains(&EncoderKind::Ldpc));
        assert_eq!(EncoderKind::SecDed(6).name(), "SEC-DED(72,64)");
        assert_eq!(
            EncoderKind::WideHamming8564.name(),
            "Shortened Hamming(85,64)"
        );
        assert_eq!(EncoderKind::Bch(BchSpec::BCH_31_16).name(), "BCH(31,16)");
        assert_eq!(EncoderKind::Bch(BchSpec::BCH_63_45).name(), "BCH(63,45)");
        assert_eq!(
            EncoderKind::Bch(BchSpec::BCH_63_45).netlist_name(),
            "bch_63_45_encoder"
        );
        assert_eq!(EncoderKind::Ldpc.name(), "LDPC(60,32)");
        assert_eq!(EncoderKind::Ldpc.netlist_name(), "ldpc_60_32_encoder");
        assert_eq!(EncoderDesign::build_catalog().len(), 13);
    }

    #[test]
    fn wide_hamming_design_encodes_correctly_at_gate_level() {
        use rand::SeedableRng;
        let design = EncoderDesign::build(EncoderKind::WideHamming8564);
        assert_eq!((design.n(), design.k()), (85, 64));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x8564_0001);
        for _ in 0..4 {
            let msg = seeded_message(64, &mut rng);
            assert_eq!(
                design.encode_gate_level(&msg),
                design.encode_reference(&msg)
            );
        }
        // Single errors correct; a non-column syndrome is flagged.
        let msg = seeded_message(64, &mut rng);
        let cw = design.encode_reference(&msg);
        for pos in [0usize, 40, 64, 84] {
            let mut r = cw.clone();
            r.flip(pos);
            assert_eq!(design.decode(&r).message, Some(msg.clone()), "pos {pos}");
        }
        let mut r = cw.clone();
        r.flip(64 + 20);
        r.flip(64 + 19);
        assert_eq!(
            design.decode(&r).outcome,
            ecc::DecodeOutcome::DetectedUncorrectable
        );
    }

    #[test]
    fn bch_design_encodes_at_gate_level_and_decodes_through_radius_two() {
        use rand::SeedableRng;
        let design = EncoderDesign::build(EncoderKind::Bch(BchSpec::BCH_31_16));
        assert_eq!((design.n(), design.k()), (31, 16));
        assert_eq!(design.kind.netlist_name(), "bch_31_16_encoder");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xBC4_3116);
        for _ in 0..4 {
            let msg = seeded_message(16, &mut rng);
            assert_eq!(
                design.encode_gate_level(&msg),
                design.encode_reference(&msg)
            );
        }
        // The receiver-side decoder corrects every weight-1 and weight-2
        // pattern and flags weight-3 patterns (d_min = 7 at radius 2).
        let msg = seeded_message(16, &mut rng);
        let cw = design.encode_reference(&msg);
        for (a, b) in [(0usize, 17), (5, 30), (16, 24)] {
            let mut r = cw.clone();
            r.flip(a);
            r.flip(b);
            assert_eq!(design.decode(&r).message, Some(msg.clone()), "{a},{b}");
        }
        let mut r = cw.clone();
        r.flip(1);
        r.flip(9);
        r.flip(22);
        assert_eq!(
            design.decode(&r).outcome,
            ecc::DecodeOutcome::DetectedUncorrectable
        );
    }

    #[test]
    fn bch_63_45_design_encodes_at_gate_level_and_corrects_triples() {
        use rand::SeedableRng;
        let design = EncoderDesign::build(EncoderKind::Bch(BchSpec::BCH_63_45));
        assert_eq!((design.n(), design.k()), (63, 45));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xBC4_6345);
        for _ in 0..3 {
            let msg = seeded_message(45, &mut rng);
            assert_eq!(
                design.encode_gate_level(&msg),
                design.encode_reference(&msg)
            );
        }
        // t = 3: every sampled triple corrects; a probed quadruple flags.
        let msg = seeded_message(45, &mut rng);
        let cw = design.encode_reference(&msg);
        for pattern in [[0usize, 31, 62], [5, 6, 7], [10, 30, 50]] {
            let mut r = cw.clone();
            for &p in &pattern {
                r.flip(p);
            }
            assert_eq!(design.decode(&r).message, Some(msg.clone()), "{pattern:?}");
        }
        let mut r = cw.clone();
        for p in [0usize, 1, 2, 3] {
            r.flip(p);
        }
        assert_eq!(
            design.decode(&r).outcome,
            ecc::DecodeOutcome::DetectedUncorrectable
        );
    }

    #[test]
    fn ldpc_design_encodes_at_gate_level_and_decodes_singles() {
        use rand::SeedableRng;
        let design = EncoderDesign::build(EncoderKind::Ldpc);
        assert_eq!((design.n(), design.k()), (60, 32));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x1D9C_6032);
        for _ in 0..3 {
            let msg = seeded_message(32, &mut rng);
            assert_eq!(
                design.encode_gate_level(&msg),
                design.encode_reference(&msg)
            );
        }
        let msg = seeded_message(32, &mut rng);
        let cw = design.encode_reference(&msg);
        for pos in [0usize, 29, 59] {
            let mut r = cw.clone();
            r.flip(pos);
            assert_eq!(design.decode(&r).message, Some(msg.clone()), "pos {pos}");
        }
    }

    #[test]
    fn bch_dense_generator_rewards_factoring_over_plain_trees() {
        use sfq_netlist::pass::FactoringKind;
        let design = EncoderDesign::build(EncoderKind::Bch(BchSpec::BCH_31_16));
        let plan = design.schedule_plan().expect("coded design has a plan");
        let paar = plan.best_xor_for(FactoringKind::Paar).unwrap();
        let cancel = plan.best_xor_for(FactoringKind::Cancellation).unwrap();
        let trees = plan.best_xor_for(FactoringKind::None).unwrap();
        // The (31,16) generator averages ~8 terms per parity equation; both
        // factoring algorithms must find substantial sharing, and the chosen
        // schedule's XOR count must match one of them.
        assert!(paar < trees, "paar {paar} vs unfactored {trees}");
        assert!(cancel < trees, "cancel {cancel} vs unfactored {trees}");
        let chosen_xor = plan.chosen_cost().xor;
        assert!(
            chosen_xor == paar || chosen_xor == cancel || chosen_xor == trees,
            "chosen XOR {chosen_xor} not among paar {paar} / cancel {cancel} / trees {trees}"
        );
        // The shipped netlist realizes the planned count exactly.
        assert_eq!(
            chosen_xor,
            design.netlist().count_cells(sfq_cells::CellKind::Xor) as u64
        );
    }

    #[test]
    fn every_catalog_design_passes_drc() {
        for design in EncoderDesign::build_catalog() {
            let violations = drc::check(design.netlist());
            assert!(violations.is_empty(), "{}: {:?}", design.name(), violations);
        }
    }

    #[test]
    fn secded_designs_encode_correctly_at_gate_level() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FF_EE00_1234_5678);
        for m in [3u8, 4, 6] {
            let design = EncoderDesign::build(EncoderKind::SecDed(m));
            assert_eq!(design.k(), 1 << m);
            assert_eq!(design.n(), (1 << m) + usize::from(m) + 2);
            for _ in 0..4 {
                let msg = seeded_message(design.k(), &mut rng);
                assert_eq!(
                    design.encode_gate_level(&msg),
                    design.encode_reference(&msg),
                    "{}",
                    design.name()
                );
            }
        }
    }

    #[test]
    fn secded_design_corrects_single_channel_errors_and_flags_doubles() {
        use rand::SeedableRng;
        let design = EncoderDesign::build(EncoderKind::SecDed(6));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EC_DED);
        let msg = seeded_message(64, &mut rng);
        let cw = design.encode_reference(&msg);
        for pos in [0usize, 31, 63, 64, 71] {
            let mut r = cw.clone();
            r.flip(pos);
            let d = design.decode(&r);
            assert_eq!(d.message, Some(msg.clone()), "pos {pos}");
        }
        let mut r = cw.clone();
        r.flip(3);
        r.flip(68);
        assert_eq!(
            design.decode(&r).outcome,
            ecc::DecodeOutcome::DetectedUncorrectable
        );
    }
}
