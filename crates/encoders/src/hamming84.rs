//! The extended Hamming(8,4) encoder circuit of Fig. 2.
//!
//! The codeword equations (Eq. 3 of the paper) are implemented with shared
//! sub-expressions so that only six XOR gates are needed:
//!
//! ```text
//! t1 = m1 ⊕ m4            (first level)
//! t2 = m2 ⊕ m3            (first level)
//! c1 = t1 ⊕ m2            (second level)
//! c2 = t1 ⊕ m3            (second level)
//! c4 = t2 ⊕ m4            (second level)
//! c8 = t2 ⊕ m1            (second level)
//! c3 = m1, c5 = m2, c6 = m3, c7 = m4   (two balancing DFFs each)
//! ```
//!
//! The message bits feeding the second-level XOR gates directly arrive one
//! clock period before the first-level results. Because SFQ XOR gates hold
//! arriving flux until their next clock pulse and the output drivers are
//! toggling SFQ-to-DC converters, the extra intermediate pulse cancels out
//! and the DC levels sampled after two clock cycles equal the codeword —
//! exactly the behaviour shown in Fig. 3. This keeps the DFF count at the
//! eight balancing flip-flops the paper reports in Table II.
//!
//! Cell budget (Table II row "Hamming(8,4)"): 6 XOR, 8 DFF, 23 splitters
//! (10 data + 13 clock), 8 SFQ-to-DC converters → 278 JJs.

use sfq_cells::CellKind;
use sfq_netlist::{synth, Netlist, PortRef};

/// Builds the Hamming(8,4) encoder netlist of Fig. 2.
#[must_use]
pub fn build_netlist() -> Netlist {
    let mut nl = Netlist::new("hamming84_encoder");

    // Primary inputs m1..m4 and the clock.
    let m: Vec<_> = (1..=4).map(|i| nl.add_input(format!("m{i}"))).collect();
    nl.add_clock("clk");

    // Data fan-out: each message bit drives three loads
    // (m1: t1, c8, c3-chain; m2: t2, c1, c5-chain; m3: t2, c2, c6-chain;
    //  m4: t1, c4, c7-chain) -> 2 splitters each.
    let m1 = synth::fanout(&mut nl, PortRef::of(m[0]), 3, "m1");
    let m2 = synth::fanout(&mut nl, PortRef::of(m[1]), 3, "m2");
    let m3 = synth::fanout(&mut nl, PortRef::of(m[2]), 3, "m3");
    let m4 = synth::fanout(&mut nl, PortRef::of(m[3]), 3, "m4");

    // First-level XOR gates.
    let t1 = add_xor(&mut nl, "t1", m1[0], m4[0]);
    let t2 = add_xor(&mut nl, "t2", m2[0], m3[0]);
    // Each first-level result drives two second-level gates -> 1 splitter each.
    let t1_ports = synth::fanout(&mut nl, t1, 2, "t1");
    let t2_ports = synth::fanout(&mut nl, t2, 2, "t2");

    // Second-level XOR gates producing the parity codeword bits.
    let c1 = add_xor(&mut nl, "c1_xor", t1_ports[0], m2[1]);
    let c2 = add_xor(&mut nl, "c2_xor", t1_ports[1], m3[1]);
    let c4 = add_xor(&mut nl, "c4_xor", t2_ports[0], m4[1]);
    let c8 = add_xor(&mut nl, "c8_xor", t2_ports[1], m1[1]);

    // Path-balancing DFF chains for the systematic bits c3, c5, c6, c7.
    let c3 = synth::dff_chain(&mut nl, m1[2], 2, "c3");
    let c5 = synth::dff_chain(&mut nl, m2[2], 2, "c5");
    let c6 = synth::dff_chain(&mut nl, m3[2], 2, "c6");
    let c7 = synth::dff_chain(&mut nl, m4[2], 2, "c7");

    // SFQ-to-DC output drivers and primary outputs, in codeword order c1..c8.
    for (idx, signal) in [c1, c2, c3, c4, c5, c6, c7, c8].into_iter().enumerate() {
        let name = format!("c{}", idx + 1);
        let driver = nl.add_cell(CellKind::SfqToDc, format!("{name}_drv"));
        nl.connect(signal, driver, 0);
        let output = nl.add_output(name);
        nl.connect(PortRef::of(driver), output, 0);
    }

    // Clock-distribution network: 6 XOR + 8 DFF sinks -> 13 splitters.
    synth::build_clock_tree(&mut nl, "clk");
    nl
}

/// Adds a clocked XOR gate fed by two ports and returns its output port.
pub(crate) fn add_xor(nl: &mut Netlist, name: &str, a: PortRef, b: PortRef) -> PortRef {
    let xor = nl.add_cell(CellKind::Xor, name);
    nl.connect(a, xor, 0);
    nl.connect(b, xor, 1);
    nl.add_clock_sink(xor);
    PortRef::of(xor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_netlist::drc;

    #[test]
    fn cell_counts_match_table2() {
        let nl = build_netlist();
        assert_eq!(nl.count_cells(CellKind::Xor), 6, "6 XOR gates");
        assert_eq!(nl.count_cells(CellKind::Dff), 8, "8 DFFs");
        assert_eq!(
            nl.count_cells(CellKind::Splitter),
            23,
            "10 data + 13 clock splitters"
        );
        assert_eq!(nl.count_cells(CellKind::SfqToDc), 8, "8 output drivers");
    }

    #[test]
    fn logic_depth_is_two() {
        let nl = build_netlist();
        assert_eq!(nl.logic_depth(), 2);
        assert!(nl.output_depths().iter().all(|&d| d == 2));
    }

    #[test]
    fn netlist_is_drc_clean() {
        let nl = build_netlist();
        assert!(drc::is_clean(&nl), "{:?}", drc::check(&nl));
    }

    #[test]
    fn has_eight_outputs_and_four_inputs() {
        let nl = build_netlist();
        assert_eq!(nl.inputs().len(), 4);
        assert_eq!(nl.outputs().len(), 8);
        let names: Vec<_> = nl
            .outputs()
            .iter()
            .map(|&o| nl.node(o).name.clone())
            .collect();
        assert_eq!(names, vec!["c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8"]);
    }
}
