//! The Hamming(7,4) encoder circuit.
//!
//! As the paper notes, "the schematic of the Hamming(7,4) code encoder
//! circuit is similar to that of the Hamming(8,4) encoder without the output
//! bit c8". Removing `c8` also removes one second-level XOR gate, one data
//! splitter on `m1`, one splitter on `t2`, one SFQ-to-DC converter, and one
//! clock-tree splitter, giving the Table II row: 5 XOR, 8 DFF, 20 splitters
//! (8 data + 12 clock), 7 SFQ-to-DC converters → 247 JJs.

use crate::hamming84::add_xor;
use sfq_cells::CellKind;
use sfq_netlist::{synth, Netlist, PortRef};

/// Builds the Hamming(7,4) encoder netlist.
#[must_use]
pub fn build_netlist() -> Netlist {
    let mut nl = Netlist::new("hamming74_encoder");

    let m: Vec<_> = (1..=4).map(|i| nl.add_input(format!("m{i}"))).collect();
    nl.add_clock("clk");

    // m1 now has only two loads (t1 and the c3 chain); m2..m4 keep three.
    let m1 = synth::fanout(&mut nl, PortRef::of(m[0]), 2, "m1");
    let m2 = synth::fanout(&mut nl, PortRef::of(m[1]), 3, "m2");
    let m3 = synth::fanout(&mut nl, PortRef::of(m[2]), 3, "m3");
    let m4 = synth::fanout(&mut nl, PortRef::of(m[3]), 3, "m4");

    let t1 = add_xor(&mut nl, "t1", m1[0], m4[0]);
    let t2 = add_xor(&mut nl, "t2", m2[0], m3[0]);
    let t1_ports = synth::fanout(&mut nl, t1, 2, "t1");
    // t2 drives only c4 here (no c8), so no splitter is needed.

    let c1 = add_xor(&mut nl, "c1_xor", t1_ports[0], m2[1]);
    let c2 = add_xor(&mut nl, "c2_xor", t1_ports[1], m3[1]);
    let c4 = add_xor(&mut nl, "c4_xor", t2, m4[1]);

    let c3 = synth::dff_chain(&mut nl, m1[1], 2, "c3");
    let c5 = synth::dff_chain(&mut nl, m2[2], 2, "c5");
    let c6 = synth::dff_chain(&mut nl, m3[2], 2, "c6");
    let c7 = synth::dff_chain(&mut nl, m4[2], 2, "c7");

    for (idx, signal) in [c1, c2, c3, c4, c5, c6, c7].into_iter().enumerate() {
        let name = format!("c{}", idx + 1);
        let driver = nl.add_cell(CellKind::SfqToDc, format!("{name}_drv"));
        nl.connect(signal, driver, 0);
        let output = nl.add_output(name);
        nl.connect(PortRef::of(driver), output, 0);
    }

    synth::build_clock_tree(&mut nl, "clk");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_netlist::drc;

    #[test]
    fn cell_counts_match_table2() {
        let nl = build_netlist();
        assert_eq!(nl.count_cells(CellKind::Xor), 5, "5 XOR gates");
        assert_eq!(nl.count_cells(CellKind::Dff), 8, "8 DFFs");
        assert_eq!(
            nl.count_cells(CellKind::Splitter),
            20,
            "8 data + 12 clock splitters"
        );
        assert_eq!(nl.count_cells(CellKind::SfqToDc), 7, "7 output drivers");
    }

    #[test]
    fn logic_depth_is_two_and_outputs_balanced() {
        let nl = build_netlist();
        assert_eq!(nl.logic_depth(), 2);
        assert!(nl.output_depths().iter().all(|&d| d == 2));
    }

    #[test]
    fn netlist_is_drc_clean() {
        let nl = build_netlist();
        assert!(drc::is_clean(&nl), "{:?}", drc::check(&nl));
    }

    #[test]
    fn has_seven_outputs() {
        let nl = build_netlist();
        assert_eq!(nl.inputs().len(), 4);
        assert_eq!(nl.outputs().len(), 7);
    }
}
