//! The Reed–Muller RM(1,3) encoder circuit of Fig. 4.
//!
//! The eight codeword bits are affine Boolean functions of the message,
//! `c_{j+1} = m1 ⊕ (j₀·m2) ⊕ (j₁·m3) ⊕ (j₂·m4)`, implemented as a two-level
//! XOR network with shared first-level terms:
//!
//! ```text
//! x12 = m1 ⊕ m2 (= c2)      x13 = m1 ⊕ m3 (= c3)
//! x14 = m1 ⊕ m4 (= c5)      x34 = m3 ⊕ m4
//! c4 = x12 ⊕ m3'            c6 = x12 ⊕ m4'
//! c7 = x13 ⊕ m4'            c8 = x12 ⊕ x34
//! c1 = m1 (two balancing DFFs)
//! ```
//!
//! where `m3'`/`m4'` are message bits delayed by one DFF so that both inputs
//! of each second-level XOR arrive in the same clock period. The first-level
//! outputs that double as codeword bits (`c2`, `c3`, `c5`) pass through one
//! balancing DFF each. Cell budget (Table II row "Reed-Muller RM(1,3)"):
//! 8 XOR, 7 DFF, 26 splitters (12 data + 14 clock), 8 SFQ-to-DC converters
//! → 305 JJs.

use crate::hamming84::add_xor;
use sfq_cells::CellKind;
use sfq_netlist::{synth, Netlist, PortRef};

/// Builds the RM(1,3) encoder netlist of Fig. 4.
#[must_use]
pub fn build_netlist() -> Netlist {
    let mut nl = Netlist::new("rm13_encoder");

    let m: Vec<_> = (1..=4).map(|i| nl.add_input(format!("m{i}"))).collect();
    nl.add_clock("clk");

    // Data fan-out:
    //   m1 -> x12, x13, x14, c1 chain        (4 loads, 3 splitters)
    //   m2 -> x12                            (1 load)
    //   m3 -> x13, x34, alignment DFF        (3 loads, 2 splitters)
    //   m4 -> x14, x34, alignment DFF        (3 loads, 2 splitters)
    let m1 = synth::fanout(&mut nl, PortRef::of(m[0]), 4, "m1");
    let m2 = synth::fanout(&mut nl, PortRef::of(m[1]), 1, "m2");
    let m3 = synth::fanout(&mut nl, PortRef::of(m[2]), 3, "m3");
    let m4 = synth::fanout(&mut nl, PortRef::of(m[3]), 3, "m4");

    // First-level XOR gates.
    let x12 = add_xor(&mut nl, "x12", m1[0], m2[0]);
    let x13 = add_xor(&mut nl, "x13", m1[1], m3[0]);
    let x14 = add_xor(&mut nl, "x14", m1[2], m4[0]);
    let x34 = add_xor(&mut nl, "x34", m3[1], m4[1]);

    // Alignment DFFs for the message bits that feed second-level gates.
    let m3_delayed = synth::dff_chain(&mut nl, m3[2], 1, "m3_align");
    let m4_delayed = synth::dff_chain(&mut nl, m4[2], 1, "m4_align");
    let m4_delayed_ports = synth::fanout(&mut nl, m4_delayed, 2, "m4_align");

    // First-level fan-out: x12 feeds c2 plus three second-level gates,
    // x13 feeds c3 plus one second-level gate.
    let x12_ports = synth::fanout(&mut nl, x12, 4, "x12");
    let x13_ports = synth::fanout(&mut nl, x13, 2, "x13");

    // Second-level XOR gates.
    let c4 = add_xor(&mut nl, "c4_xor", x12_ports[1], m3_delayed);
    let c6 = add_xor(&mut nl, "c6_xor", x12_ports[2], m4_delayed_ports[0]);
    let c7 = add_xor(&mut nl, "c7_xor", x13_ports[1], m4_delayed_ports[1]);
    let c8 = add_xor(&mut nl, "c8_xor", x12_ports[3], x34);

    // Balancing DFFs.
    let c1 = synth::dff_chain(&mut nl, m1[3], 2, "c1");
    let c2 = synth::dff_chain(&mut nl, x12_ports[0], 1, "c2");
    let c3 = synth::dff_chain(&mut nl, x13_ports[0], 1, "c3");
    let c5 = synth::dff_chain(&mut nl, x14, 1, "c5");

    for (idx, signal) in [c1, c2, c3, c4, c5, c6, c7, c8].into_iter().enumerate() {
        let name = format!("c{}", idx + 1);
        let driver = nl.add_cell(CellKind::SfqToDc, format!("{name}_drv"));
        nl.connect(signal, driver, 0);
        let output = nl.add_output(name);
        nl.connect(PortRef::of(driver), output, 0);
    }

    // Clock network: 8 XOR + 7 DFF sinks -> 14 splitters.
    synth::build_clock_tree(&mut nl, "clk");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_netlist::drc;

    #[test]
    fn cell_counts_match_table2() {
        let nl = build_netlist();
        assert_eq!(nl.count_cells(CellKind::Xor), 8, "8 XOR gates");
        assert_eq!(nl.count_cells(CellKind::Dff), 7, "7 DFFs");
        assert_eq!(
            nl.count_cells(CellKind::Splitter),
            26,
            "12 data + 14 clock splitters"
        );
        assert_eq!(nl.count_cells(CellKind::SfqToDc), 8, "8 output drivers");
    }

    #[test]
    fn logic_depth_is_two_and_outputs_balanced() {
        let nl = build_netlist();
        assert_eq!(nl.logic_depth(), 2);
        assert!(
            nl.output_depths().iter().all(|&d| d == 2),
            "{:?}",
            nl.output_depths()
        );
    }

    #[test]
    fn netlist_is_drc_clean() {
        let nl = build_netlist();
        assert!(drc::is_clean(&nl), "{:?}", drc::check(&nl));
    }

    #[test]
    fn rm13_uses_more_cells_than_hamming84() {
        // The theoretical-complexity vs. physical-size trade-off the paper
        // identifies: RM(1,3) is the largest of the three encoders.
        let rm = build_netlist();
        let h84 = crate::hamming84::build_netlist();
        assert!(
            rm.cell_histogram().values().sum::<u64>() > h84.cell_histogram().values().sum::<u64>()
        );
    }
}
