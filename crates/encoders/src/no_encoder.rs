//! The uncoded 4-bit baseline ("no encoder" in Fig. 5).
//!
//! The four message bits are sent directly to four SFQ-to-DC output drivers;
//! no clocked logic, no redundancy, and therefore no ability to detect or
//! correct the errors that process variations introduce.

use sfq_cells::CellKind;
use sfq_netlist::{Netlist, PortRef};

/// Builds the uncoded 4-bit output data path.
#[must_use]
pub fn build_netlist() -> Netlist {
    let mut nl = Netlist::new("no_encoder");
    for i in 1..=4 {
        let input = nl.add_input(format!("m{i}"));
        let driver = nl.add_cell(CellKind::SfqToDc, format!("c{i}_drv"));
        nl.connect(PortRef::of(input), driver, 0);
        let output = nl.add_output(format!("c{i}"));
        nl.connect(PortRef::of(driver), output, 0);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_netlist::drc;

    #[test]
    fn uses_only_four_output_drivers() {
        let nl = build_netlist();
        assert_eq!(nl.count_cells(CellKind::SfqToDc), 4);
        assert_eq!(nl.count_cells(CellKind::Xor), 0);
        assert_eq!(nl.count_cells(CellKind::Dff), 0);
        assert_eq!(nl.count_cells(CellKind::Splitter), 0);
    }

    #[test]
    fn is_clean_and_has_zero_depth() {
        let nl = build_netlist();
        assert!(drc::is_clean(&nl), "{:?}", drc::check(&nl));
        assert_eq!(nl.logic_depth(), 0);
        assert_eq!(nl.inputs().len(), 4);
        assert_eq!(nl.outputs().len(), 4);
    }
}
