//! RSFQ standard-cell library model.
//!
//! The paper implements its encoders with the SuperTools/ColdFlux RSFQ cell
//! library on the MIT Lincoln Laboratory SFQ5ee 10 kA/cm² process and reports
//! the circuit-level cost of each encoder (Table II) as the number of
//! Josephson junctions (JJs), the static power dissipation, and the layout
//! area. This crate provides the per-cell constants needed to perform the
//! same bookkeeping, together with timing parameters and operating margins
//! used by the gate-level simulator (`sfq-sim`) and the analog simulator
//! (`josim-lite`).
//!
//! Per-cell JJ count, power, and area are *calibrated* so that the three
//! encoder netlists of the paper reproduce Table II exactly (the calibration
//! is the unique realistic solution of the linear system formed by the three
//! table rows — see `DESIGN.md`). Cells not appearing in Table II carry
//! typical published RSFQ values.
//!
//! # Example
//!
//! ```
//! use sfq_cells::{CellKind, CellLibrary};
//!
//! let lib = CellLibrary::coldflux();
//! let xor = lib.params(CellKind::Xor);
//! assert_eq!(xor.jj_count, 11);
//! // Static power of a Hamming(8,4) encoder: 6 XOR + 8 DFF + 23 splitters
//! // + 8 SFQ-to-DC converters = 92.3 uW (Table II).
//! let total = 6.0 * lib.params(CellKind::Xor).static_power_uw
//!     + 8.0 * lib.params(CellKind::Dff).static_power_uw
//!     + 23.0 * lib.params(CellKind::Splitter).static_power_uw
//!     + 8.0 * lib.params(CellKind::SfqToDc).static_power_uw;
//! assert!((total - 92.3).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod margins;
pub mod process;
pub mod timing;

pub use margins::{MarginSpec, ParameterClass};
pub use process::Process;
pub use timing::TimingParams;

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The kinds of SFQ logic cells used in this workspace.
///
/// All clocked gates (XOR, AND, OR, NOT, DFF) require a clock pulse to emit
/// their output, and every SFQ gate has a fan-out of one — driving more than
/// one load requires an explicit [`CellKind::Splitter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Josephson transmission line segment (pulse buffer/repeater).
    Jtl,
    /// Pulse splitter: one input pulse is reproduced on two outputs.
    Splitter,
    /// Confluence buffer (merger): pulses from two inputs are merged onto one
    /// output.
    Merger,
    /// Clocked D flip-flop, used both for storage and for path balancing.
    Dff,
    /// Clocked XOR gate.
    Xor,
    /// Clocked AND gate.
    And,
    /// Clocked OR gate.
    Or,
    /// Clocked NOT (inverter) gate.
    Not,
    /// SFQ-to-DC converter: output driver that converts pulse trains into DC
    /// voltage levels for the room-temperature interface.
    SfqToDc,
    /// DC-to-SFQ converter: input interface generating SFQ pulses from DC
    /// signals.
    DcToSfq,
}

impl CellKind {
    /// All cell kinds, in a stable order.
    pub const ALL: [CellKind; 10] = [
        CellKind::Jtl,
        CellKind::Splitter,
        CellKind::Merger,
        CellKind::Dff,
        CellKind::Xor,
        CellKind::And,
        CellKind::Or,
        CellKind::Not,
        CellKind::SfqToDc,
        CellKind::DcToSfq,
    ];

    /// Returns `true` if the cell requires a clock input to produce output.
    #[must_use]
    pub fn is_clocked(&self) -> bool {
        matches!(
            self,
            CellKind::Dff | CellKind::Xor | CellKind::And | CellKind::Or | CellKind::Not
        )
    }

    /// Number of data (non-clock) inputs.
    #[must_use]
    pub fn data_inputs(&self) -> usize {
        match self {
            CellKind::Jtl
            | CellKind::Splitter
            | CellKind::Dff
            | CellKind::Not
            | CellKind::SfqToDc
            | CellKind::DcToSfq => 1,
            CellKind::Merger | CellKind::Xor | CellKind::And | CellKind::Or => 2,
        }
    }

    /// Number of outputs.
    #[must_use]
    pub fn outputs(&self) -> usize {
        match self {
            CellKind::Splitter => 2,
            _ => 1,
        }
    }

    /// Short library name (as used by the netlist printer).
    #[must_use]
    pub fn short_name(&self) -> &'static str {
        match self {
            CellKind::Jtl => "JTL",
            CellKind::Splitter => "SPL",
            CellKind::Merger => "CB",
            CellKind::Dff => "DFF",
            CellKind::Xor => "XOR",
            CellKind::And => "AND",
            CellKind::Or => "OR",
            CellKind::Not => "NOT",
            CellKind::SfqToDc => "SFQDC",
            CellKind::DcToSfq => "DCSFQ",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Physical and electrical parameters of one standard cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellParams {
    /// Cell kind these parameters describe.
    pub kind: CellKind,
    /// Number of Josephson junctions in the cell.
    pub jj_count: u32,
    /// Static (bias) power dissipation in microwatts.
    pub static_power_uw: f64,
    /// Layout area in square millimetres.
    pub area_mm2: f64,
    /// Total bias current in microamperes.
    pub bias_current_ua: f64,
    /// Switching energy per output pulse in attojoules (~ Ic · Φ0).
    pub switching_energy_aj: f64,
    /// Timing parameters (delay, setup, hold).
    pub timing: TimingParams,
    /// Operating-margin specification used by the PPV fault model.
    pub margins: MarginSpec,
}

impl CellParams {
    /// Energy per switching event in joules.
    #[must_use]
    pub fn switching_energy_joules(&self) -> f64 {
        self.switching_energy_aj * 1e-18
    }
}

/// A complete standard-cell library: parameters for every [`CellKind`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    /// Library name, e.g. `"SuperTools/ColdFlux RSFQ (SFQ5ee)"`.
    pub name: String,
    /// Fabrication process the library targets.
    pub process: Process,
    cells: BTreeMap<CellKind, CellParams>,
}

impl CellLibrary {
    /// Builds a library from an explicit cell list.
    ///
    /// # Panics
    /// Panics if any [`CellKind`] is missing.
    #[must_use]
    pub fn new(name: impl Into<String>, process: Process, cells: Vec<CellParams>) -> Self {
        let map: BTreeMap<CellKind, CellParams> = cells.into_iter().map(|c| (c.kind, c)).collect();
        for kind in CellKind::ALL {
            assert!(map.contains_key(&kind), "library is missing cell {kind}");
        }
        CellLibrary {
            name: name.into(),
            process,
            cells: map,
        }
    }

    /// The SuperTools/ColdFlux RSFQ library on the MIT LL SFQ5ee process, with
    /// JJ count / power / area calibrated to reproduce Table II of the paper.
    #[must_use]
    pub fn coldflux() -> Self {
        let process = Process::mit_ll_sfq5ee();
        // The unique realistic solution of the Table II linear system:
        //   XOR: 11 JJ, 3.600 uW, 0.006 mm2
        //   DFF:  7 JJ, 2.00435 uW, 0.005 mm2
        //   SPL:  4 JJ, 1.33478 uW, 0.003 mm2
        //   SFQ-to-DC: 8 JJ, 2.99565 uW, 0.004 mm2
        // (6·XOR + 8·DFF + 23·SPL + 8·SFQDC = 278 JJ, 92.3 uW, 0.177 mm2, etc.)
        let spl_power = 30.7 / 23.0;
        let dff_power = 7.2 + 3.0 * spl_power - 9.2;
        let sfqdc_power = 10.6 - 3.6 - 3.0 * spl_power;
        let cells = vec![
            CellParams {
                kind: CellKind::Jtl,
                jj_count: 2,
                static_power_uw: 0.35,
                area_mm2: 0.0006,
                bias_current_ua: 175.0,
                switching_energy_aj: 0.2,
                timing: TimingParams::combinational(2.5),
                margins: MarginSpec::uniform(0.40),
            },
            CellParams {
                kind: CellKind::Splitter,
                jj_count: 4,
                static_power_uw: spl_power,
                area_mm2: 0.003,
                bias_current_ua: 510.0,
                switching_energy_aj: 0.4,
                timing: TimingParams::combinational(3.0),
                margins: MarginSpec::uniform(0.48),
            },
            CellParams {
                kind: CellKind::Merger,
                jj_count: 5,
                static_power_uw: 1.6,
                area_mm2: 0.003,
                bias_current_ua: 610.0,
                switching_energy_aj: 0.5,
                timing: TimingParams::combinational(4.0),
                margins: MarginSpec::uniform(0.32),
            },
            CellParams {
                kind: CellKind::Dff,
                jj_count: 7,
                static_power_uw: dff_power,
                area_mm2: 0.005,
                bias_current_ua: 770.0,
                switching_energy_aj: 0.7,
                timing: TimingParams::clocked(5.0, 3.0, 1.0),
                margins: MarginSpec::uniform(0.34),
            },
            CellParams {
                kind: CellKind::Xor,
                jj_count: 11,
                static_power_uw: 3.6,
                area_mm2: 0.006,
                bias_current_ua: 1380.0,
                switching_energy_aj: 1.1,
                timing: TimingParams::clocked(6.5, 3.5, 1.5),
                margins: MarginSpec::uniform(0.31),
            },
            CellParams {
                kind: CellKind::And,
                jj_count: 11,
                static_power_uw: 3.5,
                area_mm2: 0.006,
                bias_current_ua: 1350.0,
                switching_energy_aj: 1.1,
                timing: TimingParams::clocked(6.5, 3.5, 1.5),
                margins: MarginSpec::uniform(0.27),
            },
            CellParams {
                kind: CellKind::Or,
                jj_count: 9,
                static_power_uw: 3.0,
                area_mm2: 0.005,
                bias_current_ua: 1150.0,
                switching_energy_aj: 0.9,
                timing: TimingParams::clocked(6.0, 3.0, 1.5),
                margins: MarginSpec::uniform(0.30),
            },
            CellParams {
                kind: CellKind::Not,
                jj_count: 9,
                static_power_uw: 3.0,
                area_mm2: 0.005,
                bias_current_ua: 1150.0,
                switching_energy_aj: 0.9,
                timing: TimingParams::clocked(6.0, 3.0, 1.5),
                margins: MarginSpec::uniform(0.28),
            },
            CellParams {
                kind: CellKind::SfqToDc,
                jj_count: 8,
                static_power_uw: sfqdc_power,
                area_mm2: 0.004,
                bias_current_ua: 1030.0,
                switching_energy_aj: 1.5,
                timing: TimingParams::combinational(8.0),
                margins: MarginSpec::uniform(0.30),
            },
            CellParams {
                kind: CellKind::DcToSfq,
                jj_count: 4,
                static_power_uw: 1.2,
                area_mm2: 0.003,
                bias_current_ua: 450.0,
                switching_energy_aj: 0.5,
                timing: TimingParams::combinational(5.0),
                margins: MarginSpec::uniform(0.35),
            },
        ];
        CellLibrary::new("SuperTools/ColdFlux RSFQ (MIT LL SFQ5ee)", process, cells)
    }

    /// Returns the parameters of a cell kind.
    #[must_use]
    pub fn params(&self, kind: CellKind) -> &CellParams {
        &self.cells[&kind]
    }

    /// Josephson-junction count of one cell kind — the cost-model query the
    /// synthesis passes use when weighing transformations.
    #[must_use]
    pub fn jj_of(&self, kind: CellKind) -> u64 {
        u64::from(self.params(kind).jj_count)
    }

    /// Aggregate cost of an ad-hoc cell-count list, without building a
    /// histogram map first.
    #[must_use]
    pub fn cost_of(&self, counts: impl IntoIterator<Item = (CellKind, u64)>) -> CircuitCost {
        let mut cost = CircuitCost::default();
        for (kind, count) in counts {
            cost.add(self.params(kind), count);
        }
        cost
    }

    /// Iterates over all cells in the library.
    pub fn iter(&self) -> impl Iterator<Item = &CellParams> {
        self.cells.values()
    }

    /// Replaces the parameters of one cell (used by ablation studies).
    pub fn set_params(&mut self, params: CellParams) {
        self.cells.insert(params.kind, params);
    }
}

/// Aggregate cost of a collection of cells: the quantities reported per
/// encoder in Table II of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CircuitCost {
    /// Total number of Josephson junctions.
    pub jj_count: u64,
    /// Total static power dissipation in microwatts.
    pub static_power_uw: f64,
    /// Total layout area in square millimetres.
    pub area_mm2: f64,
    /// Total bias current in milliamperes.
    pub bias_current_ma: f64,
}

impl CircuitCost {
    /// Accumulates the cost of `count` instances of `cell`.
    pub fn add(&mut self, cell: &CellParams, count: u64) {
        self.jj_count += u64::from(cell.jj_count) * count;
        self.static_power_uw += cell.static_power_uw * count as f64;
        self.area_mm2 += cell.area_mm2 * count as f64;
        self.bias_current_ma += cell.bias_current_ua * count as f64 / 1000.0;
    }

    /// Computes the cost of a cell-count histogram against a library.
    #[must_use]
    pub fn from_histogram(library: &CellLibrary, histogram: &BTreeMap<CellKind, u64>) -> Self {
        let mut cost = CircuitCost::default();
        for (&kind, &count) in histogram {
            cost.add(library.params(kind), count);
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table2_cost(xor: u64, dff: u64, spl: u64, sfqdc: u64) -> CircuitCost {
        let lib = CellLibrary::coldflux();
        let mut hist = BTreeMap::new();
        hist.insert(CellKind::Xor, xor);
        hist.insert(CellKind::Dff, dff);
        hist.insert(CellKind::Splitter, spl);
        hist.insert(CellKind::SfqToDc, sfqdc);
        CircuitCost::from_histogram(&lib, &hist)
    }

    #[test]
    fn hamming84_cost_matches_table2() {
        let cost = table2_cost(6, 8, 23, 8);
        assert_eq!(cost.jj_count, 278);
        assert!(
            (cost.static_power_uw - 92.3).abs() < 1e-9,
            "{}",
            cost.static_power_uw
        );
        assert!((cost.area_mm2 - 0.177).abs() < 1e-12, "{}", cost.area_mm2);
    }

    #[test]
    fn hamming74_cost_matches_table2() {
        let cost = table2_cost(5, 8, 20, 7);
        assert_eq!(cost.jj_count, 247);
        assert!((cost.static_power_uw - 81.7).abs() < 1e-9);
        assert!((cost.area_mm2 - 0.158).abs() < 1e-12);
    }

    #[test]
    fn rm13_cost_matches_table2() {
        let cost = table2_cost(8, 7, 26, 8);
        assert_eq!(cost.jj_count, 305);
        assert!((cost.static_power_uw - 101.5).abs() < 1e-9);
        assert!((cost.area_mm2 - 0.193).abs() < 1e-12);
    }

    #[test]
    fn clocked_cells_are_flagged() {
        assert!(CellKind::Xor.is_clocked());
        assert!(CellKind::Dff.is_clocked());
        assert!(!CellKind::Splitter.is_clocked());
        assert!(!CellKind::Jtl.is_clocked());
        assert!(!CellKind::SfqToDc.is_clocked());
    }

    #[test]
    fn splitter_has_two_outputs_everything_else_one() {
        for kind in CellKind::ALL {
            let expected = if kind == CellKind::Splitter { 2 } else { 1 };
            assert_eq!(kind.outputs(), expected, "{kind}");
        }
    }

    #[test]
    fn two_input_gates() {
        assert_eq!(CellKind::Xor.data_inputs(), 2);
        assert_eq!(CellKind::And.data_inputs(), 2);
        assert_eq!(CellKind::Merger.data_inputs(), 2);
        assert_eq!(CellKind::Dff.data_inputs(), 1);
    }

    #[test]
    fn library_contains_all_cells() {
        let lib = CellLibrary::coldflux();
        assert_eq!(lib.iter().count(), CellKind::ALL.len());
        for kind in CellKind::ALL {
            let p = lib.params(kind);
            assert_eq!(p.kind, kind);
            assert!(p.jj_count > 0);
            assert!(p.static_power_uw > 0.0);
            assert!(p.area_mm2 > 0.0);
            assert!(p.margins.critical_current > 0.0);
        }
    }

    #[test]
    fn cost_queries_agree_with_the_histogram_path() {
        let lib = CellLibrary::coldflux();
        assert_eq!(lib.jj_of(CellKind::Xor), 11);
        assert_eq!(lib.jj_of(CellKind::Dff), 7);
        let direct = lib.cost_of([
            (CellKind::Xor, 6),
            (CellKind::Dff, 8),
            (CellKind::Splitter, 23),
            (CellKind::SfqToDc, 8),
        ]);
        let mut hist = BTreeMap::new();
        hist.insert(CellKind::Xor, 6);
        hist.insert(CellKind::Dff, 8);
        hist.insert(CellKind::Splitter, 23);
        hist.insert(CellKind::SfqToDc, 8);
        let via_histogram = CircuitCost::from_histogram(&lib, &hist);
        assert_eq!(direct.jj_count, via_histogram.jj_count);
        assert_eq!(direct.jj_count, 278);
        assert!((direct.static_power_uw - via_histogram.static_power_uw).abs() < 1e-12);
    }

    #[test]
    fn set_params_overrides_cell() {
        let mut lib = CellLibrary::coldflux();
        let mut xor = lib.params(CellKind::Xor).clone();
        xor.jj_count = 13;
        lib.set_params(xor);
        assert_eq!(lib.params(CellKind::Xor).jj_count, 13);
    }

    #[test]
    fn switching_energy_conversion() {
        let lib = CellLibrary::coldflux();
        let xor = lib.params(CellKind::Xor);
        assert!((xor.switching_energy_joules() - 1.1e-18).abs() < 1e-24);
    }

    #[test]
    fn circuit_cost_is_additive() {
        let lib = CellLibrary::coldflux();
        let mut a = CircuitCost::default();
        a.add(lib.params(CellKind::Xor), 2);
        let mut b = CircuitCost::default();
        b.add(lib.params(CellKind::Xor), 1);
        b.add(lib.params(CellKind::Xor), 1);
        assert_eq!(a.jj_count, b.jj_count);
        assert!((a.static_power_uw - b.static_power_uw).abs() < 1e-12);
    }
}
