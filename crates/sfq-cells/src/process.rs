//! Fabrication-process description.
//!
//! The paper's encoders target the MIT Lincoln Laboratory SFQ5ee process with
//! a critical current density of 10 kA/cm². The process record carries the
//! constants that the analog simulator (`josim-lite`) and the thermal-noise
//! model need: junction critical current density, characteristic voltage,
//! shunt resistance scaling, and the operating temperature.

use serde::{Deserialize, Serialize};

/// Magnetic flux quantum Φ₀ in webers (≈ 2.0678 × 10⁻¹⁵ Wb).
pub const FLUX_QUANTUM: f64 = 2.067_833_848e-15;

/// Boltzmann constant in J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// A superconducting fabrication process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Process {
    /// Process name, e.g. `"MIT LL SFQ5ee"`.
    pub name: String,
    /// Critical current density in kA/cm².
    pub jc_ka_per_cm2: f64,
    /// Nominal junction critical current in microamperes (for a reference
    /// junction of the standard-cell library).
    pub nominal_ic_ua: f64,
    /// Characteristic voltage Ic·Rn in millivolts.
    pub ic_rn_mv: f64,
    /// Junction specific capacitance in fF/µm².
    pub specific_capacitance_ff_um2: f64,
    /// Sheet inductance of the wiring layers in pH/square.
    pub sheet_inductance_ph_sq: f64,
    /// Bias voltage applied to the resistive bias network, in millivolts.
    pub bias_voltage_mv: f64,
    /// Operating temperature in kelvin.
    pub temperature_k: f64,
}

impl Process {
    /// The MIT Lincoln Laboratory SFQ5ee 10 kA/cm² process used by the paper.
    #[must_use]
    pub fn mit_ll_sfq5ee() -> Self {
        Process {
            name: "MIT LL SFQ5ee".to_string(),
            jc_ka_per_cm2: 10.0,
            nominal_ic_ua: 100.0,
            ic_rn_mv: 0.7,
            specific_capacitance_ff_um2: 70.0,
            sheet_inductance_ph_sq: 8.0,
            bias_voltage_mv: 2.6,
            temperature_k: 4.2,
        }
    }

    /// Plasma-frequency-limited SFQ pulse width estimate in picoseconds:
    /// `τ ≈ Φ0 / (Ic·Rn)`.
    #[must_use]
    pub fn pulse_width_ps(&self) -> f64 {
        FLUX_QUANTUM / (self.ic_rn_mv * 1e-3) * 1e12
    }

    /// Thermal-noise current spectral density `√(4 k_B T / R)` for a resistor
    /// `r_ohm`, in A/√Hz, at the process operating temperature.
    #[must_use]
    pub fn thermal_noise_current_density(&self, r_ohm: f64) -> f64 {
        (4.0 * BOLTZMANN * self.temperature_k / r_ohm).sqrt()
    }

    /// Approximate thermal fluctuation parameter Γ = 2π k_B T / (Φ0 · Ic)
    /// for a junction with critical current `ic_ua` (in µA). Γ ≪ 1 means
    /// thermally induced switching is rare.
    #[must_use]
    pub fn thermal_fluctuation_gamma(&self, ic_ua: f64) -> f64 {
        2.0 * std::f64::consts::PI * BOLTZMANN * self.temperature_k / (FLUX_QUANTUM * ic_ua * 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sfq5ee_constants() {
        let p = Process::mit_ll_sfq5ee();
        assert_eq!(p.jc_ka_per_cm2, 10.0);
        assert_eq!(p.temperature_k, 4.2);
        assert_eq!(p.bias_voltage_mv, 2.6);
    }

    #[test]
    fn pulse_width_is_a_couple_of_picoseconds() {
        // The paper quotes ~1 mV amplitude and ~2 ps duration for SFQ pulses.
        let p = Process::mit_ll_sfq5ee();
        let tau = p.pulse_width_ps();
        assert!(tau > 1.0 && tau < 5.0, "pulse width {tau} ps");
    }

    #[test]
    fn thermal_noise_density_scales_with_resistance() {
        let p = Process::mit_ll_sfq5ee();
        let d1 = p.thermal_noise_current_density(1.0);
        let d4 = p.thermal_noise_current_density(4.0);
        assert!((d1 / d4 - 2.0).abs() < 1e-9);
        // Order of magnitude: ~15 pA/sqrt(Hz) at 4.2 K for 1 ohm.
        assert!(d1 > 1e-12 && d1 < 1e-10);
    }

    #[test]
    fn gamma_is_small_for_100ua_junctions() {
        let p = Process::mit_ll_sfq5ee();
        let gamma = p.thermal_fluctuation_gamma(100.0);
        assert!(gamma < 0.01, "gamma = {gamma}");
        // Smaller junctions are noisier.
        assert!(p.thermal_fluctuation_gamma(10.0) > gamma);
    }
}
