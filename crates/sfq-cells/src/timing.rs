//! Per-cell timing parameters.
//!
//! SFQ logic is pulse based: a clocked gate captures the data pulses that
//! arrive between two clock pulses and emits its result a small
//! clock-to-output delay after the next clock pulse. Combinational cells
//! (JTLs, splitters, mergers, output drivers) simply propagate pulses after a
//! fixed delay. The gate-level simulator uses these values to model logic
//! depth (two clock cycles for the Hamming(8,4) encoder, Fig. 3) and to check
//! setup/hold violations when process variations skew delays.

use serde::{Deserialize, Serialize};

/// Timing parameters of a standard cell, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Delay from the triggering event (clock pulse for clocked cells, input
    /// pulse for combinational cells) to the output pulse.
    pub delay_ps: f64,
    /// Setup time: a data pulse must arrive at least this long before the
    /// clock pulse to be captured reliably. Zero for combinational cells.
    pub setup_ps: f64,
    /// Hold time: a data pulse must not arrive earlier than this long after
    /// the previous clock pulse. Zero for combinational cells.
    pub hold_ps: f64,
}

impl TimingParams {
    /// Timing of a combinational (unclocked) cell with the given propagation
    /// delay.
    #[must_use]
    pub fn combinational(delay_ps: f64) -> Self {
        TimingParams {
            delay_ps,
            setup_ps: 0.0,
            hold_ps: 0.0,
        }
    }

    /// Timing of a clocked cell.
    #[must_use]
    pub fn clocked(delay_ps: f64, setup_ps: f64, hold_ps: f64) -> Self {
        TimingParams {
            delay_ps,
            setup_ps,
            hold_ps,
        }
    }

    /// Returns a copy with every timing quantity scaled by `factor` —
    /// used to model the delay impact of process parameter variations
    /// (slower junctions under reduced critical current).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        TimingParams {
            delay_ps: self.delay_ps * factor,
            setup_ps: self.setup_ps * factor,
            hold_ps: self.hold_ps * factor,
        }
    }

    /// Minimum clock period (in ps) for a single stage of this cell assuming
    /// the data pulse arrives `data_arrival_ps` after the previous clock edge.
    #[must_use]
    pub fn min_clock_period_ps(&self, data_arrival_ps: f64) -> f64 {
        data_arrival_ps + self.setup_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_has_no_setup_hold() {
        let t = TimingParams::combinational(3.0);
        assert_eq!(t.delay_ps, 3.0);
        assert_eq!(t.setup_ps, 0.0);
        assert_eq!(t.hold_ps, 0.0);
    }

    #[test]
    fn scaling_multiplies_all_fields() {
        let t = TimingParams::clocked(6.0, 3.0, 1.0).scaled(1.5);
        assert!((t.delay_ps - 9.0).abs() < 1e-12);
        assert!((t.setup_ps - 4.5).abs() < 1e-12);
        assert!((t.hold_ps - 1.5).abs() < 1e-12);
    }

    #[test]
    fn min_clock_period_adds_setup() {
        let t = TimingParams::clocked(6.0, 3.5, 1.0);
        assert!((t.min_clock_period_ps(20.0) - 23.5).abs() < 1e-12);
    }
}
