//! Operating-margin specifications for the process-parameter-variation (PPV)
//! fault model.
//!
//! SFQ circuits are designed to tolerate circuit-parameter deviations of
//! ±20–30 % of nominal (references \[12\], \[13\] of the paper). A cell
//! operates
//! correctly as long as every one of its parameters (junction critical
//! currents, inductances, bias resistances) stays inside its critical margin;
//! when a sampled deviation exceeds the margin the cell malfunctions — it
//! drops its output pulse or, more rarely, generates a spurious one.
//!
//! The per-parameter margins stored here are what couples the *physical size*
//! of an encoder (more JJs → more parameters that can individually fall out
//! of margin) to its *message error rate*, which is exactly the trade-off the
//! paper's Fig. 5 demonstrates.

use serde::{Deserialize, Serialize};

/// Classes of circuit parameters that process variations perturb.
///
/// These mirror the parameter categories JoSIM's `spread` function perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParameterClass {
    /// Josephson-junction critical current.
    CriticalCurrent,
    /// Wiring / storage inductance.
    Inductance,
    /// Bias and shunt resistance.
    Resistance,
}

impl ParameterClass {
    /// All parameter classes.
    pub const ALL: [ParameterClass; 3] = [
        ParameterClass::CriticalCurrent,
        ParameterClass::Inductance,
        ParameterClass::Resistance,
    ];
}

/// Critical-margin envelope of one standard cell.
///
/// Each field is the maximum tolerated *relative* deviation (e.g. `0.26`
/// means the cell still works with parameters off by ±26 %). The values for
/// the ColdFlux cells are in the 25–40 % range, consistent with the ±20–30 %
/// design guideline cited by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarginSpec {
    /// Tolerated relative deviation of junction critical currents.
    pub critical_current: f64,
    /// Tolerated relative deviation of inductances.
    pub inductance: f64,
    /// Tolerated relative deviation of resistances.
    pub resistance: f64,
    /// Probability that an out-of-margin excursion produces a *spurious*
    /// pulse rather than a dropped pulse (most SFQ failures are dropped
    /// pulses; spurious switching is rarer).
    pub spurious_fraction: f64,
}

impl MarginSpec {
    /// A margin spec with the same tolerance for every parameter class and
    /// the default 20 % spurious-pulse fraction.
    #[must_use]
    pub fn uniform(margin: f64) -> Self {
        MarginSpec {
            critical_current: margin,
            inductance: margin * 1.15,
            resistance: margin * 1.30,
            spurious_fraction: 0.2,
        }
    }

    /// Margin for a given parameter class.
    #[must_use]
    pub fn for_class(&self, class: ParameterClass) -> f64 {
        match class {
            ParameterClass::CriticalCurrent => self.critical_current,
            ParameterClass::Inductance => self.inductance,
            ParameterClass::Resistance => self.resistance,
        }
    }

    /// Returns a copy with every margin scaled by `factor` (ablation studies
    /// use this to model more or less robust cell designs).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        MarginSpec {
            critical_current: self.critical_current * factor,
            inductance: self.inductance * factor,
            resistance: self.resistance * factor,
            spurious_fraction: self.spurious_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_margins_are_ordered() {
        let m = MarginSpec::uniform(0.3);
        assert!((m.critical_current - 0.3).abs() < 1e-12);
        assert!(m.inductance > m.critical_current);
        assert!(m.resistance > m.inductance);
    }

    #[test]
    fn for_class_selects_field() {
        let m = MarginSpec::uniform(0.25);
        assert_eq!(
            m.for_class(ParameterClass::CriticalCurrent),
            m.critical_current
        );
        assert_eq!(m.for_class(ParameterClass::Inductance), m.inductance);
        assert_eq!(m.for_class(ParameterClass::Resistance), m.resistance);
    }

    #[test]
    fn scaled_multiplies_margins_not_spurious_fraction() {
        let m = MarginSpec::uniform(0.2).scaled(2.0);
        assert!((m.critical_current - 0.4).abs() < 1e-12);
        assert!((m.spurious_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn all_classes_listed() {
        assert_eq!(ParameterClass::ALL.len(), 3);
    }
}
