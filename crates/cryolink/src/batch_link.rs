//! High-throughput batch link driver.
//!
//! [`BatchLink`] runs the Fig. 5 Monte-Carlo inner loop — encode, corrupt,
//! decode, classify — through the bit-sliced batch codec of the `sfq-batch`
//! crate instead of the scalar gate-level path. One fabricated chip's fault
//! map is condensed into a per-output-channel flip probability (see
//! [`BatchLink::new`]), errors are injected 64 messages per `u64` limb, and
//! outcomes are counted with popcounts. On the paper's 8-bit codes this is
//! orders of magnitude faster per message than pulse-level simulation, which
//! is what makes million-chip sweeps tractable.
//!
//! ## Relation to the scalar path
//!
//! The *codec* (encode/syndrome/decode) is bit-exact with the scalar `ecc`
//! decoders by construction. The *channel/fault model* is an approximation:
//! instead of replaying pulses through the faulty netlist, each output
//! channel `j` flips independently with the probability that some faulty cell
//! in its fan-in cone malfunctions (XOR-composed, since an odd number of
//! upstream malfunctions flips the bit), composed with the cable's crossover
//! probability. The scalar [`crate::CryoLink`] remains the reference oracle;
//! `montecarlo::Fig5Experiment::run_design_batched` uses this driver and the
//! workspace tests check it tracks the scalar statistics.
//!
//! One deliberate policy difference: the batch decoder uses the
//! tie-*detecting* RM(1,3) decoder (coset-invariant), while the scalar link
//! resolves ties best-effort. RM(1,3) batch runs therefore flag some words
//! the scalar link would have guessed at.

use crate::channel::ChannelConfig;
use ecc::{BatchDecode, BatchEncode};
use encoders::EncoderDesign;
use gf2::BitSlice64;
use rand::Rng;
use sfq_batch::BatchCodec;
use sfq_netlist::{Netlist, NodeId};
use sfq_sim::FaultMap;

/// Outcome counts of one transmitted batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchLinkStats {
    /// Messages delivered correctly.
    pub correct: usize,
    /// Messages flagged by the decoder's error flag.
    pub flagged: usize,
    /// Messages silently delivered wrong.
    pub silent: usize,
}

impl BatchLinkStats {
    /// Total messages in the batch.
    #[must_use]
    pub fn total(&self) -> usize {
        self.correct + self.flagged + self.silent
    }

    /// Erroneous messages under the given counting policy (mirrors
    /// [`crate::montecarlo::ErrorCounting`]).
    #[must_use]
    pub fn erroneous(&self, silent_only: bool) -> usize {
        if silent_only {
            self.silent
        } else {
            self.silent + self.flagged
        }
    }
}

/// One encoder chip driven through the bit-sliced batch path.
pub struct BatchLink<'a> {
    design: &'a EncoderDesign,
    codec: BatchCodec,
    flip_probs: Vec<f64>,
}

impl<'a> BatchLink<'a> {
    /// Builds a batch link for a design and one sampled chip.
    ///
    /// Every output channel's flip probability is derived from the chip's
    /// fault map: walk the output's transitive fan-in cone (data *and* clock
    /// ports), take each faulty cell's per-activation malfunction probability
    /// `q` at effective flip rate `q/2` (a dropped or spurious pulse corrupts
    /// the channel for one of the two nominal bit values), and XOR-compose —
    /// an odd number of upstream malfunctions flips the bit:
    /// `p ⊕ q = p(1-q) + q(1-p)`. The cable's crossover probability is
    /// composed in the same way.
    #[must_use]
    pub fn new(design: &'a EncoderDesign, faults: &FaultMap, channel: ChannelConfig) -> Self {
        Self::with_codec(design, batch_codec_for(design), faults, channel)
    }

    /// Like [`BatchLink::new`] but reuses an already-built codec — the codec
    /// depends only on the design, so Monte-Carlo loops build it once and
    /// clone it per chip instead of re-deriving the syndrome tables.
    #[must_use]
    pub fn with_codec(
        design: &'a EncoderDesign,
        codec: BatchCodec,
        faults: &FaultMap,
        channel: ChannelConfig,
    ) -> Self {
        let crossover = channel.crossover_probability();
        let netlist = design.netlist();
        let flip_probs = netlist
            .outputs()
            .iter()
            .map(|&out| {
                let cone = fanin_cone(netlist, out);
                let mut p = 0.0f64;
                for id in cone {
                    let fault = faults.get(id);
                    if fault.is_faulty() {
                        p = xor_compose(p, 0.5 * fault.activation_failure_prob);
                    }
                }
                xor_compose(p, crossover)
            })
            .collect();
        BatchLink {
            design,
            codec,
            flip_probs,
        }
    }

    /// A batch link over a fault-free chip and an ideal channel.
    #[must_use]
    pub fn ideal(design: &'a EncoderDesign) -> Self {
        Self::new(
            design,
            &FaultMap::healthy(design.netlist()),
            ChannelConfig::ideal(),
        )
    }

    /// The design this link carries.
    #[must_use]
    pub fn design(&self) -> &EncoderDesign {
        self.design
    }

    /// The bit-sliced codec in use.
    #[must_use]
    pub fn codec(&self) -> &BatchCodec {
        &self.codec
    }

    /// Per-output-channel flip probabilities of this chip + cable.
    #[must_use]
    pub fn flip_probabilities(&self) -> &[f64] {
        &self.flip_probs
    }

    /// Draws a uniform batch of `batch` random `k`-bit messages.
    ///
    /// Uniform messages have independent uniform bits, so the transposed
    /// lanes are simply random limbs (tail-masked).
    #[must_use]
    pub fn random_messages<R: Rng + ?Sized>(&self, batch: usize, rng: &mut R) -> BitSlice64 {
        let mut messages = BitSlice64::zeros(self.codec.k(), batch);
        let tail = messages.tail_mask();
        let words = messages.words();
        for bit in 0..self.codec.k() {
            let lane = messages.lane_mut(bit);
            for (w, limb) in lane.iter_mut().enumerate() {
                let mask = if w + 1 == words { tail } else { u64::MAX };
                *limb = rng.random::<u64>() & mask;
            }
        }
        messages
    }

    /// Transmits a batch of messages end to end and classifies every outcome.
    pub fn transmit_batch<R: Rng + ?Sized>(
        &self,
        messages: &BitSlice64,
        rng: &mut R,
    ) -> BatchLinkStats {
        let mut received = self.codec.encode_batch(messages);
        let words = received.words();
        let tail = received.tail_mask();

        // Batched error injection: one Bernoulli limb per (position, word).
        for (bit, &p) in self.flip_probs.iter().enumerate() {
            if p <= 0.0 {
                continue;
            }
            let lane = received.lane_mut(bit);
            for (w, limb) in lane.iter_mut().enumerate() {
                let mask = if w + 1 == words { tail } else { u64::MAX };
                *limb ^= bernoulli_limb(rng, p) & mask;
            }
        }

        let decoded = self.codec.decode_batch(&received);

        // wrong = any message lane differs (flagged lanes are zeroed in the
        // decode result, so restrict to unflagged positions).
        let mut stats = BatchLinkStats::default();
        for w in 0..words {
            let valid = if w + 1 == words { tail } else { u64::MAX };
            let flagged = decoded.flagged[w] & valid;
            let mut wrong = 0u64;
            for bit in 0..self.codec.k() {
                wrong |= decoded.messages.lane(bit)[w] ^ messages.lane(bit)[w];
            }
            let silent = wrong & !flagged & valid;
            stats.flagged += flagged.count_ones() as usize;
            stats.silent += silent.count_ones() as usize;
            stats.correct += (valid & !flagged & !silent).count_ones() as usize;
        }
        stats
    }
}

/// The batch codec matching a design's reference code.
#[must_use]
pub fn batch_codec_for(design: &EncoderDesign) -> BatchCodec {
    use encoders::EncoderKind;
    match design.kind() {
        EncoderKind::None => BatchCodec::uncoded(design.k()),
        EncoderKind::Hamming74 => BatchCodec::hamming74(),
        EncoderKind::Hamming84 => BatchCodec::hamming84(),
        EncoderKind::Rm13 => BatchCodec::rm13(),
    }
}

/// Transitive fan-in cone of `node`: every node reachable backwards through
/// data and clock ports.
fn fanin_cone(netlist: &Netlist, node: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; netlist.nodes().len()];
    let mut stack = vec![node];
    let mut cone = Vec::new();
    while let Some(id) = stack.pop() {
        if seen[id.0] {
            continue;
        }
        seen[id.0] = true;
        cone.push(id);
        let ports = netlist.node(id).kind.input_ports();
        for port in 0..ports {
            if let Some(driver) = netlist.driver_of(id, port) {
                stack.push(driver.node);
            }
        }
    }
    cone
}

/// XOR-composition of independent flip probabilities:
/// `P(odd number of flips)` for two sources.
fn xor_compose(p: f64, q: f64) -> f64 {
    p * (1.0 - q) + q * (1.0 - p)
}

/// One limb of independent Bernoulli(`p`) bits, using the bitwise method:
/// processing the binary expansion of `p` from LSB to MSB, OR-ing a fresh
/// random limb for a 1-bit and AND-ing for a 0-bit yields exactly the prefix
/// probability at 24-bit precision.
fn bernoulli_limb<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    const DEPTH: u32 = 24;
    let scaled = (p.clamp(0.0, 1.0) * f64::from(1u32 << DEPTH)).round() as u32;
    if scaled == 0 {
        return 0;
    }
    if scaled >= 1 << DEPTH {
        return u64::MAX;
    }
    let mut acc = 0u64;
    for i in 0..DEPTH {
        let r = rng.random::<u64>();
        if (scaled >> i) & 1 == 1 {
            acc |= r;
        } else {
            acc &= r;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use encoders::EncoderKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_batch_link_delivers_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in EncoderKind::ALL {
            let design = EncoderDesign::build(kind);
            let link = BatchLink::ideal(&design);
            let messages = link.random_messages(500, &mut rng);
            let stats = link.transmit_batch(&messages, &mut rng);
            assert_eq!(stats.total(), 500);
            assert_eq!(stats.correct, 500, "{}", design.name());
        }
    }

    #[test]
    fn flip_probabilities_track_channel_noise() {
        let design = EncoderDesign::build(EncoderKind::Hamming84);
        let clean = BatchLink::new(
            &design,
            &FaultMap::healthy(design.netlist()),
            ChannelConfig::ideal(),
        );
        let noisy = BatchLink::new(
            &design,
            &FaultMap::healthy(design.netlist()),
            ChannelConfig::with_snr_db(8.0),
        );
        assert_eq!(clean.flip_probabilities().len(), 8);
        for (&c, &n) in clean
            .flip_probabilities()
            .iter()
            .zip(noisy.flip_probabilities())
        {
            assert!(c < 1e-9, "ideal channel must be almost noiseless");
            assert!(n > 1e-3, "noisy channel must flip bits");
        }
    }

    #[test]
    fn bernoulli_limb_matches_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        for &p in &[0.01f64, 0.1, 0.5, 0.9] {
            let mut ones = 0usize;
            let limbs = 2000;
            for _ in 0..limbs {
                ones += bernoulli_limb(&mut rng, p).count_ones() as usize;
            }
            let measured = ones as f64 / (limbs * 64) as f64;
            assert!((measured - p).abs() < 0.01, "p={p} measured={measured}");
        }
    }

    #[test]
    fn noisy_channel_produces_flags_and_errors() {
        let design = EncoderDesign::build(EncoderKind::Hamming84);
        let link = BatchLink::new(
            &design,
            &FaultMap::healthy(design.netlist()),
            ChannelConfig::with_snr_db(9.0),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let messages = link.random_messages(20_000, &mut rng);
        let stats = link.transmit_batch(&messages, &mut rng);
        assert_eq!(stats.total(), 20_000);
        assert!(stats.flagged > 0, "double errors must raise the flag");
        assert!(stats.correct > stats.silent, "most messages should survive");
    }

    #[test]
    fn batch_stats_match_scalar_link_statistically() {
        // Same fault-free noisy channel, scalar vs batch: silent-error rates
        // must agree within Monte-Carlo tolerance (the codec is bit-exact;
        // only the noise realizations differ).
        use crate::link::{CryoLink, LinkOutcome};
        use gf2::BitVec;

        let design = EncoderDesign::build(EncoderKind::Hamming74);
        let channel = ChannelConfig::with_snr_db(10.0);
        let trials = 60_000usize;

        let link = CryoLink::new(&design, FaultMap::healthy(design.netlist()), channel);
        let mut rng = StdRng::seed_from_u64(17);
        let mut scalar_wrong = 0usize;
        for i in 0..trials {
            let msg = BitVec::from_u64(4, (i % 16) as u64);
            if link.transmit(&msg, &mut rng).outcome == LinkOutcome::SilentError {
                scalar_wrong += 1;
            }
        }

        let batch_link = BatchLink::new(&design, &FaultMap::healthy(design.netlist()), channel);
        let messages = batch_link.random_messages(trials, &mut rng);
        let stats = batch_link.transmit_batch(&messages, &mut rng);

        let scalar_rate = scalar_wrong as f64 / trials as f64;
        let batch_rate = stats.silent as f64 / trials as f64;
        assert!(
            (scalar_rate - batch_rate).abs() < 0.005 + scalar_rate * 0.5,
            "scalar {scalar_rate} vs batch {batch_rate}"
        );
    }

    #[test]
    fn counting_policies_partition_the_batch() {
        let design = EncoderDesign::build(EncoderKind::Hamming84);
        let link = BatchLink::new(
            &design,
            &FaultMap::healthy(design.netlist()),
            ChannelConfig::with_snr_db(8.0),
        );
        let mut rng = StdRng::seed_from_u64(4);
        let messages = link.random_messages(5000, &mut rng);
        let stats = link.transmit_batch(&messages, &mut rng);
        assert_eq!(stats.erroneous(false), stats.silent + stats.flagged);
        assert_eq!(stats.erroneous(true), stats.silent);
        assert_eq!(stats.total(), 5000);
    }
}
