//! High-throughput batch link driver.
//!
//! [`BatchLink`] runs the Fig. 5 Monte-Carlo inner loop — encode, corrupt,
//! decode, classify — through the bit-sliced batch codec of the `sfq-batch`
//! crate instead of the scalar gate-level path. One fabricated chip's fault
//! map is condensed into a set of correlated error sources (see
//! [`BatchLink::rebind`]), errors are injected 64 messages per `u64` limb,
//! and outcomes are counted with popcounts. On the paper's 8-bit codes this
//! is orders of magnitude faster per message than pulse-level simulation,
//! which is what makes million-chip sweeps tractable.
//!
//! ## Zero-allocation chip loop
//!
//! Everything that depends only on the *design* — the batch codec, the
//! per-node fan-out cones, the pipeline depth — lives in a
//! [`BatchLinkContext`] built once per Monte-Carlo run. A [`BatchLink`]
//! borrows the context and holds only the per-chip state (the condensed
//! error sources), which [`BatchLink::rebind`] rebuilds in place for each
//! new chip; together with the [`LinkScratch`] buffers threaded through
//! [`BatchLink::transmit_batch_with`], the steady-state chip loop performs
//! no heap allocation beyond the fault-map sampling itself.
//!
//! ## Relation to the scalar path
//!
//! The *codec* (encode/syndrome/decode) is bit-exact with the scalar `ecc`
//! decoders by construction. The *channel/fault model* is an approximation:
//! instead of replaying pulses through the faulty netlist, each faulty cell
//! is an independent Bernoulli error source at its per-activation malfunction
//! probability, and when it fires it flips **every output channel whose
//! fan-in cone contains the cell, together** (one shared draw per cell per
//! limb). This correlated injection matters at wide words: a malfunctioning
//! splitter deep in the clock tree of the SEC-DED(72,64) encoder corrupts
//! many codeword bits of the same word, which the decoder must flag rather
//! than correct — a per-channel independent-flip model would dilute such
//! bursts into mostly-correctable single errors. Cable/receiver noise is
//! genuinely independent per channel and is injected that way, at the
//! channel's crossover probability. The scalar [`crate::CryoLink`] remains
//! the reference oracle; `montecarlo::Fig5Experiment::run_design_batched`
//! uses this driver and the workspace tests check it tracks the scalar
//! statistics.
//!
//! One deliberate policy difference: the batch decoder uses the
//! tie-*detecting* RM(1,3) decoder (coset-invariant), while the scalar link
//! resolves ties best-effort. RM(1,3) batch runs therefore flag some words
//! the scalar link would have guessed at.

use crate::channel::ChannelConfig;
use ecc::{BatchDecode, BatchDecoded, BatchEncode, BatchScratch};
use encoders::EncoderDesign;
use gf2::BitSlice64;
use rand::Rng;
use sfq_batch::BatchCodec;
use sfq_netlist::Netlist;
use sfq_sim::{FailureMode, FaultMap};

/// Outcome counts of one transmitted batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchLinkStats {
    /// Messages delivered correctly.
    pub correct: usize,
    /// Messages flagged by the decoder's error flag.
    pub flagged: usize,
    /// Messages silently delivered wrong.
    pub silent: usize,
}

impl BatchLinkStats {
    /// Total messages in the batch.
    #[must_use]
    pub fn total(&self) -> usize {
        self.correct + self.flagged + self.silent
    }

    /// Erroneous messages under the given counting policy (mirrors
    /// [`crate::montecarlo::ErrorCounting`]).
    #[must_use]
    pub fn erroneous(&self, silent_only: bool) -> usize {
        if silent_only {
            self.silent
        } else {
            self.silent + self.flagged
        }
    }
}

/// One correlated error source: a faulty cell, its effective per-word flip
/// probability, and which of the precomputed cone maps names the channels it
/// reaches. The channel lists themselves live in the shared
/// [`BatchLinkContext`] — rebinding a link to a new chip copies no lists.
#[derive(Debug, Clone, Copy)]
struct FaultSource {
    /// Effective per-word flip probability of the cell.
    prob: f64,
    /// Netlist node index of the faulty cell.
    node: usize,
    /// `true` → the spurious-pulse (data-port-only) cone applies; `false` →
    /// the full data+clock cone.
    data_only: bool,
}

/// Everything the batch driver precomputes from a *design* (as opposed to a
/// *chip*): the bit-sliced codec, the per-node fan-out cones, and the
/// pipeline cycle count. Build one per Monte-Carlo run and share it across
/// every chip and worker thread.
pub struct BatchLinkContext {
    codec: BatchCodec,
    cones: FaultCones,
    /// Sampling cycles (`latency + 1`).
    cycles: usize,
}

impl BatchLinkContext {
    /// Precomputes the context for one design.
    #[must_use]
    pub fn new(design: &EncoderDesign) -> Self {
        Self::with_codec(design, batch_codec_for(design))
    }

    /// Like [`BatchLinkContext::new`] with an externally built codec.
    #[must_use]
    pub fn with_codec(design: &EncoderDesign, codec: BatchCodec) -> Self {
        BatchLinkContext {
            codec,
            cones: FaultCones::of(design.netlist()),
            cycles: design.latency() + 1,
        }
    }

    /// The bit-sliced codec of the design.
    #[must_use]
    pub fn codec(&self) -> &BatchCodec {
        &self.codec
    }

    /// The output channels a source reaches.
    fn channels_of(&self, source: &FaultSource) -> &[usize] {
        if source.data_only {
            &self.cones.data_only[source.node]
        } else {
            &self.cones.full[source.node]
        }
    }
}

/// Link-level telemetry handles under the `link.*` names (see
/// `docs/OBSERVABILITY.md`). One set per [`LinkScratch`] — i.e. one shard
/// per worker thread — so the Monte-Carlo workers never contend on a
/// metric. Write-only: no RNG stream passes through these and no result
/// depends on them.
struct LinkMetrics {
    /// Batches transmitted.
    batches: sfq_telemetry::Counter,
    /// Messages transmitted.
    messages: sfq_telemetry::Counter,
    /// Correlated error-source Bernoulli limb draws.
    source_draws: sfq_telemetry::Counter,
    /// Draws that actually fired (flipped at least one lane).
    sources_fired: sfq_telemetry::Counter,
    /// Messages delivered correctly.
    correct: sfq_telemetry::Counter,
    /// Messages flagged detected-uncorrectable.
    flagged: sfq_telemetry::Counter,
    /// Messages silently delivered wrong.
    silent: sfq_telemetry::Counter,
    /// Wall time of one batch decode call, nanoseconds.
    decode_ns: sfq_telemetry::Histogram,
    /// Decode wall time per 64-message limb, nanoseconds.
    decode_ns_per_limb: sfq_telemetry::Histogram,
}

impl LinkMetrics {
    fn new() -> Self {
        let registry = sfq_telemetry::global();
        LinkMetrics {
            batches: registry.counter("link.batches"),
            messages: registry.counter("link.messages"),
            source_draws: registry.counter("link.source_draws"),
            sources_fired: registry.counter("link.sources_fired"),
            correct: registry.counter("link.outcome.correct"),
            flagged: registry.counter("link.outcome.flagged"),
            silent: registry.counter("link.outcome.silent"),
            decode_ns: registry.histogram("link.decode_ns"),
            decode_ns_per_limb: registry.histogram("link.decode_ns_per_limb"),
        }
    }
}

/// Reusable buffers for the batch link's transmit-decode loop: the received
/// batch, the decode output, and the codec scratch. One per worker thread
/// (which also makes its telemetry shards per-worker).
pub struct LinkScratch {
    received: BitSlice64,
    decoded: BatchDecoded,
    codec: BatchScratch,
    metrics: LinkMetrics,
}

impl Default for LinkScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl LinkScratch {
    /// Fresh, empty buffers; they are shaped on first use and only grow.
    #[must_use]
    pub fn new() -> Self {
        LinkScratch {
            received: BitSlice64::default(),
            decoded: BatchDecoded::empty(),
            codec: BatchScratch::new(),
            metrics: LinkMetrics::new(),
        }
    }
}

/// One encoder chip driven through the bit-sliced batch path.
pub struct BatchLink<'a> {
    design: &'a EncoderDesign,
    ctx: &'a BatchLinkContext,
    /// Correlated per-faulty-cell error sources of the bound chip.
    sources: Vec<FaultSource>,
    /// Independent per-channel crossover probability of the cable/receiver.
    crossover: f64,
}

impl<'a> BatchLink<'a> {
    /// A link over a fault-free chip and an ideal channel; bind a real chip
    /// with [`BatchLink::rebind`].
    #[must_use]
    pub fn new(design: &'a EncoderDesign, ctx: &'a BatchLinkContext) -> Self {
        BatchLink {
            design,
            ctx,
            sources: Vec::new(),
            crossover: 0.0,
        }
    }

    /// Builds a link already bound to one sampled chip.
    #[must_use]
    pub fn with_chip(
        design: &'a EncoderDesign,
        ctx: &'a BatchLinkContext,
        faults: &FaultMap,
        channel: ChannelConfig,
    ) -> Self {
        let mut link = Self::new(design, ctx);
        link.rebind(faults, channel);
        link
    }

    /// Re-binds this link to a new chip + channel, rebuilding the condensed
    /// error sources in place (the `sources` buffer is reused).
    ///
    /// Every faulty cell of the chip becomes a correlated error source whose
    /// per-message firing probability depends on its failure mode:
    ///
    /// * **drop / invert** faults fire at `q/2` — although the pulse-level
    ///   oracle rolls such cells on every activation, a dropped pulse only
    ///   corrupts on the one cycle the data (or the clock pulse releasing
    ///   it) transits the cell, and only for one of the two nominal bit
    ///   values;
    /// * **spurious** faults fire at the parity of `Binomial(d + 1, q)`,
    ///   where `d` is the cell's clocked depth — the oracle rolls them every
    ///   cycle, extra pulses cancel pairwise at the toggling SFQ-to-DC
    ///   converters, and only fires early enough to reach the outputs by the
    ///   sampling cycle are visible.
    ///
    /// When a source fires it flips every affected output channel together:
    /// the full data+clock fan-out cone for drop/invert, the data-port-only
    /// cone for spurious (an extra edge on a clock port evaluates an empty
    /// cell, which emits nothing). Channel noise is injected independently
    /// per channel at the cable's crossover probability.
    pub fn rebind(&mut self, faults: &FaultMap, channel: ChannelConfig) {
        self.crossover = channel.crossover_probability();
        let cones = &self.ctx.cones;
        let cycles = self.ctx.cycles;
        self.sources.clear();
        // `iter_faulty` yields nodes in index order, which fixes the RNG
        // draw order of `transmit_batch` deterministically.
        for (id, fault) in faults.iter_faulty() {
            let q = fault.activation_failure_prob;
            let (prob, data_only) = match fault.mode {
                // A dropped (or inverted) pulse is only visible on the
                // one cycle the data transits the cell, and only for one
                // of the two nominal bit values. Dropped *clock* pulses
                // corrupt too (held flux is released late), so the full
                // data+clock cone is affected.
                FailureMode::DropPulse | FailureMode::Invert => (0.5 * q, false),
                // A spurious emission only corrupts where it can inject a
                // *data* pulse (an extra edge on a clock port evaluates
                // an empty cell, which emits nothing). The pulse-level
                // simulator rolls spurious cells once per cycle
                // (combinational ones via the per-cycle activity step,
                // clocked ones at every clock edge), and the toggling
                // SFQ-to-DC levels record the *parity* of the extra
                // pulses: P(odd of Binomial(c, q)) = (1 − (1−2q)^c) / 2.
                FailureMode::SpuriousPulse => {
                    // Only fires early enough to reach the outputs by the
                    // sampling cycle count: a pulse from a cell at
                    // clocked depth `d` needs `latency − d` further
                    // stages, so of the `latency + 1` rolls, `d + 1`
                    // arrive in time.
                    let rolls = (cones.depth[id.0] + 1).min(cycles);
                    let prob = 0.5 * (1.0 - (1.0 - 2.0 * q.min(0.5)).powi(rolls as i32));
                    (prob, true)
                }
            };
            let source = FaultSource {
                prob,
                node: id.0,
                data_only,
            };
            if self.ctx.channels_of(&source).is_empty() {
                continue;
            }
            self.sources.push(source);
        }
    }

    /// The design this link carries.
    #[must_use]
    pub fn design(&self) -> &EncoderDesign {
        self.design
    }

    /// The bit-sliced codec in use.
    #[must_use]
    pub fn codec(&self) -> &BatchCodec {
        self.ctx.codec()
    }

    /// Marginal per-channel flip probabilities of the bound chip + cable
    /// (chip faults XOR-composed with the cable), computed on demand for
    /// reporting and sanity tests — the hot path never needs them.
    #[must_use]
    pub fn flip_probabilities(&self) -> Vec<f64> {
        let n = self.codec().n();
        (0..n)
            .map(|j| {
                let mut p = 0.0f64;
                for source in &self.sources {
                    if self.ctx.channels_of(source).contains(&j) {
                        p = xor_compose(p, source.prob);
                    }
                }
                xor_compose(p, self.crossover)
            })
            .collect()
    }

    /// Draws a uniform batch of `batch` random `k`-bit messages.
    ///
    /// Uniform messages have independent uniform bits, so the transposed
    /// lanes are simply random limbs (tail-masked).
    #[must_use]
    pub fn random_messages<R: Rng + ?Sized>(&self, batch: usize, rng: &mut R) -> BitSlice64 {
        let mut messages = BitSlice64::default();
        self.random_messages_into(batch, rng, &mut messages);
        messages
    }

    /// Like [`BatchLink::random_messages`], but re-shapes a caller-provided
    /// buffer in place (same RNG stream).
    pub fn random_messages_into<R: Rng + ?Sized>(
        &self,
        batch: usize,
        rng: &mut R,
        messages: &mut BitSlice64,
    ) {
        messages.reset(self.codec().k(), batch);
        let tail = messages.tail_mask();
        let words = messages.words();
        for bit in 0..self.codec().k() {
            let lane = messages.lane_mut(bit);
            for (w, limb) in lane.iter_mut().enumerate() {
                let mask = if w + 1 == words { tail } else { u64::MAX };
                *limb = rng.random::<u64>() & mask;
            }
        }
    }

    /// Transmits a batch of messages end to end and classifies every
    /// outcome, reusing the caller's [`LinkScratch`] buffers.
    pub fn transmit_batch_with<R: Rng + ?Sized>(
        &self,
        messages: &BitSlice64,
        rng: &mut R,
        scratch: &mut LinkScratch,
    ) -> BatchLinkStats {
        let codec = self.codec();
        codec.encode_batch_into(messages, &mut scratch.received);
        let received = &mut scratch.received;
        let words = received.words();
        let tail = received.tail_mask();

        // Correlated chip-fault injection: one Bernoulli limb per (source,
        // word), XORed into every channel the source reaches — 64 words
        // share each draw column-wise, and all affected channels of one word
        // flip together.
        let mut source_draws = 0u64;
        let mut sources_fired = 0u64;
        for source in &self.sources {
            if source.prob <= 0.0 {
                continue;
            }
            let channels = self.ctx.channels_of(source);
            for w in 0..words {
                let valid = if w + 1 == words { tail } else { u64::MAX };
                let mask = bernoulli_limb(rng, source.prob) & valid;
                source_draws += 1;
                if mask == 0 {
                    continue;
                }
                sources_fired += 1;
                for &channel in channels {
                    received.lane_mut(channel)[w] ^= mask;
                }
            }
        }

        // Independent cable/receiver noise: one Bernoulli limb per
        // (channel, word).
        if self.crossover > 0.0 {
            for bit in 0..codec.n() {
                let lane = received.lane_mut(bit);
                for (w, limb) in lane.iter_mut().enumerate() {
                    let mask = if w + 1 == words { tail } else { u64::MAX };
                    *limb ^= bernoulli_limb(rng, self.crossover) & mask;
                }
            }
        }

        let decode_watch = sfq_telemetry::Stopwatch::start();
        codec.decode_batch_with(received, &mut scratch.codec, &mut scratch.decoded);
        let decode_ns = decode_watch.elapsed_ns();
        let decoded = &scratch.decoded;

        // wrong = any message lane differs (flagged lanes are zeroed in the
        // decode result, so restrict to unflagged positions).
        let mut stats = BatchLinkStats::default();
        for w in 0..words {
            let valid = if w + 1 == words { tail } else { u64::MAX };
            let flagged = decoded.flagged[w] & valid;
            let mut wrong = 0u64;
            for bit in 0..codec.k() {
                wrong |= decoded.messages.lane(bit)[w] ^ messages.lane(bit)[w];
            }
            let silent = wrong & !flagged & valid;
            stats.flagged += flagged.count_ones() as usize;
            stats.silent += silent.count_ones() as usize;
            stats.correct += (valid & !flagged & !silent).count_ones() as usize;
        }

        let metrics = &scratch.metrics;
        metrics.batches.inc();
        metrics.messages.add(stats.total() as u64);
        metrics.source_draws.add(source_draws);
        metrics.sources_fired.add(sources_fired);
        metrics.correct.add(stats.correct as u64);
        metrics.flagged.add(stats.flagged as u64);
        metrics.silent.add(stats.silent as u64);
        metrics.decode_ns.record(decode_ns);
        if words > 0 {
            metrics.decode_ns_per_limb.record(decode_ns / words as u64);
        }
        stats
    }

    /// Transmits a batch of messages end to end and classifies every outcome
    /// (allocating convenience wrapper over
    /// [`BatchLink::transmit_batch_with`]).
    pub fn transmit_batch<R: Rng + ?Sized>(
        &self,
        messages: &BitSlice64,
        rng: &mut R,
    ) -> BatchLinkStats {
        let mut scratch = LinkScratch::new();
        self.transmit_batch_with(messages, rng, &mut scratch)
    }
}

/// The batch codec matching a design's reference code.
#[must_use]
pub fn batch_codec_for(design: &EncoderDesign) -> BatchCodec {
    use encoders::EncoderKind;
    match design.kind() {
        EncoderKind::None => BatchCodec::uncoded(design.k()),
        EncoderKind::Hamming74 => BatchCodec::hamming74(),
        EncoderKind::Hamming84 => BatchCodec::hamming84(),
        EncoderKind::Rm13 => BatchCodec::rm13(),
        EncoderKind::SecDed(m) => BatchCodec::sec_ded(usize::from(m)),
        EncoderKind::WideHamming8564 => BatchCodec::wide_hamming_85_64(),
        EncoderKind::Bch(spec) => BatchCodec::bch_spec(spec),
        EncoderKind::Ldpc => BatchCodec::ldpc(),
    }
}

/// Per-node downstream output channels, under two notions of reachability.
struct FaultCones {
    /// Channels reachable forward through **any** port (data or clock).
    full: Vec<Vec<usize>>,
    /// Channels reachable forward through **data** ports only.
    data_only: Vec<Vec<usize>>,
    /// Clocked stages from the primary inputs up to and including each node
    /// (the netlist's logic-depth notion).
    depth: Vec<usize>,
}

impl FaultCones {
    /// Computes both cone maps with one backward DFS per output over driver
    /// adjacencies built in a single pass over the connection list. The
    /// netlist's own reverse-driver index covers the *full* adjacency, but
    /// the fault model also needs the **data-only** view (clock edges
    /// excluded), so both filtered adjacency lists are materialized here.
    fn of(netlist: &Netlist) -> Self {
        let node_count = netlist.nodes().len();
        let mut drivers_full: Vec<Vec<usize>> = vec![Vec::new(); node_count];
        let mut drivers_data: Vec<Vec<usize>> = vec![Vec::new(); node_count];
        for connection in netlist.connections() {
            let to = connection.to.0;
            let from = connection.from.node.0;
            drivers_full[to].push(from);
            let is_clock_edge =
                netlist.node(connection.to).kind.clock_port() == Some(connection.to_port);
            if !is_clock_edge {
                drivers_data[to].push(from);
            }
        }
        let walk = |drivers: &[Vec<usize>]| -> Vec<Vec<usize>> {
            let mut channels_of: Vec<Vec<usize>> = vec![Vec::new(); node_count];
            for (channel, &out) in netlist.outputs().iter().enumerate() {
                let mut seen = vec![false; node_count];
                let mut stack = vec![out.0];
                while let Some(id) = stack.pop() {
                    if seen[id] {
                        continue;
                    }
                    seen[id] = true;
                    channels_of[id].push(channel);
                    stack.extend(drivers[id].iter().copied());
                }
            }
            channels_of
        };
        // Node depths (clocked stages up to and including the node) by
        // memoized DFS over the full driver adjacency.
        let mut depth: Vec<Option<usize>> = vec![None; node_count];
        fn depth_of(
            id: usize,
            netlist: &Netlist,
            drivers: &[Vec<usize>],
            memo: &mut Vec<Option<usize>>,
        ) -> usize {
            if let Some(d) = memo[id] {
                return d;
            }
            memo[id] = Some(0); // cycle guard; real cycles are a DRC error
            let own = usize::from(netlist.nodes()[id].kind.is_clocked());
            let upstream = drivers[id]
                .iter()
                .map(|&d| depth_of(d, netlist, drivers, memo))
                .max()
                .unwrap_or(0);
            let result = own + upstream;
            memo[id] = Some(result);
            result
        }
        for id in 0..node_count {
            depth_of(id, netlist, &drivers_full, &mut depth);
        }

        FaultCones {
            full: walk(&drivers_full),
            data_only: walk(&drivers_data),
            depth: depth.into_iter().map(|d| d.unwrap_or(0)).collect(),
        }
    }
}

/// XOR-composition of independent flip probabilities:
/// `P(odd number of flips)` for two sources.
fn xor_compose(p: f64, q: f64) -> f64 {
    p * (1.0 - q) + q * (1.0 - p)
}

/// One limb of independent Bernoulli(`p`) bits, using the bitwise method:
/// processing the binary expansion of `p` from LSB to MSB, OR-ing a fresh
/// random limb for a 1-bit and AND-ing for a 0-bit yields exactly the prefix
/// probability at 24-bit precision.
fn bernoulli_limb<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    const DEPTH: u32 = 24;
    let scaled = (p.clamp(0.0, 1.0) * f64::from(1u32 << DEPTH)).round() as u32;
    if scaled == 0 {
        return 0;
    }
    if scaled >= 1 << DEPTH {
        return u64::MAX;
    }
    let mut acc = 0u64;
    for i in 0..DEPTH {
        let r = rng.random::<u64>();
        if (scaled >> i) & 1 == 1 {
            acc |= r;
        } else {
            acc &= r;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use encoders::EncoderKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_batch_link_delivers_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in EncoderKind::ALL {
            let design = EncoderDesign::build(kind);
            let ctx = BatchLinkContext::new(&design);
            let link = BatchLink::new(&design, &ctx);
            let messages = link.random_messages(500, &mut rng);
            let stats = link.transmit_batch(&messages, &mut rng);
            assert_eq!(stats.total(), 500);
            assert_eq!(stats.correct, 500, "{}", design.name());
        }
    }

    #[test]
    fn flip_probabilities_track_channel_noise() {
        let design = EncoderDesign::build(EncoderKind::Hamming84);
        let ctx = BatchLinkContext::new(&design);
        let healthy = FaultMap::healthy(design.netlist());
        let clean = BatchLink::with_chip(&design, &ctx, &healthy, ChannelConfig::ideal());
        let noisy = BatchLink::with_chip(&design, &ctx, &healthy, ChannelConfig::with_snr_db(8.0));
        assert_eq!(clean.flip_probabilities().len(), 8);
        for (&c, &n) in clean
            .flip_probabilities()
            .iter()
            .zip(&noisy.flip_probabilities())
        {
            assert!(c < 1e-9, "ideal channel must be almost noiseless");
            assert!(n > 1e-3, "noisy channel must flip bits");
        }
    }

    #[test]
    fn bernoulli_limb_matches_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        for &p in &[0.01f64, 0.1, 0.5, 0.9] {
            let mut ones = 0usize;
            let limbs = 2000;
            for _ in 0..limbs {
                ones += bernoulli_limb(&mut rng, p).count_ones() as usize;
            }
            let measured = ones as f64 / (limbs * 64) as f64;
            assert!((measured - p).abs() < 0.01, "p={p} measured={measured}");
        }
    }

    #[test]
    fn noisy_channel_produces_flags_and_errors() {
        let design = EncoderDesign::build(EncoderKind::Hamming84);
        let ctx = BatchLinkContext::new(&design);
        let link = BatchLink::with_chip(
            &design,
            &ctx,
            &FaultMap::healthy(design.netlist()),
            ChannelConfig::with_snr_db(9.0),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let messages = link.random_messages(20_000, &mut rng);
        let stats = link.transmit_batch(&messages, &mut rng);
        assert_eq!(stats.total(), 20_000);
        assert!(stats.flagged > 0, "double errors must raise the flag");
        assert!(stats.correct > stats.silent, "most messages should survive");
    }

    #[test]
    fn batch_stats_match_scalar_link_statistically() {
        // Same fault-free noisy channel, scalar vs batch: silent-error rates
        // must agree within Monte-Carlo tolerance (the codec is bit-exact;
        // only the noise realizations differ).
        use crate::link::{CryoLink, LinkOutcome};
        use gf2::BitVec;

        let design = EncoderDesign::build(EncoderKind::Hamming74);
        let channel = ChannelConfig::with_snr_db(10.0);
        let trials = 60_000usize;

        let link = CryoLink::new(&design, FaultMap::healthy(design.netlist()), channel);
        let mut rng = StdRng::seed_from_u64(17);
        let mut scalar_wrong = 0usize;
        for i in 0..trials {
            let msg = BitVec::from_u64(4, (i % 16) as u64);
            if link.transmit(&msg, &mut rng).outcome == LinkOutcome::SilentError {
                scalar_wrong += 1;
            }
        }

        let ctx = BatchLinkContext::new(&design);
        let batch_link =
            BatchLink::with_chip(&design, &ctx, &FaultMap::healthy(design.netlist()), channel);
        let messages = batch_link.random_messages(trials, &mut rng);
        let stats = batch_link.transmit_batch(&messages, &mut rng);

        let scalar_rate = scalar_wrong as f64 / trials as f64;
        let batch_rate = stats.silent as f64 / trials as f64;
        assert!(
            (scalar_rate - batch_rate).abs() < 0.005 + scalar_rate * 0.5,
            "scalar {scalar_rate} vs batch {batch_rate}"
        );
    }

    #[test]
    fn counting_policies_partition_the_batch() {
        let design = EncoderDesign::build(EncoderKind::Hamming84);
        let ctx = BatchLinkContext::new(&design);
        let link = BatchLink::with_chip(
            &design,
            &ctx,
            &FaultMap::healthy(design.netlist()),
            ChannelConfig::with_snr_db(8.0),
        );
        let mut rng = StdRng::seed_from_u64(4);
        let messages = link.random_messages(5000, &mut rng);
        let stats = link.transmit_batch(&messages, &mut rng);
        assert_eq!(stats.erroneous(false), stats.silent + stats.flagged);
        assert_eq!(stats.erroneous(true), stats.silent);
        assert_eq!(stats.total(), 5000);
    }

    #[test]
    fn rebind_reuses_buffers_and_matches_fresh_construction() {
        // Driving the same chip sequence through one rebound link and
        // through per-chip fresh links must give identical statistics under
        // identical RNG streams.
        use sfq_cells::CellLibrary;
        use sfq_sim::PpvModel;

        let design = EncoderDesign::build(EncoderKind::Hamming84);
        let ctx = BatchLinkContext::new(&design);
        let library = CellLibrary::coldflux();
        let model = PpvModel::paper_defaults();
        let channel = ChannelConfig::ideal();

        let mut rebound = BatchLink::new(&design, &ctx);
        let mut scratch = LinkScratch::new();
        let mut messages = BitSlice64::default();
        for chip_index in 0..12u64 {
            let mut rng_a = StdRng::seed_from_u64(chip_index);
            let chip = model.sample_chip(design.netlist(), &library, &mut rng_a);
            rebound.rebind(&chip.faults, channel);
            rebound.random_messages_into(200, &mut rng_a, &mut messages);
            let a = rebound.transmit_batch_with(&messages, &mut rng_a, &mut scratch);

            let mut rng_b = StdRng::seed_from_u64(chip_index);
            let chip = model.sample_chip(design.netlist(), &library, &mut rng_b);
            let fresh = BatchLink::with_chip(&design, &ctx, &chip.faults, channel);
            let msgs = fresh.random_messages(200, &mut rng_b);
            let b = fresh.transmit_batch(&msgs, &mut rng_b);

            assert_eq!(a, b, "chip {chip_index}");
        }
    }
}
