//! Correlated burst-error sources, streaming scrub-traffic error injection,
//! and codeword interleaving.
//!
//! The superconducting failure modes that motivate this module are *not*
//! independent per lane: a glitch in the clock tree of a wide encoder (or a
//! multi-cycle upset on a cable bundle) corrupts a group of **physically
//! adjacent** output channels during the same window. In the bit-sliced
//! batch representation ([`gf2::BitSlice64`]) that is exactly one event
//! flipping `w` adjacent *lanes* of one 64-message limb — every message in
//! the limb takes a `w`-bit burst, which a single-error-correcting code
//! cannot repair (SEC-DED flags it; anything weaker may miscorrect).
//!
//! The classic system fix is [`Interleaver`]: transmitting `d` codewords
//! lane-interleaved over the physical channel group, so that `w ≤ d`
//! adjacent physical lanes always belong to `w` *different* codewords. After
//! de-interleaving, the burst has been converted into at most one flipped
//! lane per codeword — back inside single-error-correction territory. The
//! workspace's property suite proves this round trip restores
//! correctability for every `w ≤ d`.
//!
//! [`SparseFlipSource`] is the steady-state error model of the streaming
//! scrub service (`sfq-stream`): independent rare lane flips, injected by
//! drawing the *number* of flips per batch (binomial over all
//! `lanes × messages` positions) and placing them uniformly, which costs
//! `O(flips)` instead of `O(lanes × limbs)` Bernoulli draws — the difference
//! between an error model that keeps up with a 1e8 msg/s decode path and
//! one that throttles it.

use gf2::BitSlice64;
use rand::Rng;

/// A correlated burst-error source: each firing flips `width` **adjacent**
/// lanes of one limb together (all 64 messages of the limb take the same
/// burst — one shared draw, exactly like a clock-tree glitch corrupting a
/// channel group for a whole arrival window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSource {
    /// Number of adjacent lanes a firing flips.
    pub width: usize,
    /// Per-limb firing probability used by [`BurstSource::inject`].
    pub prob: f64,
}

impl BurstSource {
    /// A burst source of the given lane width and per-limb firing
    /// probability.
    ///
    /// # Panics
    /// Panics if `width == 0` or `prob` is outside `[0, 1]`.
    #[must_use]
    pub fn new(width: usize, prob: f64) -> Self {
        assert!(width > 0, "burst width must be at least one lane");
        assert!(
            (0.0..=1.0).contains(&prob),
            "burst probability must be in [0, 1]"
        );
        BurstSource { width, prob }
    }

    /// Strikes exactly one burst: picks a uniform limb and a uniform start
    /// lane, then flips the whole 64-message word of `width` adjacent lanes.
    /// Draw order (limb, then start lane) is fixed, so a seeded RNG yields a
    /// deterministic strike.
    ///
    /// # Panics
    /// Panics if the frame has fewer lanes than `width` or holds no
    /// messages.
    pub fn strike<R: Rng + ?Sized>(&self, rng: &mut R, frame: &mut BitSlice64) {
        let lanes = frame.bits();
        let words = frame.words();
        assert!(
            lanes >= self.width,
            "frame has {lanes} lanes, burst needs {}",
            self.width
        );
        assert!(words > 0, "cannot strike an empty frame");
        let word = rng.random_range(0..words);
        let start = rng.random_range(0..=lanes - self.width);
        let mask = if word + 1 == words {
            frame.tail_mask()
        } else {
            u64::MAX
        };
        for lane in start..start + self.width {
            frame.lane_mut(lane)[word] ^= mask;
        }
    }

    /// Monte-Carlo injection: one Bernoulli draw per limb at
    /// [`BurstSource::prob`]; each firing flips `width` adjacent lanes of
    /// that limb (uniform start lane). Returns the number of bursts fired.
    ///
    /// # Panics
    /// Panics if the frame has fewer lanes than `width`.
    pub fn inject<R: Rng + ?Sized>(&self, rng: &mut R, frame: &mut BitSlice64) -> usize {
        let lanes = frame.bits();
        assert!(
            lanes >= self.width,
            "frame has {lanes} lanes, burst needs {}",
            self.width
        );
        let words = frame.words();
        let mut fired = 0usize;
        for word in 0..words {
            if !rng.random_bool(self.prob) {
                continue;
            }
            fired += 1;
            let start = rng.random_range(0..=lanes - self.width);
            let mask = if word + 1 == words {
                frame.tail_mask()
            } else {
                u64::MAX
            };
            for lane in start..start + self.width {
                frame.lane_mut(lane)[word] ^= mask;
            }
        }
        fired
    }
}

/// The steady-state error model of streaming scrub traffic: independent
/// rare flips at a per-position probability, injected in `O(flips)` by
/// sampling the flip *count* (binomial over all `lanes × messages`
/// positions) and placing each flip uniformly.
///
/// Two deliberate, documented approximations keep this source cheap enough
/// to feed a 1e8 msg/s decode path: the binomial count switches to a
/// normal approximation when its mean exceeds 32, and flip positions are
/// sampled *with* replacement (two flips landing on the same position
/// cancel), which at the scrubbing regime's per-position probabilities is a
/// vanishing-order effect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseFlipSource {
    /// Per-position (lane × message) flip probability.
    pub flip_prob: f64,
}

impl SparseFlipSource {
    /// A source with the given per-position flip probability.
    ///
    /// # Panics
    /// Panics if `flip_prob` is outside `[0, 1]`.
    #[must_use]
    pub fn new(flip_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&flip_prob),
            "flip probability must be in [0, 1]"
        );
        SparseFlipSource { flip_prob }
    }

    /// Injects flips into the frame; returns the number of flips placed
    /// (before cancellation by position collisions).
    pub fn inject<R: Rng + ?Sized>(&self, rng: &mut R, frame: &mut BitSlice64) -> usize {
        let lanes = frame.bits();
        let batch = frame.batch();
        if lanes == 0 || batch == 0 {
            return 0;
        }
        let positions = (lanes * batch) as u64;
        let flips = binomial_sample(rng, positions, self.flip_prob);
        for _ in 0..flips {
            let lane = rng.random_range(0..lanes);
            let msg = rng.random_range(0..batch);
            let value = frame.get(msg, lane);
            frame.set(msg, lane, !value);
        }
        flips as usize
    }
}

/// Samples `Binomial(trials, p)` with a seeded RNG: CDF inversion for small
/// means, a clamped normal approximation above mean 32 (where inversion
/// underflows and the approximation error is far below the Monte-Carlo
/// noise of any consumer in this workspace). One or two uniform draws per
/// sample, deterministic for a fixed RNG stream.
fn binomial_sample<R: Rng + ?Sized>(rng: &mut R, trials: u64, p: f64) -> u64 {
    if trials == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return trials;
    }
    let mean = trials as f64 * p;
    if mean > 32.0 {
        // Box–Muller normal approximation, clamped to the support.
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let sigma = (mean * (1.0 - p)).sqrt();
        let sample = (mean + sigma * gauss).round();
        return sample.clamp(0.0, trials as f64) as u64;
    }
    // CDF inversion: walk pmf(k) = pmf(k-1) · ratio · (trials-k+1)/k.
    let u: f64 = rng.random();
    let mut pmf = (1.0 - p).powi(trials.min(i32::MAX as u64) as i32);
    let mut cdf = pmf;
    let mut k = 0u64;
    let ratio = p / (1.0 - p);
    while u > cdf && k < trials {
        k += 1;
        pmf *= ratio * ((trials - k + 1) as f64) / (k as f64);
        cdf += pmf;
        if pmf <= f64::MIN_POSITIVE {
            // The tail mass is below representable precision; stop here.
            break;
        }
    }
    k
}

/// Depth-`d` lane interleaver: `d` codeword blocks share a physical channel
/// group so that adjacent physical lanes carry *different* codewords.
///
/// Physical lane `p` of the interleaved frame carries lane `p / d` of block
/// `p % d`. A burst of `w ≤ d` adjacent physical lanes therefore touches at
/// most one lane of each block — after [`Interleaver::deinterleave`], every
/// block sees at most a single-lane error, which any single-error-correcting
/// code repairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interleaver {
    /// Number of codeword blocks sharing the channel group.
    pub depth: usize,
}

impl Interleaver {
    /// An interleaver of the given depth.
    ///
    /// # Panics
    /// Panics if `depth == 0`.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "interleave depth must be at least 1");
        Interleaver { depth }
    }

    /// Interleaves `depth` equal-shape blocks into one physical frame of
    /// `depth × lanes` lanes.
    ///
    /// # Panics
    /// Panics if `blocks.len() != depth`, or the blocks disagree in lane
    /// count or batch size.
    #[must_use]
    pub fn interleave(&self, blocks: &[BitSlice64]) -> BitSlice64 {
        assert_eq!(
            blocks.len(),
            self.depth,
            "interleaver depth {} needs exactly that many blocks",
            self.depth
        );
        let lanes = blocks[0].bits();
        let batch = blocks[0].batch();
        for (b, block) in blocks.iter().enumerate() {
            assert_eq!(block.bits(), lanes, "block {b} lane count differs");
            assert_eq!(block.batch(), batch, "block {b} batch size differs");
        }
        let mut frame = BitSlice64::zeros(lanes * self.depth, batch);
        for p in 0..lanes * self.depth {
            let (block, lane) = (p % self.depth, p / self.depth);
            frame.lane_mut(p).copy_from_slice(blocks[block].lane(lane));
        }
        frame
    }

    /// Inverts [`Interleaver::interleave`]: splits a physical frame back
    /// into its `depth` codeword blocks.
    ///
    /// # Panics
    /// Panics if the frame's lane count is not a multiple of the depth.
    #[must_use]
    pub fn deinterleave(&self, frame: &BitSlice64) -> Vec<BitSlice64> {
        let total = frame.bits();
        assert_eq!(
            total % self.depth,
            0,
            "frame lanes {total} not divisible by depth {}",
            self.depth
        );
        let lanes = total / self.depth;
        let batch = frame.batch();
        (0..self.depth)
            .map(|block| {
                let mut out = BitSlice64::zeros(lanes, batch);
                for lane in 0..lanes {
                    out.lane_mut(lane)
                        .copy_from_slice(frame.lane(lane * self.depth + block));
                }
                out
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc::{BatchDecode, BatchEncode};
    use gf2::BitVec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfq_batch::BatchCodec;

    fn random_batch(k: usize, batch: usize, seed: u64) -> BitSlice64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let messages: Vec<BitVec> = (0..batch)
            .map(|_| BitVec::from_u64(k, rng.random_range(0..(1u64 << k))))
            .collect();
        BitSlice64::pack(&messages)
    }

    #[test]
    fn strike_flips_exactly_width_adjacent_lanes_of_one_limb() {
        let mut rng = StdRng::seed_from_u64(7);
        for width in 1..=4usize {
            let source = BurstSource::new(width, 1.0);
            let mut frame = BitSlice64::zeros(8, 130);
            source.strike(&mut rng, &mut frame);
            // Exactly `width` lanes are nonzero, they are adjacent, and they
            // share one identical fully-set limb word.
            let dirty: Vec<usize> = (0..8)
                .filter(|&l| frame.lane(l).iter().any(|&w| w != 0))
                .collect();
            assert_eq!(dirty.len(), width);
            assert!(dirty.windows(2).all(|w| w[1] == w[0] + 1), "{dirty:?}");
            let word = frame.lane(dirty[0]).iter().position(|&w| w != 0).unwrap();
            for &lane in &dirty {
                let expect = if word + 1 == frame.words() {
                    frame.tail_mask()
                } else {
                    u64::MAX
                };
                assert_eq!(frame.lane(lane)[word], expect);
            }
        }
    }

    #[test]
    fn uninterleaved_double_burst_is_uncorrectable_interleaved_is_not() {
        // Width-2 burst on SEC-DED(13,8): without interleaving every message
        // of the struck limb takes a double error (flagged); with depth-2
        // interleaving each codeword takes at most a single error (all
        // corrected).
        let codec = BatchCodec::sec_ded(3);
        let burst = BurstSource::new(2, 1.0);

        // Uninterleaved reference.
        let messages = random_batch(8, 64, 1);
        let mut received = codec.encode_batch(&messages);
        let mut rng = StdRng::seed_from_u64(11);
        burst.strike(&mut rng, &mut received);
        let decoded = codec.decode_batch(&received);
        assert_eq!(decoded.flagged_count(), 64, "double errors must flag");

        // Interleaved: two blocks share the physical lanes.
        let interleaver = Interleaver::new(2);
        let blocks: Vec<BitSlice64> = (0..2)
            .map(|b| codec.encode_batch(&random_batch(8, 64, b)))
            .collect();
        let mut frame = interleaver.interleave(&blocks);
        let mut rng = StdRng::seed_from_u64(11);
        burst.strike(&mut rng, &mut frame);
        for (b, block) in interleaver.deinterleave(&frame).iter().enumerate() {
            let decoded = codec.decode_batch(block);
            assert_eq!(decoded.flagged_count(), 0, "block {b} must correct");
            let reference = codec.decode_batch(&blocks[b]);
            assert_eq!(
                decoded.messages.unpack(),
                reference.messages.unpack(),
                "block {b} messages must round-trip"
            );
        }
    }

    #[test]
    fn interleave_round_trips_without_errors() {
        let interleaver = Interleaver::new(4);
        let blocks: Vec<BitSlice64> = (0..4).map(|b| random_batch(13, 100, b)).collect();
        let frame = interleaver.interleave(&blocks);
        assert_eq!(frame.bits(), 52);
        assert_eq!(interleaver.deinterleave(&frame), blocks);
    }

    #[test]
    fn sparse_flip_source_tracks_its_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let source = SparseFlipSource::new(0.01);
        let mut total = 0usize;
        let mut flipped = 0usize;
        for seed in 0..20u64 {
            let mut frame = random_batch(16, 2000, seed);
            let reference = frame.clone();
            source.inject(&mut rng, &mut frame);
            total += 16 * 2000;
            for lane in 0..16 {
                for (a, b) in frame.lane(lane).iter().zip(reference.lane(lane)) {
                    flipped += (a ^ b).count_ones() as usize;
                }
            }
        }
        let measured = flipped as f64 / total as f64;
        assert!(
            (measured - 0.01).abs() < 0.002,
            "measured flip rate {measured} should be near 0.01"
        );
    }

    #[test]
    fn binomial_sampler_means_track_expectation() {
        let mut rng = StdRng::seed_from_u64(5);
        // Both regimes: inversion (small mean) and normal approximation.
        for &(trials, p) in &[(2000u64, 0.005f64), (200_000u64, 0.001f64)] {
            let samples = 400;
            let sum: u64 = (0..samples)
                .map(|_| binomial_sample(&mut rng, trials, p))
                .sum();
            let mean = sum as f64 / f64::from(samples);
            let expect = trials as f64 * p;
            let sigma = (trials as f64 * p * (1.0 - p)).sqrt();
            assert!(
                (mean - expect).abs() < 4.0 * sigma / f64::from(samples).sqrt(),
                "trials={trials} p={p}: mean {mean} vs expectation {expect}"
            );
        }
    }

    #[test]
    fn degenerate_sources_are_safe() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut frame = BitSlice64::zeros(8, 64);
        assert_eq!(SparseFlipSource::new(0.0).inject(&mut rng, &mut frame), 0);
        assert_eq!(BurstSource::new(2, 0.0).inject(&mut rng, &mut frame), 0);
        assert_eq!(frame.count_ones(), 0);
        // p = 1 flips every position exactly once.
        let flips = SparseFlipSource::new(1.0).inject(&mut rng, &mut frame);
        assert_eq!(flips, 8 * 64);
    }
}
