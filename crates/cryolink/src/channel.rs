//! Cryogenic cable and CMOS receiver model.
//!
//! The SFQ-to-DC converters present DC levels of roughly a millivolt, which
//! are carried by cryogenic cables from the 4.2 K stage to a 50–300 K stage
//! and amplified/thresholded by CMOS circuits (Fig. 1). The paper treats this
//! part of the link as ideal (its errors come from PPV in the encoder), but
//! modelling it explicitly lets the ablation experiments add receiver noise
//! and study how channel quality interacts with the coding gain.

use gf2::BitVec;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Electrical configuration of one cryo-cable + receiver channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// DC level presented by the SFQ-to-DC driver for a logical `1`, in
    /// millivolts (the paper quotes output drivers producing up to ~1 V after
    /// amplification; at the driver itself the swing is in the mV range).
    pub high_level_mv: f64,
    /// Cable attenuation as a linear factor (1.0 = lossless).
    pub attenuation: f64,
    /// RMS noise referred to the receiver input, in millivolts.
    pub noise_rms_mv: f64,
    /// Receiver decision threshold, in millivolts.
    pub threshold_mv: f64,
}

impl ChannelConfig {
    /// An effectively ideal channel: generous swing, negligible noise.
    #[must_use]
    pub fn ideal() -> Self {
        ChannelConfig {
            high_level_mv: 1.0,
            attenuation: 0.9,
            noise_rms_mv: 1e-6,
            threshold_mv: 0.45,
        }
    }

    /// A noisy channel with the given signal-to-noise ratio (in dB) at the
    /// receiver, keeping the ideal swing and threshold.
    #[must_use]
    pub fn with_snr_db(snr_db: f64) -> Self {
        let ideal = Self::ideal();
        let signal = ideal.high_level_mv * ideal.attenuation;
        ChannelConfig {
            noise_rms_mv: signal / 10f64.powf(snr_db / 20.0),
            ..ideal
        }
    }

    /// The equivalent binary-symmetric-channel crossover probability of this
    /// configuration: the probability that Gaussian noise moves a level
    /// across the threshold.
    #[must_use]
    pub fn crossover_probability(&self) -> f64 {
        let signal = self.high_level_mv * self.attenuation;
        // Distances from the two nominal levels (0 and `signal`) to the threshold.
        let d0 = self.threshold_mv;
        let d1 = signal - self.threshold_mv;
        let q = |d: f64| 0.5 * erfc(d / (self.noise_rms_mv * std::f64::consts::SQRT_2));
        0.5 * (q(d0) + q(d1))
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self::ideal()
    }
}

/// Complementary error function (Abramowitz–Stegun 7.1.26 rational
/// approximation; max absolute error ≈ 1.5 × 10⁻⁷).
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x_abs);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erfc_abs = poly * (-x_abs * x_abs).exp();
    if sign_negative {
        2.0 - erfc_abs
    } else {
        erfc_abs
    }
}

/// A bank of parallel cryo-cable channels carrying one DC level each.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CryoCable {
    config: ChannelConfig,
    channels: usize,
}

impl CryoCable {
    /// Creates a cable bundle with `channels` parallel lines.
    #[must_use]
    pub fn new(channels: usize, config: ChannelConfig) -> Self {
        CryoCable { config, channels }
    }

    /// Number of parallel channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The channel configuration.
    #[must_use]
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// Transports a word of DC levels across the cable and thresholds it at
    /// the CMOS receiver, adding Gaussian noise per channel.
    ///
    /// # Panics
    /// Panics if the word length differs from the channel count.
    pub fn transport<R: Rng + ?Sized>(&self, word: &BitVec, rng: &mut R) -> BitVec {
        assert_eq!(
            word.len(),
            self.channels,
            "word width must match channel count"
        );
        let signal = self.config.high_level_mv * self.config.attenuation;
        (0..word.len())
            .map(|i| {
                let level = if word.get(i) { signal } else { 0.0 };
                let noise = gaussian(rng) * self.config.noise_rms_mv;
                level + noise > self.config.threshold_mv
            })
            .collect()
    }

    /// Transports a word and also returns per-channel log-likelihood ratios
    /// (positive = more likely 0) for soft-decision decoding experiments.
    ///
    /// # Panics
    /// Panics if the word length differs from the channel count.
    pub fn transport_soft<R: Rng + ?Sized>(
        &self,
        word: &BitVec,
        rng: &mut R,
    ) -> (BitVec, Vec<f64>) {
        assert_eq!(
            word.len(),
            self.channels,
            "word width must match channel count"
        );
        let signal = self.config.high_level_mv * self.config.attenuation;
        let sigma = self.config.noise_rms_mv.max(1e-12);
        let mut hard = BitVec::zeros(word.len());
        let mut llrs = Vec::with_capacity(word.len());
        for i in 0..word.len() {
            let level = if word.get(i) { signal } else { 0.0 };
            let observed = level + gaussian(rng) * self.config.noise_rms_mv;
            hard.set(i, observed > self.config.threshold_mv);
            // LLR = log P(obs | 0) / P(obs | 1) for Gaussian noise.
            let llr = (signal * (signal - 2.0 * observed)) / (2.0 * sigma * sigma);
            llrs.push(llr.clamp(-50.0, 50.0));
        }
        (hard, llrs)
    }
}

/// Standard-normal sample via the Box–Muller transform.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_channel_is_transparent() {
        let cable = CryoCable::new(8, ChannelConfig::ideal());
        let mut rng = StdRng::seed_from_u64(1);
        for w in 0u64..256 {
            let word = BitVec::from_u64(8, w);
            assert_eq!(cable.transport(&word, &mut rng), word);
        }
    }

    #[test]
    fn crossover_probability_increases_as_snr_drops() {
        let high = ChannelConfig::with_snr_db(20.0).crossover_probability();
        let low = ChannelConfig::with_snr_db(6.0).crossover_probability();
        assert!(low > high, "low SNR must have more errors: {low} vs {high}");
        assert!(ChannelConfig::ideal().crossover_probability() < 1e-12);
    }

    #[test]
    fn noisy_channel_flips_roughly_the_predicted_fraction() {
        let config = ChannelConfig::with_snr_db(10.0);
        let predicted = config.crossover_probability();
        let cable = CryoCable::new(8, config);
        let mut rng = StdRng::seed_from_u64(3);
        let word = BitVec::from_u64(8, 0b1010_1100);
        let trials = 20_000;
        let mut flips = 0usize;
        for _ in 0..trials {
            let received = cable.transport(&word, &mut rng);
            flips += received.hamming_distance(&word);
        }
        let measured = flips as f64 / (trials * 8) as f64;
        assert!(
            (measured - predicted).abs() < 0.02 + predicted * 0.3,
            "measured {measured}, predicted {predicted}"
        );
    }

    #[test]
    fn soft_output_sign_matches_hard_decision_on_clean_channel() {
        let cable = CryoCable::new(4, ChannelConfig::ideal());
        let mut rng = StdRng::seed_from_u64(9);
        let word = BitVec::from_str01("1010");
        let (hard, llrs) = cable.transport_soft(&word, &mut rng);
        assert_eq!(hard, word);
        for (i, llr) in llrs.iter().enumerate() {
            if word.get(i) {
                assert!(*llr < 0.0, "bit {i} is 1, LLR should be negative");
            } else {
                assert!(*llr > 0.0, "bit {i} is 0, LLR should be positive");
            }
        }
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!(erfc(3.0) < 3e-5);
        assert!((erfc(-3.0) - 2.0).abs() < 3e-5);
        assert!((erfc(0.5) - 0.4795).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "word width must match")]
    fn transport_rejects_wrong_width() {
        let cable = CryoCable::new(8, ChannelConfig::ideal());
        let mut rng = StdRng::seed_from_u64(1);
        let _ = cable.transport(&BitVec::zeros(4), &mut rng);
    }
}
