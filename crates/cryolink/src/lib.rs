//! The cryogenic digital output data link of Fig. 1 and the Monte-Carlo
//! experiments that evaluate the encoders under process parameter variations
//! (Fig. 5 of the paper).
//!
//! The link chains together:
//!
//! 1. the SFQ encoder circuit at 4.2 K (`encoders` crate — every coded
//!    design synthesized from its generator matrix by the `sfq-netlist` pass
//!    pipeline), simulated at gate level with PPV-induced faults
//!    (`sfq-sim`);
//! 2. the SFQ-to-DC output drivers and cryogenic cables carrying the DC
//!    levels to the 50–300 K stage ([`channel::CryoCable`]);
//! 3. a CMOS threshold receiver and the error-correction decoder
//!    ([`link::CryoLink`]), which reconstructs the 4-bit message and raises
//!    the error flags of Fig. 1 when it detects an uncorrectable word.
//!
//! [`montecarlo::Fig5Experiment`] repeats the paper's evaluation: 100 random
//! messages per chip, 1000 independently sampled chips at ±20 % parameter
//! spread, and the CDF of the number of erroneous messages per chip.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod batch_link;
pub mod burst;
pub mod calibrate;
pub mod channel;
pub mod link;
pub mod montecarlo;
pub mod waveform;

pub use batch_link::{batch_codec_for, BatchLink, BatchLinkContext, BatchLinkStats, LinkScratch};
pub use burst::{BurstSource, Interleaver, SparseFlipSource};
pub use channel::{ChannelConfig, CryoCable};
pub use link::{CryoLink, LinkOutcome, TransmissionResult};
pub use montecarlo::{
    default_thread_count, paper_zero_error_probabilities, wilson_interval, ErrorCounting,
    Fig5Curve, Fig5Experiment, Fig5Result, Parallelism,
};
