//! Calibration of the PPV fault model against the paper's anchor point.
//!
//! The paper's absolute numbers depend on the JoSIM netlists of the ColdFlux
//! cells, which are not reproducible without the proprietary-free but
//! JJ-level cell layouts and a SPICE engine. Instead of hand-tuning the fault
//! model, this module pins it to a single published anchor: the *uncoded*
//! 4-bit link has an 80.0 % probability of delivering 100 messages without
//! error at ±20 % spread (Fig. 5, "no encoder" curve). A one-dimensional
//! bisection on the global margin scale of [`PpvModel`] reproduces that
//! anchor; everything else — the ordering and spacing of the three encoder
//! curves — is then a genuine prediction of the model, not a fit.

use crate::montecarlo::Fig5Experiment;
use encoders::{EncoderDesign, EncoderKind};
use sfq_cells::CellLibrary;
use sfq_sim::PpvModel;

/// Result of a calibration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// The margin scale that meets the target.
    pub margin_scale: f64,
    /// The zero-error probability achieved by the uncoded link at that scale.
    pub achieved: f64,
    /// The calibration target (0.80 for the paper's anchor).
    pub target: f64,
}

/// Calibrates `model.margin_scale` so that the uncoded 4-bit link reaches the
/// target zero-error probability (default anchor: 0.80).
///
/// `chips` and `messages` control the Monte-Carlo resolution of each
/// bisection step; the paper-scale values (1000 × 100) give a resolution of
/// about ±1 percentage point.
#[must_use]
pub fn calibrate_margin_scale(
    library: &CellLibrary,
    base: PpvModel,
    target: f64,
    chips: usize,
    messages: usize,
    seed: u64,
) -> Calibration {
    let design = EncoderDesign::build(EncoderKind::None);
    let evaluate = |margin_scale: f64| -> f64 {
        let experiment = Fig5Experiment {
            chips,
            messages_per_chip: messages,
            ppv: base.with_margin_scale(margin_scale),
            seed,
            threads: 4,
            ..Fig5Experiment::paper_setup()
        };
        experiment
            .run_design(&design, library)
            .zero_error_probability()
    };

    // Zero-error probability is monotonically increasing in the margin scale
    // (larger margins -> fewer failures). Bracket the target first.
    let mut lo = 0.3f64;
    let mut hi = 3.0f64;
    let mut lo_val = evaluate(lo);
    let mut hi_val = evaluate(hi);
    for _ in 0..6 {
        if lo_val > target {
            lo /= 1.5;
            lo_val = evaluate(lo);
        }
        if hi_val < target {
            hi *= 1.5;
            hi_val = evaluate(hi);
        }
        if lo_val <= target && hi_val >= target {
            break;
        }
    }

    let mut best = (lo + hi) / 2.0;
    let mut best_val = evaluate(best);
    for _ in 0..12 {
        if (best_val - target).abs() < 0.004 {
            break;
        }
        if best_val < target {
            lo = best;
        } else {
            hi = best;
        }
        best = (lo + hi) / 2.0;
        best_val = evaluate(best);
    }

    Calibration {
        margin_scale: best,
        achieved: best_val,
        target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_moves_toward_target() {
        // A coarse, fast calibration: verifies monotonicity and that the
        // bisection lands within a few points of the target.
        let lib = CellLibrary::coldflux();
        let cal = calibrate_margin_scale(&lib, PpvModel::paper_defaults(), 0.80, 150, 40, 77);
        assert!(cal.margin_scale > 0.1 && cal.margin_scale < 5.0);
        assert!(
            (cal.achieved - 0.80).abs() < 0.08,
            "achieved {} with scale {}",
            cal.achieved,
            cal.margin_scale
        );
    }

    #[test]
    fn paper_default_margin_scale_is_close_to_calibrated_value() {
        // The default PpvModel ships with the margin scale produced by a
        // paper-resolution calibration run; a quick run should land nearby.
        let lib = CellLibrary::coldflux();
        let default_scale = PpvModel::paper_defaults().margin_scale;
        let cal = calibrate_margin_scale(&lib, PpvModel::paper_defaults(), 0.80, 200, 50, 123);
        assert!(
            (cal.margin_scale - default_scale).abs() < 0.35,
            "default {default_scale} vs calibrated {}",
            cal.margin_scale
        );
    }
}
