//! The Fig. 5 Monte-Carlo experiment.
//!
//! The paper's setup: 100 random 4-bit messages are sent through each encoder
//! circuit; the whole experiment is repeated 1000 times, each repetition with
//! an independently sampled set of process-parameter deviations of up to
//! ±20 % ("each iteration can be viewed as a distinct fabricated chip"). The
//! result is the cumulative distribution of the number of erroneous messages
//! per 100 transmissions, one curve per encoder, plus the "no encoder"
//! baseline.

use crate::channel::ChannelConfig;
use crate::link::{CryoLink, LinkOutcome};
use encoders::{EncoderDesign, EncoderKind};
use gf2::BitVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sfq_cells::CellLibrary;
use sfq_sim::PpvModel;

/// How an "erroneous message" is counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCounting {
    /// Only silent errors count: a message flagged by the decoder's error
    /// flag (Fig. 1) is considered handled by the system (e.g. retransmitted)
    /// rather than erroneous. This is the counting that reproduces the
    /// relative ordering of Fig. 5.
    SilentOnly,
    /// Both silent errors and flagged-uncorrectable messages count as
    /// erroneous (no retransmission path). Used by the ablation study.
    AnyWrong,
}

/// Configuration of the Fig. 5 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig5Experiment {
    /// Number of independently sampled chips (the paper uses 1000).
    pub chips: usize,
    /// Number of random messages per chip (the paper uses 100).
    pub messages_per_chip: usize,
    /// PPV model (spread, margins, calibration).
    pub ppv: PpvModel,
    /// Cable / receiver configuration.
    pub channel: ChannelConfig,
    /// Error-counting policy.
    pub counting: ErrorCounting,
    /// Base RNG seed; chip `i` uses `seed + i` so runs are reproducible and
    /// trivially parallelizable.
    pub seed: u64,
    /// Number of worker threads (1 = run serially). The constructors default
    /// this to [`default_thread_count`] (the machine's available
    /// parallelism); set it explicitly to override. Per-chip results are
    /// bit-identical regardless of the value.
    pub threads: usize,
}

impl Fig5Experiment {
    /// The paper's configuration: 1000 chips × 100 messages at ±20 % spread.
    #[must_use]
    pub fn paper_setup() -> Self {
        Fig5Experiment {
            chips: 1000,
            messages_per_chip: 100,
            ppv: PpvModel::paper_defaults(),
            channel: ChannelConfig::ideal(),
            counting: ErrorCounting::SilentOnly,
            seed: 0x5f5_ecc,
            threads: default_thread_count(),
        }
    }

    /// A reduced configuration for unit tests and quick smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        Fig5Experiment {
            chips: 120,
            messages_per_chip: 50,
            ..Self::paper_setup()
        }
    }

    /// The wide-word scenario: a Fig. 5-style Monte-Carlo sized for the
    /// SEC-DED(72,64) memory-word link (build the design with
    /// `EncoderKind::SecDed(6)`).
    ///
    /// The synthesized 64-bit encoder has an order of magnitude more cells
    /// than the paper's 4-bit circuits, so chips fault more often and the
    /// pulse-level scalar path costs ~18× more per message; the chip and
    /// message counts are reduced accordingly. Both [`Fig5Experiment::run_design`]
    /// (pulse-level oracle) and [`Fig5Experiment::run_design_batched`]
    /// (bit-sliced driver) accept this configuration; the workspace tests
    /// check their curves agree.
    #[must_use]
    pub fn wide_word_setup() -> Self {
        Fig5Experiment {
            chips: 80,
            messages_per_chip: 25,
            seed: 0x0726_4ecc,
            ..Self::paper_setup()
        }
    }

    /// The multi-error scenario: the BCH registry — radius-3 BCH(63,45) and
    /// radius-2 BCH(31,16) — against the classic SEC-DED(72,64) under the
    /// correlated per-cell fault model.
    ///
    /// Counting is [`ErrorCounting::AnyWrong`] — no retransmission path — so
    /// *correction* power decides the curve, not just detection: a faulty
    /// splitter that flips two codeword bits of one word is corrected by the
    /// radius-2 BCH decoders but can only be flagged by SEC-DED, and a
    /// three-bit burst only by the radius-3 member. Under the paper's
    /// `SilentOnly` counting both outcomes look alike and the comparison
    /// degenerates.
    #[must_use]
    pub fn multi_error_setup() -> Self {
        Fig5Experiment {
            chips: 300,
            messages_per_chip: 40,
            counting: ErrorCounting::AnyWrong,
            seed: 0x3116_2ecc,
            ..Self::paper_setup()
        }
    }

    /// Runs the multi-error comparison through the batch path: one curve
    /// each for BCH(63,45), BCH(31,16), and SEC-DED(72,64), strongest
    /// decoder first (the Fig. 5-style view of where `t = 2` and `t = 3`
    /// pay for their extra parity bits).
    #[must_use]
    pub fn run_multi_error_comparison(&self, library: &CellLibrary) -> Fig5Result {
        use ecc::BchSpec;
        let curves = [
            EncoderKind::Bch(BchSpec::BCH_63_45),
            EncoderKind::Bch(BchSpec::BCH_31_16),
            EncoderKind::SecDed(6),
        ]
        .iter()
        .map(|&kind| {
            let design = EncoderDesign::build(kind);
            self.run_design_batched(&design, library)
        })
        .collect();
        Fig5Result {
            experiment: *self,
            curves,
        }
    }

    /// Runs the experiment for one encoder design.
    #[must_use]
    pub fn run_design(&self, design: &EncoderDesign, library: &CellLibrary) -> Fig5Curve {
        let (errors_per_chip, parallelism) = self.simulate_chips(design, library);
        let mut curve = Fig5Curve::from_error_counts(
            design.kind(),
            design.name().to_string(),
            self.messages_per_chip,
            errors_per_chip,
        );
        curve.parallelism = parallelism;
        curve
    }

    /// Runs the experiment for one design through the bit-sliced batch path
    /// ([`crate::BatchLink`]).
    ///
    /// Chip sampling is identical to [`Fig5Experiment::run_design`] (same
    /// per-chip seeds, same PPV model); the per-message inner loop uses the
    /// batch codec with correlated per-faulty-cell error sources derived
    /// from each chip's fault map instead of pulse-level simulation. This
    /// trades exact pulse timing for orders-of-magnitude higher message
    /// throughput; the scalar path remains the reference oracle.
    #[must_use]
    pub fn run_design_batched(&self, design: &EncoderDesign, library: &CellLibrary) -> Fig5Curve {
        use crate::batch_link::{BatchLink, BatchLinkContext, LinkScratch};
        use gf2::BitSlice64;

        // Everything that depends only on the design — codec, fan-out
        // cones, pipeline depth — is computed once and shared by every
        // worker; each worker keeps one rebindable link plus reusable
        // message/decode buffers, so the per-chip loop allocates nothing
        // beyond the sampled fault map itself.
        let context = BatchLinkContext::new(design);
        struct Worker<'a> {
            link: BatchLink<'a>,
            messages: BitSlice64,
            scratch: LinkScratch,
        }
        let (errors_per_chip, parallelism) = parallel_chip_map(
            self.chips,
            self.threads,
            &|| Worker {
                link: BatchLink::new(design, &context),
                messages: BitSlice64::default(),
                scratch: LinkScratch::new(),
            },
            &|chip_index, worker| {
                let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(chip_index));
                let chip = self.ppv.sample_chip(design.netlist(), library, &mut rng);
                worker.link.rebind(&chip.faults, self.channel);
                worker.link.random_messages_into(
                    self.messages_per_chip,
                    &mut rng,
                    &mut worker.messages,
                );
                let stats = worker.link.transmit_batch_with(
                    &worker.messages,
                    &mut rng,
                    &mut worker.scratch,
                );
                stats.erroneous(self.counting == ErrorCounting::SilentOnly)
            },
        );
        let mut curve = Fig5Curve::from_error_counts(
            design.kind(),
            design.name().to_string(),
            self.messages_per_chip,
            errors_per_chip,
        );
        curve.parallelism = parallelism;
        curve
    }

    /// Runs the batched experiment for all four designs of the paper.
    #[must_use]
    pub fn run_all_batched(&self, library: &CellLibrary) -> Fig5Result {
        let curves = EncoderKind::ALL
            .iter()
            .map(|&kind| {
                let design = EncoderDesign::build(kind);
                self.run_design_batched(&design, library)
            })
            .collect();
        Fig5Result {
            experiment: *self,
            curves,
        }
    }

    /// Runs the experiment for all four designs of the paper (three encoders
    /// plus the uncoded baseline), in the paper's ordering.
    #[must_use]
    pub fn run_all(&self, library: &CellLibrary) -> Fig5Result {
        let curves = EncoderKind::ALL
            .iter()
            .map(|&kind| {
                let design = EncoderDesign::build(kind);
                self.run_design(&design, library)
            })
            .collect();
        Fig5Result {
            experiment: *self,
            curves,
        }
    }

    fn simulate_chips(
        &self,
        design: &EncoderDesign,
        library: &CellLibrary,
    ) -> (Vec<usize>, Parallelism) {
        parallel_chip_map(self.chips, self.threads, &|| (), &|chip, _worker| {
            self.simulate_one_chip(design, library, chip)
        })
    }

    /// Simulates one chip: samples its fault map, sends
    /// `messages_per_chip` random messages, and returns how many of them were
    /// erroneous under the configured counting policy.
    fn simulate_one_chip(
        &self,
        design: &EncoderDesign,
        library: &CellLibrary,
        chip_index: u64,
    ) -> usize {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(chip_index));
        let chip = self.ppv.sample_chip(design.netlist(), library, &mut rng);
        let link = CryoLink::new(design, chip.faults, self.channel);
        let mut erroneous = 0;
        for _ in 0..self.messages_per_chip {
            let message = random_message(design.k(), &mut rng);
            let outcome = link.transmit(&message, &mut rng).outcome;
            let is_error = match self.counting {
                ErrorCounting::SilentOnly => outcome == LinkOutcome::SilentError,
                ErrorCounting::AnyWrong => outcome != LinkOutcome::Correct,
            };
            if is_error {
                erroneous += 1;
            }
        }
        erroneous
    }
}

/// Draws one uniform `k`-bit message.
///
/// For `k ≤ 63` this performs exactly the `random_range(0..2^k)` draw the
/// paper-sized experiments have always used (keeping their RNG streams, and
/// therefore their calibrated curves, bit-identical); wider messages take one
/// full `u64`.
fn random_message<R: Rng + ?Sized>(k: usize, rng: &mut R) -> BitVec {
    assert!(k <= 64, "link messages are at most 64 bits");
    if k < 64 {
        BitVec::from_u64(k, rng.random_range(0..(1u64 << k)))
    } else {
        BitVec::from_u64(64, rng.random::<u64>())
    }
}

/// The default Monte-Carlo worker-thread count: the machine's available
/// parallelism, falling back to 1 when it cannot be queried. Experiment
/// configurations keep an explicit `threads` override; per-chip results are
/// bit-identical regardless of the count (each chip derives its own RNG from
/// its index).
#[must_use]
pub fn default_thread_count() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Resolved worker layout and measured per-worker load of one experiment
/// run. Reporting-only: nothing downstream consumes it, and the per-chip
/// results it accompanies are bit-identical whatever it contains.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Parallelism {
    /// Number of worker threads that actually ran (after clamping the
    /// configured count to the chip count).
    pub threads: usize,
    /// Chips processed by each worker, in worker order.
    pub chips_per_worker: Vec<usize>,
    /// Wall time each worker spent in its chip loop, nanoseconds. All zeros
    /// when telemetry is compiled out or recording is off — utilization is
    /// telemetry, never an input to results.
    pub busy_ns_per_worker: Vec<u64>,
}

impl Parallelism {
    /// Per-worker utilization relative to the busiest worker, in `[0, 1]`
    /// (empty when busy times were not measured).
    #[must_use]
    pub fn utilization(&self) -> Vec<f64> {
        let busiest = self.busy_ns_per_worker.iter().copied().max().unwrap_or(0);
        if busiest == 0 {
            return Vec::new();
        }
        self.busy_ns_per_worker
            .iter()
            .map(|&ns| ns as f64 / busiest as f64)
            .collect()
    }
}

/// Maps chip indices `0..chips` through `per_chip` with the experiment's
/// chunked worker-thread layout. Each worker thread owns one state value
/// from `make_worker` (scratch buffers, rebindable links, …), threaded
/// through every chip it processes — this is what keeps the batched hot
/// path allocation-free. Per-chip results are deterministic regardless of
/// `threads` because each chip derives its own RNG from its index and the
/// worker state carries no chip-to-chip information.
///
/// Each worker also records per-chip wall time into the `fig5.chip_ns`
/// histogram and counts its chips under `fig5.chips` (its own telemetry
/// shards, created inside the worker), and the returned [`Parallelism`]
/// reports the resolved layout and per-worker busy time.
fn parallel_chip_map<S>(
    chips: usize,
    threads: usize,
    make_worker: &(dyn Fn() -> S + Sync),
    per_chip: &(dyn Fn(u64, &mut S) -> usize + Sync),
) -> (Vec<usize>, Parallelism) {
    let threads = threads.max(1).min(chips.max(1));
    let mut results = vec![0usize; chips];
    if threads <= 1 || chips == 0 {
        let mut worker = make_worker();
        let chip_ns = sfq_telemetry::global().histogram("fig5.chip_ns");
        let busy = sfq_telemetry::Stopwatch::start();
        for (chip, slot) in results.iter_mut().enumerate() {
            let watch = sfq_telemetry::Stopwatch::start();
            *slot = per_chip(chip as u64, &mut worker);
            chip_ns.record(watch.elapsed_ns());
        }
        sfq_telemetry::global()
            .counter("fig5.chips")
            .add(chips as u64);
        let parallelism = Parallelism {
            threads: 1,
            chips_per_worker: vec![chips],
            busy_ns_per_worker: vec![busy.elapsed_ns()],
        };
        return (results, parallelism);
    }
    let chunk = chips.div_ceil(threads);
    let workers = chips.div_ceil(chunk);
    // (chips processed, busy ns) per worker; each spawn owns one slot, like
    // its disjoint chunk of `results`.
    let mut loads = vec![(0usize, 0u64); workers];
    crossbeam::scope(|scope| {
        for (t, (slice, load)) in results.chunks_mut(chunk).zip(loads.iter_mut()).enumerate() {
            scope.spawn(move |_| {
                let mut worker = make_worker();
                // Handles created inside the worker are that worker's own
                // shards — no cross-thread contention on the hot path.
                let chip_ns = sfq_telemetry::global().histogram("fig5.chip_ns");
                let chip_count = sfq_telemetry::global().counter("fig5.chips");
                let busy = sfq_telemetry::Stopwatch::start();
                for (i, slot) in slice.iter_mut().enumerate() {
                    let watch = sfq_telemetry::Stopwatch::start();
                    *slot = per_chip((t * chunk + i) as u64, &mut worker);
                    chip_ns.record(watch.elapsed_ns());
                }
                chip_count.add(slice.len() as u64);
                *load = (slice.len(), busy.elapsed_ns());
            });
        }
    })
    .expect("Monte-Carlo worker thread panicked");
    let parallelism = Parallelism {
        threads: workers,
        chips_per_worker: loads.iter().map(|&(n, _)| n).collect(),
        busy_ns_per_worker: loads.iter().map(|&(_, ns)| ns).collect(),
    };
    (results, parallelism)
}

/// The Fig. 5 curve of one encoder: the distribution of erroneous messages
/// per chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Curve {
    /// Which design this curve describes.
    pub kind: EncoderKind,
    /// Display name.
    pub name: String,
    /// Number of messages per chip (the x-axis upper bound).
    pub messages_per_chip: usize,
    /// Number of erroneous messages observed on each simulated chip.
    pub errors_per_chip: Vec<usize>,
    /// Resolved worker layout and per-worker load of the run that produced
    /// this curve (reporting-only; default/empty for hand-built curves).
    pub parallelism: Parallelism,
}

impl Fig5Curve {
    /// Builds a curve from raw per-chip error counts.
    #[must_use]
    pub fn from_error_counts(
        kind: EncoderKind,
        name: String,
        messages_per_chip: usize,
        errors_per_chip: Vec<usize>,
    ) -> Self {
        Fig5Curve {
            kind,
            name,
            messages_per_chip,
            errors_per_chip,
            parallelism: Parallelism::default(),
        }
    }

    /// Number of chips simulated.
    #[must_use]
    pub fn chips(&self) -> usize {
        self.errors_per_chip.len()
    }

    /// `P(errors ≤ n)`: the CDF value the paper plots.
    #[must_use]
    pub fn cdf(&self, n: usize) -> f64 {
        if self.errors_per_chip.is_empty() {
            return 1.0;
        }
        let count = self.errors_per_chip.iter().filter(|&&e| e <= n).count();
        count as f64 / self.errors_per_chip.len() as f64
    }

    /// The probability of a chip delivering all messages without error —
    /// `CDF(0)`, the headline number the paper quotes per encoder (80.0 %,
    /// 86.7 %, 89.8 %, 92.7 %).
    #[must_use]
    pub fn zero_error_probability(&self) -> f64 {
        self.cdf(0)
    }

    /// Wilson score confidence interval for the zero-error probability at
    /// critical value `z` (1.96 ≈ 95 %), derived from the actual number of
    /// simulated chips.
    ///
    /// A Monte-Carlo estimate from `N` chips is a binomial proportion;
    /// asserting it against a point value with a hand-tuned tolerance is
    /// honest only for the one seed the tolerance was tuned on. Tests should
    /// instead check that reference values fall inside (or outside) this
    /// interval.
    #[must_use]
    pub fn zero_error_wilson_interval(&self, z: f64) -> (f64, f64) {
        let successes = self.errors_per_chip.iter().filter(|&&e| e == 0).count();
        wilson_interval(successes, self.chips(), z)
    }

    /// Mean number of erroneous messages per chip.
    #[must_use]
    pub fn mean_errors(&self) -> f64 {
        if self.errors_per_chip.is_empty() {
            return 0.0;
        }
        self.errors_per_chip.iter().sum::<usize>() as f64 / self.errors_per_chip.len() as f64
    }

    /// Samples the CDF at the given x-axis points (e.g. `0, 10, 20, … 90` as
    /// in the paper's plot).
    #[must_use]
    pub fn cdf_series(&self, points: &[usize]) -> Vec<(usize, f64)> {
        points.iter().map(|&n| (n, self.cdf(n))).collect()
    }
}

/// The complete Fig. 5 dataset: one curve per design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// The experiment configuration that produced this result.
    pub experiment: Fig5Experiment,
    /// One curve per design, ordered RM(1,3), Hamming(7,4), Hamming(8,4),
    /// no encoder.
    pub curves: Vec<Fig5Curve>,
}

impl Fig5Result {
    /// Finds the curve of a specific design.
    #[must_use]
    pub fn curve(&self, kind: EncoderKind) -> Option<&Fig5Curve> {
        self.curves.iter().find(|c| c.kind == kind)
    }

    /// Formats a textual table of the CDF at the paper's sampling points.
    #[must_use]
    pub fn to_table(&self) -> String {
        let points: Vec<usize> = (0..=90).step_by(10).collect();
        let mut out = String::new();
        out.push_str("N (erroneous msgs) |");
        for p in &points {
            out.push_str(&format!(" {p:>6}"));
        }
        out.push('\n');
        for curve in &self.curves {
            out.push_str(&format!("{:<19}|", curve.name));
            for p in &points {
                out.push_str(&format!(" {:>6.3}", curve.cdf(*p)));
            }
            out.push('\n');
        }
        out
    }

    /// The zero-error probabilities the paper quotes, keyed by design.
    #[must_use]
    pub fn zero_error_summary(&self) -> Vec<(EncoderKind, f64)> {
        self.curves
            .iter()
            .map(|c| (c.kind, c.zero_error_probability()))
            .collect()
    }
}

/// Wilson score interval for a binomial proportion of `successes` out of
/// `trials`, at critical value `z` (1.96 ≈ 95 % two-sided coverage).
///
/// Unlike the normal-approximation ("Wald") interval, the Wilson interval
/// stays inside `[0, 1]` and behaves sensibly at proportions near the
/// boundaries — exactly the regime of zero-error probabilities near 1.
///
/// # Panics
/// Panics if `trials == 0`, `successes > trials`, or `z` is not positive.
#[must_use]
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    assert!(trials > 0, "Wilson interval needs at least one trial");
    assert!(successes <= trials, "more successes than trials");
    assert!(z > 0.0, "critical value must be positive");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// The zero-error probabilities reported in the paper for Fig. 5.
#[must_use]
pub fn paper_zero_error_probabilities() -> Vec<(EncoderKind, f64)> {
    vec![
        (EncoderKind::Rm13, 0.867),
        (EncoderKind::Hamming74, 0.898),
        (EncoderKind::Hamming84, 0.927),
        (EncoderKind::None, 0.800),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_statistics() {
        let curve = Fig5Curve::from_error_counts(
            EncoderKind::None,
            "No encoder".to_string(),
            100,
            vec![0, 0, 0, 5, 50, 100],
        );
        assert_eq!(curve.chips(), 6);
        assert!((curve.zero_error_probability() - 0.5).abs() < 1e-12);
        assert!((curve.cdf(5) - 4.0 / 6.0).abs() < 1e-12);
        assert!((curve.cdf(100) - 1.0).abs() < 1e-12);
        assert!((curve.mean_errors() - 155.0 / 6.0).abs() < 1e-12);
        let series = curve.cdf_series(&[0, 50]);
        assert_eq!(series.len(), 2);
        assert!((series[1].1 - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn zero_spread_gives_error_free_chips_for_every_design() {
        let lib = CellLibrary::coldflux();
        let experiment = Fig5Experiment {
            chips: 10,
            messages_per_chip: 20,
            ppv: PpvModel::paper_defaults().with_spread(0.0),
            threads: 1,
            ..Fig5Experiment::paper_setup()
        };
        let result = experiment.run_all(&lib);
        for curve in &result.curves {
            assert!(
                (curve.zero_error_probability() - 1.0).abs() < 1e-12,
                "{} had errors at zero spread",
                curve.name
            );
        }
    }

    #[test]
    fn experiment_is_reproducible_for_fixed_seed() {
        let lib = CellLibrary::coldflux();
        let experiment = Fig5Experiment {
            chips: 30,
            messages_per_chip: 20,
            threads: 2,
            ..Fig5Experiment::paper_setup()
        };
        let design = EncoderDesign::build(EncoderKind::Hamming84);
        let a = experiment.run_design(&design, &lib);
        let b = experiment.run_design(&design, &lib);
        assert_eq!(a.errors_per_chip, b.errors_per_chip);
    }

    #[test]
    fn serial_and_parallel_execution_agree() {
        let lib = CellLibrary::coldflux();
        let serial = Fig5Experiment {
            chips: 24,
            messages_per_chip: 10,
            threads: 1,
            ..Fig5Experiment::paper_setup()
        };
        let parallel = Fig5Experiment {
            threads: 4,
            ..serial
        };
        let design = EncoderDesign::build(EncoderKind::Hamming74);
        let a = serial.run_design(&design, &lib);
        let b = parallel.run_design(&design, &lib);
        assert_eq!(a.errors_per_chip, b.errors_per_chip);
    }

    #[test]
    fn zero_spread_batched_chips_are_error_free() {
        let lib = CellLibrary::coldflux();
        let experiment = Fig5Experiment {
            chips: 10,
            messages_per_chip: 50,
            ppv: PpvModel::paper_defaults().with_spread(0.0),
            threads: 1,
            ..Fig5Experiment::paper_setup()
        };
        let result = experiment.run_all_batched(&lib);
        for curve in &result.curves {
            assert!(
                (curve.zero_error_probability() - 1.0).abs() < 1e-12,
                "{} had errors at zero spread (batched)",
                curve.name
            );
        }
    }

    #[test]
    fn batched_experiment_is_reproducible_and_thread_invariant() {
        let lib = CellLibrary::coldflux();
        let serial = Fig5Experiment {
            chips: 24,
            messages_per_chip: 30,
            threads: 1,
            ..Fig5Experiment::paper_setup()
        };
        let parallel = Fig5Experiment {
            threads: 4,
            ..serial
        };
        let design = EncoderDesign::build(EncoderKind::Hamming84);
        let a = serial.run_design_batched(&design, &lib);
        let b = parallel.run_design_batched(&design, &lib);
        assert_eq!(a.errors_per_chip, b.errors_per_chip);
    }

    #[test]
    fn batched_path_tracks_scalar_statistics() {
        // The batch driver replaces pulse-level simulation with per-channel
        // flip probabilities, so per-chip counts differ — but the aggregate
        // zero-error probability must stay close and preserve the headline
        // ordering (coded designs beat uncoded).
        let lib = CellLibrary::coldflux();
        let experiment = Fig5Experiment {
            chips: 150,
            messages_per_chip: 60,
            threads: 4,
            ..Fig5Experiment::paper_setup()
        };
        let design = EncoderDesign::build(EncoderKind::Hamming84);
        let scalar = experiment
            .run_design(&design, &lib)
            .zero_error_probability();
        let batched = experiment
            .run_design_batched(&design, &lib)
            .zero_error_probability();
        assert!(
            (scalar - batched).abs() < 0.10,
            "scalar {scalar} vs batched {batched}"
        );
    }

    #[test]
    fn wilson_interval_brackets_the_point_estimate() {
        let (lo, hi) = wilson_interval(90, 100, 1.96);
        assert!(lo < 0.9 && 0.9 < hi);
        assert!(lo > 0.82 && hi < 0.95, "({lo}, {hi})");
        // Degenerate proportions stay inside [0, 1].
        assert_eq!(wilson_interval(0, 50, 1.96).0, 0.0);
        assert!((wilson_interval(50, 50, 1.96).1 - 1.0).abs() < 1e-12);
        assert!(wilson_interval(50, 50, 1.96).0 < 1.0);
        // More trials shrink the interval at the same proportion.
        let wide = wilson_interval(9, 10, 1.96);
        let narrow = wilson_interval(900, 1000, 1.96);
        assert!(narrow.1 - narrow.0 < wide.1 - wide.0);
    }

    #[test]
    fn curve_wilson_interval_matches_free_function() {
        let curve = Fig5Curve::from_error_counts(
            EncoderKind::SecDed(6),
            "SEC-DED(72,64)".to_string(),
            25,
            vec![0, 0, 0, 1, 0, 2, 0, 0, 0, 0],
        );
        let from_curve = curve.zero_error_wilson_interval(1.96);
        let direct = wilson_interval(8, 10, 1.96);
        assert_eq!(from_curve, direct);
        assert!(from_curve.0 < curve.zero_error_probability());
        assert!(curve.zero_error_probability() < from_curve.1);
    }

    #[test]
    fn wide_word_setup_runs_secded72_on_both_paths_at_zero_spread() {
        // With no process variations and an ideal channel, both the scalar
        // pulse-level path and the batched path must deliver every 64-bit
        // word on every chip. (The full ±20 % agreement check lives in the
        // workspace-level end-to-end tests.)
        let lib = CellLibrary::coldflux();
        let experiment = Fig5Experiment {
            chips: 4,
            messages_per_chip: 10,
            ppv: PpvModel::paper_defaults().with_spread(0.0),
            threads: 2,
            ..Fig5Experiment::wide_word_setup()
        };
        let design = EncoderDesign::build(EncoderKind::SecDed(6));
        let scalar = experiment.run_design(&design, &lib);
        let batched = experiment.run_design_batched(&design, &lib);
        assert_eq!(scalar.name, "SEC-DED(72,64)");
        assert!((scalar.zero_error_probability() - 1.0).abs() < 1e-12);
        assert!((batched.zero_error_probability() - 1.0).abs() < 1e-12);
        assert_eq!(scalar.chips(), 4);
        assert_eq!(batched.chips(), 4);
    }

    #[test]
    fn parallelism_reports_the_resolved_worker_layout() {
        let lib = CellLibrary::coldflux();
        let experiment = Fig5Experiment {
            chips: 10,
            messages_per_chip: 5,
            threads: 4,
            ..Fig5Experiment::paper_setup()
        };
        let design = EncoderDesign::build(EncoderKind::Hamming74);
        let curve = experiment.run_design_batched(&design, &lib);
        let p = &curve.parallelism;
        // 10 chips over 4 threads chunk as ceil(10/4)=3 → 3+3+3+1.
        assert_eq!(p.threads, 4);
        assert_eq!(p.chips_per_worker, vec![3, 3, 3, 1]);
        assert_eq!(p.busy_ns_per_worker.len(), 4);
        assert_eq!(p.chips_per_worker.iter().sum::<usize>(), 10);
        for u in p.utilization() {
            assert!((0.0..=1.0).contains(&u));
        }

        // Serial runs report a single worker carrying everything; the
        // thread count never leaks into the per-chip results.
        let serial = Fig5Experiment {
            threads: 1,
            ..experiment
        };
        let serial_curve = serial.run_design_batched(&design, &lib);
        assert_eq!(serial_curve.parallelism.threads, 1);
        assert_eq!(serial_curve.parallelism.chips_per_worker, vec![10]);
        assert_eq!(serial_curve.errors_per_chip, curve.errors_per_chip);

        // Hand-built curves carry the empty default.
        let hand = Fig5Curve::from_error_counts(EncoderKind::None, "x".to_string(), 1, vec![0]);
        assert_eq!(hand.parallelism, Parallelism::default());
        assert!(hand.parallelism.utilization().is_empty());
    }

    #[test]
    fn multi_error_comparison_covers_the_bch_registry_and_secded() {
        use ecc::BchSpec;
        let lib = CellLibrary::coldflux();
        let experiment = Fig5Experiment {
            chips: 60,
            messages_per_chip: 20,
            threads: 4,
            ..Fig5Experiment::multi_error_setup()
        };
        assert_eq!(experiment.counting, ErrorCounting::AnyWrong);
        let result = experiment.run_multi_error_comparison(&lib);
        let bch63 = result
            .curve(EncoderKind::Bch(BchSpec::BCH_63_45))
            .expect("BCH(63,45) curve");
        let bch31 = result
            .curve(EncoderKind::Bch(BchSpec::BCH_31_16))
            .expect("BCH(31,16) curve");
        let secded = result.curve(EncoderKind::SecDed(6)).expect("SEC-DED curve");
        assert_eq!(bch63.chips(), 60);
        assert_eq!(bch31.chips(), 60);
        assert_eq!(secded.chips(), 60);
        println!(
            "bch63 zero-error {:.3} {:?} | bch31 {:.3} {:?} | secded {:.3} {:?}",
            bch63.zero_error_probability(),
            bch63.zero_error_wilson_interval(1.96),
            bch31.zero_error_probability(),
            bch31.zero_error_wilson_interval(1.96),
            secded.zero_error_probability(),
            secded.zero_error_wilson_interval(1.96),
        );
        // The multi-error decoders never lose to SEC-DED at this scale; the
        // statistically rigorous separation claim (non-overlapping Wilson
        // intervals at the full chip count) lives in the workspace tests.
        assert!(bch63.zero_error_probability() >= secded.zero_error_probability());
        assert!(bch31.zero_error_probability() >= secded.zero_error_probability());
    }

    #[test]
    fn paper_reference_lists_all_designs() {
        let reference = paper_zero_error_probabilities();
        assert_eq!(reference.len(), 4);
        assert!(reference
            .iter()
            .any(|(k, p)| *k == EncoderKind::Hamming84 && (*p - 0.927).abs() < 1e-9));
    }

    #[test]
    fn table_rendering_contains_every_curve() {
        let lib = CellLibrary::coldflux();
        let experiment = Fig5Experiment {
            chips: 5,
            messages_per_chip: 5,
            threads: 1,
            ..Fig5Experiment::paper_setup()
        };
        let result = experiment.run_all(&lib);
        let table = result.to_table();
        assert!(table.contains("Hamming(8,4)"));
        assert!(table.contains("No encoder"));
        assert!(result.curve(EncoderKind::Rm13).is_some());
    }
}
