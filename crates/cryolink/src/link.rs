//! End-to-end link: encoder circuit → cryo cable → receiver → decoder.
//!
//! One [`CryoLink`] instance corresponds to one fabricated chip (one sampled
//! fault map) connected to the room-temperature electronics through a cable
//! bundle. [`CryoLink::transmit`] pushes a `k`-bit message (4 bits for the
//! paper's designs, 64 for the wide SEC-DED word) through the whole chain
//! and classifies the outcome the way the paper's MATLAB post-processing
//! does.

use crate::channel::{ChannelConfig, CryoCable};
use ecc::DecodeOutcome;
use encoders::EncoderDesign;
use gf2::BitVec;
use rand::Rng;
use serde::{Deserialize, Serialize};
use sfq_sim::FaultMap;

/// Outcome of transmitting one message across the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkOutcome {
    /// The decoder delivered the transmitted message (with or without
    /// correcting channel bits).
    Correct,
    /// The decoder raised the error flag of Fig. 1: the word was recognized
    /// as uncorrectable, so the receiver knows the message is unreliable.
    Flagged,
    /// The decoder silently delivered a wrong message — the failure mode the
    /// encoders are meant to minimize.
    SilentError,
}

/// Full record of one transmission.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransmissionResult {
    /// The transmitted `k`-bit message.
    pub message: BitVec,
    /// The codeword produced by the (possibly faulty) encoder circuit.
    pub transmitted: BitVec,
    /// The word seen by the decoder after the cable and receiver.
    pub received: BitVec,
    /// The decoder's message estimate, if it produced one.
    pub decoded: Option<BitVec>,
    /// Classification of the outcome.
    pub outcome: LinkOutcome,
}

impl TransmissionResult {
    /// `true` when the outcome is a silent (undetected) error.
    #[must_use]
    pub fn is_silent_error(&self) -> bool {
        self.outcome == LinkOutcome::SilentError
    }

    /// `true` when the outcome is either flagged or silently wrong.
    #[must_use]
    pub fn is_erroneous(&self) -> bool {
        self.outcome != LinkOutcome::Correct
    }
}

/// One encoder chip connected to the room-temperature receiver.
pub struct CryoLink<'a> {
    design: &'a EncoderDesign,
    faults: FaultMap,
    cable: CryoCable,
}

impl<'a> CryoLink<'a> {
    /// Builds a link around an encoder design and a sampled fault map.
    #[must_use]
    pub fn new(design: &'a EncoderDesign, faults: FaultMap, channel: ChannelConfig) -> Self {
        let cable = CryoCable::new(design.n(), channel);
        CryoLink {
            design,
            faults,
            cable,
        }
    }

    /// A link with a fault-free chip and an ideal channel.
    #[must_use]
    pub fn ideal(design: &'a EncoderDesign) -> Self {
        Self::new(
            design,
            FaultMap::healthy(design.netlist()),
            ChannelConfig::ideal(),
        )
    }

    /// The encoder design this link carries.
    #[must_use]
    pub fn design(&self) -> &EncoderDesign {
        self.design
    }

    /// Transmits one `k`-bit message end to end.
    ///
    /// # Panics
    /// Panics if the message width differs from the design's data width.
    pub fn transmit<R: Rng + ?Sized>(&self, message: &BitVec, rng: &mut R) -> TransmissionResult {
        let transmitted = self.design.transmit_with_faults(message, &self.faults, rng);
        let received = self.cable.transport(&transmitted, rng);
        let decoded = self.design.decode(&received);
        let outcome = match decoded.outcome {
            DecodeOutcome::DetectedUncorrectable => LinkOutcome::Flagged,
            _ => {
                if decoded.message.as_ref() == Some(message) {
                    LinkOutcome::Correct
                } else {
                    LinkOutcome::SilentError
                }
            }
        };
        TransmissionResult {
            message: message.clone(),
            transmitted,
            received,
            decoded: decoded.message,
            outcome,
        }
    }

    /// Transmits a batch of messages and returns the number classified as
    /// correct / flagged / silent errors.
    pub fn transmit_batch<R: Rng + ?Sized>(
        &self,
        messages: &[BitVec],
        rng: &mut R,
    ) -> (usize, usize, usize) {
        let mut correct = 0;
        let mut flagged = 0;
        let mut silent = 0;
        for message in messages {
            match self.transmit(message, rng).outcome {
                LinkOutcome::Correct => correct += 1,
                LinkOutcome::Flagged => flagged += 1,
                LinkOutcome::SilentError => silent += 1,
            }
        }
        (correct, flagged, silent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encoders::EncoderKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfq_cells::CellKind;
    use sfq_netlist::NodeKind;
    use sfq_sim::{CellFault, FailureMode};

    #[test]
    fn ideal_link_delivers_every_message() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in EncoderKind::ALL {
            let design = EncoderDesign::build(kind);
            let link = CryoLink::ideal(&design);
            for m in 0u64..16 {
                let msg = BitVec::from_u64(4, m);
                let result = link.transmit(&msg, &mut rng);
                assert_eq!(
                    result.outcome,
                    LinkOutcome::Correct,
                    "{} m={m:04b}",
                    design.name()
                );
                assert_eq!(result.decoded, Some(msg));
            }
        }
    }

    #[test]
    fn single_output_driver_fault_is_corrected_by_coded_designs() {
        let mut rng = StdRng::seed_from_u64(2);
        for kind in [
            EncoderKind::Hamming74,
            EncoderKind::Hamming84,
            EncoderKind::Rm13,
        ] {
            let design = EncoderDesign::build(kind);
            // Hard-fail the c1 output driver (drop its pulses): a single
            // codeword bit is stuck, which every code corrects.
            let driver = design
                .netlist()
                .nodes()
                .iter()
                .find(|n| n.kind == NodeKind::Cell(CellKind::SfqToDc))
                .unwrap()
                .id;
            let mut faults = FaultMap::healthy(design.netlist());
            faults.set(driver, CellFault::hard(FailureMode::DropPulse));
            let link = CryoLink::new(&design, faults, ChannelConfig::ideal());
            let mut correct = 0;
            for m in 0u64..16 {
                let msg = BitVec::from_u64(4, m);
                if link.transmit(&msg, &mut rng).outcome == LinkOutcome::Correct {
                    correct += 1;
                }
            }
            assert_eq!(
                correct,
                16,
                "{} should correct a stuck output channel",
                design.name()
            );
        }
    }

    #[test]
    fn uncoded_link_suffers_silent_errors_from_a_stuck_driver() {
        let mut rng = StdRng::seed_from_u64(3);
        let design = EncoderDesign::build(EncoderKind::None);
        let driver = design
            .netlist()
            .nodes()
            .iter()
            .find(|n| n.kind == NodeKind::Cell(CellKind::SfqToDc))
            .unwrap()
            .id;
        let mut faults = FaultMap::healthy(design.netlist());
        faults.set(driver, CellFault::hard(FailureMode::DropPulse));
        let link = CryoLink::new(&design, faults, ChannelConfig::ideal());
        let mut silent = 0;
        for m in 0u64..16 {
            let msg = BitVec::from_u64(4, m);
            if link.transmit(&msg, &mut rng).is_silent_error() {
                silent += 1;
            }
        }
        // The stuck bit is 1 in half of the messages.
        assert_eq!(silent, 8);
    }

    #[test]
    fn batch_counts_sum_to_batch_size() {
        let design = EncoderDesign::build(EncoderKind::Hamming84);
        let link = CryoLink::ideal(&design);
        let mut rng = StdRng::seed_from_u64(4);
        let messages: Vec<BitVec> = (0u64..16).map(|m| BitVec::from_u64(4, m)).collect();
        let (c, f, s) = link.transmit_batch(&messages, &mut rng);
        assert_eq!(c + f + s, 16);
        assert_eq!(c, 16);
    }
}
