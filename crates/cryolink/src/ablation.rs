//! Ablation studies around the paper's Fig. 5 experiment.
//!
//! The paper evaluates a single operating point (±20 % spread, silent-error
//! counting, ideal channel). These sweeps explore the design space around it:
//!
//! * [`spread_sweep`] — how the zero-error probability of each encoder scales
//!   with the parameter spread (±10 %, ±20 %, ±30 %, matching the design
//!   guidelines cited in the introduction);
//! * [`counting_comparison`] — silent-error counting (error flags help)
//!   versus any-wrong counting (no retransmission path);
//! * [`channel_noise_sweep`] — adding receiver noise on the cryo cable, which
//!   shifts errors from PPV-induced to channel-induced and shows the coding
//!   gain of each encoder in the regime reference [14] targets.

use crate::channel::ChannelConfig;
use crate::montecarlo::{ErrorCounting, Fig5Experiment};
use encoders::{EncoderDesign, EncoderKind};
use serde::{Deserialize, Serialize};
use sfq_cells::CellLibrary;

/// Zero-error probability of every design at one operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Label of the swept parameter value (e.g. `"spread=0.20"`).
    pub label: String,
    /// `(design, zero-error probability)` pairs in the paper's design order.
    pub zero_error: Vec<(EncoderKind, f64)>,
}

impl OperatingPoint {
    /// Zero-error probability of one design at this point.
    #[must_use]
    pub fn probability(&self, kind: EncoderKind) -> Option<f64> {
        self.zero_error
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, p)| *p)
    }
}

fn run_point(base: &Fig5Experiment, label: String, library: &CellLibrary) -> OperatingPoint {
    let result = base.run_all(library);
    OperatingPoint {
        label,
        zero_error: result.zero_error_summary(),
    }
}

/// Sweeps the parameter spread and reports the zero-error probability of all
/// designs at each spread value.
#[must_use]
pub fn spread_sweep(
    base: &Fig5Experiment,
    spreads: &[f64],
    library: &CellLibrary,
) -> Vec<OperatingPoint> {
    spreads
        .iter()
        .map(|&spread| {
            let experiment = Fig5Experiment {
                ppv: base.ppv.with_spread(spread),
                ..*base
            };
            run_point(
                &experiment,
                format!("spread=±{:.0}%", spread * 100.0),
                library,
            )
        })
        .collect()
}

/// Compares the two error-counting policies at the base operating point.
#[must_use]
pub fn counting_comparison(base: &Fig5Experiment, library: &CellLibrary) -> Vec<OperatingPoint> {
    [ErrorCounting::SilentOnly, ErrorCounting::AnyWrong]
        .iter()
        .map(|&counting| {
            let experiment = Fig5Experiment { counting, ..*base };
            let label = match counting {
                ErrorCounting::SilentOnly => "count silent errors only".to_string(),
                ErrorCounting::AnyWrong => "count flagged + silent errors".to_string(),
            };
            run_point(&experiment, label, library)
        })
        .collect()
}

/// Sweeps the receiver signal-to-noise ratio with a *fault-free* encoder, so
/// that the channel is the only error source — the classical coding-gain
/// picture that motivates placing an ECC encoder on the SFQ chip at all.
#[must_use]
pub fn channel_noise_sweep(
    base: &Fig5Experiment,
    snrs_db: &[f64],
    library: &CellLibrary,
) -> Vec<OperatingPoint> {
    snrs_db
        .iter()
        .map(|&snr| {
            let experiment = Fig5Experiment {
                ppv: base.ppv.with_spread(0.0),
                channel: ChannelConfig::with_snr_db(snr),
                ..*base
            };
            run_point(&experiment, format!("SNR={snr:.0} dB"), library)
        })
        .collect()
}

/// Per-design sensitivity: zero-error probability of one design across
/// several spreads (used by the per-encoder ablation bench).
#[must_use]
pub fn design_spread_sensitivity(
    base: &Fig5Experiment,
    kind: EncoderKind,
    spreads: &[f64],
    library: &CellLibrary,
) -> Vec<(f64, f64)> {
    let design = EncoderDesign::build(kind);
    spreads
        .iter()
        .map(|&spread| {
            let experiment = Fig5Experiment {
                ppv: base.ppv.with_spread(spread),
                ..*base
            };
            let curve = experiment.run_design(&design, library);
            (spread, curve.zero_error_probability())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_base() -> Fig5Experiment {
        Fig5Experiment {
            chips: 40,
            messages_per_chip: 20,
            threads: 2,
            ..Fig5Experiment::paper_setup()
        }
    }

    #[test]
    fn spread_sweep_is_monotone_for_uncoded_link() {
        let lib = CellLibrary::coldflux();
        let points = spread_sweep(&tiny_base(), &[0.0, 0.30], &lib);
        let p0 = points[0].probability(EncoderKind::None).unwrap();
        let p30 = points[1].probability(EncoderKind::None).unwrap();
        assert!((p0 - 1.0).abs() < 1e-12);
        assert!(p30 <= p0);
    }

    #[test]
    fn counting_any_wrong_is_never_better_than_silent_only() {
        let lib = CellLibrary::coldflux();
        let points = counting_comparison(&tiny_base(), &lib);
        for kind in EncoderKind::ALL {
            let silent = points[0].probability(kind).unwrap();
            let any = points[1].probability(kind).unwrap();
            assert!(any <= silent + 1e-12, "{kind:?}: {any} > {silent}");
        }
    }

    #[test]
    fn coded_designs_beat_uncoded_on_a_noisy_channel() {
        let lib = CellLibrary::coldflux();
        let points = channel_noise_sweep(&tiny_base(), &[11.0], &lib);
        let point = &points[0];
        let uncoded = point.probability(EncoderKind::None).unwrap();
        let hamming84 = point.probability(EncoderKind::Hamming84).unwrap();
        assert!(
            hamming84 >= uncoded,
            "Hamming(8,4) {hamming84} should not be worse than uncoded {uncoded}"
        );
    }

    #[test]
    fn design_sensitivity_returns_one_point_per_spread() {
        let lib = CellLibrary::coldflux();
        let sens =
            design_spread_sensitivity(&tiny_base(), EncoderKind::Hamming84, &[0.0, 0.2], &lib);
        assert_eq!(sens.len(), 2);
        assert!((sens[0].1 - 1.0).abs() < 1e-12);
    }
}
