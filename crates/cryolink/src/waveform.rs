//! Fig. 3 reproduction: pseudo-analog waveforms of an encoder run.
//!
//! The paper shows JoSIM voltage waveforms of the Hamming(8,4) encoder
//! operating at 5 GHz with 4.2 K thermal noise: the four message inputs, the
//! clock, and the eight codeword outputs, with the codeword appearing two
//! clock cycles after the message. This module converts a gate-level
//! [`Trace`](sfq_sim::Trace) into sampled voltage-versus-time series with
//! SFQ-shaped pulses (≈ 2 ps wide, sub-millivolt amplitude) and additive
//! thermal noise, producing the same picture from the portable simulator.

use encoders::EncoderDesign;
use gf2::BitVec;
use rand::Rng;
use serde::{Deserialize, Serialize};
use sfq_cells::process::{Process, BOLTZMANN};

/// Configuration of the waveform rendering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveformConfig {
    /// Clock frequency in GHz (the paper uses 5 GHz).
    pub clock_ghz: f64,
    /// Sample interval in picoseconds.
    pub sample_ps: f64,
    /// SFQ pulse amplitude in microvolts (inputs are shown at ~600 µV, the
    /// encoder outputs at ~400 µV in the paper's figure).
    pub input_amplitude_uv: f64,
    /// Output pulse amplitude in microvolts.
    pub output_amplitude_uv: f64,
    /// Pulse full width at half maximum in picoseconds.
    pub pulse_width_ps: f64,
    /// RMS thermal-noise voltage in microvolts (0 disables noise).
    pub noise_rms_uv: f64,
    /// Offset of the first input pulse inside its clock period, in ps (the
    /// paper applies the message at ≈ 0.1 ns with a 0.2 ns clock period).
    pub input_offset_ps: f64,
}

impl WaveformConfig {
    /// The Fig. 3 setup: 5 GHz clock, 4.2 K thermal noise.
    #[must_use]
    pub fn fig3() -> Self {
        let process = Process::mit_ll_sfq5ee();
        // Johnson noise of a 50-ohm measurement over a 20 GHz bandwidth.
        let bandwidth_hz = 20e9;
        let noise_rms_v = (4.0 * BOLTZMANN * process.temperature_k * 50.0 * bandwidth_hz).sqrt();
        WaveformConfig {
            clock_ghz: 5.0,
            sample_ps: 1.0,
            input_amplitude_uv: 600.0,
            output_amplitude_uv: 400.0,
            pulse_width_ps: process.pulse_width_ps(),
            noise_rms_uv: noise_rms_v * 1e6,
            input_offset_ps: 100.0,
        }
    }

    /// Clock period in picoseconds.
    #[must_use]
    pub fn clock_period_ps(&self) -> f64 {
        1000.0 / self.clock_ghz
    }
}

impl Default for WaveformConfig {
    fn default() -> Self {
        Self::fig3()
    }
}

/// One named voltage-versus-time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaveformSeries {
    /// Signal name (`"m1"`, `"clk"`, `"c5"`, …).
    pub name: String,
    /// Sample values in microvolts; sample `i` is at `i * sample_ps`.
    pub samples_uv: Vec<f64>,
}

impl WaveformSeries {
    /// Peak absolute voltage of the series.
    #[must_use]
    pub fn peak_uv(&self) -> f64 {
        self.samples_uv.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Time (in ps) of the first sample exceeding half of `threshold_uv`, if
    /// any — a simple pulse-arrival detector used by tests and the
    /// experiment report.
    #[must_use]
    pub fn first_pulse_ps(&self, threshold_uv: f64, sample_ps: f64) -> Option<f64> {
        self.samples_uv
            .iter()
            .position(|&v| v > threshold_uv / 2.0)
            .map(|i| i as f64 * sample_ps)
    }
}

/// A complete Fig. 3-style waveform set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaveformSet {
    /// Rendering configuration.
    pub config: WaveformConfig,
    /// Total rendered duration in picoseconds.
    pub duration_ps: f64,
    /// Input series (m1..m4), the clock, then the output series (c1..cn).
    pub series: Vec<WaveformSeries>,
}

impl WaveformSet {
    /// Looks up a series by name.
    #[must_use]
    pub fn series_named(&self, name: &str) -> Option<&WaveformSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Renders the set as a compact ASCII plot (one row per signal), used by
    /// the `encoder_waveforms` example.
    #[must_use]
    pub fn to_ascii(&self, columns: usize) -> String {
        let mut out = String::new();
        for series in &self.series {
            let mut row = String::with_capacity(columns);
            let chunk = series.samples_uv.len().div_ceil(columns).max(1);
            for window in series.samples_uv.chunks(chunk) {
                let peak = window.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
                row.push(if peak > self.config.output_amplitude_uv * 0.4 {
                    '|'
                } else if peak > self.config.output_amplitude_uv * 0.1 {
                    '.'
                } else {
                    ' '
                });
            }
            out.push_str(&format!("{:>4} [{row}]\n", series.name));
        }
        out
    }
}

/// Adds a Gaussian-shaped SFQ pulse centred at `center_ps` to a sample buffer.
fn add_pulse(
    samples: &mut [f64],
    sample_ps: f64,
    center_ps: f64,
    amplitude_uv: f64,
    width_ps: f64,
) {
    let sigma = width_ps / 2.355; // FWHM -> sigma
    let start = ((center_ps - 5.0 * sigma) / sample_ps).floor().max(0.0) as usize;
    let end = (((center_ps + 5.0 * sigma) / sample_ps).ceil() as usize).min(samples.len());
    for (i, sample) in samples.iter_mut().enumerate().take(end).skip(start) {
        let t = i as f64 * sample_ps;
        let d = (t - center_ps) / sigma;
        *sample += amplitude_uv * (-0.5 * d * d).exp();
    }
}

/// Renders the Fig. 3 waveforms for one encoder and message.
///
/// The encoder is simulated fault-free at gate level; every recorded pulse is
/// drawn as an SFQ-shaped voltage pulse at the time its clock period implies,
/// and thermal noise is added on top.
#[must_use]
pub fn render_waveforms<R: Rng + ?Sized>(
    design: &EncoderDesign,
    message: &BitVec,
    config: &WaveformConfig,
    rng: &mut R,
) -> WaveformSet {
    let trace = design.simulate(message);
    let period = config.clock_period_ps();
    let cycles = trace.cycles();
    let duration_ps = period * (cycles as f64 + 1.5);
    let samples = (duration_ps / config.sample_ps).ceil() as usize;

    let mut series = Vec::new();

    // Message inputs: a pulse at the configured offset when the bit is 1.
    for i in 0..message.len() {
        let mut buf = vec![0.0; samples];
        if message.get(i) {
            add_pulse(
                &mut buf,
                config.sample_ps,
                config.input_offset_ps,
                config.input_amplitude_uv,
                config.pulse_width_ps,
            );
        }
        series.push(WaveformSeries {
            name: format!("m{}", i + 1),
            samples_uv: buf,
        });
    }

    // Clock: one pulse per cycle at the end of each period.
    let mut clk = vec![0.0; samples];
    for cycle in 0..cycles {
        add_pulse(
            &mut clk,
            config.sample_ps,
            (cycle as f64 + 1.0) * period,
            config.input_amplitude_uv,
            config.pulse_width_ps,
        );
    }
    series.push(WaveformSeries {
        name: "clk".to_string(),
        samples_uv: clk,
    });

    // Outputs: an arrival recorded in cycle `t` corresponds to a pulse
    // emitted at the clock edge that ended cycle `t − 1`, i.e. shortly after
    // `t · period` on the physical time axis (plus the driver delay).
    for (o, name) in trace.output_names().iter().enumerate() {
        let mut buf = vec![0.0; samples];
        for (cycle, &pulsed) in trace.output_pulses(o).iter().enumerate() {
            if pulsed {
                add_pulse(
                    &mut buf,
                    config.sample_ps,
                    cycle as f64 * period + 8.0,
                    config.output_amplitude_uv,
                    config.pulse_width_ps,
                );
            }
        }
        series.push(WaveformSeries {
            name: name.clone(),
            samples_uv: buf,
        });
    }

    // Additive thermal noise on every series.
    if config.noise_rms_uv > 0.0 {
        for s in &mut series {
            for v in &mut s.samples_uv {
                *v += gaussian(rng) * config.noise_rms_uv;
            }
        }
    }

    WaveformSet {
        config: *config,
        duration_ps,
        series,
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use encoders::EncoderKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn render_fig3() -> WaveformSet {
        let design = EncoderDesign::build(EncoderKind::Hamming84);
        let mut rng = StdRng::seed_from_u64(33);
        render_waveforms(
            &design,
            &BitVec::from_str01("1011"),
            &WaveformConfig::fig3(),
            &mut rng,
        )
    }

    #[test]
    fn fig3_has_thirteen_series() {
        let set = render_fig3();
        // m1..m4, clk, c1..c8.
        assert_eq!(set.series.len(), 13);
        assert!(set.series_named("m1").is_some());
        assert!(set.series_named("clk").is_some());
        assert!(set.series_named("c8").is_some());
    }

    #[test]
    fn message_1011_pulses_only_on_set_bits() {
        let set = render_fig3();
        let cfg = WaveformConfig::fig3();
        assert!(set.series_named("m1").unwrap().peak_uv() > 400.0);
        assert!(set.series_named("m2").unwrap().peak_uv() < 100.0, "m2 is 0");
        assert!(set.series_named("m3").unwrap().peak_uv() > 400.0);
        assert!(set.series_named("m4").unwrap().peak_uv() > 400.0);
        let _ = cfg;
    }

    #[test]
    fn codeword_bits_appear_after_two_clock_cycles() {
        // For message 1011 the codeword is 01100110: c2, c3, c6, c7 carry
        // pulses; their final pulse should appear at ~0.4 ns (two 0.2 ns
        // clock periods), as in Fig. 3.
        let set = render_fig3();
        let cfg = WaveformConfig::fig3();
        let c3 = set.series_named("c3").unwrap();
        let arrival = c3
            .first_pulse_ps(cfg.output_amplitude_uv, cfg.sample_ps)
            .expect("c3 must pulse for message 1011");
        assert!(
            (arrival - 405.0).abs() < 30.0,
            "c3 arrives at {arrival} ps (expected ~0.4 ns, two clock cycles after the message)"
        );
        // c1 is 0 in the codeword: it must carry no strong pulse at readout
        // time. (Intermediate cycles may show the cancelled early pulse.)
        let c5 = set.series_named("c5").unwrap();
        assert!(
            c5.peak_uv() < cfg.output_amplitude_uv * 0.6,
            "c5 is 0 in the codeword"
        );
    }

    #[test]
    fn ascii_rendering_has_one_row_per_series() {
        let set = render_fig3();
        let ascii = set.to_ascii(60);
        assert_eq!(ascii.lines().count(), 13);
        assert!(ascii.contains("clk"));
    }

    #[test]
    fn noise_free_rendering_is_deterministic() {
        let design = EncoderDesign::build(EncoderKind::Hamming84);
        let config = WaveformConfig {
            noise_rms_uv: 0.0,
            ..WaveformConfig::fig3()
        };
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(2);
        let a = render_waveforms(&design, &BitVec::from_str01("1011"), &config, &mut rng1);
        let b = render_waveforms(&design, &BitVec::from_str01("1011"), &config, &mut rng2);
        assert_eq!(a, b);
    }
}
