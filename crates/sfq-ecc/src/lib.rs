//! # sfq-ecc — Lightweight Error-Correction Code Encoders in Superconducting Electronic Systems
//!
//! This is the umbrella crate of the workspace reproducing the SOCC 2025
//! paper *"Lightweight Error-Correction Code Encoders in Superconducting
//! Electronic Systems"* (Mustafa, Peköz, Köse). It re-exports every layer of
//! the system so that downstream users can depend on a single crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`gf2`] | `gf2` | GF(2) bit-vector / bit-matrix linear algebra |
//! | [`ecc`] | `ecc` | Hamming(7,4), Hamming(8,4), RM(1,3), the (38,32) baseline, the SEC-DED family up to (72,64), decoders, Table I analysis |
//! | [`cells`] | `sfq-cells` | RSFQ standard-cell library model (JJ count, power, area, margins) |
//! | [`netlist`] | `sfq-netlist` | gate-level netlist IR, synthesis passes, design-rule checks |
//! | [`sim`] | `sfq-sim` | pulse-level simulator and the PPV fault model |
//! | [`analog`] | `josim-lite` | RCSJ/MNA transient simulator (the JoSIM stand-in) |
//! | [`encoders`] | `encoders` | the code catalog: the paper's encoder circuits, synthesized SEC-DED encoders, Table II |
//! | [`batch`] | `sfq-batch` | bit-sliced batch codec engine (64 codewords per `u64` limb) |
//! | [`link`] | `cryolink` | the Fig. 1 data link, the Fig. 5 Monte-Carlo experiments, and the batch link driver |
//! | [`stream`] | `sfq-stream` | online scrubbing service: bounded queues, fault injection, latency contract, degradation ladder |
//! | [`telemetry`] | `sfq-telemetry` | metrics registry, span timers, run-report snapshots (no-ops without the `telemetry` feature) |
//!
//! ## Quick start
//!
//! ```
//! use sfq_ecc::encoders::{EncoderDesign, EncoderKind};
//! use sfq_ecc::gf2::BitVec;
//!
//! let encoder = EncoderDesign::build(EncoderKind::Hamming84);
//! let codeword = encoder.encode_gate_level(&BitVec::from_str01("1011"));
//! assert_eq!(codeword.to_string01(), "01100110");
//! ```
//!
//! The runnable examples under `examples/` exercise the public API on the
//! paper's scenarios: `quickstart`, `encoder_waveforms` (Fig. 3),
//! `ppv_sweep` (Fig. 5), `design_explorer` (Tables I and II), and
//! `link_demo` (the end-to-end Fig. 1 link).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cryolink as link;
pub use ecc;
pub use encoders;
pub use gf2;
pub use josim_lite as analog;
pub use sfq_batch as batch;
pub use sfq_cells as cells;
pub use sfq_netlist as netlist;
pub use sfq_sim as sim;
pub use sfq_stream as stream;
pub use sfq_telemetry as telemetry;

/// Paper metadata for reports and tooling.
pub mod paper {
    /// Paper title.
    pub const TITLE: &str =
        "Lightweight Error-Correction Code Encoders in Superconducting Electronic Systems";
    /// Publication venue.
    pub const VENUE: &str = "SOCC 2025";
    /// arXiv identifier of the preprint.
    pub const ARXIV: &str = "2509.00962";
}

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired_up() {
        let encoder =
            crate::encoders::EncoderDesign::build(crate::encoders::EncoderKind::Hamming84);
        assert_eq!(encoder.n(), 8);
        let lib = crate::cells::CellLibrary::coldflux();
        assert_eq!(encoder.stats(&lib).cost.jj_count, 278);
        assert!(crate::paper::TITLE.contains("Superconducting"));
    }
}
