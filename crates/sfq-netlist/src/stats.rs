//! Netlist statistics: the cell-count / JJ-count / power / area bookkeeping
//! that generates Table II of the paper.

use crate::{Netlist, NodeKind};
use serde::{Deserialize, Serialize};
use sfq_cells::{CellKind, CellLibrary, CircuitCost};
use std::collections::BTreeMap;
use std::fmt;

/// A histogram of standard-cell instances.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellHistogram {
    counts: BTreeMap<CellKind, u64>,
}

impl CellHistogram {
    /// Builds the histogram of a netlist.
    #[must_use]
    pub fn of(netlist: &Netlist) -> Self {
        CellHistogram {
            counts: netlist.cell_histogram(),
        }
    }

    /// Count of one cell kind.
    #[must_use]
    pub fn count(&self, kind: CellKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total number of cell instances.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Underlying map.
    #[must_use]
    pub fn as_map(&self) -> &BTreeMap<CellKind, u64> {
        &self.counts
    }
}

impl fmt::Display for CellHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(k, c)| format!("{c} {k}"))
            .collect();
        write!(f, "{}", parts.join(", "))
    }
}

/// Full statistics of a netlist evaluated against a cell library — one row of
/// Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Netlist name.
    pub name: String,
    /// Cell histogram.
    pub histogram: CellHistogram,
    /// Aggregate JJ count, power, area, bias current.
    pub cost: CircuitCost,
    /// Logic depth (clocked stages input → output).
    pub logic_depth: usize,
    /// Number of primary data inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
}

impl NetlistStats {
    /// Computes the statistics of a netlist against a library.
    #[must_use]
    pub fn compute(netlist: &Netlist, library: &CellLibrary) -> Self {
        let histogram = CellHistogram::of(netlist);
        let cost = CircuitCost::from_histogram(library, histogram.as_map());
        NetlistStats {
            name: netlist.name.clone(),
            histogram,
            cost,
            logic_depth: netlist.logic_depth(),
            num_inputs: netlist.inputs().len(),
            num_outputs: netlist
                .nodes()
                .iter()
                .filter(|n| n.kind == NodeKind::Output)
                .count(),
        }
    }

    /// Formats the row in the style of Table II of the paper.
    #[must_use]
    pub fn table2_row(&self) -> String {
        format!(
            "{:<28} | {:>3} XOR {:>3} DFF {:>3} SPL {:>3} SFQ/DC | {:>4} JJ | {:>7.1} uW | {:>6.3} mm2",
            self.name,
            self.histogram.count(CellKind::Xor),
            self.histogram.count(CellKind::Dff),
            self.histogram.count(CellKind::Splitter),
            self.histogram.count(CellKind::SfqToDc),
            self.cost.jj_count,
            self.cost.static_power_uw,
            self.cost.area_mm2,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortRef;

    #[test]
    fn histogram_and_stats_of_small_netlist() {
        let mut nl = Netlist::new("small");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let clk = nl.add_clock("clk");
        let xor = nl.add_cell(CellKind::Xor, "x0");
        let dff = nl.add_cell(CellKind::Dff, "d0");
        let out = nl.add_output("o");
        nl.connect(PortRef::of(a), xor, 0);
        nl.connect(PortRef::of(b), xor, 1);
        nl.connect(PortRef::of(clk), xor, 2);
        nl.connect(PortRef::of(xor), dff, 0);
        nl.connect(PortRef::of(dff), out, 0);
        nl.add_clock_sink(dff);

        let hist = CellHistogram::of(&nl);
        assert_eq!(hist.count(CellKind::Xor), 1);
        assert_eq!(hist.count(CellKind::Dff), 1);
        assert_eq!(hist.count(CellKind::Splitter), 0);
        assert_eq!(hist.total(), 2);
        assert!(hist.to_string().contains("1 XOR"));

        let lib = CellLibrary::coldflux();
        let stats = NetlistStats::compute(&nl, &lib);
        assert_eq!(stats.cost.jj_count, 11 + 7);
        assert_eq!(stats.logic_depth, 2);
        assert_eq!(stats.num_inputs, 2);
        assert_eq!(stats.num_outputs, 1);
        assert!(stats.table2_row().contains("18 JJ"));
    }
}
