//! Synthesis passes: the transformations the paper applies by hand when
//! turning the codeword equations (Eq. 3) into the schematics of Figs. 2
//! and 4.
//!
//! * [`fanout`] — SFQ gates have fan-out one, so a signal driving `n` loads
//!   needs a chain of `n − 1` splitters;
//! * [`dff_chain`] — codeword bits with shallower logic are delayed through
//!   DFFs so that all bits of a codeword leave the encoder on the same clock
//!   cycle;
//! * [`build_clock_tree`] — every clocked gate needs its own copy of the
//!   clock, distributed through a splitter tree (13 extra splitters for the
//!   Hamming(8,4) encoder);
//! * [`synthesize_linear_encoder`] — the *naive* generator-matrix-to-netlist
//!   flow (one XOR tree per parity equation, zero sharing). It is kept as the
//!   cost baseline the optimizing pipeline is measured against;
//! * [`synthesize_encoder`] — the optimizing pass pipeline (see
//!   [`crate::pass`]): common-pair XOR factoring, tree balancing, fan-out /
//!   alignment planning, emission, clock tree. All encoder circuits of the
//!   `encoders` crate — including the paper's three hand-drawn designs —
//!   are derived through this flow.

use crate::pass::{PassManager, PipelineOptions, SynthResult};
use crate::{Netlist, NodeId, PortRef};
use gf2::BitMat;
use sfq_cells::CellKind;

/// Expands one output port into `loads` output ports by inserting a chain of
/// `loads − 1` splitters.
///
/// Returns exactly `loads` ports (the original port is returned unchanged if
/// `loads == 1`). `prefix` names the inserted splitters.
///
/// # Panics
/// Panics if `loads == 0`.
pub fn fanout(netlist: &mut Netlist, source: PortRef, loads: usize, prefix: &str) -> Vec<PortRef> {
    assert!(loads > 0, "fanout requires at least one load");
    if loads == 1 {
        return vec![source];
    }
    let mut ports = Vec::with_capacity(loads);
    let mut current = source;
    for i in 0..loads - 1 {
        let splitter = netlist.add_cell(CellKind::Splitter, format!("{prefix}_spl{i}"));
        netlist.connect(current, splitter, 0);
        ports.push(PortRef {
            node: splitter,
            port: 0,
        });
        current = PortRef {
            node: splitter,
            port: 1,
        };
    }
    ports.push(current);
    ports
}

/// Inserts a chain of `stages` D flip-flops after `source` and returns the
/// output port of the last one. Each DFF is registered as a clock sink.
///
/// With `stages == 0` the source port is returned unchanged.
pub fn dff_chain(netlist: &mut Netlist, source: PortRef, stages: usize, prefix: &str) -> PortRef {
    let mut current = source;
    for i in 0..stages {
        let dff = netlist.add_cell(CellKind::Dff, format!("{prefix}_dff{i}"));
        netlist.connect(current, dff, 0);
        netlist.add_clock_sink(dff);
        current = PortRef::of(dff);
    }
    current
}

/// Builds the clock-distribution network: a chain of splitters delivering the
/// clock to every registered clock sink. Returns the number of splitters
/// inserted (`sinks − 1`, or 0 when there is at most one sink).
///
/// # Panics
/// Panics if the netlist has clock sinks but no clock source.
pub fn build_clock_tree(netlist: &mut Netlist, prefix: &str) -> usize {
    let sinks: Vec<NodeId> = netlist.clock_sinks().to_vec();
    if sinks.is_empty() {
        return 0;
    }
    let clock = netlist
        .clock()
        .expect("clock sinks are present but no clock source was added");
    let clock_ports: Vec<usize> = sinks
        .iter()
        .map(|&s| {
            netlist
                .node(s)
                .kind
                .clock_port()
                .expect("clock sinks are clocked cells")
        })
        .collect();
    let feeds = fanout(netlist, PortRef::of(clock), sinks.len(), prefix);
    for ((sink, port), feed) in sinks.iter().zip(clock_ports).zip(feeds) {
        netlist.connect(feed, *sink, port);
    }
    sinks.len() - 1
}

/// Options for the generic linear-encoder synthesis flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthesisOptions {
    /// Add an SFQ-to-DC output driver in front of each primary output (the
    /// paper's encoders drive cryogenic cables, so they always do).
    pub output_drivers: bool,
    /// Balance all outputs to the same logic depth with DFF chains.
    pub balance_outputs: bool,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            output_drivers: true,
            balance_outputs: true,
        }
    }
}

/// Synthesizes a gate-level SFQ encoder netlist for an arbitrary binary
/// linear code given its `k × n` generator matrix.
///
/// Each codeword bit `c_j = ⊕_{i : G[i][j]=1} m_i` becomes a balanced XOR
/// tree; passthrough bits (single-term columns) become DFF delay chains; all
/// outputs are balanced to the worst-case logic depth; message fan-out and
/// the clock network are expanded into explicit splitters.
///
/// # Panics
/// Panics if the generator matrix has a zero column (a codeword bit that
/// depends on no message bit cannot be generated).
pub fn synthesize_linear_encoder(
    name: &str,
    generator: &BitMat,
    options: SynthesisOptions,
) -> Netlist {
    let k = generator.rows();
    let n = generator.cols();
    let mut netlist = Netlist::new(name);

    // Primary inputs and clock.
    let inputs: Vec<NodeId> = (0..k)
        .map(|i| netlist.add_input(format!("m{}", i + 1)))
        .collect();
    netlist.add_clock("clk");

    // Terms of each output column.
    let terms_per_output: Vec<Vec<usize>> = (0..n)
        .map(|j| (0..k).filter(|&i| generator.get(i, j)).collect::<Vec<_>>())
        .collect();
    for (j, terms) in terms_per_output.iter().enumerate() {
        assert!(
            !terms.is_empty(),
            "generator column {j} is zero; codeword bit c{} has no source",
            j + 1
        );
    }

    // The logic depth of a t-term XOR tree is ceil(log2(t)); passthroughs
    // (t = 1) have depth 0 before balancing.
    let depth_of = |t: usize| -> usize {
        if t <= 1 {
            0
        } else {
            (t as f64).log2().ceil() as usize
        }
    };
    let max_depth = terms_per_output
        .iter()
        .map(|t| depth_of(t.len()))
        .max()
        .unwrap_or(0)
        .max(1);

    // Fan-out each message input into as many ports as it has uses.
    let mut input_ports: Vec<Vec<PortRef>> = Vec::with_capacity(k);
    for (i, &input) in inputs.iter().enumerate() {
        let uses = terms_per_output
            .iter()
            .filter(|terms| terms.contains(&i))
            .count();
        let ports = if uses == 0 {
            Vec::new()
        } else {
            fanout(
                &mut netlist,
                PortRef::of(input),
                uses,
                &format!("m{}", i + 1),
            )
        };
        input_ports.push(ports);
    }
    let mut next_port: Vec<usize> = vec![0; k];
    let take_input = |i: usize, input_ports: &Vec<Vec<PortRef>>, next_port: &mut Vec<usize>| {
        let port = input_ports[i][next_port[i]];
        next_port[i] += 1;
        port
    };

    // Build each output cone.
    for (j, terms) in terms_per_output.iter().enumerate() {
        let out_name = format!("c{}", j + 1);
        let mut level: Vec<PortRef> = terms
            .iter()
            .map(|&i| take_input(i, &input_ports, &mut next_port))
            .collect();
        let mut depth = 0;
        while level.len() > 1 {
            let mut next_level = Vec::with_capacity(level.len().div_ceil(2));
            let mut iter = level.chunks(2);
            for (idx, chunk) in iter.by_ref().enumerate() {
                match chunk {
                    [a, b] => {
                        let xor =
                            netlist.add_cell(CellKind::Xor, format!("{out_name}_x{depth}_{idx}"));
                        netlist.connect(*a, xor, 0);
                        netlist.connect(*b, xor, 1);
                        netlist.add_clock_sink(xor);
                        next_level.push(PortRef::of(xor));
                    }
                    [a] => {
                        // Odd signal out: delay through a DFF to stay aligned
                        // with its future partners.
                        let delayed =
                            dff_chain(&mut netlist, *a, 1, &format!("{out_name}_bal{depth}_{idx}"));
                        next_level.push(delayed);
                    }
                    _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
                }
            }
            level = next_level;
            depth += 1;
        }
        let mut signal = level[0];
        if options.balance_outputs && depth < max_depth {
            signal = dff_chain(
                &mut netlist,
                signal,
                max_depth - depth,
                &format!("{out_name}_pad"),
            );
        }
        if options.output_drivers {
            let driver = netlist.add_cell(CellKind::SfqToDc, format!("{out_name}_drv"));
            netlist.connect(signal, driver, 0);
            signal = PortRef::of(driver);
        }
        let output = netlist.add_output(out_name);
        netlist.connect(signal, output, 0);
    }

    build_clock_tree(&mut netlist, "clk");
    netlist
}

/// Synthesizes an encoder through the optimizing pass pipeline
/// ([`crate::pass`]): greedy common-pair XOR factoring under a depth budget,
/// XOR-tree balancing, splitter fan-out / alignment planning, netlist
/// emission, and clock-tree construction — with built-in GF(2) functional
/// verification after every pass.
///
/// # Panics
/// Panics if the generator has a zero column or a pass breaks functional
/// equivalence (which would be a synthesis bug, not a user error).
#[must_use]
pub fn synthesize_encoder(name: &str, generator: &BitMat, options: PipelineOptions) -> SynthResult {
    PassManager::standard(options)
        .run(name, generator)
        .unwrap_or_else(|e| panic!("synthesis pipeline failed for {name}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drc;
    use ecc::{BlockCode, Hamming84, ShortenedHamming3832};
    use sfq_cells::CellKind;

    #[test]
    fn fanout_of_one_returns_source() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let ports = fanout(&mut nl, PortRef::of(a), 1, "a");
        assert_eq!(ports, vec![PortRef::of(a)]);
        assert_eq!(nl.count_cells(CellKind::Splitter), 0);
    }

    #[test]
    fn fanout_inserts_n_minus_one_splitters() {
        for loads in 2..=6 {
            let mut nl = Netlist::new("f");
            let a = nl.add_input("a");
            let ports = fanout(&mut nl, PortRef::of(a), loads, "a");
            assert_eq!(ports.len(), loads);
            assert_eq!(nl.count_cells(CellKind::Splitter), loads - 1);
            // Each returned port is distinct and drives nothing yet.
            for &p in &ports {
                assert!(nl.sinks_of(p).is_empty());
            }
        }
    }

    #[test]
    fn dff_chain_adds_stages_and_clock_sinks() {
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let end = dff_chain(&mut nl, PortRef::of(a), 3, "a");
        assert_eq!(nl.count_cells(CellKind::Dff), 3);
        assert_eq!(nl.clock_sinks().len(), 3);
        let out = nl.add_output("o");
        nl.connect(end, out, 0);
        assert_eq!(nl.logic_depth(), 3);
    }

    #[test]
    fn clock_tree_uses_sinks_minus_one_splitters() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        nl.add_clock("clk");
        let end = dff_chain(&mut nl, PortRef::of(a), 4, "a");
        let out = nl.add_output("o");
        nl.connect(end, out, 0);
        let splitters = build_clock_tree(&mut nl, "clk");
        assert_eq!(splitters, 3);
        assert_eq!(nl.count_cells(CellKind::Splitter), 3);
        assert!(drc::is_clean(&nl), "{:?}", drc::check(&nl));
    }

    #[test]
    fn generic_hamming84_synthesis_is_clean_and_balanced() {
        let code = Hamming84::new();
        let nl = synthesize_linear_encoder(
            "hamming84_generic",
            code.generator(),
            SynthesisOptions::default(),
        );
        assert!(drc::is_clean(&nl), "{:?}", drc::check(&nl));
        assert_eq!(nl.inputs().len(), 4);
        assert_eq!(nl.outputs().len(), 8);
        // Without subexpression sharing the XOR-tree flow needs 2 XORs per
        // 3-term output: columns c1, c2, c4, c8.
        assert_eq!(nl.count_cells(CellKind::Xor), 8);
        assert_eq!(nl.count_cells(CellKind::SfqToDc), 8);
        assert_eq!(nl.logic_depth(), 2);
        // All outputs aligned.
        let depths = nl.output_depths();
        assert!(depths.iter().all(|&d| d == depths[0]), "{depths:?}");
    }

    #[test]
    fn generic_synthesis_without_drivers_or_balancing() {
        let code = Hamming84::new();
        let nl = synthesize_linear_encoder(
            "hamming84_bare",
            code.generator(),
            SynthesisOptions {
                output_drivers: false,
                balance_outputs: false,
            },
        );
        assert_eq!(nl.count_cells(CellKind::SfqToDc), 0);
        // Passthrough outputs keep depth 0, XOR cones have depth 2.
        let depths = nl.output_depths();
        assert!(depths.contains(&0));
        assert!(depths.contains(&2));
    }

    #[test]
    fn pipeline_reproduces_hamming84_paper_budget() {
        let code = Hamming84::new();
        let result = synthesize_encoder(
            "hamming84_encoder",
            code.generator(),
            crate::pass::PipelineOptions::default(),
        );
        let nl = &result.netlist;
        assert!(drc::is_clean(nl), "{:?}", drc::check(nl));
        assert_eq!(nl.count_cells(CellKind::Xor), 6, "6 XOR gates");
        assert_eq!(nl.count_cells(CellKind::Dff), 8, "8 balancing DFFs");
        assert_eq!(
            nl.count_cells(CellKind::Splitter),
            23,
            "10 data + 13 clock splitters"
        );
        assert_eq!(nl.count_cells(CellKind::SfqToDc), 8);
        assert_eq!(nl.logic_depth(), 2);
        assert!(nl.output_depths().iter().all(|&d| d == 2));
    }

    #[test]
    fn pipeline_reproduces_hamming74_paper_budget() {
        let code = ecc::Hamming74::new();
        let result = synthesize_encoder(
            "hamming74_encoder",
            code.generator(),
            crate::pass::PipelineOptions::default(),
        );
        let nl = &result.netlist;
        assert!(drc::is_clean(nl), "{:?}", drc::check(nl));
        assert_eq!(nl.count_cells(CellKind::Xor), 5);
        assert_eq!(nl.count_cells(CellKind::Dff), 8);
        assert_eq!(nl.count_cells(CellKind::Splitter), 20);
        assert_eq!(nl.count_cells(CellKind::SfqToDc), 7);
        assert_eq!(nl.logic_depth(), 2);
    }

    #[test]
    fn pipeline_reproduces_rm13_paper_budget_with_alignment() {
        let code = ecc::Rm13::new();
        let result = synthesize_encoder(
            "rm13_encoder",
            code.generator(),
            crate::pass::PipelineOptions {
                discipline: crate::pass::InputDiscipline::Align,
                ..Default::default()
            },
        );
        let nl = &result.netlist;
        assert!(drc::is_clean(nl), "{:?}", drc::check(nl));
        assert_eq!(nl.count_cells(CellKind::Xor), 8);
        assert_eq!(
            nl.count_cells(CellKind::Dff),
            7,
            "5 balancing + 2 alignment"
        );
        assert_eq!(nl.count_cells(CellKind::Splitter), 26);
        assert_eq!(nl.count_cells(CellKind::SfqToDc), 8);
        assert_eq!(nl.logic_depth(), 2);
    }

    #[test]
    fn pipeline_cuts_secded_7264_jj_count_by_at_least_20_percent() {
        use sfq_cells::CellLibrary;
        let code = ecc::SecDed::new(6);
        let naive = synthesize_linear_encoder(
            "secded_72_64_naive",
            code.generator(),
            SynthesisOptions::default(),
        );
        let optimized = synthesize_encoder(
            "secded_72_64_encoder",
            code.generator(),
            crate::pass::PipelineOptions::default(),
        );
        let nl = &optimized.netlist;
        assert!(drc::is_clean(nl), "{:?}", drc::check(nl));
        let lib = CellLibrary::coldflux();
        // The exact baseline (9522 JJ) and optimized numbers are pinned once,
        // in tests/golden/circuit_costs.txt; this unit test only holds the
        // pipeline to its relative guarantee.
        let naive_jj = crate::NetlistStats::compute(&naive, &lib).cost.jj_count;
        let opt_jj = crate::NetlistStats::compute(nl, &lib).cost.jj_count;
        println!(
            "secded(72,64): naive {naive_jj} JJ -> optimized {opt_jj} JJ ({:.1}% cut)\n{}",
            100.0 * (naive_jj - opt_jj) as f64 / naive_jj as f64,
            optimized.report.summary()
        );
        assert!(
            opt_jj * 10 <= naive_jj * 8,
            "optimized {opt_jj} JJ must be at least 20% below naive {naive_jj} JJ"
        );
        // Latency must not regress versus the naive balanced-tree flow.
        assert_eq!(nl.logic_depth(), naive.logic_depth());
    }

    #[test]
    fn baseline_3832_encoder_synthesizes() {
        let code = ShortenedHamming3832::new();
        let nl =
            synthesize_linear_encoder("peng3832", code.generator(), SynthesisOptions::default());
        assert!(drc::is_clean(&nl), "{:?}", drc::check(&nl));
        assert_eq!(nl.inputs().len(), 32);
        assert_eq!(nl.outputs().len(), 38);
        // The reference design of [14] reports 84 XOR gates; a shared-logic
        // implementation is smaller, an unshared tree flow is larger. Sanity
        // bounds only.
        let xors = nl.count_cells(CellKind::Xor);
        assert!((60..=200).contains(&xors), "xor count {xors}");
    }
}
