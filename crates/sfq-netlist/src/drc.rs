//! Design-rule checks for SFQ netlists.
//!
//! The checks encode the two SFQ-specific constraints from Section III of the
//! paper — every logic gate is clocked and every output has a fan-out of one
//! — plus the structural sanity conditions any netlist must satisfy before
//! simulation (no floating inputs, no multiply-driven ports, balanced output
//! paths).

use crate::{Netlist, NodeId, NodeKind, PortRef};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A single design-rule violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DrcViolation {
    /// An input port of a cell or primary output has no driver.
    UnconnectedInput {
        /// Node with the floating input.
        node: NodeId,
        /// Name of the node.
        name: String,
        /// Port index that is unconnected.
        port: usize,
    },
    /// An output port drives more than one sink — illegal in SFQ logic, which
    /// has fan-out one; a splitter must be inserted instead.
    FanoutViolation {
        /// Driving port.
        from: PortRef,
        /// Name of the driving node.
        name: String,
        /// Number of sinks attached.
        sinks: usize,
    },
    /// An output port of a cell drives nothing (a wasted cell, usually a
    /// synthesis bug).
    DanglingOutput {
        /// The unused port.
        from: PortRef,
        /// Name of the node.
        name: String,
    },
    /// A clocked cell whose clock port is not driven and that is not
    /// registered as a clock sink awaiting clock-tree synthesis.
    MissingClock {
        /// The unclocked clocked-cell.
        node: NodeId,
        /// Name of the node.
        name: String,
    },
    /// Primary outputs have different logic depths; codeword bits would
    /// arrive on different clock cycles (the situation DFF path balancing
    /// must fix).
    UnbalancedOutputs {
        /// Depth of each primary output, keyed by output name.
        depths: BTreeMap<String, usize>,
    },
}

/// Runs all design-rule checks and returns every violation found.
#[must_use]
pub fn check(netlist: &Netlist) -> Vec<DrcViolation> {
    let mut violations = Vec::new();
    check_unconnected_inputs(netlist, &mut violations);
    check_fanout(netlist, &mut violations);
    check_clocks(netlist, &mut violations);
    check_balance(netlist, &mut violations);
    violations
}

/// Returns `true` if the netlist passes every design-rule check.
#[must_use]
pub fn is_clean(netlist: &Netlist) -> bool {
    check(netlist).is_empty()
}

fn check_unconnected_inputs(netlist: &Netlist, out: &mut Vec<DrcViolation>) {
    for node in netlist.nodes() {
        for port in 0..node.kind.input_ports() {
            if netlist.driver_of(node.id, port).is_none() {
                // A clocked cell's clock port may legitimately be undriven if
                // the cell is registered as a clock sink (clock tree not yet
                // synthesized); that case is reported by check_clocks instead.
                if node.kind.clock_port() == Some(port) {
                    continue;
                }
                out.push(DrcViolation::UnconnectedInput {
                    node: node.id,
                    name: node.name.clone(),
                    port,
                });
            }
        }
    }
}

fn check_fanout(netlist: &Netlist, out: &mut Vec<DrcViolation>) {
    for node in netlist.nodes() {
        for port in 0..node.kind.output_ports() {
            let from = PortRef {
                node: node.id,
                port,
            };
            let sinks = netlist.sinks_of(from).len();
            if sinks > 1 {
                out.push(DrcViolation::FanoutViolation {
                    from,
                    name: node.name.clone(),
                    sinks,
                });
            } else if sinks == 0 && matches!(node.kind, NodeKind::Cell(_)) {
                out.push(DrcViolation::DanglingOutput {
                    from,
                    name: node.name.clone(),
                });
            }
        }
    }
}

fn check_clocks(netlist: &Netlist, out: &mut Vec<DrcViolation>) {
    for node in netlist.nodes() {
        if let Some(clock_port) = node.kind.clock_port() {
            let driven = netlist.driver_of(node.id, clock_port).is_some();
            let pending = netlist.clock_sinks().contains(&node.id);
            if !driven && !pending {
                out.push(DrcViolation::MissingClock {
                    node: node.id,
                    name: node.name.clone(),
                });
            }
        }
    }
}

fn check_balance(netlist: &Netlist, out: &mut Vec<DrcViolation>) {
    let depths = netlist.output_depths();
    if depths.is_empty() {
        return;
    }
    let first = depths[0];
    if depths.iter().any(|&d| d != first) {
        let map = netlist
            .outputs()
            .iter()
            .zip(&depths)
            .map(|(&id, &d)| (netlist.node(id).name.clone(), d))
            .collect();
        out.push(DrcViolation::UnbalancedOutputs { depths: map });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_cells::CellKind;

    #[test]
    fn clean_passthrough_netlist() {
        let mut nl = Netlist::new("ok");
        let a = nl.add_input("a");
        let clk = nl.add_clock("clk");
        let dff = nl.add_cell(CellKind::Dff, "d0");
        let out = nl.add_output("o");
        nl.connect(PortRef::of(a), dff, 0);
        nl.connect(PortRef::of(clk), dff, 1); // clock port of a DFF is port 1
        nl.connect(PortRef::of(dff), out, 0);
        assert!(is_clean(&nl), "{:?}", check(&nl));
    }

    #[test]
    fn floating_data_input_is_reported() {
        let mut nl = Netlist::new("float");
        let _a = nl.add_input("a");
        let clk = nl.add_clock("clk");
        let xor = nl.add_cell(CellKind::Xor, "x0");
        let out = nl.add_output("o");
        nl.connect(PortRef::of(clk), xor, 2);
        nl.connect(PortRef::of(xor), out, 0);
        let violations = check(&nl);
        let unconnected = violations
            .iter()
            .filter(|v| matches!(v, DrcViolation::UnconnectedInput { .. }))
            .count();
        assert_eq!(unconnected, 2, "{violations:?}");
    }

    #[test]
    fn fanout_violation_is_reported() {
        let mut nl = Netlist::new("fanout");
        let a = nl.add_input("a");
        let o1 = nl.add_output("o1");
        let o2 = nl.add_output("o2");
        nl.connect(PortRef::of(a), o1, 0);
        nl.connect(PortRef::of(a), o2, 0);
        let violations = check(&nl);
        assert!(violations
            .iter()
            .any(|v| matches!(v, DrcViolation::FanoutViolation { sinks: 2, .. })));
    }

    #[test]
    fn missing_clock_is_reported_unless_pending_sink() {
        let mut nl = Netlist::new("clk");
        let a = nl.add_input("a");
        let dff = nl.add_cell(CellKind::Dff, "d0");
        let out = nl.add_output("o");
        nl.connect(PortRef::of(a), dff, 0);
        nl.connect(PortRef::of(dff), out, 0);
        assert!(check(&nl)
            .iter()
            .any(|v| matches!(v, DrcViolation::MissingClock { .. })));
        // Registering as a clock sink silences the violation (the clock tree
        // is synthesized later).
        nl.add_clock_sink(dff);
        assert!(!check(&nl)
            .iter()
            .any(|v| matches!(v, DrcViolation::MissingClock { .. })));
    }

    #[test]
    fn dangling_cell_output_is_reported() {
        let mut nl = Netlist::new("dangle");
        let a = nl.add_input("a");
        let dff = nl.add_cell(CellKind::Dff, "d0");
        nl.add_clock_sink(dff);
        nl.connect(PortRef::of(a), dff, 0);
        assert!(check(&nl)
            .iter()
            .any(|v| matches!(v, DrcViolation::DanglingOutput { .. })));
    }

    #[test]
    fn unbalanced_outputs_are_reported() {
        let mut nl = Netlist::new("unbalanced");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let clk = nl.add_clock("clk");
        let dff = nl.add_cell(CellKind::Dff, "d0");
        let o1 = nl.add_output("o1");
        let o2 = nl.add_output("o2");
        nl.connect(PortRef::of(a), dff, 0);
        nl.connect(PortRef::of(clk), dff, 1);
        nl.connect(PortRef::of(dff), o1, 0);
        nl.connect(PortRef::of(b), o2, 0);
        assert!(check(&nl)
            .iter()
            .any(|v| matches!(v, DrcViolation::UnbalancedOutputs { .. })));
    }
}
