//! Gate-level netlist representation for SFQ logic circuits.
//!
//! SFQ circuit design differs from CMOS in two ways that this crate models
//! explicitly (Section III of the paper):
//!
//! 1. every logic gate (XOR, AND, OR, NOT, DFF) is **clocked** — it emits its
//!    output only when a clock pulse arrives, so data paths must be balanced
//!    with D flip-flops to keep codeword bits aligned;
//! 2. every gate has a **fan-out of one** — driving two or more loads
//!    requires explicit splitter cells, and the clock itself must be
//!    distributed through a splitter tree.
//!
//! The [`Netlist`] type is a port-level directed graph of cell instances plus
//! primary inputs/outputs and a clock source. The [`synth`] module provides
//! the synthesis passes the paper applies by hand (fan-out splitter trees,
//! path-balancing DFF insertion, clock-distribution network), [`drc`] checks
//! the SFQ design rules, and [`stats`] computes the cell histogram / JJ count
//! / power / area bookkeeping that generates Table II.
//!
//! Above the netlist sits the optimizing encoder-synthesis pipeline: [`ir`]
//! defines the parity-equation IR, [`pass`] the pass manager, the
//! cost-model-driven [`SynthPlanner`], and the `depth_slack` latency/area
//! [`pareto_sweep`], and [`cancel`] the Boyar–Peralta-style
//! cancellation-aware factoring pass. See `docs/PASSES.md` at the workspace
//! root for the pass-author's guide.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod drc;
pub mod ir;
pub mod pass;
pub mod stats;
pub mod synth;

pub use cancel::CancellationFactoringPass;
pub use drc::{check, DrcViolation};
pub use ir::ParityIr;
pub use pass::{
    pareto_sweep, InputDiscipline, ParetoPoint, PassManager, PipelineOptions, PipelineReport,
    Schedule, SchedulePlan, SynthPlanner, SynthResult,
};
pub use stats::{CellHistogram, NetlistStats};

use serde::{Deserialize, Serialize};
use sfq_cells::CellKind;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a node (cell instance, primary input/output, or the clock
/// source) inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A reference to one output port of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PortRef {
    /// The node the port belongs to.
    pub node: NodeId,
    /// Output port index (0 for all cells except splitters, which have 0 and 1).
    pub port: usize,
}

impl PortRef {
    /// Output port 0 of a node.
    #[must_use]
    pub fn of(node: NodeId) -> Self {
        PortRef { node, port: 0 }
    }
}

/// What a netlist node is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Primary data input (message bit).
    Input,
    /// Primary output (codeword bit / output channel).
    Output,
    /// The clock source feeding the clock-distribution network.
    ClockSource,
    /// An instance of a standard cell.
    Cell(CellKind),
}

impl NodeKind {
    /// Number of input ports of this node. For clocked cells this includes a
    /// dedicated clock port at index [`NodeKind::clock_port`].
    #[must_use]
    pub fn input_ports(&self) -> usize {
        match self {
            NodeKind::Input | NodeKind::ClockSource => 0,
            NodeKind::Output => 1,
            NodeKind::Cell(kind) => kind.data_inputs() + usize::from(kind.is_clocked()),
        }
    }

    /// The index of the clock input port, for clocked cells.
    #[must_use]
    pub fn clock_port(&self) -> Option<usize> {
        match self {
            NodeKind::Cell(kind) if kind.is_clocked() => Some(kind.data_inputs()),
            _ => None,
        }
    }

    /// Number of output ports of this node.
    #[must_use]
    pub fn output_ports(&self) -> usize {
        match self {
            NodeKind::Input | NodeKind::ClockSource => 1,
            NodeKind::Output => 0,
            NodeKind::Cell(kind) => kind.outputs(),
        }
    }

    /// Whether this node needs a clock connection.
    #[must_use]
    pub fn is_clocked(&self) -> bool {
        matches!(self, NodeKind::Cell(kind) if kind.is_clocked())
    }
}

/// A node of the netlist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Node identifier.
    pub id: NodeId,
    /// Node kind.
    pub kind: NodeKind,
    /// Instance name (unique within the netlist).
    pub name: String,
}

/// A directed connection from an output port to an input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Connection {
    /// Driving output port.
    pub from: PortRef,
    /// Driven node.
    pub to: NodeId,
    /// Input-port index on the driven node.
    pub to_port: usize,
}

/// A gate-level SFQ netlist.
///
/// Besides the connection list, the netlist maintains reverse indexes —
/// per-input-port drivers and per-output-port sink lists — so the hot graph
/// queries [`Netlist::driver_of`] and [`Netlist::sinks_of`] are O(1) / O(deg)
/// instead of scanning every connection (they dominate DRC, logic-depth, and
/// fault-cone computations on wide synthesized encoders).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    /// Netlist name, e.g. `"hamming84_encoder"`.
    pub name: String,
    nodes: Vec<Node>,
    connections: Vec<Connection>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    clock: Option<NodeId>,
    clock_sinks: Vec<NodeId>,
    /// `drivers[node][port]` — the driver of that input port, if connected.
    drivers: Vec<Vec<Option<PortRef>>>,
    /// `sinks[node][port]` — every (node, port) driven by that output port.
    sinks: Vec<Vec<Vec<(NodeId, usize)>>>,
}

impl Netlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            connections: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            clock: None,
            clock_sinks: Vec::new(),
            drivers: Vec::new(),
            sinks: Vec::new(),
        }
    }

    fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.drivers.push(vec![None; kind.input_ports()]);
        self.sinks.push(vec![Vec::new(); kind.output_ports()]);
        self.nodes.push(Node {
            id,
            kind,
            name: name.into(),
        });
        id
    }

    /// Adds a primary data input and returns its node id.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.add_node(NodeKind::Input, name);
        self.inputs.push(id);
        id
    }

    /// Adds a primary output and returns its node id.
    pub fn add_output(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.add_node(NodeKind::Output, name);
        self.outputs.push(id);
        id
    }

    /// Adds the clock source. A netlist has at most one clock source.
    ///
    /// # Panics
    /// Panics if a clock source already exists.
    pub fn add_clock(&mut self, name: impl Into<String>) -> NodeId {
        assert!(self.clock.is_none(), "netlist already has a clock source");
        let id = self.add_node(NodeKind::ClockSource, name);
        self.clock = Some(id);
        id
    }

    /// Adds a standard-cell instance and returns its node id.
    pub fn add_cell(&mut self, kind: CellKind, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Cell(kind), name)
    }

    /// Connects output `from` to input port `to_port` of node `to`.
    ///
    /// # Panics
    /// Panics if either node does not exist, the port indices are out of
    /// range, or the input port is already driven.
    pub fn connect(&mut self, from: PortRef, to: NodeId, to_port: usize) {
        let from_node = self.node(from.node);
        assert!(
            from.port < from_node.kind.output_ports(),
            "node {} ({}) has no output port {}",
            from_node.name,
            from.node,
            from.port
        );
        let to_node = self.node(to);
        assert!(
            to_port < to_node.kind.input_ports(),
            "node {} ({}) has no input port {}",
            to_node.name,
            to,
            to_port
        );
        assert!(
            self.drivers[to.0][to_port].is_none(),
            "input port {} of node {} is already driven",
            to_port,
            to_node.name
        );
        self.drivers[to.0][to_port] = Some(from);
        self.sinks[from.node.0][from.port].push((to, to_port));
        self.connections.push(Connection { from, to, to_port });
    }

    /// Registers a clocked cell as a sink of the clock-distribution network.
    ///
    /// The synthesis pass [`synth::build_clock_tree`] later expands the clock
    /// network into an explicit splitter tree feeding these sinks.
    ///
    /// # Panics
    /// Panics if the node is not a clocked cell.
    pub fn add_clock_sink(&mut self, node: NodeId) {
        assert!(
            self.node(node).kind.is_clocked(),
            "only clocked cells can be clock sinks"
        );
        self.clock_sinks.push(node);
    }

    /// Returns a node by id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// All nodes, in creation order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All connections.
    #[must_use]
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// Primary data inputs, in creation order.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs, in creation order.
    #[must_use]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The clock source, if one was added.
    #[must_use]
    pub fn clock(&self) -> Option<NodeId> {
        self.clock
    }

    /// Clocked cells registered as clock sinks.
    #[must_use]
    pub fn clock_sinks(&self) -> &[NodeId] {
        &self.clock_sinks
    }

    /// The driver of input port `port` of node `id`, if connected. O(1) via
    /// the reverse-driver index.
    #[must_use]
    pub fn driver_of(&self, id: NodeId, port: usize) -> Option<PortRef> {
        self.drivers[id.0][port]
    }

    /// All (node, port) pairs driven by output port `from`, in connection
    /// order. O(deg) via the sink index.
    #[must_use]
    pub fn sinks_of(&self, from: PortRef) -> Vec<(NodeId, usize)> {
        self.sinks[from.node.0][from.port].clone()
    }

    /// Number of cell instances of a given kind.
    #[must_use]
    pub fn count_cells(&self, kind: CellKind) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Cell(kind))
            .count()
    }

    /// Histogram of cell kinds.
    #[must_use]
    pub fn cell_histogram(&self) -> BTreeMap<CellKind, u64> {
        let mut hist = BTreeMap::new();
        for node in &self.nodes {
            if let NodeKind::Cell(kind) = node.kind {
                *hist.entry(kind).or_insert(0) += 1;
            }
        }
        hist
    }

    /// Logic depth of the netlist: the maximum number of clocked cells on any
    /// path from a primary input to a primary output. The paper's
    /// Hamming(8,4) encoder has logic depth 2.
    #[must_use]
    pub fn logic_depth(&self) -> usize {
        // Depth of a node = clocked stages encountered from inputs up to and
        // including that node. Computed by memoized DFS over drivers.
        let mut memo: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut best = 0;
        for &out in &self.outputs {
            best = best.max(self.depth_of(out, &mut memo));
        }
        best
    }

    fn depth_of(&self, id: NodeId, memo: &mut Vec<Option<usize>>) -> usize {
        if let Some(d) = memo[id.0] {
            return d;
        }
        // Mark to guard against combinational loops (which the DRC reports).
        memo[id.0] = Some(0);
        let node = &self.nodes[id.0];
        let own = usize::from(node.kind.is_clocked());
        let mut upstream = 0;
        for port in 0..node.kind.input_ports() {
            if let Some(driver) = self.driver_of(id, port) {
                upstream = upstream.max(self.depth_of(driver.node, memo));
            }
        }
        let depth = own + upstream;
        memo[id.0] = Some(depth);
        depth
    }

    /// Per-output logic depth (number of clocked stages driving each primary
    /// output), in the order of [`Netlist::outputs`].
    #[must_use]
    pub fn output_depths(&self) -> Vec<usize> {
        let mut memo: Vec<Option<usize>> = vec![None; self.nodes.len()];
        self.outputs
            .iter()
            .map(|&out| self.depth_of(out, &mut memo))
            .collect()
    }

    /// Pretty-prints the netlist as a human-readable text listing.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("netlist {}\n", self.name));
        for node in &self.nodes {
            let kind = match &node.kind {
                NodeKind::Input => "INPUT".to_string(),
                NodeKind::Output => "OUTPUT".to_string(),
                NodeKind::ClockSource => "CLOCK".to_string(),
                NodeKind::Cell(c) => c.short_name().to_string(),
            };
            let drivers: Vec<String> = (0..node.kind.input_ports())
                .map(|p| match self.driver_of(node.id, p) {
                    Some(d) => format!("{}#{}", self.node(d.node).name, d.port),
                    None => "<unconnected>".to_string(),
                })
                .collect();
            out.push_str(&format!(
                "  {:<6} {:<24} <- [{}]\n",
                kind,
                node.name,
                drivers.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_netlist() -> Netlist {
        // m -> XOR(m, m2) -> out, plus clock.
        let mut nl = Netlist::new("tiny");
        let a = nl.add_input("m1");
        let b = nl.add_input("m2");
        let clk = nl.add_clock("clk");
        let xor = nl.add_cell(CellKind::Xor, "x0");
        let out = nl.add_output("c1");
        nl.connect(PortRef::of(a), xor, 0);
        nl.connect(PortRef::of(b), xor, 1);
        nl.connect(PortRef::of(xor), out, 0);
        nl.add_clock_sink(xor);
        let _ = clk;
        nl
    }

    #[test]
    fn build_and_query() {
        let nl = tiny_netlist();
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.outputs().len(), 1);
        assert!(nl.clock().is_some());
        assert_eq!(nl.count_cells(CellKind::Xor), 1);
        assert_eq!(nl.logic_depth(), 1);
        assert_eq!(nl.clock_sinks().len(), 1);
        let out = nl.outputs()[0];
        let driver = nl.driver_of(out, 0).unwrap();
        assert_eq!(nl.node(driver.node).name, "x0");
    }

    #[test]
    fn sinks_of_lists_fanout() {
        let nl = tiny_netlist();
        let a = nl.inputs()[0];
        let sinks = nl.sinks_of(PortRef::of(a));
        assert_eq!(sinks.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already driven")]
    fn double_driving_an_input_port_panics() {
        let mut nl = tiny_netlist();
        let a = nl.inputs()[0];
        let out = nl.outputs()[0];
        nl.connect(PortRef::of(a), out, 0);
    }

    #[test]
    #[should_panic(expected = "no output port")]
    fn invalid_output_port_panics() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let out = nl.add_output("o");
        nl.connect(PortRef { node: a, port: 1 }, out, 0);
    }

    #[test]
    #[should_panic(expected = "already has a clock")]
    fn two_clock_sources_panic() {
        let mut nl = Netlist::new("bad");
        nl.add_clock("clk1");
        nl.add_clock("clk2");
    }

    #[test]
    #[should_panic(expected = "only clocked cells")]
    fn splitter_cannot_be_clock_sink() {
        let mut nl = Netlist::new("bad");
        let s = nl.add_cell(CellKind::Splitter, "s0");
        nl.add_clock_sink(s);
    }

    #[test]
    fn histogram_counts_cells() {
        let mut nl = tiny_netlist();
        nl.add_cell(CellKind::Dff, "d0");
        nl.add_cell(CellKind::Dff, "d1");
        let hist = nl.cell_histogram();
        assert_eq!(hist[&CellKind::Xor], 1);
        assert_eq!(hist[&CellKind::Dff], 2);
    }

    #[test]
    fn logic_depth_counts_clocked_stages_only() {
        let mut nl = Netlist::new("depth");
        let a = nl.add_input("a");
        let spl = nl.add_cell(CellKind::Splitter, "s");
        let d1 = nl.add_cell(CellKind::Dff, "d1");
        let d2 = nl.add_cell(CellKind::Dff, "d2");
        let out = nl.add_output("o");
        let out2 = nl.add_output("o2");
        nl.connect(PortRef::of(a), spl, 0);
        nl.connect(PortRef { node: spl, port: 0 }, d1, 0);
        nl.connect(PortRef { node: spl, port: 1 }, out2, 0);
        nl.connect(PortRef::of(d1), d2, 0);
        nl.connect(PortRef::of(d2), out, 0);
        assert_eq!(nl.logic_depth(), 2);
        assert_eq!(nl.output_depths(), vec![2, 0]);
    }

    #[test]
    fn reverse_indexes_match_a_scan_of_the_connection_list() {
        let mut nl = tiny_netlist();
        // Add some fan-out and a clock tree to exercise multi-sink ports.
        let xor = nl.nodes()[3].id;
        let d0 = nl.add_cell(CellKind::Dff, "d0");
        nl.add_clock_sink(d0);
        let o2 = nl.add_output("c2");
        // xor already drives c1; route a second sink through the DFF chain
        // via a splitter to stay fan-out-legal, then build the clock tree.
        let _ = (xor, d0, o2);
        let a2 = nl.add_input("m3");
        nl.connect(PortRef::of(a2), d0, 0);
        nl.connect(PortRef::of(d0), o2, 0);
        synth::build_clock_tree(&mut nl, "clk");

        for node in nl.nodes() {
            for port in 0..node.kind.input_ports() {
                let scanned = nl
                    .connections()
                    .iter()
                    .find(|c| c.to == node.id && c.to_port == port)
                    .map(|c| c.from);
                assert_eq!(nl.driver_of(node.id, port), scanned, "{}", node.name);
            }
            for port in 0..node.kind.output_ports() {
                let from = PortRef {
                    node: node.id,
                    port,
                };
                let scanned: Vec<(NodeId, usize)> = nl
                    .connections()
                    .iter()
                    .filter(|c| c.from == from)
                    .map(|c| (c.to, c.to_port))
                    .collect();
                assert_eq!(nl.sinks_of(from), scanned, "{}#{port}", node.name);
            }
        }
    }

    #[test]
    fn to_text_mentions_every_node() {
        let nl = tiny_netlist();
        let text = nl.to_text();
        assert!(text.contains("m1"));
        assert!(text.contains("x0"));
        assert!(text.contains("c1"));
        assert!(text.contains("XOR"));
    }
}
