//! Cancellation-aware XOR factoring (Boyar–Peralta style).
//!
//! [`GreedyFactoringPass`](crate::pass::GreedyFactoringPass) is
//! *cancellation-free*: it only extracts a factor `a ⊕ b` where both `a` and
//! `b` are literal terms of an equation, so every rewrite shrinks a term
//! list by replacing two terms with one and no signal's support ever
//! overlaps a sibling's. That restriction is what leaves the SEC-DED(72,64)
//! encoder at 144 XOR against a ~120 structural lower bound: the best known
//! straight-line programs for dense GF(2) parity systems *reuse* big shared
//! sums and subtract the difference back out (`x ⊕ x = 0`), which a
//! cancellation-free search can never express.
//!
//! [`CancellationFactoringPass`] lifts the restriction. It works on the
//! *support* level (each signal's GF(2) footprint over the message bits,
//! packed into a `u128` word) and greedily applies three rewrite families to
//! the per-output term lists, all under the same depth budget as the Paar
//! pass:
//!
//! * **free rewrites** — a subset of 2–4 terms whose supports XOR to the
//!   support of an *existing* signal (or to zero) collapses onto that signal
//!   at zero gate cost;
//! * **pair factors** — the classic Paar move, generalized to match by
//!   support rather than by signal identity;
//! * **cancelling factors** — a new gate `v = x ⊕ y` built from any two
//!   existing signals whose combined support equals the XOR of *three or
//!   four* terms of one or more equations; each use replaces that subset
//!   with the single signal `v`, which is exactly the Boyar–Peralta "use a
//!   known sum and cancel the overlap" step.
//!
//! The search is a *bounded-distance* heuristic: rewrites look at subsets of
//! at most [`MAX_SUBSET`] terms and constructor candidates at distance one
//! gate, rather than solving the (NP-hard) minimum straight-line program.
//! Candidate scoring is lazy — while plain pair sharing still pays well the
//! pass behaves exactly like a support-level Paar and skips the subset
//! enumeration entirely, so the expensive cancellation search only runs on
//! the small residual systems where it matters.
//!
//! When no rewrite earns anything, the pass performs one **cost-neutral
//! lowering step**: it combines the two shallowest terms of the largest
//! depth-critical equation into an explicit factor. A term list of `s`
//! signals needs `s − 1` joins no matter what, so the move is free — but it
//! *materializes* a partial sum as a reusable signal, which is what lets a
//! later rewrite express another equation as `big-shared-sum ⊕ small
//! correction`. (This mirrors how Boyar–Peralta's algorithm only ever
//! reasons about fully materialized signals.) Lowering is restricted to
//! equations already at the maximum achievable depth, so the
//! [`TreeBalancePass`](crate::pass::TreeBalancePass) pad-elision shaping of
//! the shallower equations is untouched.
//!
//! Every rewrite is re-verified by the pass manager through
//! [`ParityIr::verify_against`], whose support expansion is exact XOR and
//! therefore models cancellation faithfully; the catalog additionally
//! gate-level-simulates every synthesized netlist against its reference
//! code.

use crate::ir::{ParityIr, SignalId};
use crate::pass::{Pass, PassError, SynthUnit};
use std::collections::HashMap;

/// Largest term subset a cancellation rewrite may replace at once.
///
/// Subsets of two are ordinary sharing, three and four are the cancelling
/// rewrites. Five and beyond cost `O(|terms|^5)` to enumerate and almost
/// never survive the depth budget; bounding the distance here is what keeps
/// the pass polynomial and fast.
pub const MAX_SUBSET: usize = 4;

/// Term lists longer than this skip the 3/4-subset enumeration (pairs are
/// always scored). Long lists appear only in the early dense phase, where no
/// useful constructor signals exist yet anyway; bounding the enumeration
/// keeps the pass near the Paar pass's cost on wide codes.
pub const SUBSET_DEC_CAP: usize = 18;

/// Term lists longer than this skip the 4-subset enumeration (cubic vs
/// quartic growth — quads are the most expensive and rarest rewrites).
pub const QUAD_DEC_CAP: usize = 12;

/// How many top rectangle candidates get a full mask-level rollout before
/// one is chosen (see `best_rectangle`).
pub const RECT_ROLLOUT_WIDTH: usize = 8;

/// Total corrections a rectangle may spend (see `best_rectangle`): elements
/// missing from this many taker term lists in total may still join the
/// shared sum, with the missing targets toggling the element back in.
pub const CORRECTION_CAP: i64 = 2;

/// At a full stall, at most this many subset supports get the O(|signals|)
/// companion scan (ranked by potential gain) — the scan is the pass's most
/// expensive tier and its candidates are rare, so a bounded sweep keeps the
/// worst-case cost linear in the signal count.
pub const COMPANION_SCAN_CAP: usize = 64;

/// One subset occurrence behind a candidate support: which output it is in,
/// the `Σ 2^depth` its terms contribute (for O(1) feasibility checks), and
/// the joins saved by replacing it with a single signal.
#[derive(Debug, Clone, Copy)]
struct SubsetUse {
    output: usize,
    removed: u128,
    gain: i64,
}

/// Widest message word the pass supports: supports are packed into `u128`.
/// Wider codes fall back to the cancellation-free pipeline (the pass
/// becomes a no-op and says so in its report).
pub const MAX_SUPPORT_BITS: usize = 128;

/// Cancellation-aware factoring pass; drop-in replacement for
/// [`GreedyFactoringPass`](crate::pass::GreedyFactoringPass) in the
/// pipeline's factoring slot (selected by
/// [`Schedule`](crate::pass::Schedule)).
pub struct CancellationFactoringPass;

impl Pass for CancellationFactoringPass {
    fn name(&self) -> &'static str {
        "factor-cancellation"
    }

    fn run(&self, unit: &mut SynthUnit) -> Result<String, PassError> {
        if !unit.options.factoring {
            return Ok("disabled by options".to_string());
        }
        if unit.ir.k() > MAX_SUPPORT_BITS {
            return Ok(format!(
                "skipped: k = {} exceeds the {MAX_SUPPORT_BITS}-bit support word",
                unit.ir.k()
            ));
        }
        let budget = unit.ir.depth_budget() + unit.options.depth_slack;
        let outcome = factor_with_cancellation(&mut unit.ir, budget);
        Ok(format!(
            "{} factors ({} cancelling), {} free rewrites, {} dead factors pruned (depth budget {budget})",
            outcome.gates, outcome.cancelling, outcome.free_rewrites, outcome.pruned
        ))
    }
}

/// What [`factor_with_cancellation`] did, for the pass report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CancellationOutcome {
    /// Factors created (shared pairs and cancelling sums).
    pub gates: usize,
    /// Factors whose operands overlap in support (true cancellation).
    pub cancelling: usize,
    /// Rewrites that used an existing signal at zero gate cost.
    pub free_rewrites: usize,
    /// Dead factors removed by the final liveness sweep.
    pub pruned: usize,
}

/// Runs the bounded-distance cancellation-aware factoring over the IR's
/// term lists in place.
///
/// The search is a *portfolio of two deterministic arrangements*: one takes
/// every rectangle tie lexicographically, the other arbitrates ties with a
/// mask-level greedy rollout (see `best_rectangle`). Neither dominates —
/// the rollout wins on the narrow SEC-DED members, the lexicographic
/// arrangement on the widest — so both run and the cheaper program is
/// kept (ties go to the lexicographic arrangement).
///
/// Results for factor-free input IRs are memoized process-wide: the search
/// is deterministic in `(term lists, budget)`, and the same catalog
/// generators are synthesized many times per process (schedule planning
/// prices this pass before the pipeline runs it, and test suites rebuild
/// the catalog per module), so repeat calls are clone-cheap.
///
/// # Panics
/// Panics if `ir.k()` exceeds [`MAX_SUPPORT_BITS`] (the pass wrapper guards
/// this and skips instead).
pub fn factor_with_cancellation(ir: &mut ParityIr, budget: usize) -> CancellationOutcome {
    use std::sync::{Mutex, OnceLock};
    type CacheKey = (usize, Vec<u128>, usize);
    static CACHE: OnceLock<Mutex<HashMap<CacheKey, (ParityIr, CancellationOutcome)>>> =
        OnceLock::new();

    let key = ir.factors().is_empty().then(|| {
        let columns: Vec<u128> = (0..ir.num_outputs())
            .map(|j| {
                ir.output_terms(j)
                    .iter()
                    .map(|&t| 1u128 << t)
                    .fold(0, |acc, bit| acc | bit)
            })
            .collect();
        (ir.k(), columns, budget)
    });
    if let Some(key) = &key {
        let cache = CACHE
            .get_or_init(Mutex::default)
            .lock()
            .expect("cache lock");
        if let Some((cached, outcome)) = cache.get(key) {
            *ir = cached.clone();
            sfq_telemetry::global()
                .counter("synth.cancel.cache_hits")
                .inc();
            return *outcome;
        }
    }
    sfq_telemetry::global()
        .counter("synth.cancel.cache_misses")
        .inc();
    let mut best: Option<(ParityIr, CancellationOutcome)> = None;
    for rollout_ties in [false, true] {
        let mut candidate = ir.clone();
        let outcome = factor_arrangement(&mut candidate, budget, rollout_ties);
        if best
            .as_ref()
            .is_none_or(|(b, _)| candidate.xor_count() < b.xor_count())
        {
            best = Some((candidate, outcome));
        }
    }
    let (winner, outcome) = best.expect("both arrangements ran");
    *ir = winner;
    let registry = sfq_telemetry::global();
    registry
        .counter("synth.cancel.factors")
        .add(outcome.gates as u64);
    registry
        .counter("synth.cancel.cancelling")
        .add(outcome.cancelling as u64);
    registry
        .counter("synth.cancel.free_rewrites")
        .add(outcome.free_rewrites as u64);
    registry
        .counter("synth.cancel.pruned")
        .add(outcome.pruned as u64);
    if let Some(key) = key {
        CACHE
            .get_or_init(Mutex::default)
            .lock()
            .expect("cache lock")
            .insert(key, (ir.clone(), outcome));
    }
    outcome
}

/// One deterministic arrangement of the factoring search (see
/// [`factor_with_cancellation`]).
fn factor_arrangement(ir: &mut ParityIr, budget: usize, rollout_ties: bool) -> CancellationOutcome {
    let mut state = State::new(ir, budget, rollout_ties);
    // Safety valve: every step strictly shrinks the term lists or adds a
    // distinct new support, both of which are bounded; the cap only guards
    // against a future broken edit looping forever.
    let max_steps = 4 * state.decs.iter().map(Vec::len).sum::<usize>() + 64;
    let mut rewrites_applied = 0u64;
    for _ in 0..max_steps {
        if !state.step() {
            break;
        }
        rewrites_applied += 1;
    }
    sfq_telemetry::global()
        .counter("synth.cancel.rewrites_applied")
        .add(rewrites_applied);
    for (j, dec) in state.decs.iter().enumerate() {
        state.ir.set_output_terms(j, dec.clone());
    }
    state.outcome.pruned = state.ir.retain_live_factors();
    state.outcome
}

/// A scored candidate gate: its support, how to build it, and what it earns.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    support: u128,
    /// Constructor operands (existing signals).
    ctor: (SignalId, SignalId),
    /// Depth the new gate would have.
    depth: usize,
    /// Net gates saved if applied (uses weighted by subset size, minus the
    /// one gate the candidate costs).
    net: i64,
    /// Occurrence-frequency of the constructor operands across all term
    /// lists — the Paar pass's secondary criterion: among equal-net
    /// candidates, committing the *rare* signals first keeps the widely
    /// shared ones available for later, larger extractions.
    freq: usize,
}

struct State<'a> {
    ir: &'a mut ParityIr,
    budget: usize,
    /// Support word per signal.
    supports: Vec<u128>,
    /// First signal carrying each support (later duplicates are only created
    /// when they are strictly shallower).
    by_support: HashMap<u128, SignalId>,
    /// Current term list per output, sorted ascending.
    decs: Vec<Vec<SignalId>>,
    /// `Σ 2^depth(term)` per output — `achievable_depth ≤ budget` is exactly
    /// `sum ≤ 2^budget`, so feasibility checks are O(1).
    sums: Vec<u128>,
    /// Supports whose candidate gate was created but applied nowhere (a
    /// scoring/apply disagreement); never re-proposed.
    banned: std::collections::HashSet<u128>,
    /// Incrementally maintained constructor index: every support reachable
    /// as the XOR of two existing canonical signals, with its shallowest
    /// (then smallest) constructor pair. Kept up to date by
    /// `register_pairs_of` so stall-time scoring never rescans all pairs.
    reachable: HashMap<u128, (SignalId, SignalId, usize)>,
    /// Whether rectangle ties are arbitrated by the mask-level rollout.
    rollout_ties: bool,
    /// Consecutive full stalls whose companion scan found nothing, and the
    /// number of full stalls seen — used to back the expensive scan off.
    companion_dry: (u32, u32),
    outcome: CancellationOutcome,
}

impl<'a> State<'a> {
    fn new(ir: &'a mut ParityIr, budget: usize, rollout_ties: bool) -> Self {
        assert!(ir.k() <= MAX_SUPPORT_BITS, "support word too narrow");
        let supports: Vec<u128> = ir
            .supports()
            .iter()
            .map(|s| {
                let mut word = 0u128;
                for i in 0..s.len() {
                    if s.get(i) {
                        word |= 1 << i;
                    }
                }
                word
            })
            .collect();
        let mut by_support = HashMap::with_capacity(supports.len() * 2);
        for (id, &s) in supports.iter().enumerate() {
            by_support.entry(s).or_insert(id);
        }
        let decs: Vec<Vec<SignalId>> = (0..ir.num_outputs())
            .map(|j| ir.output_terms(j).to_vec())
            .collect();
        let sums = decs
            .iter()
            .map(|dec| dec.iter().map(|&t| 1u128 << ir.depth(t)).sum())
            .collect();
        let mut state = State {
            ir,
            budget,
            supports,
            by_support,
            decs,
            sums,
            banned: std::collections::HashSet::new(),
            reachable: HashMap::new(),
            rollout_ties,
            companion_dry: (0, 0),
            outcome: CancellationOutcome::default(),
        };
        for v in 0..state.supports.len() {
            state.register_pairs_of(v);
        }
        state
    }

    fn depth_bit(&self, signal: SignalId) -> u128 {
        1u128 << self.ir.depth(signal)
    }

    /// Toggles `signal` in output `j`'s term list (XOR-set semantics: adding
    /// a signal that is already present removes it, because `x ⊕ x = 0`).
    fn toggle(&mut self, j: usize, signal: SignalId) {
        let bit = self.depth_bit(signal);
        match self.decs[j].binary_search(&signal) {
            Ok(pos) => {
                self.decs[j].remove(pos);
                self.sums[j] -= bit;
            }
            Err(pos) => {
                self.decs[j].insert(pos, signal);
                self.sums[j] += bit;
            }
        }
    }

    /// Would replacing `subset` of output `j` by one signal of depth
    /// `depth` keep the output within the depth budget? (Conservative when
    /// the replacement is already a term — the toggle then removes it and
    /// the true sum is lower still.)
    fn feasible(&self, j: usize, subset: &[SignalId], depth: usize) -> bool {
        let removed: u128 = subset.iter().map(|&t| self.depth_bit(t)).sum();
        self.sums[j] - removed + (1u128 << depth) <= 1u128 << self.budget
    }

    /// Removing `subset` outright (a zero-sum collapse) is always feasible;
    /// this mirrors [`State::feasible`] for the `support == 0` case.
    fn apply_collapse(&mut self, j: usize, subset: &[SignalId]) {
        for &t in subset {
            self.toggle(j, t);
        }
        assert!(!self.decs[j].is_empty(), "output {j} lost all terms");
    }

    /// Creates (or reuses) the gate for `candidate` and rewrites every
    /// matching subset in every output. Returns the number of terms saved.
    fn apply_candidate(&mut self, candidate: Candidate) -> usize {
        let (a, b) = candidate.ctor;
        let v = self.get_or_create_gate(a, b);
        let mut saved = 0;
        for j in 0..self.decs.len() {
            saved += self.rewrite_with(j, v);
        }
        saved
    }

    /// Applies every feasible rewrite of output `j` that replaces a subset
    /// XOR-ing to `v`'s support by `v` itself, then every companion rewrite
    /// (subset → `{v, w}` with `w` existing). Returns the number of terms
    /// saved.
    fn rewrite_with(&mut self, j: usize, v: SignalId) -> usize {
        let target = self.supports[v];
        let vdepth = self.ir.depth(v);
        let mut saved = 0;
        while let Some(subset) = self.find_subset(j, target, Some(v)) {
            if !self.feasible(j, &subset, vdepth) {
                break;
            }
            let before = self.decs[j].len();
            for &t in &subset {
                self.toggle(j, t);
            }
            self.toggle(j, v);
            assert!(!self.decs[j].is_empty(), "output {j} lost all terms");
            saved += before - self.decs[j].len();
        }
        while let Some((subset, w)) = self.find_companion_subset(j, v) {
            let before = self.decs[j].len();
            for &t in &subset {
                self.toggle(j, t);
            }
            self.toggle(j, v);
            self.toggle(j, w);
            assert!(!self.decs[j].is_empty(), "output {j} lost all terms");
            saved += before - self.decs[j].len();
        }
        saved
    }

    /// First 3/4-term subset `U` of output `j` with `⊕U = supp(v) ⊕
    /// supp(w)` for some existing signal `w ∉ U` (depth-feasibly), in
    /// deterministic order.
    fn find_companion_subset(&self, j: usize, v: SignalId) -> Option<(Vec<SignalId>, SignalId)> {
        if self.decs[j].len() > SUBSET_DEC_CAP {
            return None;
        }
        let target = self.supports[v];
        let vdepth = self.ir.depth(v);
        let dec: Vec<SignalId> = self.decs[j].iter().copied().filter(|&t| t != v).collect();
        let n = dec.len();
        let check = |subset: &[SignalId], xor: u128| -> Option<(Vec<SignalId>, SignalId)> {
            let w = *self.by_support.get(&(xor ^ target))?;
            if w == v || subset.contains(&w) {
                return None;
            }
            let removed: u128 = subset.iter().map(|&t| self.depth_bit(t)).sum();
            let added = (1u128 << vdepth) + self.depth_bit(w);
            if self.sums[j] - removed + added <= 1u128 << self.budget {
                Some((subset.to_vec(), w))
            } else {
                None
            }
        };
        for x in 0..n {
            let sx = self.supports[dec[x]];
            for y in (x + 1)..n {
                let sxy = sx ^ self.supports[dec[y]];
                for z in (y + 1)..n {
                    let sxyz = sxy ^ self.supports[dec[z]];
                    if let Some(found) = check(&[dec[x], dec[y], dec[z]], sxyz) {
                        return Some(found);
                    }
                    if MAX_SUBSET < 4 {
                        continue;
                    }
                    for &du in &dec[z + 1..] {
                        let s4 = sxyz ^ self.supports[du];
                        if let Some(found) = check(&[dec[x], dec[y], dec[z], du], s4) {
                            return Some(found);
                        }
                    }
                }
            }
        }
        None
    }

    /// First subset of 2..=[`MAX_SUBSET`] terms of output `j` (excluding
    /// `skip`) whose supports XOR to `target`, in deterministic index order.
    fn find_subset(&self, j: usize, target: u128, skip: Option<SignalId>) -> Option<Vec<SignalId>> {
        let dec: Vec<SignalId> = self.decs[j]
            .iter()
            .copied()
            .filter(|&t| Some(t) != skip)
            .collect();
        let n = dec.len();
        for x in 0..n {
            let sx = self.supports[dec[x]];
            for y in (x + 1)..n {
                if sx ^ self.supports[dec[y]] == target {
                    return Some(vec![dec[x], dec[y]]);
                }
            }
        }
        for x in 0..n {
            let sx = self.supports[dec[x]];
            for y in (x + 1)..n {
                let sxy = sx ^ self.supports[dec[y]];
                for z in (y + 1)..n {
                    if sxy ^ self.supports[dec[z]] == target {
                        return Some(vec![dec[x], dec[y], dec[z]]);
                    }
                }
            }
        }
        if MAX_SUBSET >= 4 {
            for x in 0..n {
                let sx = self.supports[dec[x]];
                for y in (x + 1)..n {
                    let sxy = sx ^ self.supports[dec[y]];
                    for z in (y + 1)..n {
                        let sxyz = sxy ^ self.supports[dec[z]];
                        for w in (z + 1)..n {
                            if sxyz ^ self.supports[dec[w]] == target {
                                return Some(vec![dec[x], dec[y], dec[z], dec[w]]);
                            }
                        }
                    }
                }
            }
        }
        None
    }

    /// Finds the best *rectangle*: a target subset `J` (as a bit mask over
    /// outputs) and the set `I` of signals currently appearing in every term
    /// list of `J`. Replacing `I` by its one shared sum in all of `J` saves
    /// `(|I| − 1) · (|J| − 1)` gates — the `|I| > 2` generalization of the
    /// Paar pair that pair-greedy fragments. With at most `2^outputs` target
    /// subsets the mining is exact over `J` (outputs beyond 16 are not
    /// enumerated; real parity systems have ≤ a dozen dense rows).
    fn best_rectangle(&self) -> Option<(Vec<usize>, Vec<SignalId>, i64)> {
        let dense: Vec<usize> = (0..self.decs.len())
            .filter(|&j| self.decs[j].len() >= 2)
            .collect();
        if dense.len() < 2 || dense.len() > 16 {
            return None;
        }
        // Participation mask of every signal over the dense outputs.
        let mut masks: HashMap<SignalId, u32> = HashMap::new();
        for (bit, &j) in dense.iter().enumerate() {
            for &t in &self.decs[j] {
                *masks.entry(t).or_insert(0) |= 1 << bit;
            }
        }
        // Depth of a balanced fold of `count` leaves no deeper than
        // `max_leaf`, as a `2^depth` capacity bit.
        let fold_depth_bit = |count: usize, max_leaf: u128| -> u128 {
            let mut bit = max_leaf.max(1);
            let mut n = count;
            while n > 1 {
                bit <<= 1;
                n = n.div_ceil(2);
            }
            bit
        };
        let cap = 1u128 << self.budget;
        let mut candidates: Vec<(i64, u32, Vec<SignalId>, Vec<usize>)> = Vec::new();
        for subset in 3u32..(1 << dense.len()) {
            let width = i64::from(subset.count_ones());
            if width < 2 {
                continue;
            }
            // Majority inclusion with a bounded correction budget: an
            // element in `c` of the `width` targets contributes
            // `2c − width − 1` to the saving — it is removed from `c` term
            // lists and toggled back in as a *correction* in the `width − c`
            // others, which is sound because `x ⊕ x = 0`. Exact rectangles
            // are the `c = width` special case. Corrections are capped
            // ([`CORRECTION_CAP`]): an unbounded majority sum saves more in
            // one step but scrambles the residual system so badly that the
            // later exact extractions lose more than it gained.
            let mut partial: Vec<(i64, SignalId)> = Vec::new();
            let mut members: Vec<SignalId> = Vec::new();
            let mut saving = -(width - 1);
            for (&t, &mask) in &masks {
                let c = i64::from((mask & subset).count_ones());
                if c == width {
                    members.push(t);
                    saving += width - 1;
                } else if 2 * c > width + 1 {
                    partial.push((width - c, t));
                }
            }
            partial.sort_unstable();
            let mut correction_budget = CORRECTION_CAP;
            for &(corrections, t) in &partial {
                if corrections > correction_budget {
                    break;
                }
                correction_budget -= corrections;
                members.push(t);
                saving += width - 2 * corrections - 1;
            }
            if members.len() < 2 || saving < 1 {
                continue;
            }
            members.sort_unstable();
            let max_leaf = members
                .iter()
                .map(|&t| self.depth_bit(t))
                .max()
                .unwrap_or(1);
            let added = fold_depth_bit(members.len(), max_leaf);
            // Every target of the subset must stay within its depth budget:
            // members it holds leave its tree, corrections and the shared
            // sum enter it.
            let takers: Vec<usize> = dense
                .iter()
                .enumerate()
                .filter(|&(bit, _)| subset & (1 << bit) != 0)
                .map(|(_, &j)| j)
                .collect();
            let all_feasible = takers.iter().all(|&j| {
                let mut sum = self.sums[j] + added;
                for &t in &members {
                    let bit = self.depth_bit(t);
                    if self.decs[j].binary_search(&t).is_ok() {
                        sum -= bit;
                    } else {
                        sum += bit;
                    }
                }
                sum <= cap
            });
            if !all_feasible {
                continue;
            }
            // Deterministic collection: candidates carry their myopic
            // saving; the cascade-aware selection happens below.
            candidates.push((saving, subset, members, takers));
        }
        if candidates.is_empty() {
            return None;
        }
        // Deterministic ranking: saving, then the wider member set, then the
        // lexicographically smallest member list.
        candidates.sort_by(|a, b| {
            (b.0, b.2.len(), std::cmp::Reverse(&b.2)).cmp(&(
                a.0,
                a.2.len(),
                std::cmp::Reverse(&a.2),
            ))
        });
        if !self.rollout_ties {
            let (saving, _, members, takers) = candidates.swap_remove(0);
            return Some((takers, members, saving));
        }
        // Greedy-by-saving alone can walk into cascade traps: a merged
        // two-target rectangle may "steal" elements that a wider rectangle
        // would have shared with a third target, losing more later than the
        // merge gains now. In the tie-arbitrating arrangement, candidates
        // tied on myopic saving are ranked by rolling the mask-level greedy
        // out to exhaustion — the best *cascade* wins, not the best step.
        // (The rollout ignores the pair tier and depth, so it only
        // arbitrates decisions the myopic score cannot.)
        let top_saving = candidates[0].0;
        candidates.retain(|c| c.0 == top_saving);
        candidates.truncate(RECT_ROLLOUT_WIDTH);
        let outputs = dense.len() as u32;
        let mut best: Option<(i64, usize)> = None;
        for (idx, (saving, subset, members, _)) in candidates.iter().enumerate() {
            let score = if candidates.len() == 1 {
                *saving
            } else {
                let mut after: Vec<u32> = Vec::with_capacity(masks.len() + 1);
                for (&t, &mask) in &masks {
                    let mask = if members.binary_search(&t).is_ok() {
                        mask ^ subset
                    } else {
                        mask
                    };
                    if mask != 0 {
                        after.push(mask);
                    }
                }
                after.push(*subset);
                saving + rollout_saving(after, outputs)
            };
            if best.is_none_or(|(bs, _)| score > bs) {
                best = Some((score, idx));
            }
        }
        let (_, idx) = best.expect("candidates is non-empty");
        let (saving, _, members, takers) = candidates.swap_remove(idx);
        Some((takers, members, saving))
    }

    /// Extracts a rectangle found by [`State::best_rectangle`]: folds the
    /// member signals into one balanced shared sum (reusing existing gates
    /// where supports match) and substitutes it into every taker output.
    fn extract_rectangle(&mut self, takers: &[usize], members: &[SignalId]) {
        // Huffman fold: always combine within the two shallowest depth
        // classes (depth-optimal, so the feasibility pre-check holds).
        // Among admissible pairs prefer one whose gate already exists (free
        // cross-rectangle sharing), then the smallest ids.
        let mut pool: Vec<SignalId> = members.to_vec();
        while pool.len() > 1 {
            pool.sort_by_key(|&t| (self.ir.depth(t), t));
            let (d1, d2) = (self.ir.depth(pool[0]), self.ir.depth(pool[1]));
            let admissible = |s: &Self, x: SignalId, y: SignalId| {
                let mut d = [s.ir.depth(x), s.ir.depth(y)];
                d.sort_unstable();
                d == [d1, d2]
            };
            let mut chosen = (pool[0], pool[1]);
            'search: for (xi, &x) in pool.iter().enumerate() {
                for &y in &pool[xi + 1..] {
                    if !admissible(self, x, y) {
                        continue;
                    }
                    let support = self.supports[x] ^ self.supports[y];
                    if self
                        .by_support
                        .get(&support)
                        .is_some_and(|&w| self.ir.depth(w) <= d2 + 1)
                    {
                        chosen = (x, y);
                        break 'search;
                    }
                }
            }
            pool.retain(|&t| t != chosen.0 && t != chosen.1);
            if self.supports[chosen.0] == self.supports[chosen.1] {
                continue; // equal supports cancel outright
            }
            let joined = self.get_or_create_gate(chosen.0, chosen.1);
            if let Some(pos) = pool.iter().position(|&t| t == joined) {
                pool.remove(pos); // joined ⊕ joined = 0
            } else {
                pool.push(joined);
            }
        }
        let sum = pool.first().copied();
        for &j in takers {
            for &t in members {
                self.toggle(j, t);
            }
            if let Some(sum) = sum {
                self.toggle(j, sum);
            }
            assert!(!self.decs[j].is_empty(), "output {j} lost all terms");
        }
    }

    /// Returns the signal `a ⊕ b`, reusing an existing equal-support signal
    /// when it is no deeper than a fresh gate would be.
    fn get_or_create_gate(&mut self, a: SignalId, b: SignalId) -> SignalId {
        let support = self.supports[a] ^ self.supports[b];
        let depth = self.ir.depth(a).max(self.ir.depth(b)) + 1;
        if let Some(&w) = self.by_support.get(&support) {
            if self.ir.depth(w) <= depth {
                return w;
            }
        }
        let v = self.ir.add_factor(a, b);
        self.supports.push(support);
        self.by_support.entry(support).or_insert(v);
        self.outcome.gates += 1;
        if self.supports[a] & self.supports[b] != 0 {
            self.outcome.cancelling += 1;
        }
        self.register_pairs_of(v);
        v
    }

    /// Extends the incremental constructor index with every pair formed by
    /// `v` and an existing canonical signal (see `State::reachable`).
    fn register_pairs_of(&mut self, v: SignalId) {
        let sv = self.supports[v];
        let dv = self.ir.depth(v);
        for x in 0..self.supports.len() {
            if x == v {
                continue;
            }
            let sx = self.supports[x];
            if self.by_support.get(&sx) != Some(&x) {
                continue;
            }
            let s = sv ^ sx;
            if s == 0 {
                continue;
            }
            let depth = dv.max(self.ir.depth(x)) + 1;
            let pair = (v.min(x), v.max(x));
            match self.reachable.entry(s) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let (ex, ey, ed) = *e.get();
                    if (depth, pair) < (ed, (ex, ey)) {
                        e.insert((pair.0, pair.1, depth));
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((pair.0, pair.1, depth));
                }
            }
        }
    }

    /// One greedy step. Returns `false` when no profitable rewrite remains.
    fn step(&mut self) -> bool {
        if self.apply_free_rewrites() {
            return true;
        }
        let rectangle = self.best_rectangle();
        let rect_saving = rectangle.as_ref().map_or(0, |(_, _, s)| *s);
        let pair_cands = self.score_pairs();
        let best_pair = best_candidate(&pair_cands);
        // Rectangles first: a wide shared sum saves (|I|−1)(|J|−1) at once,
        // and taking the pair tier first would fragment it.
        if rect_saving >= 2 && rect_saving > best_pair.map_or(0, |c| c.net) {
            let (takers, members, _) = rectangle.expect("saving implies a rectangle");
            self.extract_rectangle(&takers, &members);
            return true;
        }
        // Lazy staging: while plain support-level sharing still earns ≥ 2
        // gates per step there is no point paying for subset enumeration —
        // this keeps the dense early phase as cheap as the Paar pass.
        if let Some(c) = best_pair {
            if c.net >= 2 {
                self.apply_candidate(c);
                return true;
            }
        }
        if rect_saving >= 1 {
            let (takers, members, _) = rectangle.expect("saving implies a rectangle");
            self.extract_rectangle(&takers, &members);
            return true;
        }
        let subsets = self.subset_xors();
        let subset_cands = self.score_subsets(&pair_cands, &subsets);
        let best = match (best_pair, best_candidate(&subset_cands)) {
            (Some(p), Some(s)) => Some(if better(&s, &p) { s } else { p }),
            (p, s) => p.or(s),
        };
        if let Some(c) = best {
            if c.net >= 1 {
                self.apply_scored(c);
                return true;
            }
        }
        // Full stall: pay for the companion search — replace 3–4 terms by
        // {new gate, existing signal}, the depth-feasible "shared sum ⊕
        // correction" shape of Boyar–Peralta rewrites.
        // The companion scan is the most expensive tier and its rewrites
        // are rare; after two fruitless scans it backs off to every fourth
        // full stall (lowering steps in between still feed it fresh
        // materialized sums to cancel against).
        self.companion_dry.1 += 1;
        if self.companion_dry.0 < 2 || self.companion_dry.1.is_multiple_of(4) {
            let companion_cands = self.score_companions(&subsets);
            match best_candidate(&companion_cands) {
                Some(c) if c.net >= 1 => {
                    self.companion_dry.0 = 0;
                    self.apply_scored(c);
                    return true;
                }
                _ => self.companion_dry.0 += 1,
            }
        }
        self.lower_one()
    }

    /// Applies a scored candidate; if the apply pass disagrees with the
    /// scoring (no rewrite landed), bans the support so the candidate is
    /// never re-proposed — the dead gate is cleaned up by the final
    /// liveness sweep.
    fn apply_scored(&mut self, candidate: Candidate) {
        if self.apply_candidate(candidate) == 0 {
            self.banned.insert(candidate.support);
        }
    }

    /// Achievable depth of output `j` from its cached `Σ 2^depth`.
    fn achievable(&self, j: usize) -> usize {
        let mut depth = 0;
        while (1u128 << depth) < self.sums[j] {
            depth += 1;
        }
        depth
    }

    /// Cost-neutral lowering: combines the two shallowest terms of the
    /// largest depth-critical term list into a factor (total gate count is
    /// unchanged — the join was owed anyway — but the partial sum becomes a
    /// signal later rewrites can cancel against). Returns `false` when every
    /// depth-critical output is fully lowered, which ends the pass.
    fn lower_one(&mut self) -> bool {
        let max_depth = (0..self.decs.len())
            .map(|j| self.achievable(j))
            .max()
            .unwrap_or(0);
        let Some(j) = (0..self.decs.len())
            .filter(|&j| self.decs[j].len() >= 2 && self.achievable(j) == max_depth)
            .max_by_key(|&j| self.decs[j].len())
        else {
            return false;
        };
        // Two shallowest terms, smallest ids among equal depths (the term
        // list is sorted by id, so a stable selection on depth suffices).
        let mut terms: Vec<SignalId> = self.decs[j].clone();
        terms.sort_by_key(|&t| (self.ir.depth(t), t));
        let (a, b) = (terms[0].min(terms[1]), terms[0].max(terms[1]));
        let depth = self.ir.depth(a).max(self.ir.depth(b)) + 1;
        self.apply_candidate(Candidate {
            support: self.supports[a] ^ self.supports[b],
            ctor: (a, b),
            depth,
            net: 0,
            freq: 0,
        });
        true
    }

    /// Collapses every subset that already equals an existing signal (or
    /// zero) — pure wins that cost no gate. Returns whether any fired.
    fn apply_free_rewrites(&mut self) -> bool {
        let mut any = false;
        for j in 0..self.decs.len() {
            'rescan: loop {
                let dec = &self.decs[j];
                if dec.len() < 2 {
                    break;
                }
                for x in 0..dec.len() {
                    for y in (x + 1)..dec.len() {
                        let (c, d) = (dec[x], dec[y]);
                        let s = self.supports[c] ^ self.supports[d];
                        if s == 0 {
                            self.apply_collapse(j, &[c, d]);
                            self.outcome.free_rewrites += 1;
                            any = true;
                            continue 'rescan;
                        }
                        if let Some(&w) = self.by_support.get(&s) {
                            if w != c && w != d && self.feasible(j, &[c, d], self.ir.depth(w)) {
                                // Replacement first: the collapse assert
                                // must see the rewritten term list.
                                self.toggle(j, w);
                                self.apply_collapse(j, &[c, d]);
                                self.outcome.free_rewrites += 1;
                                any = true;
                                continue 'rescan;
                            }
                        }
                    }
                }
                // Larger free subsets only pay off (and stay affordable)
                // once the term lists are short.
                if dec.len() <= SUBSET_DEC_CAP {
                    if let Some((subset, w)) = self.find_free_subset(j) {
                        if let Some(w) = w {
                            self.toggle(j, w);
                        }
                        self.apply_collapse(j, &subset);
                        self.outcome.free_rewrites += 1;
                        any = true;
                        continue 'rescan;
                    }
                }
                break;
            }
        }
        any
    }

    /// A free subset of size 3..=[`MAX_SUBSET`]: XORs to zero, or to an
    /// existing signal outside the subset within the depth budget.
    fn find_free_subset(&self, j: usize) -> Option<(Vec<SignalId>, Option<SignalId>)> {
        let dec = &self.decs[j];
        let n = dec.len();
        for x in 0..n {
            let sx = self.supports[dec[x]];
            for y in (x + 1)..n {
                let sxy = sx ^ self.supports[dec[y]];
                for z in (y + 1)..n {
                    let sxyz = sxy ^ self.supports[dec[z]];
                    let triple = [dec[x], dec[y], dec[z]];
                    if sxyz == 0 {
                        return Some((triple.to_vec(), None));
                    }
                    if let Some(&w) = self.by_support.get(&sxyz) {
                        if !triple.contains(&w) && self.feasible(j, &triple, self.ir.depth(w)) {
                            return Some((triple.to_vec(), Some(w)));
                        }
                    }
                    if MAX_SUBSET < 4 || n > QUAD_DEC_CAP {
                        continue;
                    }
                    for u in (z + 1)..n {
                        let s4 = sxyz ^ self.supports[dec[u]];
                        let quad = [dec[x], dec[y], dec[z], dec[u]];
                        if s4 == 0 {
                            return Some((quad.to_vec(), None));
                        }
                        if let Some(&w) = self.by_support.get(&s4) {
                            if !quad.contains(&w) && self.feasible(j, &quad, self.ir.depth(w)) {
                                return Some((quad.to_vec(), Some(w)));
                            }
                        }
                    }
                }
            }
        }
        None
    }

    /// Occurrence count of every signal across all term lists (the Paar
    /// pass's tie-break input).
    fn frequencies(&self) -> HashMap<SignalId, usize> {
        let mut freq: HashMap<SignalId, usize> = HashMap::new();
        for dec in &self.decs {
            if dec.len() < 2 {
                continue;
            }
            for &t in dec {
                *freq.entry(t).or_insert(0) += 1;
            }
        }
        freq
    }

    /// Scores every support reachable as the XOR of a term *pair* of some
    /// output: the generalized Paar candidates.
    fn score_pairs(&self) -> HashMap<u128, Candidate> {
        let freq = self.frequencies();
        let mut cands: HashMap<u128, Candidate> = HashMap::new();
        for j in 0..self.decs.len() {
            let dec = &self.decs[j];
            for x in 0..dec.len() {
                let (c, sc) = (dec[x], self.supports[dec[x]]);
                for &d in &dec[x + 1..] {
                    let s = sc ^ self.supports[d];
                    if s == 0 {
                        continue; // duplicate supports collapse for free
                    }
                    let depth = self.ir.depth(c).max(self.ir.depth(d)) + 1;
                    if let Some(&w) = self.by_support.get(&s) {
                        // An existing signal covers this support; a new gate
                        // only makes sense if it would be strictly
                        // shallower (the free-rewrite sweep was infeasible).
                        if self.ir.depth(w) <= depth {
                            continue;
                        }
                    }
                    if !self.feasible(j, &[c, d], depth) {
                        continue;
                    }
                    let pair_freq = freq[&c] + freq[&d];
                    cands
                        .entry(s)
                        .and_modify(|cand| {
                            cand.net += 1;
                            if (depth, pair_freq, (c, d)) < (cand.depth, cand.freq, cand.ctor) {
                                cand.ctor = (c, d);
                                cand.depth = depth;
                                cand.freq = pair_freq;
                            }
                        })
                        .or_insert(Candidate {
                            support: s,
                            ctor: (c, d),
                            depth,
                            net: 0, // first use pays for the gate itself
                            freq: pair_freq,
                        });
                }
            }
        }
        cands
    }

    /// XOR supports of every 3- and 4-term subset of the (short enough)
    /// term lists, each with the occurrences that produced it, so scoring
    /// can check depth feasibility per occurrence.
    fn subset_xors(&self) -> HashMap<u128, Vec<SubsetUse>> {
        let mut uses: HashMap<u128, Vec<SubsetUse>> = HashMap::new();
        for (j, dec) in self.decs.iter().enumerate() {
            let n = dec.len();
            if n > SUBSET_DEC_CAP {
                continue;
            }
            for x in 0..n {
                let sx = self.supports[dec[x]];
                let bx = self.depth_bit(dec[x]);
                for y in (x + 1)..n {
                    let sxy = sx ^ self.supports[dec[y]];
                    let bxy = bx + self.depth_bit(dec[y]);
                    for z in (y + 1)..n {
                        let sxyz = sxy ^ self.supports[dec[z]];
                        let bxyz = bxy + self.depth_bit(dec[z]);
                        if sxyz != 0 && !self.by_support.contains_key(&sxyz) {
                            // Replacing three terms by one saves two gates.
                            uses.entry(sxyz).or_default().push(SubsetUse {
                                output: j,
                                removed: bxyz,
                                gain: 2,
                            });
                        }
                        if MAX_SUBSET < 4 || n > QUAD_DEC_CAP {
                            continue;
                        }
                        for &du in &dec[z + 1..] {
                            let s4 = sxyz ^ self.supports[du];
                            if s4 != 0 && !self.by_support.contains_key(&s4) {
                                uses.entry(s4).or_default().push(SubsetUse {
                                    output: j,
                                    removed: bxyz + self.depth_bit(du),
                                    gain: 3,
                                });
                            }
                        }
                    }
                }
            }
        }
        uses
    }

    /// Scores supports reachable as the XOR of 3..=[`MAX_SUBSET`] terms —
    /// the direct cancelling candidates, constructible in one gate. Only
    /// depth-feasible occurrences count toward a candidate's net gain.
    fn score_subsets(
        &self,
        pair_cands: &HashMap<u128, Candidate>,
        subsets: &HashMap<u128, Vec<SubsetUse>>,
    ) -> HashMap<u128, Candidate> {
        let cap = 1u128 << self.budget;
        let mut cands: HashMap<u128, Candidate> = HashMap::new();
        for (&support, occurrences) in subsets {
            if self.banned.contains(&support) {
                continue;
            }
            let extra = pair_cands.get(&support).map_or(0, |c| c.net + 1);
            let Some(&(x, y, depth)) = self.reachable.get(&support) else {
                continue;
            };
            let added = 1u128 << depth;
            let gain: i64 = occurrences
                .iter()
                .filter(|o| self.sums[o.output] - o.removed + added <= cap)
                .map(|o| o.gain)
                .sum();
            if gain == 0 {
                continue;
            }
            cands.insert(
                support,
                Candidate {
                    support,
                    ctor: (x, y),
                    depth,
                    net: gain + extra - 1,
                    freq: 0,
                },
            );
        }
        cands
    }

    /// Scores the companion rewrites: replace a 3/4-term subset `U` by the
    /// *pair* `{v, w}` with `w` an existing signal and `v = ⊕U ⊕ supp(w)` a
    /// new one-gate signal. This is the depth-feasible shape of "express
    /// this equation as a shared sum plus a small correction": the shared
    /// sum `w` enters as an ordinary term, so the output tree can still
    /// combine it at its own depth instead of stacking a correction level
    /// on top of the root.
    fn score_companions(
        &self,
        subsets: &HashMap<u128, Vec<SubsetUse>>,
    ) -> HashMap<u128, Candidate> {
        let cap = 1u128 << self.budget;
        let mut cands: HashMap<u128, Candidate> = HashMap::new();
        // The signal scan below costs O(|signals|) per subset support, so
        // only supports with depth headroom compete (the cheapest
        // conceivable replacement adds a depth-1 gate plus a depth-0
        // companion), and only the highest-potential few are scanned.
        let mut ranked: Vec<(i64, u128, Vec<SubsetUse>)> = subsets
            .iter()
            .map(|(&subset_xor, occurrences)| {
                let live: Vec<SubsetUse> = occurrences
                    .iter()
                    .filter(|o| self.sums[o.output] - o.removed + 3 <= cap)
                    .copied()
                    .collect();
                let potential = live.iter().map(|o| o.gain - 1).sum::<i64>();
                (potential, subset_xor, live)
            })
            .filter(|(potential, _, _)| *potential >= 1)
            .collect();
        ranked.sort_unstable_by(|a, b| (b.0, a.1).cmp(&(a.0, b.1)));
        ranked.truncate(COMPANION_SCAN_CAP);
        let canonical: Vec<(SignalId, u128)> = self
            .supports
            .iter()
            .enumerate()
            .filter(|&(w, &sw)| self.by_support.get(&sw) == Some(&w))
            .map(|(w, &sw)| (w, sw))
            .collect();
        for (_, subset_xor, occurrences) in &ranked {
            let subset_xor = *subset_xor;
            for &(w, sw) in &canonical {
                let support = subset_xor ^ sw;
                if support == 0
                    || self.by_support.contains_key(&support)
                    || self.banned.contains(&support)
                {
                    continue;
                }
                let Some(&(x, y, depth)) = self.reachable.get(&support) else {
                    continue;
                };
                let added = (1u128 << depth) + self.depth_bit(w);
                // The pair replacement saves one join less per use than the
                // one-signal replacement (2 per triple → 1, 3 per quad → 2).
                let gain: i64 = occurrences
                    .iter()
                    .filter(|o| self.sums[o.output] - o.removed + added <= cap)
                    .map(|o| o.gain - 1)
                    .sum();
                if gain == 0 {
                    continue;
                }
                cands
                    .entry(support)
                    .and_modify(|cand| {
                        if gain > cand.net + 1 {
                            cand.net = gain - 1;
                        }
                    })
                    .or_insert(Candidate {
                        support,
                        ctor: (x, y),
                        depth,
                        net: gain - 1,
                        freq: 0,
                    });
            }
        }
        cands
    }
}

/// One mask-level rectangle step: the best `(subset, member-masks, saving)`
/// over a participation-mask multiset, ignoring depth (used by the
/// lookahead rollout, where only the sharing cascade matters).
fn mask_best(masks: &[u32], outputs: u32) -> Option<(u32, i64)> {
    let mut best: Option<(u32, i64)> = None;
    for subset in 3u32..(1u32 << outputs) {
        let width = i64::from(subset.count_ones());
        if width < 2 {
            continue;
        }
        let mut saving = -(width - 1);
        let mut count = 0usize;
        for &mask in masks {
            if mask & subset == subset {
                saving += width - 1;
                count += 1;
            }
        }
        if count >= 2
            && saving >= 1
            && best.is_none_or(|(bs, bsv)| {
                (saving, std::cmp::Reverse(subset)) > (bsv, std::cmp::Reverse(bs))
            })
        {
            best = Some((subset, saving));
        }
    }
    best
}

/// Total saving of greedily extracting mask-level rectangles to exhaustion,
/// starting from `masks` — the rollout value of a candidate cascade.
fn rollout_saving(mut masks: Vec<u32>, outputs: u32) -> i64 {
    let mut total = 0i64;
    for _ in 0..64 {
        let Some((subset, saving)) = mask_best(&masks, outputs) else {
            break;
        };
        total += saving;
        for mask in masks.iter_mut() {
            if *mask & subset == subset {
                *mask ^= subset;
            }
        }
        masks.push(subset);
        masks.retain(|&m| m != 0);
    }
    total
}

/// `a` strictly better than `b`: more net gain, then rarer constructor
/// signals (the Paar tie-break), then shallower, then the smallest support
/// word (a total, deterministic order).
fn better(a: &Candidate, b: &Candidate) -> bool {
    use std::cmp::Reverse;
    (a.net, Reverse(a.freq), Reverse(a.depth), Reverse(a.support))
        > (b.net, Reverse(b.freq), Reverse(b.depth), Reverse(b.support))
}

/// Deterministic argmax over a candidate map (iteration order of the map
/// does not matter because `better` is a total order).
fn best_candidate(cands: &HashMap<u128, Candidate>) -> Option<Candidate> {
    let mut best: Option<Candidate> = None;
    for cand in cands.values() {
        if best.as_ref().is_none_or(|b| better(cand, b)) {
            best = Some(*cand);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::BitMat;

    /// A correction family engineered so the optimum requires
    /// cancellation: the total sum `T = m1⊕…⊕m10`, six corrections
    /// `T ⊕ m_i`, and the passthroughs. Computing each correction as a
    /// standalone weight-9 parity is what cancellation-free factorings are
    /// stuck with; reusing `T` and cancelling the overlap is far cheaper.
    fn correction_family() -> BitMat {
        let (k, corrections) = (10usize, 6usize);
        let rows: Vec<String> = (0..k)
            .map(|i| {
                let mut row = String::from("1");
                for j in 0..corrections {
                    row.push(if i == j { '0' } else { '1' });
                }
                for j in 0..k {
                    row.push(if i == j { '1' } else { '0' });
                }
                row
            })
            .collect();
        let refs: Vec<&str> = rows.iter().map(String::as_str).collect();
        BitMat::from_str_rows(&refs)
    }

    /// The cancellation-free Paar factoring of the same system under the
    /// same depth budget — the baseline the cancellation pass must beat.
    fn paar_xor_count(g: &BitMat, depth_slack: usize) -> usize {
        let mut unit = SynthUnit {
            name: "paar".to_string(),
            generator: g.clone(),
            options: crate::pass::PipelineOptions {
                depth_slack,
                ..Default::default()
            },
            schedule: crate::pass::Schedule::default(),
            ir: ParityIr::from_generator(g),
            plan: None,
            netlist: None,
        };
        crate::pass::GreedyFactoringPass
            .run(&mut unit)
            .expect("paar is infallible");
        unit.ir.xor_count()
    }

    #[test]
    fn cancellation_beats_the_paar_bound_on_correction_structure() {
        let g = correction_family();
        // One stage of slack lets corrections ride one level above `T`'s
        // own tree; the win over cancellation-free factoring is large.
        let mut ir = ParityIr::from_generator(&g);
        let budget = ir.depth_budget() + 1;
        let outcome = factor_with_cancellation(&mut ir, budget);
        assert!(ir.verify_against(&g).is_ok());
        let paar = paar_xor_count(&g, 1);
        assert!(
            ir.xor_count() + 4 <= paar,
            "cancellation {} vs paar {paar} (outcome {outcome:?})",
            ir.xor_count()
        );
        assert!(outcome.cancelling > 0, "{outcome:?}");
        assert!(ir.max_output_depth() <= budget);
    }

    #[test]
    fn cancellation_wins_even_without_slack() {
        let g = correction_family();
        let mut ir = ParityIr::from_generator(&g);
        let budget = ir.depth_budget();
        let outcome = factor_with_cancellation(&mut ir, budget);
        assert!(ir.verify_against(&g).is_ok());
        assert!(ir.max_output_depth() <= budget);
        let paar = paar_xor_count(&g, 0);
        assert!(
            ir.xor_count() < paar,
            "cancellation {} vs paar {paar} (outcome {outcome:?})",
            ir.xor_count()
        );
        assert!(outcome.cancelling > 0, "{outcome:?}");
    }

    #[test]
    fn free_rewrites_collapse_zero_sum_subsets() {
        // c3 = c1 ⊕ c2 term-wise: after c1 and c2 are rooted, c3's terms
        // {m1,m2,m3,m4} should reuse their factors.
        let g = BitMat::from_str_rows(&["1011", "1011", "0111", "0111"]);
        let mut ir = ParityIr::from_generator(&g);
        let budget = ir.depth_budget();
        factor_with_cancellation(&mut ir, budget);
        assert!(ir.verify_against(&g).is_ok());
        // c1 = m1⊕m2 (1 gate), c2 = m3⊕m4 (1 gate), c3 = c1 ⊕ c2 (1 gate),
        // and c4 = c3: 3 gates instead of the naive 1+1+3+3.
        assert_eq!(ir.xor_count(), 3, "{}", ir.xor_count());
    }

    #[test]
    fn respects_the_depth_budget() {
        let g = correction_family();
        for slack in 0..=2 {
            let mut ir = ParityIr::from_generator(&g);
            let budget = ir.depth_budget() + slack;
            factor_with_cancellation(&mut ir, budget);
            assert!(ir.verify_against(&g).is_ok());
            assert!(
                ir.max_output_depth() <= budget,
                "slack {slack}: depth {} > budget {budget}",
                ir.max_output_depth()
            );
        }
    }

    #[test]
    fn cancellation_schedule_runs_the_cancellation_pass() {
        use crate::pass::{PassManager, PipelineOptions, Schedule};
        let g = BitMat::from_str_rows(&["1100", "0110", "0011", "1001"]);
        let result =
            PassManager::with_schedule(PipelineOptions::default(), Schedule::cancellation())
                .run("wrap", &g)
                .expect("pipeline runs");
        assert_eq!(result.report.schedule, Schedule::cancellation());
        assert!(result
            .report
            .passes
            .iter()
            .any(|p| p.pass == "factor-cancellation"));
    }

    #[test]
    fn rectangle_mining_matches_hand_counted_secded_structure() {
        // SEC-DED(13,8): the pass must beat the cancellation-free Paar
        // result (15 XOR) by finding the shared rectangle structure; the
        // exact value is pinned by the golden cost fingerprints at the
        // workspace root, this test only guards the relative claim.
        use ecc::BlockCode;
        let code = ecc::SecDed::new(3);
        let mut ir = ParityIr::from_generator(code.generator());
        let budget = ir.depth_budget();
        factor_with_cancellation(&mut ir, budget);
        assert!(ir.verify_against(code.generator()).is_ok());
        assert!(ir.xor_count() < 15, "{}", ir.xor_count());
        assert!(ir.max_output_depth() <= budget);
    }
}
