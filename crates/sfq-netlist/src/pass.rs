//! The optimizing encoder-synthesis pass pipeline.
//!
//! [`PassManager::run`] lowers a generator matrix to a gate-level [`Netlist`]
//! through a sequence of [`Pass`]es over a [`SynthUnit`]. The sequence is
//! shaped by a [`Schedule`] — which factoring algorithm fills the first slot
//! and how the XOR trees are shaped — and the standard schedule runs:
//!
//! 1. [`GreedyFactoringPass`] — cancellation-free common-pair XOR factoring
//!    (Paar's greedy heuristic): the signal pair shared by the most parity
//!    equations becomes an explicit factor, under a depth budget so that
//!    sharing never worsens encoding latency. The alternative
//!    [`CancellationFactoringPass`](crate::cancel::CancellationFactoringPass)
//!    additionally applies Boyar–Peralta-style rewrites whose terms cancel
//!    (see [`crate::cancel`]);
//! 2. [`TreeBalancePass`] — lowers every multi-term equation to binary XOR
//!    factors by repeatedly combining the two shallowest terms (which
//!    achieves the minimal root depth `⌈log₂ Σ 2^dᵢ⌉`), except that trees
//!    destined to be padded up to the balanced output depth are deliberately
//!    shaped deeper instead — same gate count, fewer pad DFFs;
//! 3. [`FanoutPlanPass`] — plans splitter fan-out chains, shared alignment
//!    DFFs (when the [`InputDiscipline::Align`] discipline is selected), and
//!    path-balancing output pads;
//! 4. [`EmitNetlistPass`] — materializes inputs, XOR cells, splitters,
//!    alignment DFFs, pad chains, and output drivers;
//! 5. [`ClockTreePass`] — expands the clock-distribution splitter tree.
//!
//! After every pass the manager re-verifies the IR against the generator
//! matrix (exact GF(2) equivalence, see [`ParityIr::verify_against`]) and
//! records a [`PassReport`] with the planned-cost delta, so a broken pass
//! fails at synthesis time with the pass name attached. A gate-level
//! simulation check can be attached with [`PassManager::with_netlist_verifier`]
//! (the `sfq-sim` crate provides one; this crate cannot depend on it).
//!
//! # Cost-model-driven planning
//!
//! Which schedule is cheapest depends on the standard-cell library: a
//! library with expensive XOR gates wants the deepest factoring available,
//! one with expensive DFFs may prefer the tree shaping that minimizes
//! alignment and padding stages. [`SynthPlanner`] makes that decision
//! explicit: it evaluates every [`Schedule`] candidate at the IR level (no
//! netlist is emitted — [`planned_cost`] is exact, see the
//! `planned_costs_match_the_emitted_netlist_exactly` test), prices each with
//! [`CellLibrary::cost_of`], and picks the cheapest, with ties resolved in
//! favor of the earlier (more conservative) candidate so the paper's
//! encoders keep their published cell-for-cell budgets. [`pareto_sweep`]
//! runs the same planning across a range of `depth_slack` values and marks
//! the latency/area Pareto front — the encoding-latency vs. JJ-budget
//! trade-off superconducting decoders care about.
//!
//! # Input disciplines
//!
//! SFQ XOR gates hold arriving flux until their next clock pulse, and the
//! SFQ-to-DC output drivers toggle on every pulse, so a parity network stays
//! functionally correct even when a gate's operands arrive in different clock
//! cycles — every pulse eventually reaches the toggling driver and the DC
//! level sampled at the encoding latency equals the parity
//! ([`InputDiscipline::Hold`], how the paper's Fig. 2 Hamming encoders feed
//! message bits straight into second-level gates). Fig. 4's RM(1,3) encoder
//! instead inserts alignment DFFs so both operands of each gate arrive in the
//! same cycle ([`InputDiscipline::Align`]); alignment chains are shared per
//! (signal, depth) and fanned out, as in the paper's schematic.

use crate::ir::{Factor, IrEquivalenceError, ParityIr, SignalId};
use crate::synth::{build_clock_tree, dff_chain, fanout};
use crate::{Netlist, PortRef};
use gf2::BitMat;
use serde::{Deserialize, Serialize};
use sfq_cells::{CellKind, CellLibrary, CircuitCost};
use std::collections::{BTreeMap, VecDeque};

/// How XOR operands with unequal logic depths are reconciled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputDiscipline {
    /// Rely on flux-holding gates and toggling SFQ-to-DC drivers: operands
    /// may arrive in different cycles (Fig. 2 style, no alignment DFFs).
    Hold,
    /// Insert shared DFF chains so both operands of every XOR arrive in the
    /// same clock cycle (Fig. 4 style).
    Align,
}

/// Configuration of the synthesis pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineOptions {
    /// Operand-arrival discipline.
    pub discipline: InputDiscipline,
    /// Run the common-pair factoring pass (disable to get the pure balanced
    /// tree flow).
    pub factoring: bool,
    /// Extra clocked stages the factoring pass may add beyond the naive tree
    /// depth (0 keeps the naive latency).
    pub depth_slack: usize,
    /// Add an SFQ-to-DC output driver in front of each primary output.
    pub output_drivers: bool,
    /// Balance all outputs to the same logic depth with DFF pad chains.
    pub balance_outputs: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            discipline: InputDiscipline::Hold,
            factoring: true,
            depth_slack: 0,
            output_drivers: true,
            balance_outputs: true,
        }
    }
}

/// Which factoring algorithm fills the pipeline's first slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FactoringKind {
    /// Cancellation-free greedy common-pair factoring
    /// ([`GreedyFactoringPass`], Paar's heuristic).
    Paar,
    /// Cancellation-aware bounded-distance factoring
    /// ([`CancellationFactoringPass`](crate::cancel::CancellationFactoringPass),
    /// Boyar–Peralta style).
    Cancellation,
    /// No explicit factoring: plain balanced XOR trees (identical subtrees
    /// are still reused during lowering). More XOR gates and clock
    /// splitters, but the fewest *data* splitters — the cheapest schedule
    /// for libraries whose splitters dwarf their XOR gates.
    None,
}

/// The schedule decisions a [`SynthPlanner`] makes per design: which
/// factoring algorithm runs and how XOR trees are shaped.
///
/// The default schedule reproduces the historical fixed pipeline (Paar
/// factoring, pad-eliding stretch), so [`PassManager::standard`] is
/// unchanged. [`Schedule::candidates`] enumerates the choice space the
/// planner prices against a [`CellLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Schedule {
    /// Factoring algorithm for the first pipeline slot.
    pub factoring: FactoringKind,
    /// Whether [`TreeBalancePass`] stretches trees destined for pad DFFs up
    /// to the balanced output depth (same XOR count, fewer pads — but under
    /// [`InputDiscipline::Align`] deeper trees can need *more* shared
    /// alignment DFFs, which is why this is a planner decision and not a
    /// constant).
    pub stretch: bool,
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule {
            factoring: FactoringKind::Paar,
            stretch: true,
        }
    }
}

impl Schedule {
    /// The cancellation-aware schedule with the default tree shaping.
    #[must_use]
    pub fn cancellation() -> Self {
        Schedule {
            factoring: FactoringKind::Cancellation,
            stretch: true,
        }
    }

    /// Every schedule a [`SynthPlanner`] weighs, most conservative first:
    /// ties are resolved toward the front of this list, so a library that
    /// does not distinguish the candidates gets the historical pipeline.
    #[must_use]
    pub fn candidates() -> Vec<Schedule> {
        let mut all = Vec::with_capacity(6);
        for factoring in [
            FactoringKind::Paar,
            FactoringKind::Cancellation,
            FactoringKind::None,
        ] {
            for stretch in [true, false] {
                all.push(Schedule { factoring, stretch });
            }
        }
        all
    }

    /// Short label for reports and benchmark JSON, e.g. `"paar+stretch"`.
    #[must_use]
    pub fn label(&self) -> String {
        let factoring = match self.factoring {
            FactoringKind::Paar => "paar",
            FactoringKind::Cancellation => "cancel",
            FactoringKind::None => "trees",
        };
        let shaping = if self.stretch { "stretch" } else { "compact" };
        format!("{factoring}+{shaping}")
    }
}

/// The unit of work a [`Pass`] transforms.
#[derive(Debug)]
pub struct SynthUnit {
    /// Netlist name.
    pub name: String,
    /// The generator matrix being lowered (the functional specification).
    pub generator: BitMat,
    /// Pipeline configuration.
    pub options: PipelineOptions,
    /// The schedule decisions the manager was built with (tree shaping is
    /// read by [`TreeBalancePass`] and [`planned_cost`]).
    pub schedule: Schedule,
    /// The parity-equation IR.
    pub ir: ParityIr,
    /// Fan-out / alignment / padding plan (after [`FanoutPlanPass`]).
    pub plan: Option<FanoutPlan>,
    /// The netlist under construction (after [`EmitNetlistPass`]).
    pub netlist: Option<Netlist>,
}

/// Planned (or, once the netlist exists, actual) circuit cost of a unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedCost {
    /// XOR gates.
    pub xor: u64,
    /// D flip-flops (alignment + path balancing).
    pub dff: u64,
    /// Splitters (data fan-out + clock tree).
    pub splitter: u64,
    /// SFQ-to-DC output drivers.
    pub sfq_to_dc: u64,
    /// Logic depth (clocked stages input → output).
    pub depth: usize,
}

impl PlannedCost {
    /// The cost as a cell histogram.
    #[must_use]
    pub fn histogram(&self) -> BTreeMap<CellKind, u64> {
        let mut map = BTreeMap::new();
        map.insert(CellKind::Xor, self.xor);
        map.insert(CellKind::Dff, self.dff);
        map.insert(CellKind::Splitter, self.splitter);
        map.insert(CellKind::SfqToDc, self.sfq_to_dc);
        map
    }

    /// Evaluates the plan against a cell library.
    #[must_use]
    pub fn cost(&self, library: &CellLibrary) -> CircuitCost {
        library.cost_of([
            (CellKind::Xor, self.xor),
            (CellKind::Dff, self.dff),
            (CellKind::Splitter, self.splitter),
            (CellKind::SfqToDc, self.sfq_to_dc),
        ])
    }

    /// Josephson-junction count against a cell library.
    #[must_use]
    pub fn jj(&self, library: &CellLibrary) -> u64 {
        self.cost(library).jj_count
    }
}

/// What one pass did to the unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassReport {
    /// Pass name.
    pub pass: String,
    /// Planned cost before the pass.
    pub before: PlannedCost,
    /// Planned cost after the pass.
    pub after: PlannedCost,
    /// Human-readable note (factors extracted, cells emitted, …).
    pub detail: String,
}

/// The full per-pass account of one synthesis run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Netlist name.
    pub name: String,
    /// The schedule the manager ran (see [`Schedule::label`]).
    pub schedule: Schedule,
    /// One report per executed pass, in order.
    pub passes: Vec<PassReport>,
}

impl PipelineReport {
    /// Planned cost before the first pass (the unoptimized lowering).
    #[must_use]
    pub fn initial_cost(&self) -> PlannedCost {
        self.passes.first().map(|p| p.before).unwrap_or_default()
    }

    /// Cost after the last pass (the emitted netlist).
    #[must_use]
    pub fn final_cost(&self) -> PlannedCost {
        self.passes.last().map(|p| p.after).unwrap_or_default()
    }

    /// Multi-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!("synthesis pipeline for {}\n", self.name);
        for report in &self.passes {
            out.push_str(&format!(
                "  {:<18} XOR {:>4} -> {:>4} | DFF {:>4} -> {:>4} | SPL {:>4} -> {:>4} | depth {} -> {} | {}\n",
                report.pass,
                report.before.xor,
                report.after.xor,
                report.before.dff,
                report.after.dff,
                report.before.splitter,
                report.after.splitter,
                report.before.depth,
                report.after.depth,
                report.detail,
            ));
        }
        out
    }
}

/// Error raised by a pass or by the manager's verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassError {
    /// A pass broke functional equivalence of the IR.
    Equivalence {
        /// Name of the offending pass.
        pass: String,
        /// The detected mismatch.
        error: IrEquivalenceError,
    },
    /// The attached netlist verifier rejected the final netlist.
    Verifier(String),
}

impl std::fmt::Display for PassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PassError::Equivalence { pass, error } => {
                write!(f, "pass {pass} broke functional equivalence: {error}")
            }
            PassError::Verifier(msg) => write!(f, "netlist verification failed: {msg}"),
        }
    }
}

impl std::error::Error for PassError {}

/// A transformation step of the synthesis pipeline.
pub trait Pass {
    /// Pass name (for reports and error messages).
    fn name(&self) -> &'static str;

    /// Transforms the unit, returning a human-readable note.
    fn run(&self, unit: &mut SynthUnit) -> Result<String, PassError>;
}

/// Signature of an external gate-level netlist verifier (e.g. the `sfq-sim`
/// simulation harness): given the emitted netlist and the generator matrix,
/// return `Err` with a description if they disagree.
pub type NetlistVerifier = Box<dyn Fn(&Netlist, &BitMat) -> Result<(), String>>;

/// Runs a pass sequence over a [`SynthUnit`] with built-in functional
/// verification and per-pass cost accounting.
///
/// # Example
///
/// ```
/// use gf2::BitMat;
/// use sfq_netlist::pass::{PassManager, PipelineOptions};
///
/// // The paper's Hamming(8,4) generator, lowered through the standard
/// // five-pass schedule: the report accounts for every pass, and the
/// // emitted netlist matches the Fig. 2 budget (6 XOR at depth 2).
/// let generator = BitMat::from_str_rows(&["11100001", "10011001", "01010101", "11010010"]);
/// let result = PassManager::standard(PipelineOptions::default())
///     .run("hamming84_encoder", &generator)
///     .expect("a pass that broke GF(2) equivalence would be rejected here");
/// assert_eq!(result.report.passes.len(), 5);
/// assert_eq!(result.report.final_cost().xor, 6);
/// assert_eq!(result.netlist.logic_depth(), 2);
/// ```
pub struct PassManager {
    options: PipelineOptions,
    schedule: Schedule,
    passes: Vec<Box<dyn Pass>>,
    /// One `synth.pass.<name>.ns` span-timer histogram per pass, registered
    /// at construction so the run loop never touches the registry lock.
    pass_timers: Vec<sfq_telemetry::Histogram>,
    verifier: Option<NetlistVerifier>,
}

/// The outcome of a full pipeline run.
#[derive(Debug)]
pub struct SynthResult {
    /// The synthesized netlist.
    pub netlist: Netlist,
    /// Per-pass cost/depth accounting.
    pub report: PipelineReport,
}

impl PassManager {
    /// The standard five-pass pipeline for the given options: the default
    /// [`Schedule`] (Paar factoring, stretched tree shaping).
    #[must_use]
    pub fn standard(options: PipelineOptions) -> Self {
        Self::with_schedule(options, Schedule::default())
    }

    /// A five-pass pipeline whose factoring slot and tree shaping follow
    /// the given [`Schedule`] (normally chosen by a [`SynthPlanner`]).
    #[must_use]
    pub fn with_schedule(options: PipelineOptions, schedule: Schedule) -> Self {
        let factoring: Box<dyn Pass> = match schedule.factoring {
            FactoringKind::Paar => Box::new(GreedyFactoringPass),
            FactoringKind::Cancellation => Box::new(crate::cancel::CancellationFactoringPass),
            FactoringKind::None => Box::new(NoFactoringPass),
        };
        let passes: Vec<Box<dyn Pass>> = vec![
            factoring,
            Box::new(TreeBalancePass),
            Box::new(FanoutPlanPass),
            Box::new(EmitNetlistPass),
            Box::new(ClockTreePass),
        ];
        let pass_timers = passes
            .iter()
            .map(|pass| {
                sfq_telemetry::global().histogram(&format!("synth.pass.{}.ns", pass.name()))
            })
            .collect();
        PassManager {
            options,
            schedule,
            passes,
            pass_timers,
            verifier: None,
        }
    }

    /// Attaches a gate-level verifier that runs once after the final pass.
    #[must_use]
    pub fn with_netlist_verifier(mut self, verifier: NetlistVerifier) -> Self {
        self.verifier = Some(verifier);
        self
    }

    /// Number of passes in the pipeline.
    #[must_use]
    pub fn num_passes(&self) -> usize {
        self.passes.len()
    }

    /// Runs the pipeline on a generator matrix.
    ///
    /// # Errors
    /// Returns a [`PassError`] if any pass breaks IR equivalence or the
    /// attached netlist verifier rejects the result.
    ///
    /// # Panics
    /// Panics if the generator has a zero column, or if the final pass did
    /// not produce a netlist.
    pub fn run(&self, name: &str, generator: &BitMat) -> Result<SynthResult, PassError> {
        let mut unit = SynthUnit {
            name: name.to_string(),
            generator: generator.clone(),
            options: self.options,
            schedule: self.schedule,
            ir: ParityIr::from_generator(generator),
            plan: None,
            netlist: None,
        };
        sfq_telemetry::global().counter("synth.runs").inc();
        let mut reports = Vec::with_capacity(self.passes.len());
        for (pass, timer) in self.passes.iter().zip(&self.pass_timers) {
            let before = planned_cost(&unit);
            let detail = {
                // Records the pass's wall time on scope exit, error or not.
                let _span = sfq_telemetry::SpanTimer::start(timer.clone());
                pass.run(&mut unit)?
            };
            unit.ir
                .verify_against(&unit.generator)
                .map_err(|error| PassError::Equivalence {
                    pass: pass.name().to_string(),
                    error,
                })?;
            let after = planned_cost(&unit);
            reports.push(PassReport {
                pass: pass.name().to_string(),
                before,
                after,
                detail,
            });
        }
        let netlist = unit
            .netlist
            .expect("the pipeline's emission pass must produce a netlist");
        if let Some(verifier) = &self.verifier {
            verifier(&netlist, generator).map_err(PassError::Verifier)?;
        }
        Ok(SynthResult {
            netlist,
            report: PipelineReport {
                name: name.to_string(),
                schedule: self.schedule,
                passes: reports,
            },
        })
    }
}

/// Planned cost of the unit in its current state: actual cell counts once the
/// netlist exists, otherwise the exact cost a faithful lowering of the
/// current IR would produce (computed by simulating tree balancing and
/// fan-out planning on a scratch copy).
#[must_use]
pub fn planned_cost(unit: &SynthUnit) -> PlannedCost {
    if let Some(netlist) = &unit.netlist {
        let hist = netlist.cell_histogram();
        let count = |kind: CellKind| hist.get(&kind).copied().unwrap_or(0);
        return PlannedCost {
            xor: count(CellKind::Xor),
            dff: count(CellKind::Dff),
            splitter: count(CellKind::Splitter),
            sfq_to_dc: count(CellKind::SfqToDc),
            depth: netlist.logic_depth(),
        };
    }
    let mut scratch = unit.ir.clone();
    tree_balance(
        &mut scratch,
        unit.options.balance_outputs && unit.schedule.stretch,
    );
    let plan = FanoutPlan::compute(&scratch, &unit.options);
    plan.planned_cost(&scratch, &unit.options)
}

// ---------------------------------------------------------------------------
// Pass 1: greedy common-pair factoring (Paar).
// ---------------------------------------------------------------------------

/// Cancellation-free greedy common-subexpression extraction: repeatedly turn
/// the signal pair shared by the most parity equations into an explicit
/// factor, as long as at least two equations benefit and no equation is
/// pushed past the depth budget.
pub struct GreedyFactoringPass;

impl Pass for GreedyFactoringPass {
    fn name(&self) -> &'static str {
        "factor-common-pairs"
    }

    fn run(&self, unit: &mut SynthUnit) -> Result<String, PassError> {
        if !unit.options.factoring {
            return Ok("disabled by options".to_string());
        }
        let budget = unit.ir.depth_budget() + unit.options.depth_slack;
        let mut cache = factor_cache(&unit.ir);
        let mut extracted = 0usize;
        loop {
            // Count, per candidate pair, the equations where substitution is
            // depth-feasible. BTreeMap keeps the tie-break deterministic
            // (smallest pair wins among equal counts).
            let mut candidates: BTreeMap<(SignalId, SignalId), Vec<usize>> = BTreeMap::new();
            for j in 0..unit.ir.num_outputs() {
                let terms = unit.ir.output_terms(j);
                if terms.len() < 2 {
                    continue;
                }
                for x in 0..terms.len() {
                    for y in (x + 1)..terms.len() {
                        let (a, b) = (terms[x], terms[y]);
                        if substitution_fits(&unit.ir, j, a, b, budget) {
                            candidates.entry((a, b)).or_default().push(j);
                        }
                    }
                }
            }
            // Term-occurrence frequency, used as a secondary criterion: when
            // several pairs are shared by the same number of equations,
            // extracting the one built from the *least*-used signals commits
            // the rare signals first and keeps the widely-shared signals
            // available for later, larger extractions — measurably better on
            // the SEC-DED family than frequency-greedy, while the paper's
            // three small encoders (whose optima are forced) are unaffected.
            // Remaining ties fall back to the smallest pair, which BTreeMap
            // iteration order provides.
            let mut freq: BTreeMap<SignalId, usize> = BTreeMap::new();
            for j in 0..unit.ir.num_outputs() {
                let terms = unit.ir.output_terms(j);
                if terms.len() < 2 {
                    continue;
                }
                for &t in terms {
                    *freq.entry(t).or_insert(0) += 1;
                }
            }
            let mut best: Option<((SignalId, SignalId), &Vec<usize>, usize)> = None;
            for (pair, outs) in &candidates {
                if outs.len() < 2 {
                    continue;
                }
                let tiebreak = usize::MAX - (freq[&pair.0] + freq[&pair.1]);
                if best.is_none_or(|(_, b, bt)| (outs.len(), tiebreak) > (b.len(), bt)) {
                    best = Some((*pair, outs, tiebreak));
                }
            }
            let Some(((a, b), outs, _)) = best else { break };
            let outs = outs.clone();
            let factor = *cache
                .entry((a, b))
                .or_insert_with(|| unit.ir.add_factor(a, b));
            for j in outs {
                unit.ir.substitute(j, a, b, factor);
            }
            extracted += 1;
        }
        Ok(format!(
            "{extracted} shared factors (depth budget {budget})"
        ))
    }
}

/// The [`FactoringKind::None`] slot filler: leaves the term lists to the
/// tree-balancing pass (which still reuses bit-identical subtrees).
pub struct NoFactoringPass;

impl Pass for NoFactoringPass {
    fn name(&self) -> &'static str {
        "factor-none"
    }

    fn run(&self, _unit: &mut SynthUnit) -> Result<String, PassError> {
        Ok("no factoring by schedule".to_string())
    }
}

/// Existing factors keyed by their (sorted) operand pair, for reuse.
fn factor_cache(ir: &ParityIr) -> BTreeMap<(SignalId, SignalId), SignalId> {
    ir.factors()
        .iter()
        .enumerate()
        .map(|(i, &Factor { a, b })| ((a.min(b), a.max(b)), ir.k() + i))
        .collect()
}

/// Would replacing `{a, b}` with their factor keep output `j` within the
/// depth budget?
fn substitution_fits(ir: &ParityIr, j: usize, a: SignalId, b: SignalId, budget: usize) -> bool {
    let factor_depth = ir.depth(a).max(ir.depth(b)) + 1;
    let depths = ir
        .output_terms(j)
        .iter()
        .filter(|&&t| t != a && t != b)
        .map(|&t| ir.depth(t))
        .chain(std::iter::once(factor_depth));
    crate::ir::achievable_depth_of(depths) <= budget
}

// ---------------------------------------------------------------------------
// Pass 2: XOR-tree depth balancing.
// ---------------------------------------------------------------------------

/// Lowers every multi-term equation to binary factors by combining the two
/// shallowest terms first (minimal root depth), reusing identical factors
/// across outputs.
pub struct TreeBalancePass;

impl Pass for TreeBalancePass {
    fn name(&self) -> &'static str {
        "balance-xor-trees"
    }

    fn run(&self, unit: &mut SynthUnit) -> Result<String, PassError> {
        let stretch = unit.options.balance_outputs && unit.schedule.stretch;
        let trees = tree_balance(&mut unit.ir, stretch);
        Ok(format!("{trees} multi-term equations lowered"))
    }
}

/// Reduces every output to a single root signal; returns how many multi-term
/// outputs were lowered.
///
/// With `stretch` set (the balanced-output flow), trees that would come out
/// shallower than the deepest output are deliberately shaped *deeper* — an
/// XOR tree over `t` terms costs `t − 1` gates regardless of shape, so every
/// level gained towards the common output depth eliminates one path-
/// balancing pad DFF (and its clock splitter) for free.
fn tree_balance(ir: &mut ParityIr, stretch: bool) -> usize {
    let mut cache = factor_cache(ir);
    let mut lowered = 0usize;
    let target = if stretch {
        (0..ir.num_outputs())
            .map(|j| ir.output_depth(j))
            .max()
            .unwrap_or(0)
    } else {
        0
    };
    for j in 0..ir.num_outputs() {
        if ir.output_terms(j).len() > 1 {
            lowered += 1;
        }
        while ir.output_terms(j).len() > 1 {
            // Depth-optimal combining joins two terms drawn from the two
            // shallowest depth classes (Huffman exchange argument); while the
            // output still sits below the stretch target, joining the two
            // *deepest* classes instead raises the achievable depth by at
            // most one without ever overshooting the target.
            let terms = ir.output_terms(j);
            let deepen = stretch && ir.achievable_depth(terms) < target;
            let mut depths: Vec<usize> = terms.iter().map(|&t| ir.depth(t)).collect();
            depths.sort_unstable();
            let (d1, d2) = if deepen {
                (depths[depths.len() - 1], depths[depths.len() - 2])
            } else {
                (depths[0], depths[1])
            };
            let optimal = |x: SignalId, y: SignalId| {
                let mut pair = [ir.depth(x), ir.depth(y)];
                pair.sort_unstable();
                pair == [d1.min(d2), d1.max(d2)]
            };
            // Among the depth-admissible pairs prefer one whose factor
            // already exists — a free XOR — then the smallest pair.
            let mut chosen: Option<(SignalId, SignalId)> = None;
            'search: for (xi, &x) in terms.iter().enumerate() {
                for &y in &terms[xi + 1..] {
                    if !optimal(x, y) {
                        continue;
                    }
                    if chosen.is_none() {
                        chosen = Some((x, y));
                    }
                    if cache.contains_key(&(x.min(y), x.max(y))) {
                        chosen = Some((x, y));
                        break 'search;
                    }
                }
            }
            let (a, b) = chosen.expect("two terms always admit a depth-admissible pair");
            let factor = *cache
                .entry((a.min(b), a.max(b)))
                .or_insert_with(|| ir.add_factor(a, b));
            ir.substitute(j, a, b, factor);
        }
    }
    lowered
}

// ---------------------------------------------------------------------------
// Pass 3: splitter fan-out, alignment, and pad planning.
// ---------------------------------------------------------------------------

/// One shared alignment tap of a signal: a DFF chain raising the signal to
/// `target_depth`, fanned out to `consumers` XOR operand ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlignTap {
    /// The clocked depth consumers expect the signal at.
    pub target_depth: usize,
    /// Number of XOR operand ports reading this tap.
    pub consumers: usize,
}

/// The fan-out / alignment / padding plan the emission pass follows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FanoutPlan {
    /// Direct consumers per signal (operand ports, alignment chain heads,
    /// output heads).
    uses: Vec<usize>,
    /// Alignment taps per signal, sorted by target depth ([`InputDiscipline::Align`] only).
    align: BTreeMap<SignalId, Vec<AlignTap>>,
    /// Path-balancing DFF stages per output.
    pads: Vec<usize>,
    /// The balanced output depth (the encoding latency).
    max_depth: usize,
}

impl FanoutPlan {
    /// Computes the plan for a tree-balanced IR (every output a single
    /// signal).
    ///
    /// # Panics
    /// Panics if some output still has more than one term.
    #[must_use]
    pub fn compute(ir: &ParityIr, options: &PipelineOptions) -> Self {
        let mut uses = vec![0usize; ir.num_signals()];
        let mut align_consumers: BTreeMap<(SignalId, usize), usize> = BTreeMap::new();
        for &Factor { a, b } in ir.factors() {
            let target = ir.depth(a).max(ir.depth(b));
            for operand in [a, b] {
                if options.discipline == InputDiscipline::Align && ir.depth(operand) < target {
                    *align_consumers.entry((operand, target)).or_insert(0) += 1;
                } else {
                    uses[operand] += 1;
                }
            }
        }
        let mut max_depth = 0usize;
        let mut roots = Vec::with_capacity(ir.num_outputs());
        for j in 0..ir.num_outputs() {
            let terms = ir.output_terms(j);
            assert!(
                terms.len() == 1,
                "fan-out planning requires tree-balanced outputs (output {j} has {} terms)",
                terms.len()
            );
            let root = terms[0];
            uses[root] += 1;
            roots.push(root);
            max_depth = max_depth.max(ir.depth(root));
        }
        let pads: Vec<usize> = roots
            .iter()
            .map(|&r| {
                if options.balance_outputs {
                    max_depth - ir.depth(r)
                } else {
                    0
                }
            })
            .collect();
        let mut align: BTreeMap<SignalId, Vec<AlignTap>> = BTreeMap::new();
        for ((signal, target_depth), consumers) in align_consumers {
            align.entry(signal).or_default().push(AlignTap {
                target_depth,
                consumers,
            });
        }
        // Each alignment chain consumes one port of its base signal.
        for &signal in align.keys() {
            uses[signal] += 1;
        }
        FanoutPlan {
            uses,
            align,
            pads,
            max_depth,
        }
    }

    /// Direct consumers of a signal.
    #[must_use]
    pub fn uses(&self, signal: SignalId) -> usize {
        self.uses[signal]
    }

    /// Alignment taps of a signal (sorted by target depth).
    #[must_use]
    pub fn align_taps(&self, signal: SignalId) -> &[AlignTap] {
        self.align.get(&signal).map_or(&[], Vec::as_slice)
    }

    /// Pad stages of output `j`.
    #[must_use]
    pub fn pad_stages(&self, j: usize) -> usize {
        self.pads[j]
    }

    /// The balanced output depth.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Exact cell counts a faithful emission of this plan produces.
    #[must_use]
    pub fn planned_cost(&self, ir: &ParityIr, options: &PipelineOptions) -> PlannedCost {
        let xor = ir.factors().len() as u64;
        let mut dff = self.pads.iter().map(|&p| p as u64).sum::<u64>();
        let mut data_splitters: u64 = self.uses.iter().map(|&u| u.saturating_sub(1) as u64).sum();
        for (&signal, taps) in &self.align {
            let base = ir.depth(signal);
            let last = taps.last().map_or(base, |t| t.target_depth);
            dff += (last - base) as u64;
            for (idx, tap) in taps.iter().enumerate() {
                let continues = usize::from(idx + 1 < taps.len());
                data_splitters += (tap.consumers + continues).saturating_sub(1) as u64;
            }
        }
        let sfq_to_dc = if options.output_drivers {
            ir.num_outputs() as u64
        } else {
            0
        };
        let clock_sinks = xor + dff;
        let clock_splitters = clock_sinks.saturating_sub(1);
        PlannedCost {
            xor,
            dff,
            splitter: data_splitters + clock_splitters,
            sfq_to_dc,
            depth: self.max_depth,
        }
    }
}

/// Computes and stores the [`FanoutPlan`].
pub struct FanoutPlanPass;

impl Pass for FanoutPlanPass {
    fn name(&self) -> &'static str {
        "plan-fanout"
    }

    fn run(&self, unit: &mut SynthUnit) -> Result<String, PassError> {
        let plan = FanoutPlan::compute(&unit.ir, &unit.options);
        let taps: usize = plan.align.values().map(Vec::len).sum();
        let detail = format!(
            "{} alignment taps, balanced output depth {}",
            taps,
            plan.max_depth()
        );
        unit.plan = Some(plan);
        Ok(detail)
    }
}

// ---------------------------------------------------------------------------
// Pass 4: netlist emission.
// ---------------------------------------------------------------------------

/// Materializes the planned design as a [`Netlist`] (everything except the
/// clock tree).
pub struct EmitNetlistPass;

impl Pass for EmitNetlistPass {
    fn name(&self) -> &'static str {
        "emit-netlist"
    }

    fn run(&self, unit: &mut SynthUnit) -> Result<String, PassError> {
        let plan = unit
            .plan
            .take()
            .expect("emit-netlist requires plan-fanout to have run");
        let ir = &unit.ir;
        let options = &unit.options;
        let mut nl = Netlist::new(unit.name.clone());
        nl.add_clock("clk");

        // Name every signal: inputs m1.., output roots c{j}_xor, other
        // factors t{i}.
        let mut names: Vec<String> = (0..ir.k()).map(|i| format!("m{}", i + 1)).collect();
        let mut root_of: BTreeMap<SignalId, usize> = BTreeMap::new();
        for j in 0..ir.num_outputs() {
            root_of.entry(ir.output_terms(j)[0]).or_insert(j);
        }
        for idx in 0..ir.factors().len() {
            let id = ir.k() + idx;
            names.push(match root_of.get(&id) {
                Some(&j) => format!("c{}_xor", j + 1),
                None => format!("t{idx}"),
            });
        }

        // Per-signal queues of fanned-out ports, plus aligned taps.
        let mut ports: Vec<VecDeque<PortRef>> = vec![VecDeque::new(); ir.num_signals()];
        let mut aligned: BTreeMap<(SignalId, usize), VecDeque<PortRef>> = BTreeMap::new();

        // Fans a freshly created signal out according to the plan and builds
        // its shared alignment chains.
        let finish_signal =
            |nl: &mut Netlist,
             signal: SignalId,
             source: PortRef,
             ports: &mut Vec<VecDeque<PortRef>>,
             aligned: &mut BTreeMap<(SignalId, usize), VecDeque<PortRef>>| {
                let uses = plan.uses(signal);
                if uses > 0 {
                    ports[signal] = fanout(nl, source, uses, &names[signal]).into();
                }
                let taps = plan.align_taps(signal);
                if taps.is_empty() {
                    return;
                }
                let mut current = ports[signal].pop_front().expect("alignment chain port");
                let mut current_depth = ir.depth(signal);
                for (idx, tap) in taps.iter().enumerate() {
                    let prefix = format!("{}_al{}", names[signal], tap.target_depth);
                    current = dff_chain(nl, current, tap.target_depth - current_depth, &prefix);
                    current_depth = tap.target_depth;
                    let continues = usize::from(idx + 1 < taps.len());
                    let mut tap_ports: VecDeque<PortRef> =
                        fanout(nl, current, tap.consumers + continues, &prefix).into();
                    if continues == 1 {
                        current = tap_ports.pop_back().expect("chain continuation port");
                    }
                    aligned.insert((signal, tap.target_depth), tap_ports);
                }
            };

        // Inputs.
        for (i, name) in names.iter().enumerate().take(ir.k()) {
            let input = nl.add_input(name.clone());
            finish_signal(&mut nl, i, PortRef::of(input), &mut ports, &mut aligned);
        }
        // Factors, in topological order.
        for (idx, &Factor { a, b }) in ir.factors().iter().enumerate() {
            let id = ir.k() + idx;
            let xor = nl.add_cell(CellKind::Xor, names[id].clone());
            let target = ir.depth(a).max(ir.depth(b));
            for (port_index, operand) in [a, b].into_iter().enumerate() {
                let port =
                    if options.discipline == InputDiscipline::Align && ir.depth(operand) < target {
                        aligned
                            .get_mut(&(operand, target))
                            .and_then(VecDeque::pop_front)
                            .expect("planned alignment tap port")
                    } else {
                        ports[operand].pop_front().expect("planned operand port")
                    };
                nl.connect(port, xor, port_index);
            }
            nl.add_clock_sink(xor);
            finish_signal(&mut nl, id, PortRef::of(xor), &mut ports, &mut aligned);
        }
        // Outputs: pad chain, driver, primary output.
        for j in 0..ir.num_outputs() {
            let out_name = format!("c{}", j + 1);
            let root = ir.output_terms(j)[0];
            let mut signal = ports[root].pop_front().expect("planned output port");
            signal = dff_chain(
                &mut nl,
                signal,
                plan.pad_stages(j),
                &format!("{out_name}_pad"),
            );
            if options.output_drivers {
                let driver = nl.add_cell(CellKind::SfqToDc, format!("{out_name}_drv"));
                nl.connect(signal, driver, 0);
                signal = PortRef::of(driver);
            }
            let output = nl.add_output(out_name);
            nl.connect(signal, output, 0);
        }
        let cells = nl.nodes().len();
        unit.netlist = Some(nl);
        Ok(format!("{cells} nodes emitted"))
    }
}

// ---------------------------------------------------------------------------
// Pass 5: clock tree.
// ---------------------------------------------------------------------------

/// Expands the clock-distribution splitter tree over every clocked cell.
pub struct ClockTreePass;

impl Pass for ClockTreePass {
    fn name(&self) -> &'static str {
        "build-clock-tree"
    }

    fn run(&self, unit: &mut SynthUnit) -> Result<String, PassError> {
        let netlist = unit
            .netlist
            .as_mut()
            .expect("build-clock-tree requires emit-netlist to have run");
        let splitters = build_clock_tree(netlist, "clk");
        Ok(format!("{splitters} clock splitters"))
    }
}

// ---------------------------------------------------------------------------
// Cost-model-driven schedule planning and the latency/area Pareto sweep.
// ---------------------------------------------------------------------------

/// Exact planned cost of running the pipeline with `schedule` on
/// `generator`, computed at the IR level (the factoring pass runs for real;
/// tree balancing and fan-out planning are simulated by [`planned_cost`],
/// which matches emission exactly). No netlist is built.
#[must_use]
pub fn plan_schedule(
    generator: &BitMat,
    options: &PipelineOptions,
    schedule: Schedule,
) -> PlannedCost {
    let mut unit = SynthUnit {
        name: "plan".to_string(),
        generator: generator.clone(),
        options: *options,
        schedule,
        ir: ParityIr::from_generator(generator),
        plan: None,
        netlist: None,
    };
    let factoring: Box<dyn Pass> = match schedule.factoring {
        FactoringKind::Paar => Box::new(GreedyFactoringPass),
        FactoringKind::Cancellation => Box::new(crate::cancel::CancellationFactoringPass),
        FactoringKind::None => Box::new(NoFactoringPass),
    };
    factoring
        .run(&mut unit)
        .expect("IR factoring passes are infallible");
    debug_assert!(unit.ir.verify_against(generator).is_ok());
    planned_cost(&unit)
}

/// One priced schedule candidate from a [`SynthPlanner`] evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedCandidate {
    /// The schedule that was evaluated.
    pub schedule: Schedule,
    /// Its exact planned cell counts and depth.
    pub planned: PlannedCost,
    /// Its Josephson-junction count under the planner's cell library.
    pub jj: u64,
}

/// The outcome of planning one design: the chosen schedule plus every
/// candidate's price, so reports and benches can show *why* the planner
/// chose what it chose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulePlan {
    /// The winning schedule (cheapest JJ count; ties go to the earlier,
    /// more conservative candidate in [`Schedule::candidates`] order).
    pub chosen: Schedule,
    /// All evaluated candidates, in [`Schedule::candidates`] order.
    pub candidates: Vec<PlannedCandidate>,
}

impl SchedulePlan {
    /// The planned cost of the chosen schedule.
    ///
    /// # Panics
    /// Panics if the plan is empty (never produced by [`SynthPlanner`]).
    #[must_use]
    pub fn chosen_cost(&self) -> PlannedCost {
        self.candidates
            .iter()
            .find(|c| c.schedule == self.chosen)
            .expect("the chosen schedule is always one of the candidates")
            .planned
    }

    /// The lowest planned XOR count among candidates that use `kind`
    /// factoring, or `None` if no candidate did.
    ///
    /// This is the number design reports quote when comparing factoring
    /// algorithms head-to-head on one generator (e.g. Paar vs
    /// cancellation-aware on a dense BCH matrix), independent of which
    /// schedule won the JJ-count tiebreak: each factoring kind is
    /// represented by its best tree-shaping variant.
    #[must_use]
    pub fn best_xor_for(&self, kind: FactoringKind) -> Option<u64> {
        self.candidates
            .iter()
            .filter(|c| c.schedule.factoring == kind)
            .map(|c| c.planned.xor)
            .min()
    }
}

/// Records planner accounting into the global telemetry registry: run and
/// candidate counts, whether the emitted netlist matched the planned cost
/// exactly, and the planned-vs-emitted JJ delta. The planner prices
/// candidates on a scratch lowering, so any delta against the emitted
/// netlist is a cost-model bug worth surfacing in the run report.
/// [`SynthPlanner::run`] calls this automatically; callers that drive
/// [`SynthPlanner::plan`] and [`PassManager`] separately (e.g. to attach a
/// verifier) should call it after synthesis.
pub fn record_plan_metrics(plan: &SchedulePlan, result: &SynthResult, library: &CellLibrary) {
    let planned = plan.chosen_cost();
    let emitted = result.report.final_cost();
    let registry = sfq_telemetry::global();
    registry.counter("synth.plan.runs").inc();
    registry
        .counter("synth.plan.candidates_priced")
        .add(plan.candidates.len() as u64);
    if planned == emitted {
        registry.counter("synth.plan.exact").inc();
    } else {
        registry.counter("synth.plan.mismatched").inc();
    }
    registry
        .gauge("synth.plan.last_delta_jj")
        .set(emitted.jj(library) as i64 - planned.jj(library) as i64);
}

/// Cost-model-driven pass planning: prices every [`Schedule`] candidate
/// against a [`CellLibrary`] and synthesizes with the cheapest one, so
/// libraries with different DFF/splitter cost ratios genuinely produce
/// different pipelines.
///
/// # Example
///
/// ```
/// use gf2::BitMat;
/// use sfq_cells::CellLibrary;
/// use sfq_netlist::pass::{PipelineOptions, SynthPlanner};
///
/// let generator = BitMat::from_str_rows(&["11100001", "10011001", "01010101", "11010010"]);
/// let library = CellLibrary::coldflux();
/// let planner = SynthPlanner::new(PipelineOptions::default(), &library);
/// let (result, plan) = planner.run("h84", &generator).unwrap();
/// // The paper's Hamming(8,4) budget: factoring cannot beat 6 XOR at depth
/// // 2, so the conservative Paar schedule wins the tie and the netlist
/// // matches Table II cell for cell.
/// assert_eq!(result.report.final_cost().xor, 6);
/// assert_eq!(plan.candidates.len(), 6);
/// ```
pub struct SynthPlanner<'lib> {
    options: PipelineOptions,
    library: &'lib CellLibrary,
}

impl<'lib> SynthPlanner<'lib> {
    /// A planner for the given pipeline options and cell library.
    #[must_use]
    pub fn new(options: PipelineOptions, library: &'lib CellLibrary) -> Self {
        SynthPlanner { options, library }
    }

    /// Prices every schedule candidate for `generator` and picks the
    /// cheapest (by JJ count, then by candidate order on ties).
    #[must_use]
    pub fn plan(&self, generator: &BitMat) -> SchedulePlan {
        let candidates: Vec<PlannedCandidate> = Schedule::candidates()
            .into_iter()
            .map(|schedule| {
                let planned = plan_schedule(generator, &self.options, schedule);
                PlannedCandidate {
                    schedule,
                    planned,
                    jj: planned.jj(self.library),
                }
            })
            .collect();
        let chosen = candidates
            .iter()
            .min_by_key(|c| c.jj)
            .expect("candidate list is never empty")
            .schedule;
        SchedulePlan { chosen, candidates }
    }

    /// Plans and synthesizes in one step.
    ///
    /// # Errors
    /// Propagates any [`PassError`] from the chosen pipeline (see
    /// [`PassManager::run`]).
    pub fn run(
        &self,
        name: &str,
        generator: &BitMat,
    ) -> Result<(SynthResult, SchedulePlan), PassError> {
        let plan = self.plan(generator);
        let result = PassManager::with_schedule(self.options, plan.chosen).run(name, generator)?;
        record_plan_metrics(&plan, &result, self.library);
        Ok((result, plan))
    }
}

/// One point of a [`pareto_sweep`]: the planner's best schedule at a given
/// `depth_slack`, priced against the sweep's cell library.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Extra clocked stages the factoring pass was allowed
    /// ([`PipelineOptions::depth_slack`]).
    pub depth_slack: usize,
    /// The schedule the planner chose at this slack.
    pub schedule: Schedule,
    /// Exact planned cost (depth is the realized encoding latency, which
    /// may be less than `budget + depth_slack` when the slack does not pay).
    pub planned: PlannedCost,
    /// Josephson-junction count under the sweep's library.
    pub jj: u64,
    /// Whether the point is on the latency/area Pareto front: no other
    /// point of the sweep is at most as deep *and* strictly cheaper, or
    /// strictly shallower and at most as expensive.
    pub on_front: bool,
}

/// Sweeps `depth_slack` from 0 to `max_slack`, planning each point with a
/// [`SynthPlanner`], and marks the (encoding latency, JJ count) Pareto
/// front. This is the latency/area trade-off view: slack 0 is the paper's
/// "never worsen latency" operating point, larger slacks buy smaller
/// circuits with slower encoders.
///
/// # Example
///
/// ```
/// use gf2::BitMat;
/// use sfq_cells::CellLibrary;
/// use sfq_netlist::pass::{pareto_sweep, PipelineOptions};
///
/// let generator = BitMat::from_str_rows(&["11100001", "10011001", "01010101", "11010010"]);
/// let points = pareto_sweep(&generator, &PipelineOptions::default(), &CellLibrary::coldflux(), 2);
/// assert_eq!(points.len(), 3);
/// // Slack 0 is always on the front: no other point can be shallower,
/// // because the deepest parity already needs its full balanced tree.
/// assert!(points[0].on_front);
/// assert!(points.iter().all(|p| p.planned.depth >= points[0].planned.depth));
/// ```
#[must_use]
pub fn pareto_sweep(
    generator: &BitMat,
    options: &PipelineOptions,
    library: &CellLibrary,
    max_slack: usize,
) -> Vec<ParetoPoint> {
    let mut points: Vec<ParetoPoint> = (0..=max_slack)
        .map(|depth_slack| {
            let options = PipelineOptions {
                depth_slack,
                ..*options
            };
            let plan = SynthPlanner::new(options, library).plan(generator);
            let planned = plan.chosen_cost();
            ParetoPoint {
                depth_slack,
                schedule: plan.chosen,
                planned,
                jj: planned.jj(library),
                on_front: false,
            }
        })
        .collect();
    for i in 0..points.len() {
        let p = points[i];
        points[i].on_front = !points.iter().enumerate().any(|(l, q)| {
            l != i
                && ((q.planned.depth <= p.planned.depth && q.jj < p.jj)
                    || (q.planned.depth < p.planned.depth && q.jj <= p.jj))
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drc;

    fn hamming84_generator() -> BitMat {
        BitMat::from_str_rows(&["11100001", "10011001", "01010101", "11010010"])
    }

    fn run_standard(options: PipelineOptions) -> SynthResult {
        PassManager::standard(options)
            .run("h84", &hamming84_generator())
            .expect("pipeline must succeed")
    }

    #[test]
    fn standard_pipeline_has_five_passes_and_reports_each() {
        let result = run_standard(PipelineOptions::default());
        assert_eq!(result.report.passes.len(), 5);
        let names: Vec<&str> = result
            .report
            .passes
            .iter()
            .map(|p| p.pass.as_str())
            .collect();
        assert_eq!(
            names,
            vec![
                "factor-common-pairs",
                "balance-xor-trees",
                "plan-fanout",
                "emit-netlist",
                "build-clock-tree"
            ]
        );
        let summary = result.report.summary();
        for name in names {
            assert!(summary.contains(name), "{summary}");
        }
    }

    #[test]
    fn factoring_report_shows_the_xor_savings() {
        let result = run_standard(PipelineOptions::default());
        let factoring = &result.report.passes[0];
        // The tree-lowering stage already reuses bit-identical subtrees (7
        // XOR instead of the fully unshared 8); explicit factoring under the
        // depth budget reaches the paper's 6.
        assert_eq!(factoring.before.xor, 7);
        assert_eq!(factoring.after.xor, 6);
        assert_eq!(factoring.before.depth, 2);
        assert_eq!(
            factoring.after.depth, 2,
            "sharing must not deepen the circuit"
        );
        assert!(
            factoring.detail.contains("2 shared factors"),
            "{}",
            factoring.detail
        );
    }

    #[test]
    fn planned_costs_match_the_emitted_netlist_exactly() {
        for discipline in [InputDiscipline::Hold, InputDiscipline::Align] {
            let result = run_standard(PipelineOptions {
                discipline,
                ..Default::default()
            });
            let nl = &result.netlist;
            let final_cost = result.report.final_cost();
            assert_eq!(final_cost.xor, nl.count_cells(CellKind::Xor) as u64);
            assert_eq!(final_cost.dff, nl.count_cells(CellKind::Dff) as u64);
            assert_eq!(
                final_cost.splitter,
                nl.count_cells(CellKind::Splitter) as u64
            );
            assert_eq!(
                final_cost.sfq_to_dc,
                nl.count_cells(CellKind::SfqToDc) as u64
            );
            assert_eq!(final_cost.depth, nl.logic_depth());
            // The plan-fanout stage predicted the same numbers before any
            // cell existed — planning and emission must never drift apart.
            let planned = result.report.passes[2].after;
            assert_eq!(planned, final_cost, "discipline {discipline:?}");
        }
    }

    #[test]
    fn disabling_factoring_falls_back_to_plain_tree_lowering() {
        let result = run_standard(PipelineOptions {
            factoring: false,
            ..Default::default()
        });
        assert_eq!(result.report.passes[0].detail, "disabled by options");
        // Identical-subtree reuse during lowering still shares one gate
        // (7 instead of the fully unshared 8 of the naive flow), but the
        // depth-budgeted factoring win (6) requires the pass.
        assert_eq!(result.netlist.count_cells(CellKind::Xor), 7);
        assert!(drc::is_clean(&result.netlist));
    }

    #[test]
    fn options_without_drivers_or_balancing_are_respected() {
        let result = run_standard(PipelineOptions {
            output_drivers: false,
            balance_outputs: false,
            ..Default::default()
        });
        let nl = &result.netlist;
        assert_eq!(nl.count_cells(CellKind::SfqToDc), 0);
        assert_eq!(
            nl.count_cells(CellKind::Dff),
            0,
            "no pads without balancing"
        );
        let depths = nl.output_depths();
        assert!(depths.contains(&0) && depths.contains(&2), "{depths:?}");
    }

    #[test]
    fn netlist_verifier_failures_are_reported() {
        let err = PassManager::standard(PipelineOptions::default())
            .with_netlist_verifier(Box::new(|_, _| Err("simulated mismatch".to_string())))
            .run("h84", &hamming84_generator())
            .unwrap_err();
        assert_eq!(err, PassError::Verifier("simulated mismatch".to_string()));
        assert!(err.to_string().contains("simulated mismatch"));
    }

    #[test]
    fn accepting_netlist_verifier_sees_the_final_netlist() {
        let result = PassManager::standard(PipelineOptions::default())
            .with_netlist_verifier(Box::new(|nl, g| {
                if nl.outputs().len() == g.cols() {
                    Ok(())
                } else {
                    Err("output count mismatch".to_string())
                }
            }))
            .run("h84", &hamming84_generator());
        assert!(result.is_ok());
    }

    #[test]
    fn a_broken_pass_is_caught_by_the_equivalence_check() {
        struct CorruptingPass;
        impl Pass for CorruptingPass {
            fn name(&self) -> &'static str {
                "corrupt"
            }
            fn run(&self, unit: &mut SynthUnit) -> Result<String, PassError> {
                // Swap two terms of output 0 for a factor that does not
                // cover them: functional corruption a structural check
                // would miss.
                let t = unit.ir.add_factor(0, 2);
                let terms: Vec<SignalId> = unit.ir.output_terms(0).to_vec();
                unit.ir.substitute(0, terms[0], terms[1], t);
                Ok("corrupted".to_string())
            }
        }
        let mut manager = PassManager::standard(PipelineOptions::default());
        manager.passes.insert(0, Box::new(CorruptingPass));
        let err = manager.run("h84", &hamming84_generator()).unwrap_err();
        match err {
            PassError::Equivalence { pass, error } => {
                assert_eq!(pass, "corrupt");
                assert_eq!(error.output, 0);
            }
            other => panic!("expected an equivalence error, got {other:?}"),
        }
    }

    #[test]
    fn align_discipline_inserts_shared_alignment_dffs() {
        // c1 = m1, c2 = m1+m2+m3: the 3-term tree pairs a depth-1 factor
        // with a depth-0 input, which Align must pad through a DFF.
        let g = BitMat::from_str_rows(&["11", "01", "01"]);
        let hold = PassManager::standard(PipelineOptions::default())
            .run("hold", &g)
            .unwrap();
        let align = PassManager::standard(PipelineOptions {
            discipline: InputDiscipline::Align,
            ..Default::default()
        })
        .run("align", &g)
        .unwrap();
        assert!(drc::is_clean(&hold.netlist));
        assert!(drc::is_clean(&align.netlist));
        assert_eq!(
            align.netlist.count_cells(CellKind::Dff),
            hold.netlist.count_cells(CellKind::Dff) + 1,
            "one alignment DFF for the unbalanced operand"
        );
        assert_eq!(
            align.netlist.count_cells(CellKind::Xor),
            hold.netlist.count_cells(CellKind::Xor)
        );
    }

    #[test]
    fn planned_cost_histogram_and_jj_queries_work() {
        use sfq_cells::CellLibrary;
        let cost = PlannedCost {
            xor: 6,
            dff: 8,
            splitter: 23,
            sfq_to_dc: 8,
            depth: 2,
        };
        let lib = CellLibrary::coldflux();
        assert_eq!(cost.jj(&lib), 278, "the Hamming(8,4) Table II row");
        assert_eq!(cost.histogram()[&CellKind::Xor], 6);
    }

    /// A small Align-discipline system whose Paar and cancellation
    /// schedules genuinely trade XOR against alignment DFFs (found by
    /// scanning random generators): (8 XOR, 14 DFF) vs (9 XOR, 12 DFF) at
    /// equal splitter count — so the cheapest schedule depends on the cell
    /// library's XOR/DFF cost ratio.
    fn crossing_generator() -> (BitMat, PipelineOptions) {
        let g = BitMat::from_str_rows(&["1100100", "1000110", "0011101", "1011100", "1101111"]);
        let options = PipelineOptions {
            discipline: InputDiscipline::Align,
            ..Default::default()
        };
        (g, options)
    }

    #[test]
    fn planner_picks_the_cheapest_schedule_per_library() {
        use sfq_cells::CellLibrary;
        let (g, options) = crossing_generator();
        let lib = CellLibrary::coldflux();
        let plan = SynthPlanner::new(options, &lib).plan(&g);
        assert_eq!(plan.candidates.len(), Schedule::candidates().len());
        let chosen_jj = plan
            .candidates
            .iter()
            .find(|c| c.schedule == plan.chosen)
            .expect("chosen is a candidate")
            .jj;
        assert!(plan.candidates.iter().all(|c| chosen_jj <= c.jj));
        // Planning is exact: running the chosen pipeline reproduces the
        // planned cost cell for cell.
        let (result, plan2) = SynthPlanner::new(options, &lib).run("plan", &g).unwrap();
        assert_eq!(plan2.chosen, plan.chosen);
        assert_eq!(result.report.final_cost(), plan.chosen_cost());
        assert_eq!(result.report.schedule, plan.chosen);
    }

    #[test]
    fn best_xor_per_factoring_kind_is_the_minimum_over_shapings() {
        use sfq_cells::CellLibrary;
        let (g, options) = crossing_generator();
        let lib = CellLibrary::coldflux();
        let plan = SynthPlanner::new(options, &lib).plan(&g);
        for kind in [
            FactoringKind::Paar,
            FactoringKind::Cancellation,
            FactoringKind::None,
        ] {
            let expected = plan
                .candidates
                .iter()
                .filter(|c| c.schedule.factoring == kind)
                .map(|c| c.planned.xor)
                .min();
            assert_eq!(plan.best_xor_for(kind), expected);
            assert!(expected.is_some(), "every kind is priced");
        }
        // Unfactored trees never beat factored schedules on XOR count.
        assert!(plan.best_xor_for(FactoringKind::Paar) <= plan.best_xor_for(FactoringKind::None));
    }

    #[test]
    fn different_cost_ratios_produce_different_schedules() {
        use sfq_cells::{CellLibrary, CellParams};
        let (g, options) = crossing_generator();
        let coldflux = CellLibrary::coldflux();
        // A library whose XOR gates dwarf its flip-flops: the extra
        // alignment DFFs of the Paar shape are cheaper than the extra XOR
        // of the cancellation shape.
        let mut xor_heavy = CellLibrary::coldflux();
        let xor = CellParams {
            jj_count: 150,
            ..xor_heavy.params(CellKind::Xor).clone()
        };
        xor_heavy.set_params(xor);
        let a = SynthPlanner::new(options, &coldflux).plan(&g);
        let b = SynthPlanner::new(options, &xor_heavy).plan(&g);
        assert_ne!(
            a.chosen,
            b.chosen,
            "coldflux {} vs xor-heavy {}",
            a.chosen.label(),
            b.chosen.label()
        );
        // Both choices are netlist-exact under their own library.
        for (plan, lib) in [(&a, &coldflux), (&b, &xor_heavy)] {
            let result = PassManager::with_schedule(options, plan.chosen)
                .run("flip", &g)
                .unwrap();
            assert_eq!(
                result.report.final_cost().cost(lib).jj_count,
                plan.candidates
                    .iter()
                    .find(|c| c.schedule == plan.chosen)
                    .unwrap()
                    .jj
            );
        }
    }

    #[test]
    fn pareto_sweep_marks_a_front_and_slack_zero_is_never_dominated() {
        use sfq_cells::CellLibrary;
        let (g, options) = crossing_generator();
        let lib = CellLibrary::coldflux();
        let points = pareto_sweep(&g, &options, &lib, 3);
        assert_eq!(points.len(), 4);
        assert!(points[0].on_front, "slack 0 cannot be beaten on latency");
        assert!(points.iter().any(|p| p.on_front));
        for p in &points {
            // Realized depth never exceeds the allowed budget...
            assert!(p.planned.depth <= points[0].planned.depth + p.depth_slack);
            // ...and the planned JJ price matches the planned cost.
            assert_eq!(p.jj, p.planned.jj(&lib));
        }
        // Front marking is sound: no point on the front is dominated.
        for p in points.iter().filter(|p| p.on_front) {
            assert!(!points.iter().any(|q| {
                (q.planned.depth <= p.planned.depth && q.jj < p.jj)
                    || (q.planned.depth < p.planned.depth && q.jj <= p.jj)
            }));
        }
    }

    #[test]
    fn schedule_labels_are_distinct() {
        let labels: std::collections::BTreeSet<String> = Schedule::candidates()
            .into_iter()
            .map(|s| s.label())
            .collect();
        assert_eq!(labels.len(), Schedule::candidates().len());
        assert!(labels.contains("paar+stretch"));
        assert!(labels.contains("cancel+compact"));
    }
}
