//! Parity-equation IR: the intermediate representation between a generator
//! matrix and a gate-level encoder netlist.
//!
//! A linear encoder computes `c_j = ⊕_{i : G[i][j]=1} m_i`. The IR represents
//! this computation as a set of **signals** and per-output **term lists**:
//!
//! * signals `0..k` are the message inputs `m_1..m_k`;
//! * signals `k..` are *factors*, each the XOR of two earlier signals
//!   (a straight-line program over GF(2));
//! * every output is a list of distinct signals whose supports XOR to the
//!   output's generator column.
//!
//! Optimization passes (see [`crate::pass`]) rewrite the IR — extracting
//! shared factors à la Paar, applying cancellation-aware rewrites à la
//! Boyar–Peralta (see [`crate::cancel`]), balancing XOR trees — while
//! [`ParityIr::verify_against`] provides an exact GF(2) functional-
//! equivalence check after every transformation: expanding each output's
//! terms back to a support vector (by XOR, which models cancellation
//! exactly: `x ⊕ x = 0`) and comparing against the generator column proves
//! functional equivalence of any faithful lowering, whether or not any
//! factor's operands overlap in support.

use gf2::{BitMat, BitVec};
use serde::{Deserialize, Serialize};

/// Index of a signal inside a [`ParityIr`] (`0..k` are inputs, `k..` are
/// factors).
pub type SignalId = usize;

/// A factor signal: the XOR of two earlier signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Factor {
    /// First operand (a signal with a smaller id than the factor's).
    pub a: SignalId,
    /// Second operand (a signal with a smaller id than the factor's).
    pub b: SignalId,
}

/// Functional-equivalence failure detected by [`ParityIr::verify_against`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrEquivalenceError {
    /// Output index whose expansion disagrees with the generator column.
    pub output: usize,
    /// The support the IR computes for that output.
    pub computed: BitVec,
    /// The generator column the output must equal.
    pub expected: BitVec,
}

impl std::fmt::Display for IrEquivalenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "output {} computes support {} but the generator column is {}",
            self.output,
            self.computed.to_string01(),
            self.expected.to_string01()
        )
    }
}

/// The parity-equation IR of one linear encoder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParityIr {
    k: usize,
    factors: Vec<Factor>,
    /// Per output: distinct signal ids, kept sorted ascending.
    outputs: Vec<Vec<SignalId>>,
    /// Logic depth of each signal (inputs 0, factor = max(operands) + 1).
    depths: Vec<usize>,
    /// Depth budget inherited from the naive XOR-tree flow: passes must keep
    /// every output realizable within this many clocked stages so that
    /// optimization never worsens encoding latency.
    depth_budget: usize,
}

impl ParityIr {
    /// Builds the IR of a `k × n` generator matrix: one term list per
    /// codeword bit, no factors yet.
    ///
    /// # Panics
    /// Panics if the generator has a zero column (a codeword bit that depends
    /// on no message bit cannot be generated).
    #[must_use]
    pub fn from_generator(generator: &BitMat) -> Self {
        let k = generator.rows();
        let n = generator.cols();
        let outputs: Vec<Vec<SignalId>> = (0..n)
            .map(|j| (0..k).filter(|&i| generator.get(i, j)).collect::<Vec<_>>())
            .collect();
        for (j, terms) in outputs.iter().enumerate() {
            assert!(
                !terms.is_empty(),
                "generator column {j} is zero; codeword bit c{} has no source",
                j + 1
            );
        }
        let depth_budget = outputs
            .iter()
            .map(|t| naive_tree_depth(t.len()))
            .max()
            .unwrap_or(0)
            .max(1);
        ParityIr {
            k,
            factors: Vec::new(),
            outputs,
            depths: vec![0; k],
            depth_budget,
        }
    }

    /// Number of message inputs.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of outputs (codeword bits).
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Total number of signals (inputs + factors).
    #[must_use]
    pub fn num_signals(&self) -> usize {
        self.k + self.factors.len()
    }

    /// The extracted factors, in creation (topological) order.
    #[must_use]
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// The term list of output `j` (sorted, distinct signal ids).
    #[must_use]
    pub fn output_terms(&self, j: usize) -> &[SignalId] {
        &self.outputs[j]
    }

    /// Logic depth of a signal (0 for inputs).
    #[must_use]
    pub fn depth(&self, signal: SignalId) -> usize {
        self.depths[signal]
    }

    /// The depth budget every output must stay within.
    #[must_use]
    pub fn depth_budget(&self) -> usize {
        self.depth_budget
    }

    /// Adds a factor `a ⊕ b` and returns its signal id.
    ///
    /// # Panics
    /// Panics if the operands are not distinct existing signals.
    pub fn add_factor(&mut self, a: SignalId, b: SignalId) -> SignalId {
        assert!(a != b, "a factor must combine two distinct signals");
        assert!(
            a < self.num_signals() && b < self.num_signals(),
            "factor operands must already exist"
        );
        let id = self.num_signals();
        self.depths.push(self.depths[a].max(self.depths[b]) + 1);
        self.factors.push(Factor { a, b });
        id
    }

    /// Replaces terms `a` and `b` of output `j` with the signal `factor`.
    ///
    /// # Panics
    /// Panics if `a` or `b` is not a term of output `j`, or if `factor`
    /// already is.
    pub fn substitute(&mut self, j: usize, a: SignalId, b: SignalId, factor: SignalId) {
        let terms = &mut self.outputs[j];
        for gone in [a, b] {
            let pos = terms
                .iter()
                .position(|&t| t == gone)
                .unwrap_or_else(|| panic!("signal {gone} is not a term of output {j}"));
            terms.remove(pos);
        }
        assert!(
            !terms.contains(&factor),
            "signal {factor} is already a term of output {j}"
        );
        let pos = terms.partition_point(|&t| t < factor);
        terms.insert(pos, factor);
    }

    /// Replaces the whole term list of output `j`.
    ///
    /// This is the general rewrite primitive used by cancellation-aware
    /// passes, which replace arbitrary subsets of an output's terms (not
    /// just pairs): the caller asserts nothing about supports — the pass
    /// manager's [`ParityIr::verify_against`] check after the pass is what
    /// proves the rewrite functionally correct.
    ///
    /// # Panics
    /// Panics if `terms` is empty, unsorted, contains duplicates, or refers
    /// to a signal that does not exist.
    pub fn set_output_terms(&mut self, j: usize, terms: Vec<SignalId>) {
        assert!(!terms.is_empty(), "output {j} must keep at least one term");
        assert!(
            terms.windows(2).all(|w| w[0] < w[1]),
            "output {j} terms must be sorted and distinct"
        );
        assert!(
            *terms.last().expect("non-empty") < self.num_signals(),
            "output {j} terms must refer to existing signals"
        );
        self.outputs[j] = terms;
    }

    /// Dead-factor elimination: drops every factor that is reachable from no
    /// output term (directly or as a transitive operand), renumbers the
    /// surviving factors, and rewrites the output term lists accordingly.
    /// Returns the number of factors removed.
    ///
    /// Cancellation-aware rewrites can orphan factors (a term list stops
    /// using a factor that nothing else references); a faithful lowering
    /// would still emit those as dead XOR gates, so passes call this before
    /// handing the IR to the planning stages.
    pub fn retain_live_factors(&mut self) -> usize {
        let k = self.k;
        let mut live = vec![false; self.num_signals()];
        for terms in &self.outputs {
            for &t in terms {
                live[t] = true;
            }
        }
        // Factors are in topological order (operands have smaller ids), so a
        // reverse sweep propagates liveness to transitive operands.
        for idx in (0..self.factors.len()).rev() {
            if live[k + idx] {
                let Factor { a, b } = self.factors[idx];
                live[a] = true;
                live[b] = true;
            }
        }
        let mut remap: Vec<Option<SignalId>> = (0..k).map(Some).collect();
        let mut factors = Vec::with_capacity(self.factors.len());
        let mut depths: Vec<usize> = self.depths[..k].to_vec();
        for (idx, &Factor { a, b }) in self.factors.iter().enumerate() {
            if !live[k + idx] {
                remap.push(None);
                continue;
            }
            let a = remap[a].expect("live factor has live operands");
            let b = remap[b].expect("live factor has live operands");
            remap.push(Some(k + factors.len()));
            depths.push(depths[a].max(depths[b]) + 1);
            factors.push(Factor { a, b });
        }
        let removed = self.factors.len() - factors.len();
        self.factors = factors;
        self.depths = depths;
        for terms in &mut self.outputs {
            for t in terms.iter_mut() {
                *t = remap[*t].expect("output terms are live by construction");
            }
            // Remapping is monotone on live ids, so sortedness is preserved.
            debug_assert!(terms.windows(2).all(|w| w[0] < w[1]));
        }
        removed
    }

    /// The smallest clocked depth at which a balanced XOR tree can combine
    /// terms of the given depths: combining the two shallowest terms first
    /// yields `ceil(log2(Σ 2^{d_i}))`.
    #[must_use]
    pub fn achievable_depth(&self, terms: &[SignalId]) -> usize {
        achievable_depth_of(terms.iter().map(|&t| self.depths[t]))
    }

    /// Current realizable depth of output `j`.
    #[must_use]
    pub fn output_depth(&self, j: usize) -> usize {
        self.achievable_depth(&self.outputs[j])
    }

    /// The deepest output — the encoding latency of a faithful lowering.
    #[must_use]
    pub fn max_output_depth(&self) -> usize {
        (0..self.outputs.len())
            .map(|j| self.output_depth(j))
            .max()
            .unwrap_or(0)
    }

    /// Number of XOR gates a faithful lowering emits: one per factor plus
    /// `terms − 1` per multi-term output.
    #[must_use]
    pub fn xor_count(&self) -> usize {
        self.factors.len()
            + self
                .outputs
                .iter()
                .map(|t| t.len().saturating_sub(1))
                .sum::<usize>()
    }

    /// Support vector (over the message inputs) of every signal.
    #[must_use]
    pub fn supports(&self) -> Vec<BitVec> {
        let mut supports: Vec<BitVec> = (0..self.k)
            .map(|i| {
                let mut v = BitVec::zeros(self.k);
                v.set(i, true);
                v
            })
            .collect();
        for factor in &self.factors {
            let mut v = supports[factor.a].clone();
            v.xor_assign(&supports[factor.b]);
            supports.push(v);
        }
        supports
    }

    /// Exact GF(2) functional-equivalence check: every output's expanded
    /// support must equal its generator column. Called by the pass manager
    /// after every transformation.
    ///
    /// # Errors
    /// Returns the first output whose expansion disagrees.
    pub fn verify_against(&self, generator: &BitMat) -> Result<(), IrEquivalenceError> {
        assert_eq!(generator.rows(), self.k, "generator row count changed");
        assert_eq!(
            generator.cols(),
            self.outputs.len(),
            "generator column count changed"
        );
        let supports = self.supports();
        for (j, terms) in self.outputs.iter().enumerate() {
            let mut computed = BitVec::zeros(self.k);
            for &t in terms {
                computed.xor_assign(&supports[t]);
            }
            let expected = generator.col(j);
            if computed != expected {
                return Err(IrEquivalenceError {
                    output: j,
                    computed,
                    expected,
                });
            }
        }
        Ok(())
    }
}

/// Depth of a naive balanced XOR tree over `t` equal-depth terms.
#[must_use]
pub fn naive_tree_depth(t: usize) -> usize {
    if t <= 1 {
        0
    } else {
        (usize::BITS - (t - 1).leading_zeros()) as usize
    }
}

/// `ceil(log2(Σ 2^{d_i}))` — the minimal root depth of a binary tree whose
/// leaves sit at the given depths (combine-two-shallowest is optimal).
#[must_use]
pub fn achievable_depth_of(depths: impl Iterator<Item = usize>) -> usize {
    let mut total: u128 = 0;
    let mut any = false;
    for d in depths {
        any = true;
        total = total.saturating_add(1u128 << d.min(100));
    }
    if !any {
        return 0;
    }
    let mut depth = 0;
    while (1u128 << depth) < total {
        depth += 1;
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hamming84_generator() -> BitMat {
        BitMat::from_str_rows(&["11100001", "10011001", "01010101", "11010010"])
    }

    #[test]
    fn from_generator_builds_one_term_list_per_column() {
        let g = hamming84_generator();
        let ir = ParityIr::from_generator(&g);
        assert_eq!(ir.k(), 4);
        assert_eq!(ir.num_outputs(), 8);
        // Column c1 = m1 + m2 + m4 (rows 0, 1, 3).
        assert_eq!(ir.output_terms(0), &[0, 1, 3]);
        // Column c3 = m1 alone (systematic passthrough).
        assert_eq!(ir.output_terms(2), &[0]);
        assert_eq!(ir.depth_budget(), 2);
        assert_eq!(ir.xor_count(), 8, "naive tree flow: 2 XOR per parity");
        assert!(ir.verify_against(&g).is_ok());
    }

    #[test]
    #[should_panic(expected = "column 1 is zero")]
    fn zero_column_panics() {
        let g = BitMat::from_str_rows(&["10", "10"]);
        let _ = ParityIr::from_generator(&g);
    }

    #[test]
    fn factor_extraction_preserves_equivalence() {
        let g = hamming84_generator();
        let mut ir = ParityIr::from_generator(&g);
        // t = m1 + m2, shared by c1 and c8.
        let t = ir.add_factor(0, 1);
        assert_eq!(ir.depth(t), 1);
        ir.substitute(0, 0, 1, t);
        ir.substitute(7, 0, 1, t);
        assert!(ir.verify_against(&g).is_ok());
        assert_eq!(ir.xor_count(), 7, "one XOR shared");
        assert_eq!(ir.output_terms(0), &[3, t]);
    }

    #[test]
    fn bad_substitution_is_caught_by_verify() {
        let g = hamming84_generator();
        let mut ir = ParityIr::from_generator(&g);
        let t = ir.add_factor(0, 2); // m1 + m3: NOT a subterm of c1
        ir.substitute(0, 0, 1, t); // wrong: replaces m1+m2 with m1+m3
        let err = ir.verify_against(&g).unwrap_err();
        assert_eq!(err.output, 0);
        assert!(err.to_string().contains("output 0"));
    }

    #[test]
    fn achievable_depth_matches_huffman_combining() {
        // Equal-depth leaves: plain ceil(log2 t).
        assert_eq!(achievable_depth_of([0usize, 0].into_iter()), 1);
        assert_eq!(achievable_depth_of([0usize, 0, 0].into_iter()), 2);
        assert_eq!(achievable_depth_of(vec![0usize; 36].into_iter()), 6);
        // Mixed depths: {1,0,0} fits in depth 2, {2,0} needs 3.
        assert_eq!(achievable_depth_of([1usize, 0, 0].into_iter()), 2);
        assert_eq!(achievable_depth_of([2usize, 0].into_iter()), 3);
        assert_eq!(achievable_depth_of([1usize, 1].into_iter()), 2);
        // Single leaf: its own depth.
        assert_eq!(achievable_depth_of([3usize].into_iter()), 3);
        assert_eq!(achievable_depth_of(std::iter::empty()), 0);
    }

    #[test]
    fn naive_tree_depth_is_ceil_log2() {
        let expected = [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (36, 6)];
        for (t, d) in expected {
            assert_eq!(naive_tree_depth(t), d, "t={t}");
        }
    }
}
