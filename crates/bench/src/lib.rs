//! Benchmark harness support.
//!
//! The actual table/figure regeneration lives in the Criterion benches under
//! `benches/`: each bench first *prints* the reproduced table or figure
//! series (so that `cargo bench` regenerates the paper's data) and then
//! measures the runtime of the computational kernel behind it.

/// Prints a banner separating the regenerated data from Criterion's timing
/// output.
pub fn banner(title: &str) {
    println!();
    println!("================================================================");
    println!("  {title}");
    println!("================================================================");
}
