//! Benchmark harness support.
//!
//! The actual table/figure regeneration lives in the Criterion benches under
//! `benches/`: each bench first *prints* the reproduced table or figure
//! series (so that `cargo bench` regenerates the paper's data) and then
//! measures the runtime of the computational kernel behind it.

pub use sfq_telemetry::Fingerprint;

/// Prints a banner separating the regenerated data from Criterion's timing
/// output.
pub fn banner(title: &str) {
    println!();
    println!("================================================================");
    println!("  {title}");
    println!("================================================================");
}

/// Like [`banner`], but also prints the run's configuration fingerprint
/// (code, workload size, seed, thread count, git SHA) so every BENCH
/// artifact is attributable to the configuration that produced it. The
/// same fingerprint is embedded in the JSON the bench writes.
pub fn banner_with_fingerprint(title: &str, fingerprint: &Fingerprint) {
    println!();
    println!("================================================================");
    println!("  {title}");
    println!("  {}", fingerprint.line());
    println!("================================================================");
}
