//! Table I — number of detected and corrected errors per code.
//!
//! Regenerates the table from exhaustive error-pattern analysis and measures
//! the cost of the analysis itself.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use ecc::analysis::{paper_table1, table1_row, CodeAnalysis, DecodingPolicy};
use ecc::{Hamming74, Hamming84, Rm13};
use std::hint::black_box;

fn print_table1() {
    banner("Table I: number of detected and corrected errors");
    println!(
        "{:<14} {:>4} | {:>12} {:>13} | {:>11} {:>12} | {:>16}",
        "code",
        "dmin",
        "worst detect",
        "worst correct",
        "best detect",
        "best correct",
        "weight-3 caught"
    );
    let rows = vec![
        table1_row(&Hamming74::new()),
        table1_row(&Hamming84::new()),
        table1_row(&Rm13::new()),
    ];
    for row in &rows {
        println!(
            "{:<14} {:>4} | {:>12} {:>13} | {:>11} {:>12} | {:>15.0}%",
            row.code,
            row.dmin,
            row.worst_detected,
            row.worst_corrected,
            row.best_detected,
            row.best_corrected,
            row.weight3_detection_rate * 100.0
        );
    }
    println!();
    println!("paper's Table I (for comparison):");
    for row in paper_table1() {
        println!(
            "{:<14} {:>4} | {:>12} {:>13} | {:>11} {:>12}",
            row.code,
            row.dmin,
            row.worst_detected,
            row.worst_corrected,
            row.best_detected,
            row.best_corrected
        );
    }
}

fn bench_table1(c: &mut Criterion) {
    print_table1();
    let code = Hamming84::new();
    c.bench_function("table1/exhaustive_analysis_hamming84", |b| {
        b.iter(|| {
            black_box(CodeAnalysis::exhaustive(
                black_box(&code),
                DecodingPolicy::HardwareDecoder,
                4,
            ))
        })
    });
    c.bench_function("table1/full_row_rm13", |b| {
        let rm = Rm13::new();
        b.iter(|| black_box(table1_row(black_box(&rm))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1
}
criterion_main!(benches);
