//! Fig. 5 — CDF of the number of erroneous messages out of 100 transmissions
//! under ±20 % process parameter variations.
//!
//! Regenerates the four curves (RM(1,3), Hamming(7,4), Hamming(8,4), no
//! encoder) with a Monte-Carlo run and measures the per-chip simulation cost.

use bench::{banner_with_fingerprint, Fingerprint};
use criterion::{criterion_group, criterion_main, Criterion};
use cryolink::montecarlo::paper_zero_error_probabilities;
use cryolink::{ChannelConfig, CryoLink, Fig5Experiment};
use encoders::{EncoderDesign, EncoderKind};
use gf2::BitVec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfq_cells::CellLibrary;
use sfq_sim::PpvModel;
use std::hint::black_box;

/// Number of chips used when regenerating the figure inside `cargo bench`.
/// The paper uses 1000; 400 keeps the bench under a minute while staying well
/// within ±2 percentage points of the asymptotic values. Use the `ppv_sweep`
/// example for a full-resolution run.
const BENCH_CHIPS: usize = 400;

fn print_fig5() {
    let library = CellLibrary::coldflux();
    let experiment = Fig5Experiment {
        chips: BENCH_CHIPS,
        ..Fig5Experiment::paper_setup()
    };
    banner_with_fingerprint(
        "Fig. 5: CDF of erroneous messages per 100 transmissions (±20% PPV)",
        &Fingerprint::new(
            "fig5(4 curves)",
            experiment.chips,
            experiment.messages_per_chip,
            experiment.seed,
            experiment.threads,
        ),
    );
    println!(
        "{} chips x {} messages (paper: 1000 x 100), margin scale {:.3}",
        experiment.chips, experiment.messages_per_chip, experiment.ppv.margin_scale
    );
    let result = experiment.run_all(&library);
    println!();
    println!("{}", result.to_table());
    println!("zero-error probability (CDF at N = 0):");
    let reference = paper_zero_error_probabilities();
    for (kind, measured) in result.zero_error_summary() {
        let paper = reference
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, p)| *p)
            .unwrap_or(f64::NAN);
        println!(
            "  {:<24} measured {:>5.1}%   paper {:>5.1}%",
            format!("{kind:?}"),
            measured * 100.0,
            paper * 100.0
        );
    }
}

fn bench_fig5(c: &mut Criterion) {
    print_fig5();
    let library = CellLibrary::coldflux();
    let model = PpvModel::paper_defaults();

    // Kernel 1: sampling one chip's fault map.
    let design = EncoderDesign::build(EncoderKind::Hamming84);
    c.bench_function("fig5/sample_chip_hamming84", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| black_box(model.sample_chip(design.netlist(), &library, &mut rng)))
    });

    // Kernel 2: transmitting 100 messages across one faulty chip.
    c.bench_function("fig5/transmit_100_messages", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        let chip = model.sample_chip(design.netlist(), &library, &mut rng);
        let link = CryoLink::new(&design, chip.faults, ChannelConfig::ideal());
        let messages: Vec<BitVec> = (0..100).map(|i| BitVec::from_u64(4, i % 16)).collect();
        b.iter(|| black_box(link.transmit_batch(&messages, &mut rng)))
    });

    // Kernel 3: a reduced end-to-end experiment for one encoder.
    c.bench_function("fig5/experiment_50_chips_hamming84", |b| {
        let experiment = Fig5Experiment {
            chips: 50,
            messages_per_chip: 100,
            threads: 4,
            ..Fig5Experiment::paper_setup()
        };
        b.iter(|| black_box(experiment.run_design(&design, &library)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5
}
criterion_main!(benches);
