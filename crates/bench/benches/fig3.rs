//! Fig. 3 — simulation waveforms of the Hamming(8,4) encoder at 5 GHz.
//!
//! Regenerates the waveform set for the paper's stimulus (message 1011 →
//! codeword 01100110, appearing two clock cycles later) and measures both the
//! gate-level simulation and the analog (josim-lite) JTL reference run.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use cryolink::waveform::{render_waveforms, WaveformConfig};
use encoders::{EncoderDesign, EncoderKind};
use gf2::BitVec;
use josim_lite::cells::jtl_chain;
use josim_lite::solver::Transient;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn print_fig3() {
    banner("Fig. 3: Hamming(8,4) encoder waveforms at 5 GHz (message 1011)");
    let design = EncoderDesign::build(EncoderKind::Hamming84);
    let message = BitVec::from_str01("1011");
    let codeword = design.encode_gate_level(&message);
    let config = WaveformConfig::fig3();
    let mut rng = StdRng::seed_from_u64(42);
    let set = render_waveforms(&design, &message, &config, &mut rng);
    println!(
        "codeword: {codeword} (appears after {} clock cycles)",
        design.latency()
    );
    println!("{}", set.to_ascii(72));
    for name in ["c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8"] {
        let series = set.series_named(name).unwrap();
        match series.first_pulse_ps(config.output_amplitude_uv, config.sample_ps) {
            Some(t) => println!("  {name}: first pulse at {t:.0} ps"),
            None => println!("  {name}: no pulse (bit = 0)"),
        }
    }

    // Analog reference: one SFQ pulse traversing a 4-stage JTL.
    let (circuit, junctions) = jtl_chain(4);
    let result = Transient::new(5e-14, 80e-12).run(&circuit);
    println!();
    println!(
        "analog reference (josim-lite JTL): {} flux quanta at the last stage, peak {:.0} uV, pulse area {:.2e} Wb (phi0 = 2.07e-15)",
        result.flux_quanta(*junctions.last().unwrap()),
        result.peak_voltage(2) * 1e6,
        result.voltage_area(2)
    );
}

fn bench_fig3(c: &mut Criterion) {
    print_fig3();
    let design = EncoderDesign::build(EncoderKind::Hamming84);
    let message = BitVec::from_str01("1011");
    c.bench_function("fig3/gate_level_encode", |b| {
        b.iter(|| black_box(design.encode_gate_level(black_box(&message))))
    });
    let config = WaveformConfig::fig3();
    c.bench_function("fig3/render_waveforms", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(render_waveforms(&design, &message, &config, &mut rng)))
    });
    c.bench_function("fig3/analog_jtl_transient", |b| {
        let (circuit, _) = jtl_chain(4);
        let transient = Transient::new(1e-13, 60e-12);
        b.iter(|| black_box(transient.run(black_box(&circuit))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig3
}
criterion_main!(benches);
