//! Table II — circuit-level comparison of the encoders.
//!
//! Regenerates the cell counts, JJ counts, power, and area from the
//! synthesized netlists and measures the circuit construction + bookkeeping.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use encoders::{paper_table2, table2_rows, EncoderDesign, EncoderKind};
use sfq_cells::CellLibrary;
use sfq_netlist::NetlistStats;
use std::hint::black_box;

fn print_table2() {
    banner("Table II: circuit-level comparison of error-correction code encoders");
    let library = CellLibrary::coldflux();
    for (ours, paper) in table2_rows(&library).iter().zip(paper_table2()) {
        println!("computed: {}", ours.format());
        println!("paper:    {}", paper.format());
        println!();
    }
}

fn bench_table2(c: &mut Criterion) {
    print_table2();
    let library = CellLibrary::coldflux();
    c.bench_function("table2/build_hamming84_netlist", |b| {
        b.iter(|| black_box(EncoderDesign::build(EncoderKind::Hamming84)))
    });
    c.bench_function("table2/build_rm13_netlist", |b| {
        b.iter(|| black_box(EncoderDesign::build(EncoderKind::Rm13)))
    });
    let design = EncoderDesign::build(EncoderKind::Hamming84);
    c.bench_function("table2/netlist_stats", |b| {
        b.iter(|| black_box(NetlistStats::compute(design.netlist(), &library)))
    });
    c.bench_function("table2/full_table", |b| {
        b.iter(|| black_box(table2_rows(&library)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_table2
}
criterion_main!(benches);
