//! Ablation studies around the paper's operating point.
//!
//! These sweeps are not in the paper; they probe the design choices its
//! discussion raises: how sensitive each encoder is to the spread magnitude
//! (the ±20–30 % design guideline), how much of the Hamming(8,4) advantage
//! comes from its error flag, and how the encoders compare when the channel —
//! not PPV — is the dominant error source.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use cryolink::ablation::{channel_noise_sweep, counting_comparison, spread_sweep};
use cryolink::Fig5Experiment;
use encoders::EncoderKind;
use sfq_cells::CellLibrary;
use sfq_sim::PpvModel;
use std::hint::black_box;

fn base() -> Fig5Experiment {
    Fig5Experiment {
        chips: 250,
        messages_per_chip: 100,
        threads: 4,
        ..Fig5Experiment::paper_setup()
    }
}

fn print_ablations() {
    let library = CellLibrary::coldflux();
    let base = base();

    banner("Ablation A: zero-error probability vs. parameter spread");
    let spreads = [0.10, 0.20, 0.30];
    for point in spread_sweep(&base, &spreads, &library) {
        print!("{:<14}", point.label);
        for kind in EncoderKind::ALL {
            print!(
                "  {:?}={:>5.1}%",
                kind,
                point.probability(kind).unwrap_or(f64::NAN) * 100.0
            );
        }
        println!();
    }

    banner("Ablation B: does the error flag matter? (counting policy)");
    for point in counting_comparison(&base, &library) {
        print!("{:<32}", point.label);
        for kind in EncoderKind::ALL {
            print!(
                "  {:?}={:>5.1}%",
                kind,
                point.probability(kind).unwrap_or(f64::NAN) * 100.0
            );
        }
        println!();
    }

    banner("Ablation C: fault-free encoders on a noisy receiver channel");
    for point in channel_noise_sweep(&base, &[14.0, 11.0, 9.0], &library) {
        print!("{:<14}", point.label);
        for kind in EncoderKind::ALL {
            print!(
                "  {:?}={:>5.1}%",
                kind,
                point.probability(kind).unwrap_or(f64::NAN) * 100.0
            );
        }
        println!();
    }
}

fn bench_ablations(c: &mut Criterion) {
    print_ablations();
    let library = CellLibrary::coldflux();
    let model = PpvModel::paper_defaults();
    c.bench_function("ablations/ppv_sample_rm13", |b| {
        use rand::SeedableRng;
        let design = encoders::EncoderDesign::build(EncoderKind::Rm13);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        b.iter(|| black_box(model.sample_chip(design.netlist(), &library, &mut rng)))
    });
    c.bench_function("ablations/spread_sweep_tiny", |b| {
        let tiny = Fig5Experiment {
            chips: 20,
            messages_per_chip: 20,
            threads: 2,
            ..Fig5Experiment::paper_setup()
        };
        b.iter(|| black_box(spread_sweep(&tiny, &[0.2], &library)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
