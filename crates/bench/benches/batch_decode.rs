//! Batch-codec throughput report: per-code encode/decode/link messages per
//! second through the column-matching batch engine, with the retired
//! syndrome-action-table decoder measured alongside (where its `2^(n-k)`
//! table is still buildable) so the old-vs-new decode speedup is recorded,
//! not asserted from memory. Emits `BENCH_batch.json` at the workspace root
//! so CI tracks the throughput trajectory next to the synthesis report
//! (`BENCH_synth.json`).
//!
//! Modes:
//!
//! * `cargo bench -p bench --bench batch_decode` — full measurement, writes
//!   `BENCH_batch.json`, runs the Criterion kernels.
//! * `cargo bench -p bench --bench batch_decode -- --quick` — reduced
//!   measurement used as the CI throughput smoke check: fails (exit 1) if
//!   SEC-DED(72,64) batch decode falls below [`SECDED_72_64_DECODE_FLOOR`],
//!   or if the compiled-in telemetry costs more than
//!   [`TELEMETRY_OVERHEAD_FLOOR`] of the uninstrumented decode rate
//!   (measured in-process via the `sfq_telemetry::set_recording`
//!   kill-switch).

use bench::{banner_with_fingerprint, Fingerprint};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cryolink::{BatchLink, BatchLinkContext, ChannelConfig, LinkScratch};
use ecc::{
    BatchDecode, BatchDecoded, BatchEncode, BatchScratch, BlockCode, DecodeOutcome, HardDecoder,
};
use encoders::{EncoderDesign, EncoderKind};
use gf2::{BitMat, BitSlice64, BitVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfq_batch::BatchCodec;
use sfq_sim::FaultMap;
use std::path::PathBuf;
use std::time::Instant;

/// CI throughput floor for SEC-DED(72,64) batch decode (messages/second),
/// checked in `--quick` mode. Measured ≈ 1.1–1.5e8 msg/s with the
/// byte-transpose direct-dispatch kernel on the commit that introduced the
/// kernel layer (1-core container hardware with heavy run-to-run noise; the
/// prefix-bucket walk it replaced sustained ≈ 7e7, the retired action-table
/// decoder ≈ 2.3e7 on the same machine). The floor is roughly half the low
/// end of the measurement band, so it catches walk-scale regressions and
/// dispatch mistakes without tripping on runner noise.
const SECDED_72_64_DECODE_FLOOR: f64 = 5.0e7;

/// CI throughput floor for BCH(31,16) batch decode (messages/second),
/// checked in `--quick` mode. The measurement input puts one random error in
/// *every* word, so every lane is dirty and the number is the worst case for
/// the algebraic engine. Measured ≈ 5.1–7.7e7 msg/s on the commit that added
/// the weight-1 column prefilter to the sliced engine (every dirty lane of
/// this input carries a distance-1 coset, so the prefilter retires it with
/// an XNOR-AND chain and no lane ever reaches Berlekamp–Massey); the
/// previous sliced engine without the prefilter sustained ≈ 3.3–4.5e6 on the
/// same machine (its committed floor was 1.5e6), and the pure
/// scalar-fallback engine before that ≈ 4e5. The floor is roughly half the
/// low end of the measurement band — more than 5× the *old* band's ceiling,
/// so it catches losing the prefilter, not just a fall back to per-lane
/// syndrome evaluation.
const BCH_31_16_DECODE_FLOOR: f64 = 2.5e7;

/// CI throughput floor for BCH(63,51) batch decode (messages/second) under
/// the same one-error-per-word all-dirty input. Measured ≈ 3.6–5.4e7 msg/s
/// when the registry member landed (prefilter path, as above, at twice the
/// block length and `t = 2`).
const BCH_63_51_DECODE_FLOOR: f64 = 1.8e7;

/// CI throughput floor for BCH(63,45) batch decode (messages/second) under
/// the same one-error-per-word all-dirty input. Measured ≈ 3.5–4.2e7 msg/s
/// when the registry member landed — the deepest code in the suite
/// (`t = 3`, 18 syndrome slices), and the one whose action-table baseline
/// is slowest (its 2^18-entry table scans ≈ 3.3e4 msg/s).
const BCH_63_45_DECODE_FLOOR: f64 = 1.7e7;

/// CI throughput floor for LDPC(60,32) batch decode (messages/second) under
/// the same one-error-per-word all-dirty input. Measured ≈ 3.1–4.7e7 msg/s
/// when the bit-flip engine landed: every limb is dirty, so every limb pays
/// at least one full synchronous round (30 XOR-chain parity slices + 60
/// whole-limb majorities), which is the engine's worst case — there is no
/// per-lane region to regress to, so this floor catches the rounds
/// themselves getting slower (or the dirty screen being lost).
const LDPC_60_32_DECODE_FLOOR: f64 = 1.5e7;

/// Telemetry overhead gate, checked in `--quick` mode: SEC-DED(72,64)
/// batch decode with recording ON must sustain at least this fraction of
/// the recording-OFF rate. The instrumentation accumulates in plain locals
/// inside the kernel and flushes a handful of relaxed atomics once per
/// 4096-lane call, so the true cost is well under 1%; the 5% budget keeps
/// the gate meaningful without tripping on measurement noise.
const TELEMETRY_OVERHEAD_FLOOR: f64 = 0.95;

/// Lanes per measured batch.
const LANES: usize = 4096;

/// RNG seed used to build the measurement batches.
const SEED: u64 = 0xBA7C_DEC0;

/// Measures one closure's sustained rate in messages/second.
fn throughput<F: FnMut() -> usize>(quick: bool, mut f: F) -> f64 {
    let budget_ns: u128 = if quick { 20_000_000 } else { 200_000_000 };
    let start = Instant::now();
    let mut messages = f();
    let once = start.elapsed().max(std::time::Duration::from_nanos(100));
    let reps = (budget_ns / once.as_nanos().max(1)).clamp(1, 2_000_000) as usize;
    let start = Instant::now();
    for _ in 0..reps {
        messages = black_box(f());
    }
    let elapsed = start.elapsed().as_secs_f64();
    (messages * reps) as f64 / elapsed
}

/// The retired syndrome-action-table decoder, reconstructed from public
/// APIs as the measurement baseline: one table entry per syndrome value,
/// each scanned per limb. Only buildable while `2^(n-k)` is small — exactly
/// the limitation that motivated the column-matching replacement.
struct ActionTableCodec {
    k: usize,
    redundancy: usize,
    /// Indexed by syndrome value: `(flip mask, detected)`.
    actions: Vec<(u128, bool)>,
    /// Message-extraction supports, identical to the old engine's.
    extract_masks: Vec<u128>,
    inner: BatchCodec,
}

impl ActionTableCodec {
    /// Builds the baseline, or `None` when the table would exceed 2^20
    /// entries (the old `MAX_REDUNDANCY` limit). Coset invariance is all the
    /// table needs, so algebraic decoders qualify too — tabulating their
    /// 2^(n-k) syndrome space is exactly the cost the scalar-fallback engine
    /// avoids, which makes this a fair old-world baseline for them.
    fn try_new<C: BlockCode + HardDecoder + Clone + Send + Sync + 'static>(
        code: &C,
    ) -> Option<Self> {
        let n = code.n();
        let redundancy = n - code.k();
        if redundancy > 20 {
            return None;
        }
        let h = code.parity_check();
        let augmented = h.hconcat(&BitMat::identity(redundancy));
        let (reduced, pivots) = augmented.rref();
        assert_eq!(pivots.len(), redundancy);
        let actions = (0..1u64 << redundancy)
            .map(|s| {
                let syndrome = BitVec::from_u64(redundancy.max(1), s).slice(0..redundancy);
                let mut representative = BitVec::zeros(n);
                for (i, &p) in pivots.iter().enumerate() {
                    let t_row: BitVec = (0..redundancy).map(|t| reduced.get(i, n + t)).collect();
                    if t_row.dot(&syndrome) {
                        representative.set(p, true);
                    }
                }
                let decoded = code.decode(&representative);
                match decoded.outcome {
                    DecodeOutcome::DetectedUncorrectable => (0u128, true),
                    _ => {
                        let cw = decoded.codeword.expect("corrected word");
                        ((&representative ^ &cw).to_u128(), false)
                    }
                }
            })
            .collect();
        let (pivots, transform) = ecc::generator_right_inverse(code.generator());
        let extract_masks = (0..code.k())
            .map(|j| {
                pivots
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| transform.get(i, j))
                    .fold(0u128, |mask, (_, &p)| mask | (1u128 << p))
            })
            .collect();
        Some(ActionTableCodec {
            k: code.k(),
            redundancy,
            actions,
            extract_masks,
            inner: match code.syndrome_class() {
                ecc::SyndromeClass::Algebraic => BatchCodec::with_scalar_fallback(code, code.n()),
                _ => BatchCodec::new(code),
            },
        })
    }

    /// The old decode loop: per limb, scan every syndrome value's action.
    fn decode_batch(&self, received: &BitSlice64) -> BatchDecoded {
        let syndromes = self.inner.syndrome_batch(received);
        let words = received.words();
        let tail = received.tail_mask();
        let mut codewords = received.clone();
        let mut flagged = vec![0u64; words];
        let mut corrected = vec![0u64; words];
        let mut lanes = vec![0u64; self.redundancy];
        for w in 0..words {
            let valid = if w + 1 == words { tail } else { u64::MAX };
            for (t, lane) in lanes.iter_mut().enumerate() {
                *lane = syndromes.lane(t)[w];
            }
            for (s, &(flip, detected)) in self.actions.iter().enumerate() {
                if flip == 0 && !detected {
                    continue;
                }
                let mut mask = valid;
                for (t, &lane) in lanes.iter().enumerate() {
                    mask &= if (s >> t) & 1 == 1 { lane } else { !lane };
                    if mask == 0 {
                        break;
                    }
                }
                if mask == 0 {
                    continue;
                }
                if detected {
                    flagged[w] |= mask;
                } else {
                    corrected[w] |= mask;
                    let mut f = flip;
                    while f != 0 {
                        let p = f.trailing_zeros() as usize;
                        codewords.lane_mut(p)[w] ^= mask;
                        f &= f - 1;
                    }
                }
            }
        }
        // Message extraction, exactly as the old engine performed it.
        let mut messages = BitSlice64::zeros(self.k, received.batch());
        for (j, &mask) in self.extract_masks.iter().enumerate() {
            let mut m = mask;
            while m != 0 {
                let p = m.trailing_zeros() as usize;
                messages.xor_lane_from(j, &codewords, p);
                m &= m - 1;
            }
            let lane = messages.lane_mut(j);
            for (l, &f) in lane.iter_mut().zip(flagged.iter()) {
                *l &= !f;
            }
        }
        BatchDecoded {
            messages,
            codewords,
            flagged,
            corrected,
        }
    }
}

/// One measured code: the scalar constructor, its batch codec, and whether a
/// catalog design exists for link-level measurement.
struct Case {
    slug: &'static str,
    codec: BatchCodec,
    baseline: Option<ActionTableCodec>,
    received: BitSlice64,
    link_kind: Option<EncoderKind>,
}

fn build_case<C: BlockCode + HardDecoder + Clone + Send + Sync + 'static>(
    slug: &'static str,
    code: &C,
    // The shipping codec for this code (sliced-syndrome for BCH, bit-flip
    // for LDPC, column-matching otherwise); the measured codec must be the
    // shipping one, and only the caller knows which registry constructor
    // that is.
    codec: BatchCodec,
    link_kind: Option<EncoderKind>,
    rng: &mut StdRng,
) -> Case {
    // Measurement input: clean codewords with one random single-bit error
    // per word — the typical Monte-Carlo mix exercises the match path, not
    // just the all-clean fast path.
    let messages: Vec<BitVec> = (0..LANES)
        .map(|_| {
            (0..code.k())
                .map(|_| rng.random::<u64>() & 1 == 1)
                .collect()
        })
        .collect();
    let mut received = codec.encode_batch(&BitSlice64::pack(&messages));
    for i in 0..LANES {
        let pos = rng.random_range(0..code.n());
        received.set(i, pos, !received.get(i, pos));
    }
    Case {
        slug,
        codec,
        baseline: ActionTableCodec::try_new(code),
        received,
        link_kind,
    }
}

fn cases() -> Vec<Case> {
    use ecc::BchSpec;
    let mut rng = StdRng::seed_from_u64(SEED);
    vec![
        build_case(
            "hamming_7_4",
            &ecc::Hamming74::new(),
            BatchCodec::hamming74(),
            Some(EncoderKind::Hamming74),
            &mut rng,
        ),
        build_case(
            "hamming_8_4",
            &ecc::Hamming84::new(),
            BatchCodec::hamming84(),
            Some(EncoderKind::Hamming84),
            &mut rng,
        ),
        build_case(
            "rm_1_3",
            &ecc::Rm13::new(),
            BatchCodec::rm13(),
            Some(EncoderKind::Rm13),
            &mut rng,
        ),
        build_case(
            "secded_13_8",
            &ecc::SecDed::new(3),
            BatchCodec::sec_ded(3),
            None,
            &mut rng,
        ),
        build_case(
            "secded_39_32",
            &ecc::SecDed::new(5),
            BatchCodec::sec_ded(5),
            None,
            &mut rng,
        ),
        build_case(
            "secded_72_64",
            &ecc::SecDed::new(6),
            BatchCodec::sec_ded(6),
            Some(EncoderKind::SecDed(6)),
            &mut rng,
        ),
        build_case(
            "shamming_85_64",
            &ecc::ShortenedHamming::wide_85_64(),
            BatchCodec::wide_hamming_85_64(),
            Some(EncoderKind::WideHamming8564),
            &mut rng,
        ),
        build_case(
            "bch_31_16",
            &ecc::Bch::bch_31_16(),
            BatchCodec::bch_spec(BchSpec::BCH_31_16),
            Some(EncoderKind::Bch(BchSpec::BCH_31_16)),
            &mut rng,
        ),
        build_case(
            "bch_63_51",
            &ecc::Bch::bch_63_51(),
            BatchCodec::bch_63_51(),
            Some(EncoderKind::Bch(BchSpec::BCH_63_51)),
            &mut rng,
        ),
        build_case(
            "bch_63_45",
            &ecc::Bch::bch_63_45(),
            BatchCodec::bch_63_45(),
            Some(EncoderKind::Bch(BchSpec::BCH_63_45)),
            &mut rng,
        ),
        build_case(
            "ldpc_60_32",
            &ecc::Ldpc::gallager_60_32(),
            BatchCodec::ldpc(),
            Some(EncoderKind::Ldpc),
            &mut rng,
        ),
    ]
}

struct Measurement {
    slug: &'static str,
    n: usize,
    k: usize,
    program_len: usize,
    /// The kernel auto-dispatch selects for this code at [`LANES`] lanes.
    kernel: &'static str,
    encode: f64,
    decode: f64,
    old_decode: Option<f64>,
    link: Option<f64>,
}

impl Measurement {
    fn speedup(&self) -> Option<f64> {
        self.old_decode.map(|old| self.decode / old)
    }
}

fn measure(quick: bool, fingerprint: &Fingerprint) -> Vec<Measurement> {
    banner_with_fingerprint(
        "sfq-batch: column-matching decoder throughput (single-error input)",
        fingerprint,
    );
    println!(
        "{:<16} {:>9} {:>10} {:>14} {:>14} {:>14} {:>9} {:>14}",
        "code",
        "entries",
        "kernel",
        "encode msg/s",
        "decode msg/s",
        "old msg/s",
        "speedup",
        "link msg/s"
    );
    let mut out = Vec::new();
    for case in cases() {
        let mut scratch = BatchScratch::new();
        let mut decoded = BatchDecoded::empty();
        let mut encoded = BitSlice64::default();
        let messages_only = {
            // Strip the received batch back to messages for the encode
            // measurement (any k-lane batch works; reuse the decode output).
            case.codec
                .decode_batch_with(&case.received, &mut scratch, &mut decoded);
            decoded.messages.clone()
        };
        let encode = throughput(quick, || {
            case.codec.encode_batch_into(&messages_only, &mut encoded);
            LANES
        });
        let decode = throughput(quick, || {
            case.codec
                .decode_batch_with(&case.received, &mut scratch, &mut decoded);
            LANES
        });
        let old_decode = case.baseline.as_ref().map(|baseline| {
            throughput(quick, || {
                black_box(baseline.decode_batch(&case.received))
                    .flagged
                    .len()
                    .max(LANES)
            })
        });
        let link = case.link_kind.map(|kind| {
            let design = EncoderDesign::build(kind);
            let ctx = BatchLinkContext::new(&design);
            let link = BatchLink::with_chip(
                &design,
                &ctx,
                &FaultMap::healthy(design.netlist()),
                ChannelConfig::ideal(),
            );
            let mut rng = StdRng::seed_from_u64(1);
            let messages = link.random_messages(LANES, &mut rng);
            let mut link_scratch = LinkScratch::new();
            throughput(quick, || {
                black_box(link.transmit_batch_with(&messages, &mut rng, &mut link_scratch));
                LANES
            })
        });
        let m = Measurement {
            slug: case.slug,
            n: case.codec.n(),
            k: case.codec.k(),
            program_len: case.codec.program_len(),
            kernel: case.codec.selected_kernel_name(LANES),
            encode,
            decode,
            old_decode,
            link,
        };
        println!(
            "{:<16} {:>9} {:>10} {:>14.3e} {:>14.3e} {:>14} {:>9} {:>14}",
            m.slug,
            m.program_len,
            m.kernel,
            m.encode,
            m.decode,
            m.old_decode
                .map_or("n/a".to_string(), |v| format!("{v:.3e}")),
            m.speedup()
                .map_or("n/a".to_string(), |s| format!("{s:.2}x")),
            m.link.map_or("n/a".to_string(), |v| format!("{v:.3e}")),
        );
        out.push(m);
    }
    out
}

fn render_json(measurements: &[Measurement], fingerprint: &Fingerprint) -> String {
    let rows: Vec<String> = measurements
        .iter()
        .map(|m| {
            let old = m
                .old_decode
                .map_or("null".to_string(), |v| format!("{v:.1}"));
            let speedup = m
                .speedup()
                .map_or("null".to_string(), |s| format!("{s:.3}"));
            let link = m.link.map_or("null".to_string(), |v| format!("{v:.1}"));
            format!(
                "    {{\"code\": \"{}\", \"n\": {}, \"k\": {}, \"match_entries\": {}, \
                 \"kernel\": \"{}\", \
                 \"encode_msgs_per_s\": {:.1}, \"decode_msgs_per_s\": {:.1}, \
                 \"action_table_decode_msgs_per_s\": {old}, \"decode_speedup\": {speedup}, \
                 \"link_msgs_per_s\": {link}}}",
                m.slug, m.n, m.k, m.program_len, m.kernel, m.encode, m.decode
            )
        })
        .collect();
    let sha = fingerprint
        .git_sha
        .as_deref()
        .map_or("null".to_string(), |s| format!("\"{s}\""));
    format!(
        "{{\n  \"fingerprint\": {{\"code\": \"{}\", \"chips\": {}, \"messages\": {}, \
         \"seed\": {}, \"threads\": {}, \"git_sha\": {sha}}},\n  \
         \"lanes\": {LANES},\n  \"input\": \"one random single-bit error per word\",\n  \
         \"codes\": [\n{}\n  ]\n}}\n",
        fingerprint.code,
        fingerprint.chips,
        fingerprint.messages,
        fingerprint.seed,
        fingerprint.threads,
        rows.join(",\n")
    )
}

/// Measures the compiled-in telemetry's own cost on the hottest kernel:
/// SEC-DED(72,64) batch decode with the runtime recording kill-switch off
/// (uninstrumented baseline — handles still exist, every recording call
/// early-outs) versus on (normal operation). Returns `(on, off)` rates in
/// messages/second, leaving recording enabled.
fn telemetry_overhead(quick: bool) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let code = ecc::SecDed::new(6);
    let codec = BatchCodec::new(&code);
    let messages: Vec<BitVec> = (0..LANES)
        .map(|_| BitVec::from_u64(64, rng.random::<u64>()))
        .collect();
    let mut received = codec.encode_batch(&BitSlice64::pack(&messages));
    for i in 0..LANES {
        let pos = rng.random_range(0..72usize);
        received.set(i, pos, !received.get(i, pos));
    }
    let mut scratch = BatchScratch::new();
    let mut decoded = BatchDecoded::empty();
    sfq_telemetry::set_recording(false);
    let off = throughput(quick, || {
        codec.decode_batch_with(&received, &mut scratch, &mut decoded);
        LANES
    });
    sfq_telemetry::set_recording(true);
    let on = throughput(quick, || {
        codec.decode_batch_with(&received, &mut scratch, &mut decoded);
        LANES
    });
    (on, off)
}

fn bench_batch_decode(c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick");
    let fingerprint = Fingerprint::new("batch_suite(11 codes)", 0, LANES, SEED, 1);
    let measurements = measure(quick, &fingerprint);

    if !quick {
        let json = render_json(&measurements, &fingerprint);
        let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("BENCH_batch.json");
        std::fs::write(&out, &json).expect("write BENCH_batch.json");
        println!("wrote {} ({} bytes)", out.display(), json.len());
    }

    // The committed floor is *enforced* only by the dedicated `--quick` CI
    // smoke step; the full report run just prints the comparison, so a
    // borderline-slow runner fails one clearly-labeled gate, not the report.
    let secded = measurements
        .iter()
        .find(|m| m.slug == "secded_72_64")
        .expect("secded_72_64 measured");
    println!(
        "SEC-DED(72,64) decode {:.3e} msg/s (floor {SECDED_72_64_DECODE_FLOOR:.1e})",
        secded.decode
    );
    // Every multi-error engine has its own committed all-dirty floor: the
    // measurement input dirties every lane, so these are the worst-case
    // rates of the sliced prefilter path and the bit-flip rounds.
    let floors: [(&str, f64); 4] = [
        ("bch_31_16", BCH_31_16_DECODE_FLOOR),
        ("bch_63_51", BCH_63_51_DECODE_FLOOR),
        ("bch_63_45", BCH_63_45_DECODE_FLOOR),
        ("ldpc_60_32", LDPC_60_32_DECODE_FLOOR),
    ];
    for &(slug, floor) in &floors {
        let m = measurements
            .iter()
            .find(|m| m.slug == slug)
            .unwrap_or_else(|| panic!("{slug} measured"));
        println!(
            "{slug} decode {:.3e} msg/s (floor {floor:.1e}, all-dirty input)",
            m.decode
        );
    }
    if quick {
        if secded.decode < SECDED_72_64_DECODE_FLOOR {
            eprintln!(
                "THROUGHPUT REGRESSION: SEC-DED(72,64) batch decode {:.3e} msg/s is below \
                 the committed floor {SECDED_72_64_DECODE_FLOOR:.1e}",
                secded.decode
            );
            std::process::exit(1);
        }
        for &(slug, floor) in &floors {
            let m = measurements.iter().find(|m| m.slug == slug).unwrap();
            if m.decode < floor {
                eprintln!(
                    "THROUGHPUT REGRESSION: {slug} batch decode {:.3e} msg/s is below \
                     the committed floor {floor:.1e} (all-dirty input)",
                    m.decode
                );
                std::process::exit(1);
            }
        }
        // No code with a measurable old-world baseline may decode slower
        // than that baseline: the direct-dispatch kernels exist precisely to
        // recover the small-code cases the bucket walk had regressed.
        let mut regressed = false;
        for m in &measurements {
            if let Some(speedup) = m.speedup() {
                println!("decode speedup {:<16} {speedup:.2}x ({})", m.slug, m.kernel);
                if speedup < 1.0 {
                    eprintln!(
                        "THROUGHPUT REGRESSION: {} batch decode runs at {speedup:.2}x the \
                         retired action-table decoder (kernel {}); every baselined code \
                         must hold speedup >= 1.0",
                        m.slug, m.kernel
                    );
                    regressed = true;
                }
            }
        }
        if regressed {
            std::process::exit(1);
        }
        // Telemetry overhead smoke gate: only meaningful when the
        // instrumentation is actually compiled in.
        if sfq_telemetry::is_enabled() {
            let (on, off) = telemetry_overhead(quick);
            let ratio = on / off;
            println!(
                "telemetry overhead: recording on {on:.3e} msg/s, off {off:.3e} msg/s \
                 (ratio {ratio:.3}, floor {TELEMETRY_OVERHEAD_FLOOR})"
            );
            if ratio < TELEMETRY_OVERHEAD_FLOOR {
                eprintln!(
                    "TELEMETRY OVERHEAD REGRESSION: SEC-DED(72,64) batch decode with \
                     recording on runs at {ratio:.3}x the recording-off rate, below the \
                     {TELEMETRY_OVERHEAD_FLOOR} floor"
                );
                std::process::exit(1);
            }
        } else {
            println!("telemetry overhead: skipped (built without instrumentation)");
        }
        return;
    }

    // Criterion kernels for the flagship codes.
    let code = ecc::SecDed::new(6);
    let codec = BatchCodec::new(&code);
    let mut rng = StdRng::seed_from_u64(2);
    let messages: Vec<BitVec> = (0..LANES)
        .map(|_| BitVec::from_u64(64, rng.random::<u64>()))
        .collect();
    let mut received = codec.encode_batch(&BitSlice64::pack(&messages));
    for i in 0..LANES {
        let pos = rng.random_range(0..72usize);
        received.set(i, pos, !received.get(i, pos));
    }
    let mut scratch = BatchScratch::new();
    let mut decoded = BatchDecoded::empty();
    c.bench_function("batch_decode/secded_72_64_column_match_4096", |b| {
        b.iter(|| {
            codec.decode_batch_with(&received, &mut scratch, &mut decoded);
            decoded.corrected_count()
        })
    });
    if let Some(baseline) = ActionTableCodec::try_new(&code) {
        c.bench_function("batch_decode/secded_72_64_action_table_4096", |b| {
            b.iter(|| black_box(baseline.decode_batch(&received)).corrected_count())
        });
    }

    let wide = ecc::ShortenedHamming::wide_85_64();
    let wide_codec = BatchCodec::new(&wide);
    let wide_messages: Vec<BitVec> = (0..LANES)
        .map(|_| BitVec::from_u64(64, rng.random::<u64>()))
        .collect();
    let mut wide_received = wide_codec.encode_batch(&BitSlice64::pack(&wide_messages));
    for i in 0..LANES {
        let pos = rng.random_range(0..85usize);
        wide_received.set(i, pos, !wide_received.get(i, pos));
    }
    c.bench_function("batch_decode/shamming_85_64_column_match_4096", |b| {
        b.iter(|| {
            wide_codec.decode_batch_with(&wide_received, &mut scratch, &mut decoded);
            decoded.corrected_count()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch_decode
}
criterion_main!(benches);
