//! SEC-DED family benchmarks: construction, synthesis, and wide-word codec
//! throughput on the (72,64) member, scalar vs bit-sliced batch.

use bench::banner;
use criterion::{criterion_group, criterion_main, Criterion};
use ecc::{BatchDecode, BatchEncode, BlockCode, HardDecoder, SecDed};
use encoders::{EncoderDesign, EncoderKind};
use gf2::{BitSlice64, BitVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfq_batch::BatchCodec;
use std::hint::black_box;

const LANES: usize = 4096;

fn print_throughput_summary() {
    banner("SEC-DED(72,64): scalar vs batch codec throughput");
    let code = SecDed::new(6);
    let codec = BatchCodec::sec_ded(6);
    let mut rng = StdRng::seed_from_u64(1);
    let messages: Vec<BitVec> = (0..LANES)
        .map(|_| BitVec::from_u64(64, rng.random::<u64>()))
        .collect();
    let batch = BitSlice64::pack(&messages);

    let start = std::time::Instant::now();
    for message in &messages {
        black_box(code.decode(&code.encode(message)));
    }
    let scalar = start.elapsed();

    let start = std::time::Instant::now();
    black_box(codec.decode_batch(&codec.encode_batch(&batch)));
    let batched = start.elapsed();

    println!(
        "encode+decode {LANES} words: scalar {scalar:?}, batch {batched:?} ({:.1}x)",
        scalar.as_secs_f64() / batched.as_secs_f64().max(1e-12)
    );
}

fn bench_secded(c: &mut Criterion) {
    print_throughput_summary();

    c.bench_function("secded/construct_72_64", |b| {
        b.iter(|| black_box(SecDed::new(6)))
    });
    c.bench_function("secded/batch_codec_build", |b| {
        b.iter(|| black_box(BatchCodec::sec_ded(6)))
    });
    c.bench_function("secded/synthesize_encoder_netlist", |b| {
        b.iter(|| black_box(EncoderDesign::build(EncoderKind::SecDed(6))))
    });

    let code = SecDed::new(6);
    let codec = BatchCodec::sec_ded(6);
    let mut rng = StdRng::seed_from_u64(2);
    let messages: Vec<BitVec> = (0..LANES)
        .map(|_| BitVec::from_u64(64, rng.random::<u64>()))
        .collect();
    let batch = BitSlice64::pack(&messages);
    let encoded = codec.encode_batch(&batch);

    c.bench_function("secded/scalar_encode_one", |b| {
        b.iter(|| black_box(code.encode(&messages[0])))
    });
    c.bench_function("secded/batch_encode_4096", |b| {
        b.iter(|| black_box(codec.encode_batch(&batch)))
    });
    c.bench_function("secded/batch_decode_4096", |b| {
        b.iter(|| black_box(codec.decode_batch(&encoded)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_secded
}
criterion_main!(benches);
