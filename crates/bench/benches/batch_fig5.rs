//! Scalar vs bit-sliced batch codec throughput, and the batched Fig. 5
//! Monte-Carlo driver.
//!
//! Prints an encode+decode throughput comparison (messages/second) between
//! the scalar `ecc` path and the `sfq-batch` engine at 64-lane and 4096-lane
//! batches, then measures the kernels under Criterion. The acceptance target
//! for this workspace is >= 10x encode+decode throughput at 64-lane batches;
//! the measured ratio is printed by the comparison table.

use bench::{banner, banner_with_fingerprint, Fingerprint};
use criterion::{criterion_group, criterion_main, Criterion};
use cryolink::{BatchLink, BatchLinkContext, ChannelConfig, CryoLink, Fig5Experiment};
use ecc::{BatchDecode, BatchEncode, BlockCode, Hamming84, HardDecoder};
use encoders::{EncoderDesign, EncoderKind};
use gf2::{BitSlice64, BitVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfq_batch::BatchCodec;
use sfq_cells::CellLibrary;
use sfq_sim::PpvModel;
use std::hint::black_box;
use std::time::Instant;

/// Measures one closure's sustained rate in messages/second.
fn throughput<F: FnMut() -> usize>(mut f: F) -> f64 {
    // Warm up (timed), then size the repetitions for ~200 ms of work.
    let start = Instant::now();
    let mut messages = f();
    let once = start.elapsed().max(std::time::Duration::from_nanos(100));
    let reps = (200_000_000 / once.as_nanos().max(1)).clamp(1, 2_000_000) as usize;
    let start = Instant::now();
    for _ in 0..reps {
        messages = black_box(f());
    }
    let elapsed = start.elapsed().as_secs_f64();
    (messages * reps) as f64 / elapsed
}

fn scalar_encode_decode(code: &Hamming84, messages: &[BitVec]) -> usize {
    for msg in messages {
        let cw = code.encode(msg);
        let mut r = cw.clone();
        r.flip(3); // exercise the correction path, not just the clean path
        black_box(code.decode(&r));
    }
    messages.len()
}

fn batch_encode_decode(codec: &BatchCodec, messages: &BitSlice64) -> usize {
    let mut received = codec.encode_batch(messages);
    // Same single-bit error on every lane as the scalar loop applies.
    let words = received.words();
    let tail = received.tail_mask();
    for w in 0..words {
        let mask = if w + 1 == words { tail } else { u64::MAX };
        received.lane_mut(3)[w] ^= mask;
    }
    black_box(codec.decode_batch(&received));
    messages.batch()
}

fn print_comparison() {
    banner_with_fingerprint(
        "sfq-batch: scalar vs bit-sliced encode+decode throughput (Hamming(8,4))",
        &Fingerprint::new("hamming(8,4)", 0, 4096, 42, 1),
    );
    let code = Hamming84::new();
    let codec = BatchCodec::hamming84();
    let mut rng = StdRng::seed_from_u64(42);

    println!(
        "{:<12} {:>16} {:>16} {:>9}",
        "batch", "scalar msg/s", "batch msg/s", "speedup"
    );
    for &batch_size in &[64usize, 1024, 4096] {
        let messages: Vec<BitVec> = (0..batch_size)
            .map(|_| BitVec::from_u64(4, rng.random_range(0..16)))
            .collect();
        let packed = BitSlice64::pack(&messages);
        let scalar_rate = throughput(|| scalar_encode_decode(&code, &messages));
        let batch_rate = throughput(|| batch_encode_decode(&codec, &packed));
        println!(
            "{:<12} {:>16.3e} {:>16.3e} {:>8.1}x",
            batch_size,
            scalar_rate,
            batch_rate,
            batch_rate / scalar_rate
        );
    }

    banner("Fig. 5 inner loop: pulse-level vs batch link (100 messages/chip)");
    let library = CellLibrary::coldflux();
    let design = EncoderDesign::build(EncoderKind::Hamming84);
    let model = PpvModel::paper_defaults();
    let mut rng = StdRng::seed_from_u64(7);
    let chip = model.sample_chip(design.netlist(), &library, &mut rng);

    let scalar_link = CryoLink::new(&design, chip.faults.clone(), ChannelConfig::ideal());
    let messages: Vec<BitVec> = (0..100).map(|i| BitVec::from_u64(4, i % 16)).collect();
    let scalar_rate = throughput(|| {
        let mut rng = StdRng::seed_from_u64(9);
        black_box(scalar_link.transmit_batch(&messages, &mut rng));
        messages.len()
    });

    let context = BatchLinkContext::new(&design);
    let batch_link = BatchLink::with_chip(&design, &context, &chip.faults, ChannelConfig::ideal());
    let batch_rate = throughput(|| {
        let mut rng = StdRng::seed_from_u64(9);
        let batch = batch_link.random_messages(100, &mut rng);
        black_box(batch_link.transmit_batch(&batch, &mut rng));
        100
    });
    println!(
        "pulse-level link {scalar_rate:>12.3e} msg/s   batch link {batch_rate:>12.3e} msg/s   speedup {:>6.1}x",
        batch_rate / scalar_rate
    );
}

fn bench_batch_fig5(c: &mut Criterion) {
    print_comparison();

    let code = Hamming84::new();
    let codec = BatchCodec::hamming84();
    let mut rng = StdRng::seed_from_u64(42);
    let messages: Vec<BitVec> = (0..64)
        .map(|_| BitVec::from_u64(4, rng.random_range(0..16)))
        .collect();
    let packed = BitSlice64::pack(&messages);

    c.bench_function("batch_fig5/scalar_encode_decode_64", |b| {
        b.iter(|| scalar_encode_decode(&code, &messages))
    });
    c.bench_function("batch_fig5/batch_encode_decode_64", |b| {
        b.iter(|| batch_encode_decode(&codec, &packed))
    });

    let big: Vec<BitVec> = (0..4096)
        .map(|_| BitVec::from_u64(4, rng.random_range(0..16)))
        .collect();
    let big_packed = BitSlice64::pack(&big);
    c.bench_function("batch_fig5/batch_encode_decode_4096", |b| {
        b.iter(|| batch_encode_decode(&codec, &big_packed))
    });

    // End-to-end batched Fig. 5 (reduced size).
    let library = CellLibrary::coldflux();
    let design = EncoderDesign::build(EncoderKind::Hamming84);
    c.bench_function("batch_fig5/experiment_50_chips_batched", |b| {
        let experiment = Fig5Experiment {
            chips: 50,
            messages_per_chip: 100,
            threads: 4,
            ..Fig5Experiment::paper_setup()
        };
        b.iter(|| black_box(experiment.run_design_batched(&design, &library)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch_fig5
}
criterion_main!(benches);
