//! Synthesis-pipeline benchmark: regenerates the naive-vs-optimized circuit
//! costs of every coded catalog member, times the pipeline, and emits
//! `BENCH_synth.json` at the workspace root (per-code XOR/DFF/SPL/JJ/depth
//! before and after the passes, the chosen schedule, the Paar-factoring
//! middle point, the per-pass deltas, and the `depth_slack` latency/area
//! Pareto sweep) so CI and the roadmap can track cost regressions
//! numerically.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecc::BlockCode;
use encoders::{EncoderDesign, EncoderKind};
use sfq_cells::CellLibrary;
use sfq_netlist::pass::Schedule;
use sfq_netlist::NetlistStats;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Slack range of the emitted Pareto sweep (matches the golden fingerprint
/// file `tests/golden/pareto_front.txt`).
const PARETO_MAX_SLACK: usize = 2;

fn json_cost(stats: &NetlistStats, depth: usize) -> String {
    use sfq_cells::CellKind;
    format!(
        "{{\"xor\": {}, \"dff\": {}, \"spl\": {}, \"sfqdc\": {}, \"jj\": {}, \"depth\": {}}}",
        stats.histogram.count(CellKind::Xor),
        stats.histogram.count(CellKind::Dff),
        stats.histogram.count(CellKind::Splitter),
        stats.histogram.count(CellKind::SfqToDc),
        stats.cost.jj_count,
        depth
    )
}

/// Builds the report and returns it as a JSON string.
fn synth_report_json() -> String {
    let library = CellLibrary::coldflux();
    let mut designs = Vec::new();
    for kind in EncoderKind::catalog() {
        if kind == EncoderKind::None {
            continue;
        }
        let design = EncoderDesign::build(kind);
        let optimized = design.stats(&library);
        let naive_netlist = design.naive_netlist().expect("coded design");
        let naive = NetlistStats::compute(&naive_netlist, &library);
        let saving = 100.0 * (naive.cost.jj_count as f64 - optimized.cost.jj_count as f64)
            / naive.cost.jj_count as f64;
        let mut passes = String::new();
        for report in &design.synthesis_report().expect("pipeline report").passes {
            let _ = write!(
                passes,
                "{}{{\"pass\": \"{}\", \"xor\": [{}, {}], \"dff\": [{}, {}], \
                 \"spl\": [{}, {}], \"depth\": [{}, {}]}}",
                if passes.is_empty() { "" } else { ", " },
                report.pass,
                report.before.xor,
                report.after.xor,
                report.before.dff,
                report.after.dff,
                report.before.splitter,
                report.after.splitter,
                report.before.depth,
                report.after.depth,
            );
        }
        let paar = design
            .schedule_plan()
            .expect("coded design carries a schedule plan")
            .candidates
            .iter()
            .find(|c| c.schedule == Schedule::default())
            .expect("the Paar schedule is always a candidate")
            .planned;
        let mut pareto = String::new();
        for point in design.pareto_sweep(&library, PARETO_MAX_SLACK) {
            let _ = write!(
                pareto,
                "{}{{\"slack\": {}, \"schedule\": \"{}\", \"depth\": {}, \"xor\": {}, \
                 \"dff\": {}, \"spl\": {}, \"jj\": {}, \"front\": {}}}",
                if pareto.is_empty() { "" } else { ", " },
                point.depth_slack,
                point.schedule.label(),
                point.planned.depth,
                point.planned.xor,
                point.planned.dff,
                point.planned.splitter,
                point.jj,
                point.on_front,
            );
        }
        let schedule = design
            .schedule_plan()
            .expect("coded design carries a schedule plan")
            .chosen
            .label();
        designs.push(format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"k\": {}, \"schedule\": \"{}\", \
             \"naive\": {}, \"paar\": {{\"xor\": {}, \"jj\": {}}}, \"optimized\": {}, \
             \"jj_saving_pct\": {:.2}, \"passes\": [{}], \"pareto\": [{}]}}",
            design.name(),
            design.n(),
            design.k(),
            schedule,
            json_cost(&naive, naive_netlist.logic_depth()),
            paar.xor,
            paar.jj(&library),
            json_cost(&optimized, design.netlist().logic_depth()),
            saving,
            passes,
            pareto
        ));
    }
    format!("{{\n  \"designs\": [\n{}\n  ]\n}}\n", designs.join(",\n"))
}

fn bench_synth(c: &mut Criterion) {
    let json = synth_report_json();
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_synth.json");
    std::fs::write(&out, &json).expect("write BENCH_synth.json");
    println!("wrote {} ({} bytes)", out.display(), json.len());

    let code = ecc::SecDed::new(6);
    c.bench_function("synth/pipeline_secded_72_64", |b| {
        b.iter(|| {
            black_box(sfq_netlist::synth::synthesize_encoder(
                "secded_72_64_encoder",
                code.generator(),
                sfq_netlist::pass::PipelineOptions::default(),
            ))
        })
    });
    c.bench_function("synth/naive_secded_72_64", |b| {
        b.iter(|| {
            black_box(sfq_netlist::synth::synthesize_linear_encoder(
                "secded_72_64_naive",
                code.generator(),
                sfq_netlist::synth::SynthesisOptions::default(),
            ))
        })
    });
    c.bench_function("synth/build_full_catalog", |b| {
        b.iter(|| black_box(EncoderDesign::build_catalog()))
    });
}

criterion_group!(benches, bench_synth);
criterion_main!(benches);
