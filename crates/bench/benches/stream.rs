//! Scrub-service benchmark: the latency contract measured at three arrival
//! intensities (nominal 1.0×, the ISSUE's 1.5× overload, and a severe 2.0×)
//! under the standard fault soak-mix. Emits `BENCH_stream.json` at the
//! workspace root — sustained messages/second, p50/p99/max completion
//! latency in simulated cycles, deadline-miss counts, peak backlog, and the
//! ladder transition count per intensity.
//!
//! Modes:
//!
//! * `cargo bench -p bench --bench stream` — full measurement, writes
//!   `BENCH_stream.json`.
//! * `-- --quick` — reduced run used as the CI smoke gate: fails (exit 1)
//!   if the nominal intensity misses a deadline, sheds a batch, or falls
//!   below [`NOMINAL_THROUGHPUT_FLOOR`] messages/second.
//! * `-- --soak` — the ~30 s CI soak leg: long runs under the fault
//!   soak-mix at 1.0× (must hold zero deadline misses) and 1.5× (backlog
//!   must stay bounded and drain). Also writes `BENCH_stream.json`.

use bench::banner_with_fingerprint;
use sfq_stream::{FaultScript, ScrubService, StreamConfig, StreamReport};
use sfq_telemetry::Fingerprint;
use std::path::PathBuf;

/// CI throughput floor (messages/second) for the nominal intensity in
/// `--quick` mode — the ISSUE's ≥ 1e7 msg/s service-rate bar. Measured
/// ≈ 1.2–1.4e8 msg/s end to end (arrival simulation + queue hops + SEC-DED
/// (72,64) decode + classification against ground truth) with two workers
/// on the introducing commit's 1-core container; the floor sits an order of
/// magnitude below the measurement so it catches service-level collapse
/// (serialization, queue thrash, per-batch reallocation), not runner noise.
const NOMINAL_THROUGHPUT_FLOOR: f64 = 1.0e7;

/// Backlog bound for the 1.5× soak leg: the widen/detect rungs absorb a
/// 1.5× overload with backlog oscillating around the detection-engage
/// threshold (measured peak 29); crossing the shed-engage threshold (48)
/// would mean the ladder failed to hold the line.
const SOAK_OVERLOAD_BACKLOG_BOUND: usize = 96;

struct Intensity {
    slug: &'static str,
    factor_milli: u64,
}

const INTENSITIES: [Intensity; 3] = [
    Intensity {
        slug: "nominal_1_0x",
        factor_milli: 1000,
    },
    Intensity {
        slug: "overload_1_5x",
        factor_milli: 1500,
    },
    Intensity {
        slug: "severe_2_0x",
        factor_milli: 2000,
    },
];

fn run_intensity(intensity: &Intensity, total_cycles: u64) -> StreamReport {
    let config = StreamConfig {
        total_cycles,
        drain_limit: total_cycles,
        ..StreamConfig::nominal()
    }
    .with_rate_factor(intensity.factor_milli);
    let script = FaultScript::soak_mix(total_cycles, config.shards, 2);
    let report = ScrubService::run(&config, &script);
    report
        .validate()
        .unwrap_or_else(|e| panic!("{} violated a run invariant: {e}", intensity.slug));
    report
}

fn render_json(rows: &[(&'static str, u64, StreamReport)], fingerprint: &Fingerprint) -> String {
    let mut intensities = Vec::new();
    for (slug, factor_milli, report) in rows {
        intensities.push(format!(
            "    {{\n      \"intensity\": \"{slug}\",\n      \"rate_factor_milli\": {factor_milli},\n      \"report\": {}\n    }}",
            report.to_json("      ")
        ));
    }
    format!(
        "{{\n  \"fingerprint\": {},\n  \"config\": \"StreamConfig::nominal() scaled per intensity\",\n  \"intensities\": [\n{}\n  ]\n}}\n",
        fingerprint.to_json(),
        intensities.join(",\n")
    )
}

fn write_artifact(json: &str) {
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_stream.json");
    std::fs::write(&out, json).expect("write BENCH_stream.json");
    println!("wrote {} ({} bytes)", out.display(), json.len());
}

fn print_row(slug: &str, report: &StreamReport) {
    println!(
        "{:<14} {:>12.3e} {:>7} {:>7} {:>7} {:>8} {:>8} {:>8} {:>11} {:>12}",
        slug,
        report.throughput_msgs_per_sec,
        report.latency.p50,
        report.latency.p99,
        report.latency.max,
        report.deadline_misses,
        report.max_backlog,
        report.shed_batches,
        report.transitions.len(),
        report.messages_decoded,
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let soak = std::env::args().any(|a| a == "--soak");
    let config = StreamConfig::nominal();

    // Run lengths: the full report covers every intensity at a meaningful
    // length; --quick shrinks it to a smoke check; --soak stretches the
    // nominal and 1.5x legs to ~30 s of wall clock combined.
    let total_cycles: u64 = if quick {
        1 << 14
    } else if soak {
        1 << 22
    } else {
        1 << 17
    };

    let fingerprint = Fingerprint::new(
        "scrub_stream secded(72,64)",
        0,
        config.batch_messages,
        config.seed,
        config.threads,
    );
    banner_with_fingerprint(
        if soak {
            "sfq-stream: fault-injected soak (nominal + 1.5x overload)"
        } else {
            "sfq-stream: scrub service latency contract under fault soak-mix"
        },
        &fingerprint,
    );
    println!(
        "{:<14} {:>12} {:>7} {:>7} {:>7} {:>8} {:>8} {:>8} {:>11} {:>12}",
        "intensity",
        "msg/s",
        "p50",
        "p99",
        "max",
        "misses",
        "backlog",
        "shed",
        "transitions",
        "messages"
    );

    let mut rows: Vec<(&'static str, u64, StreamReport)> = Vec::new();
    for intensity in &INTENSITIES {
        // The soak leg covers 1.0x and 1.5x only (2.0x would dominate the
        // wall-clock budget without adding a gated claim).
        if soak && intensity.factor_milli == 2000 {
            continue;
        }
        let report = run_intensity(intensity, total_cycles);
        print_row(intensity.slug, &report);
        rows.push((intensity.slug, intensity.factor_milli, report));
    }

    let nominal = &rows[0].2;
    if quick || soak {
        if nominal.deadline_misses != 0 {
            eprintln!(
                "LATENCY CONTRACT VIOLATION: nominal load missed {} deadlines",
                nominal.deadline_misses
            );
            std::process::exit(1);
        }
        if nominal.shed_batches != 0 {
            eprintln!(
                "LATENCY CONTRACT VIOLATION: nominal load shed {} batches",
                nominal.shed_batches
            );
            std::process::exit(1);
        }
        if nominal.throughput_msgs_per_sec < NOMINAL_THROUGHPUT_FLOOR {
            eprintln!(
                "THROUGHPUT REGRESSION: scrub service sustained {:.3e} msg/s at nominal \
                 load, below the committed floor {NOMINAL_THROUGHPUT_FLOOR:.1e}",
                nominal.throughput_msgs_per_sec
            );
            std::process::exit(1);
        }
    }
    if soak {
        let overload = &rows[1].2;
        if overload.max_backlog >= SOAK_OVERLOAD_BACKLOG_BOUND {
            eprintln!(
                "BACKLOG BOUND VIOLATION: 1.5x overload peaked at {} batches of backlog, \
                 bound {SOAK_OVERLOAD_BACKLOG_BOUND}",
                overload.max_backlog
            );
            std::process::exit(1);
        }
        println!(
            "soak ok: nominal zero-miss over {} batches, 1.5x backlog peak {} (bound {})",
            nominal.completed_batches, overload.max_backlog, SOAK_OVERLOAD_BACKLOG_BOUND
        );
    }

    if !quick {
        write_artifact(&render_json(&rows, &fingerprint));
    }
}
