//! Reference SFQ sub-circuits at the analog (JJ) level.
//!
//! These small circuits demonstrate the physical behaviour that the
//! gate-level simulator abstracts: a DC-to-SFQ front end turning a current
//! step into a single flux quantum, a Josephson transmission line propagating
//! that quantum from junction to junction, and a splitter duplicating it.
//! They use critically damped junctions on the SFQ5ee-like process of
//! [`JunctionParams::critically_damped`] with the classical 70 % bias point.

use crate::circuit::{Circuit, JunctionParams, NodeIndex};
use crate::waveform::Waveform;

/// Nominal junction critical current used by the reference cells (250 µA).
pub const CELL_IC: f64 = 250e-6;
/// Inter-stage inductance of the JTL (2 pH).
pub const CELL_INDUCTANCE: f64 = 2e-12;
/// Bias fraction (bias current / critical current).
pub const BIAS_FRACTION: f64 = 0.7;
/// Time over which bias currents are ramped to avoid spurious switching.
pub const BIAS_RAMP: f64 = 20e-12;
/// Time at which the input trigger pulse is applied.
pub const TRIGGER_TIME: f64 = 35e-12;

fn biased_junction(circuit: &mut Circuit, node: NodeIndex, ic: f64) -> usize {
    let index = circuit.junction(node, 0, JunctionParams::critically_damped(ic));
    circuit.current_source(
        0,
        node,
        Waveform::Pulse {
            low: 0.0,
            high: BIAS_FRACTION * ic,
            delay: 0.0,
            rise: BIAS_RAMP,
            width: 10.0,
            fall: 1.0,
        },
    );
    index
}

/// Builds a Josephson transmission line of `stages` biased junctions joined
/// by series inductors, driven by a trigger pulse on the first node.
///
/// Returns the circuit and the junction indices of each stage (use
/// [`crate::TransientResult::flux_quanta`] on them to follow the pulse).
///
/// # Panics
/// Panics if `stages` is zero.
#[must_use]
pub fn jtl_chain(stages: usize) -> (Circuit, Vec<usize>) {
    assert!(stages > 0, "a JTL needs at least one stage");
    let mut circuit = Circuit::new();
    let mut junctions = Vec::with_capacity(stages);
    let mut previous: Option<NodeIndex> = None;
    let mut first_node = 0;
    for stage in 0..stages {
        let node = circuit.node();
        if stage == 0 {
            first_node = node;
        }
        if let Some(prev) = previous {
            circuit.inductor(prev, node, CELL_INDUCTANCE);
        }
        junctions.push(biased_junction(&mut circuit, node, CELL_IC));
        previous = Some(node);
    }
    // Input trigger: a current pulse strong enough to switch the first
    // junction once (2π phase slip), launching one flux quantum.
    circuit.current_source(
        0,
        first_node,
        Waveform::trigger(1.3 * CELL_IC, TRIGGER_TIME, 8e-12),
    );
    (circuit, junctions)
}

/// Builds an SFQ splitter at the analog level: an input JTL stage whose flux
/// quantum is duplicated into two output branches.
///
/// Returns the circuit and the junction indices `(input, out_a, out_b)`.
#[must_use]
pub fn splitter() -> (Circuit, (usize, usize, usize)) {
    let mut circuit = Circuit::new();
    let input = circuit.node();
    let out_a = circuit.node();
    let out_b = circuit.node();
    // Input junction is larger so it can drive two branches.
    let j_in = biased_junction(&mut circuit, input, 1.4 * CELL_IC);
    circuit.inductor(input, out_a, CELL_INDUCTANCE);
    circuit.inductor(input, out_b, CELL_INDUCTANCE);
    let j_a = biased_junction(&mut circuit, out_a, CELL_IC);
    let j_b = biased_junction(&mut circuit, out_b, CELL_IC);
    circuit.current_source(
        0,
        input,
        Waveform::trigger(1.9 * CELL_IC, TRIGGER_TIME, 6e-12),
    );
    (circuit, (j_in, j_a, j_b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Transient;
    use crate::FLUX_QUANTUM;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(circuit: &Circuit) -> crate::solver::TransientResult {
        Transient::new(5e-14, 80e-12).run(circuit)
    }

    #[test]
    fn jtl_propagates_the_trigger_flux_to_every_stage() {
        let (circuit, junctions) = jtl_chain(4);
        let result = run(&circuit);
        let first = result.flux_quanta(junctions[0]);
        assert!(
            (1..=2).contains(&first),
            "trigger should launch 1-2 flux quanta, got {first}"
        );
        for (stage, &j) in junctions.iter().enumerate() {
            assert_eq!(
                result.flux_quanta(j),
                first,
                "stage {stage} should pass the same number of SFQ pulses (phase {})",
                result.final_phase(j)
            );
        }
    }

    #[test]
    fn sfq_pulse_has_phi0_area_and_millivolt_scale_amplitude() {
        let (circuit, junctions) = jtl_chain(3);
        let result = run(&circuit);
        // Node 2 is the middle JTL stage; each SFQ pulse crossing it
        // integrates to one flux quantum and peaks in the hundreds of
        // microvolts, a couple of ps wide — the numbers quoted in the
        // introduction of the paper.
        let quanta = result.flux_quanta(junctions[1]) as f64;
        assert!(quanta >= 1.0);
        let area = result.voltage_area(2);
        assert!(
            (area - quanta * FLUX_QUANTUM).abs() < 0.25 * quanta * FLUX_QUANTUM,
            "pulse area {area:e} should be within 25% of {quanta} flux quanta"
        );
        let peak = result.peak_voltage(2);
        assert!(peak > 1e-4 && peak < 2e-3, "peak {peak} V");
    }

    #[test]
    fn unbiased_chain_does_not_fire_without_trigger() {
        // Build a chain manually without the trigger source: nothing switches.
        let mut circuit = Circuit::new();
        let n1 = circuit.node();
        let n2 = circuit.node();
        circuit.inductor(n1, n2, CELL_INDUCTANCE);
        let j1 = biased_junction(&mut circuit, n1, CELL_IC);
        let j2 = biased_junction(&mut circuit, n2, CELL_IC);
        let result = run(&circuit);
        assert_eq!(result.flux_quanta(j1), 0);
        assert_eq!(result.flux_quanta(j2), 0);
    }

    #[test]
    fn splitter_duplicates_the_pulse_into_both_branches() {
        let (circuit, (j_in, j_a, j_b)) = splitter();
        let result = run(&circuit);
        assert!(result.flux_quanta(j_in) >= 1, "input junction must switch");
        let a = result.flux_quanta(j_a);
        let b = result.flux_quanta(j_b);
        assert!(a >= 1, "branch A receives the pulse");
        assert_eq!(a, b, "both branches receive the same number of pulses");
    }

    #[test]
    fn spread_can_break_a_marginal_chain() {
        // With a large spread some samples fail to propagate the pulse —
        // the PPV failure mechanism of the paper, observed at the analog level.
        let (circuit, junctions) = jtl_chain(4);
        let last = *junctions.last().unwrap();
        let mut rng = StdRng::seed_from_u64(20);
        let mut failures = 0;
        let trials = 25;
        for _ in 0..trials {
            let perturbed = circuit.with_spread(0.45, &mut rng);
            let result = run(&perturbed);
            if result.flux_quanta(last) != 1 {
                failures += 1;
            }
        }
        assert!(
            failures > 0,
            "a ±45% spread should break pulse propagation at least once in {trials} trials"
        );
        // And the nominal circuit still works.
        assert_eq!(run(&circuit).flux_quanta(last), 1);
    }
}
