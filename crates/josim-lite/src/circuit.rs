//! Analog circuit description: nodes, linear elements, Josephson junctions,
//! sources, and the JoSIM-style parameter `spread`.

use crate::waveform::Waveform;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Index of a circuit node. Node 0 is ground.
pub type NodeIndex = usize;

/// RCSJ parameters of a Josephson junction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JunctionParams {
    /// Critical current in amperes.
    pub critical_current: f64,
    /// Shunt (normal-state) resistance in ohms.
    pub resistance: f64,
    /// Junction capacitance in farads.
    pub capacitance: f64,
}

impl JunctionParams {
    /// A critically damped (βc ≈ 1) junction of the given critical current on
    /// the MIT LL SFQ5ee-like process: 70 fF/µm² specific capacitance at
    /// 10 kA/cm² critical current density, with the shunt resistance chosen
    /// for a Stewart–McCumber parameter of one.
    #[must_use]
    pub fn critically_damped(critical_current: f64) -> Self {
        let area_um2 = critical_current / 100e-6; // 100 µA/µm² = 10 kA/cm²
        let capacitance = 70e-15 * area_um2;
        let resistance = (crate::FLUX_QUANTUM
            / (2.0 * std::f64::consts::PI * critical_current * capacitance))
            .sqrt();
        JunctionParams {
            critical_current,
            resistance,
            capacitance,
        }
    }

    /// Stewart–McCumber parameter βc = 2π Ic R² C / Φ₀.
    #[must_use]
    pub fn beta_c(&self) -> f64 {
        2.0 * std::f64::consts::PI
            * self.critical_current
            * self.resistance
            * self.resistance
            * self.capacitance
            / crate::FLUX_QUANTUM
    }
}

/// One circuit element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Element {
    /// Linear resistor between two nodes.
    Resistor {
        /// Positive terminal node.
        a: NodeIndex,
        /// Negative terminal node.
        b: NodeIndex,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Linear inductor between two nodes.
    Inductor {
        /// Positive terminal node.
        a: NodeIndex,
        /// Negative terminal node.
        b: NodeIndex,
        /// Inductance in henries.
        henries: f64,
    },
    /// Linear capacitor between two nodes.
    Capacitor {
        /// Positive terminal node.
        a: NodeIndex,
        /// Negative terminal node.
        b: NodeIndex,
        /// Capacitance in farads.
        farads: f64,
    },
    /// Josephson junction (RCSJ model) between two nodes.
    Junction {
        /// Positive terminal node.
        a: NodeIndex,
        /// Negative terminal node.
        b: NodeIndex,
        /// RCSJ parameters.
        params: JunctionParams,
    },
    /// Independent current source pushing current from `a` to `b` (i.e. a
    /// positive value raises the potential of `b`).
    CurrentSource {
        /// Source terminal the current leaves from.
        a: NodeIndex,
        /// Terminal the current flows into.
        b: NodeIndex,
        /// Source waveform.
        waveform: Waveform,
    },
}

/// An analog circuit: a set of elements over numbered nodes (0 = ground).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    /// Number of nodes, including ground.
    num_nodes: usize,
    elements: Vec<Element>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    #[must_use]
    pub fn new() -> Self {
        Circuit {
            num_nodes: 1,
            elements: Vec::new(),
        }
    }

    /// Allocates and returns a fresh node index.
    pub fn node(&mut self) -> NodeIndex {
        let id = self.num_nodes;
        self.num_nodes += 1;
        id
    }

    /// The ground node (always index 0).
    #[must_use]
    pub fn ground(&self) -> NodeIndex {
        0
    }

    /// Number of nodes, including ground.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The element list.
    #[must_use]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    fn check_node(&self, n: NodeIndex) {
        assert!(n < self.num_nodes, "node {n} was never allocated");
    }

    /// Adds a resistor.
    pub fn resistor(&mut self, a: NodeIndex, b: NodeIndex, ohms: f64) {
        self.check_node(a);
        self.check_node(b);
        assert!(ohms > 0.0, "resistance must be positive");
        self.elements.push(Element::Resistor { a, b, ohms });
    }

    /// Adds an inductor.
    pub fn inductor(&mut self, a: NodeIndex, b: NodeIndex, henries: f64) {
        self.check_node(a);
        self.check_node(b);
        assert!(henries > 0.0, "inductance must be positive");
        self.elements.push(Element::Inductor { a, b, henries });
    }

    /// Adds a capacitor.
    pub fn capacitor(&mut self, a: NodeIndex, b: NodeIndex, farads: f64) {
        self.check_node(a);
        self.check_node(b);
        assert!(farads > 0.0, "capacitance must be positive");
        self.elements.push(Element::Capacitor { a, b, farads });
    }

    /// Adds a Josephson junction and returns its junction index (used to read
    /// back phases from the transient result).
    pub fn junction(&mut self, a: NodeIndex, b: NodeIndex, params: JunctionParams) -> usize {
        self.check_node(a);
        self.check_node(b);
        assert!(
            params.critical_current > 0.0,
            "critical current must be positive"
        );
        let index = self
            .elements
            .iter()
            .filter(|e| matches!(e, Element::Junction { .. }))
            .count();
        self.elements.push(Element::Junction { a, b, params });
        index
    }

    /// Adds an independent current source from `a` to `b`.
    pub fn current_source(&mut self, a: NodeIndex, b: NodeIndex, waveform: Waveform) {
        self.check_node(a);
        self.check_node(b);
        self.elements
            .push(Element::CurrentSource { a, b, waveform });
    }

    /// Number of Josephson junctions in the circuit.
    #[must_use]
    pub fn junction_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::Junction { .. }))
            .count()
    }

    /// Applies a JoSIM-style `spread`: every R, L, C value and every junction
    /// critical current is multiplied by an independent factor drawn
    /// uniformly from `[1 − spread, 1 + spread]`. Source waveforms are left
    /// untouched. Returns the perturbed copy.
    #[must_use]
    pub fn with_spread<R: Rng + ?Sized>(&self, spread: f64, rng: &mut R) -> Circuit {
        assert!((0.0..1.0).contains(&spread), "spread must be in [0, 1)");
        let factor = |rng: &mut R| -> f64 {
            if spread == 0.0 {
                1.0
            } else {
                1.0 + rng.random_range(-spread..=spread)
            }
        };
        let elements = self
            .elements
            .iter()
            .map(|e| match e {
                Element::Resistor { a, b, ohms } => Element::Resistor {
                    a: *a,
                    b: *b,
                    ohms: ohms * factor(rng),
                },
                Element::Inductor { a, b, henries } => Element::Inductor {
                    a: *a,
                    b: *b,
                    henries: henries * factor(rng),
                },
                Element::Capacitor { a, b, farads } => Element::Capacitor {
                    a: *a,
                    b: *b,
                    farads: farads * factor(rng),
                },
                Element::Junction { a, b, params } => Element::Junction {
                    a: *a,
                    b: *b,
                    params: JunctionParams {
                        critical_current: params.critical_current * factor(rng),
                        resistance: params.resistance * factor(rng),
                        capacitance: params.capacitance * factor(rng),
                    },
                },
                Element::CurrentSource { a, b, waveform } => Element::CurrentSource {
                    a: *a,
                    b: *b,
                    waveform: waveform.clone(),
                },
            })
            .collect();
        Circuit {
            num_nodes: self.num_nodes,
            elements,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn node_allocation_starts_after_ground() {
        let mut c = Circuit::new();
        assert_eq!(c.ground(), 0);
        assert_eq!(c.node(), 1);
        assert_eq!(c.node(), 2);
        assert_eq!(c.num_nodes(), 3);
    }

    #[test]
    fn junction_indices_count_up() {
        let mut c = Circuit::new();
        let n1 = c.node();
        let n2 = c.node();
        let j0 = c.junction(n1, c.ground(), JunctionParams::critically_damped(100e-6));
        let j1 = c.junction(n2, c.ground(), JunctionParams::critically_damped(100e-6));
        assert_eq!((j0, j1), (0, 1));
        assert_eq!(c.junction_count(), 2);
    }

    #[test]
    fn critically_damped_junction_has_beta_c_near_one() {
        for ic in [50e-6, 100e-6, 250e-6] {
            let p = JunctionParams::critically_damped(ic);
            assert!((p.beta_c() - 1.0).abs() < 1e-9, "Ic={ic}");
            assert!(p.resistance > 0.5 && p.resistance < 20.0);
        }
    }

    #[test]
    #[should_panic(expected = "never allocated")]
    fn connecting_unallocated_node_panics() {
        let mut c = Circuit::new();
        c.resistor(0, 5, 1.0);
    }

    #[test]
    fn spread_perturbs_values_within_bounds() {
        let mut c = Circuit::new();
        let n = c.node();
        c.resistor(n, 0, 10.0);
        c.inductor(n, 0, 2e-12);
        c.junction(n, 0, JunctionParams::critically_damped(100e-6));
        let mut rng = StdRng::seed_from_u64(3);
        let perturbed = c.with_spread(0.2, &mut rng);
        for (orig, new) in c.elements().iter().zip(perturbed.elements()) {
            match (orig, new) {
                (Element::Resistor { ohms: o, .. }, Element::Resistor { ohms: n, .. }) => {
                    assert!((n / o - 1.0).abs() <= 0.2 + 1e-12);
                }
                (Element::Inductor { henries: o, .. }, Element::Inductor { henries: n, .. }) => {
                    assert!((n / o - 1.0).abs() <= 0.2 + 1e-12);
                }
                (Element::Junction { params: o, .. }, Element::Junction { params: n, .. }) => {
                    assert!((n.critical_current / o.critical_current - 1.0).abs() <= 0.2 + 1e-12);
                }
                _ => {}
            }
        }
        // Zero spread is the identity.
        let same = c.with_spread(0.0, &mut rng);
        assert_eq!(same, c);
    }
}
