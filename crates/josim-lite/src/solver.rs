//! Transient solver: modified nodal analysis with trapezoidal integration.
//!
//! Linear elements are replaced by their trapezoidal companion models
//! (conductance + history current); the Josephson supercurrent
//! `Ic·sin(φ)` is handled by fixed-point iteration within each time step,
//! with the phase advanced by the trapezoidal rule
//! `φₙ₊₁ = φₙ + (π·h/Φ₀)(vₙ + vₙ₊₁)` — the same discretization JoSIM uses.
//! The nodal conductance matrix is constant for a fixed step size, so it is
//! factorized once (dense LU with partial pivoting) and only the right-hand
//! side is rebuilt inside the loop.

use crate::circuit::{Circuit, Element};
use crate::FLUX_QUANTUM;
use serde::{Deserialize, Serialize};

/// Transient-analysis configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transient {
    /// Time step in seconds (0.05–0.25 ps is typical for SFQ circuits).
    pub step: f64,
    /// Stop time in seconds.
    pub stop: f64,
    /// Maximum fixed-point iterations per time step.
    pub max_iterations: usize,
    /// Convergence tolerance on node voltages, in volts.
    pub tolerance: f64,
}

impl Transient {
    /// Creates a transient analysis with default iteration settings.
    #[must_use]
    pub fn new(step: f64, stop: f64) -> Self {
        Transient {
            step,
            stop,
            max_iterations: 12,
            tolerance: 1e-9,
        }
    }

    /// Runs the analysis on a circuit.
    ///
    /// # Panics
    /// Panics if the step or stop time is not positive.
    #[must_use]
    pub fn run(&self, circuit: &Circuit) -> TransientResult {
        assert!(
            self.step > 0.0 && self.stop > 0.0,
            "step and stop must be positive"
        );
        let h = self.step;
        let n = circuit.num_nodes() - 1; // unknown node voltages (ground excluded)
        let steps = (self.stop / h).ceil() as usize;

        // --- Build the constant conductance matrix. -------------------------
        let mut g = vec![vec![0.0f64; n]; n];
        let stamp = |g: &mut Vec<Vec<f64>>, a: usize, b: usize, conductance: f64| {
            if a > 0 {
                g[a - 1][a - 1] += conductance;
            }
            if b > 0 {
                g[b - 1][b - 1] += conductance;
            }
            if a > 0 && b > 0 {
                g[a - 1][b - 1] -= conductance;
                g[b - 1][a - 1] -= conductance;
            }
        };
        // Per-element companion state.
        struct InductorState {
            a: usize,
            b: usize,
            g: f64,
            current: f64,
        }
        struct CapacitorState {
            a: usize,
            b: usize,
            g: f64,
            current: f64,
        }
        struct JunctionState {
            a: usize,
            b: usize,
            ic: f64,
            g_cap: f64,
            cap_current: f64,
            phase: f64,
        }
        let mut inductors = Vec::new();
        let mut capacitors = Vec::new();
        let mut junctions = Vec::new();
        let mut sources = Vec::new();

        for element in circuit.elements() {
            match element {
                Element::Resistor { a, b, ohms } => stamp(&mut g, *a, *b, 1.0 / ohms),
                Element::Inductor { a, b, henries } => {
                    let gl = h / (2.0 * henries);
                    stamp(&mut g, *a, *b, gl);
                    inductors.push(InductorState {
                        a: *a,
                        b: *b,
                        g: gl,
                        current: 0.0,
                    });
                }
                Element::Capacitor { a, b, farads } => {
                    let gc = 2.0 * farads / h;
                    stamp(&mut g, *a, *b, gc);
                    capacitors.push(CapacitorState {
                        a: *a,
                        b: *b,
                        g: gc,
                        current: 0.0,
                    });
                }
                Element::Junction { a, b, params } => {
                    let g_shunt = 1.0 / params.resistance;
                    let g_cap = 2.0 * params.capacitance / h;
                    stamp(&mut g, *a, *b, g_shunt + g_cap);
                    junctions.push(JunctionState {
                        a: *a,
                        b: *b,
                        ic: params.critical_current,
                        g_cap,
                        cap_current: 0.0,
                        phase: 0.0,
                    });
                }
                Element::CurrentSource { a, b, waveform } => {
                    sources.push((*a, *b, waveform.clone()));
                }
            }
        }

        let lu = LuFactors::factorize(g)
            .expect("singular conductance matrix: every node needs a DC path to ground");

        // --- Time stepping. --------------------------------------------------
        let mut voltages = vec![0.0f64; circuit.num_nodes()];
        let mut time = Vec::with_capacity(steps + 1);
        let mut node_traces: Vec<Vec<f64>> =
            vec![Vec::with_capacity(steps + 1); circuit.num_nodes()];
        let mut phase_traces: Vec<Vec<f64>> = vec![Vec::with_capacity(steps + 1); junctions.len()];

        let record = |time: &mut Vec<f64>,
                      node_traces: &mut Vec<Vec<f64>>,
                      phase_traces: &mut Vec<Vec<f64>>,
                      t: f64,
                      voltages: &[f64],
                      junctions: &[JunctionState]| {
            time.push(t);
            for (i, trace) in node_traces.iter_mut().enumerate() {
                trace.push(voltages[i]);
            }
            for (j, trace) in phase_traces.iter_mut().enumerate() {
                trace.push(junctions[j].phase);
            }
        };
        record(
            &mut time,
            &mut node_traces,
            &mut phase_traces,
            0.0,
            &voltages,
            &junctions,
        );

        let phase_factor = std::f64::consts::PI * h / FLUX_QUANTUM;

        for step_index in 1..=steps {
            let t = step_index as f64 * h;
            let previous = voltages.clone();
            let mut guess = previous.clone();

            for _iteration in 0..self.max_iterations {
                // Assemble the right-hand side.
                let mut rhs = vec![0.0f64; n];
                let add_current = |rhs: &mut Vec<f64>, from: usize, to: usize, amps: f64| {
                    // Current flows from `from` into `to`.
                    if to > 0 {
                        rhs[to - 1] += amps;
                    }
                    if from > 0 {
                        rhs[from - 1] -= amps;
                    }
                };
                for (a, b, waveform) in &sources {
                    add_current(&mut rhs, *a, *b, waveform.at(t));
                }
                for ind in &inductors {
                    let v_prev = previous[ind.a] - previous[ind.b];
                    let hist = ind.current + ind.g * v_prev;
                    // The history current keeps flowing from a to b.
                    add_current(&mut rhs, ind.b, ind.a, -hist);
                }
                for cap in &capacitors {
                    let v_prev = previous[cap.a] - previous[cap.b];
                    let hist = cap.g * v_prev + cap.current;
                    add_current(&mut rhs, cap.b, cap.a, hist);
                }
                for junction in &junctions {
                    let v_prev = previous[junction.a] - previous[junction.b];
                    let v_guess = guess[junction.a] - guess[junction.b];
                    let phase_next = junction.phase + phase_factor * (v_prev + v_guess);
                    let super_current = junction.ic * phase_next.sin();
                    // Capacitive history current.
                    let cap_hist = junction.g_cap * v_prev + junction.cap_current;
                    add_current(&mut rhs, junction.b, junction.a, cap_hist - super_current);
                }

                let solution = lu.solve(&rhs);
                let mut delta = 0.0f64;
                for (i, value) in solution.iter().enumerate() {
                    delta = delta.max((value - guess[i + 1]).abs());
                    guess[i + 1] = *value;
                }
                if delta < self.tolerance {
                    break;
                }
            }

            // Commit the step: update companion states.
            voltages = guess;
            for ind in &mut inductors {
                let v_prev = previous[ind.a] - previous[ind.b];
                let v_new = voltages[ind.a] - voltages[ind.b];
                ind.current += ind.g * (v_prev + v_new);
            }
            for cap in &mut capacitors {
                let v_prev = previous[cap.a] - previous[cap.b];
                let v_new = voltages[cap.a] - voltages[cap.b];
                cap.current = cap.g * (v_new - v_prev) - cap.current;
            }
            for junction in &mut junctions {
                let v_prev = previous[junction.a] - previous[junction.b];
                let v_new = voltages[junction.a] - voltages[junction.b];
                junction.phase += phase_factor * (v_prev + v_new);
                junction.cap_current = junction.g_cap * (v_new - v_prev) - junction.cap_current;
            }
            record(
                &mut time,
                &mut node_traces,
                &mut phase_traces,
                t,
                &voltages,
                &junctions,
            );
        }

        TransientResult {
            time,
            node_voltages: node_traces,
            junction_phases: phase_traces,
        }
    }
}

/// Result of a transient analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientResult {
    /// Time points in seconds.
    pub time: Vec<f64>,
    /// `node_voltages[node][sample]` in volts (index 0 is ground, always 0).
    pub node_voltages: Vec<Vec<f64>>,
    /// `junction_phases[junction][sample]` in radians, in junction-creation
    /// order.
    pub junction_phases: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Voltage trace of a node.
    #[must_use]
    pub fn voltage(&self, node: usize) -> &[f64] {
        &self.node_voltages[node]
    }

    /// Phase trace of a junction.
    #[must_use]
    pub fn phase(&self, junction: usize) -> &[f64] {
        &self.junction_phases[junction]
    }

    /// Final phase of a junction (radians).
    #[must_use]
    pub fn final_phase(&self, junction: usize) -> f64 {
        *self.junction_phases[junction].last().unwrap_or(&0.0)
    }

    /// Number of 2π phase slips (SFQ pulses emitted) of a junction.
    #[must_use]
    pub fn flux_quanta(&self, junction: usize) -> usize {
        (self.final_phase(junction) / (2.0 * std::f64::consts::PI))
            .round()
            .max(0.0) as usize
    }

    /// Peak voltage of a node, in volts.
    #[must_use]
    pub fn peak_voltage(&self, node: usize) -> f64 {
        self.node_voltages[node]
            .iter()
            .fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Time integral of a node voltage (webers) — an SFQ pulse integrates to
    /// one flux quantum Φ₀.
    #[must_use]
    pub fn voltage_area(&self, node: usize) -> f64 {
        let v = &self.node_voltages[node];
        let mut area = 0.0;
        for i in 1..v.len() {
            let dt = self.time[i] - self.time[i - 1];
            area += 0.5 * (v[i] + v[i - 1]) * dt;
        }
        area
    }
}

/// Dense LU factorization with partial pivoting.
struct LuFactors {
    n: usize,
    lu: Vec<Vec<f64>>,
    pivots: Vec<usize>,
}

impl LuFactors {
    fn factorize(mut a: Vec<Vec<f64>>) -> Option<Self> {
        let n = a.len();
        let mut pivots = vec![0usize; n];
        for k in 0..n {
            // Partial pivot.
            let mut max_row = k;
            let mut max_val = a[k][k].abs();
            for (i, row) in a.iter().enumerate().skip(k + 1) {
                if row[k].abs() > max_val {
                    max_val = row[k].abs();
                    max_row = i;
                }
            }
            if max_val < 1e-18 {
                return None;
            }
            a.swap(k, max_row);
            pivots[k] = max_row;
            for i in k + 1..n {
                let factor = a[i][k] / a[k][k];
                a[i][k] = factor;
                let (pivot_rows, rest) = a.split_at_mut(k + 1);
                let pivot_row = &pivot_rows[k];
                let row = &mut rest[i - k - 1];
                for (x, &pk) in row[k + 1..n].iter_mut().zip(&pivot_row[k + 1..n]) {
                    *x -= factor * pk;
                }
            }
        }
        Some(LuFactors { n, lu: a, pivots })
    }

    fn solve(&self, rhs: &[f64]) -> Vec<f64> {
        let n = self.n;
        let mut x = rhs.to_vec();
        // Apply row permutations and forward-substitute.
        for k in 0..n {
            x.swap(k, self.pivots[k]);
            for i in k + 1..n {
                let factor = self.lu[i][k];
                x[i] -= factor * x[k];
            }
        }
        // Back-substitution.
        for k in (0..n).rev() {
            for j in k + 1..n {
                x[k] -= self.lu[k][j] * x[j];
            }
            x[k] /= self.lu[k][k];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::JunctionParams;
    use crate::waveform::Waveform;

    #[test]
    fn rc_discharge_matches_analytic_solution() {
        // A 1 mA step into R=1 ohm || C=1 pF: v(t) = R*I*(1 - exp(-t/RC)).
        let mut c = Circuit::new();
        let node = c.node();
        c.resistor(node, 0, 1.0);
        c.capacitor(node, 0, 1e-12);
        c.current_source(0, node, Waveform::Dc { amps: 1e-3 });
        let result = Transient::new(1e-14, 5e-12).run(&c);
        let tau = 1e-12;
        for (i, &t) in result.time.iter().enumerate() {
            let expected = 1e-3 * (1.0 - (-t / tau).exp());
            let got = result.node_voltages[node][i];
            assert!(
                (got - expected).abs() < 3e-5,
                "t={t:e}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn rl_current_ramp() {
        // A DC current source into L || R: the inductor eventually carries all
        // the current, so the node voltage decays to zero.
        let mut c = Circuit::new();
        let node = c.node();
        c.resistor(node, 0, 2.0);
        c.inductor(node, 0, 10e-12);
        c.current_source(0, node, Waveform::Dc { amps: 1e-3 });
        let result = Transient::new(1e-14, 40e-12).run(&c);
        let first = result.node_voltages[node][1];
        let last = *result.node_voltages[node].last().unwrap();
        assert!(first > 1e-3, "initially the resistor carries the current");
        assert!(
            last.abs() < 1e-4,
            "inductor shorts the source at DC: {last}"
        );
    }

    #[test]
    fn underbiased_junction_stays_superconducting() {
        // 70% bias, ramped up adiabatically over 30 ps: the junction phase
        // settles below pi/2 and no sustained voltage develops (zero-voltage
        // state, no phase slips).
        let mut c = Circuit::new();
        let node = c.node();
        let params = JunctionParams::critically_damped(100e-6);
        c.junction(node, 0, params);
        c.current_source(
            0,
            node,
            Waveform::Pulse {
                low: 0.0,
                high: 70e-6,
                delay: 0.0,
                rise: 30e-12,
                width: 1.0,
                fall: 1.0,
            },
        );
        let result = Transient::new(5e-14, 100e-12).run(&c);
        assert!(result.final_phase(0) < std::f64::consts::FRAC_PI_2);
        assert_eq!(result.flux_quanta(0), 0);
        assert!(
            result.peak_voltage(node) < 5e-5,
            "peak {}",
            result.peak_voltage(node)
        );
    }

    #[test]
    fn overbiased_junction_switches_and_produces_flux_quanta() {
        // Driving a junction above Ic makes it enter the voltage state and
        // generate a train of SFQ pulses (phase slips of 2 pi).
        let mut c = Circuit::new();
        let node = c.node();
        let params = JunctionParams::critically_damped(100e-6);
        c.junction(node, 0, params);
        c.current_source(0, node, Waveform::Dc { amps: 150e-6 });
        let result = Transient::new(2e-14, 200e-12).run(&c);
        assert!(result.flux_quanta(0) >= 2, "got {}", result.flux_quanta(0));
        assert!(result.peak_voltage(node) > 5e-5);
    }

    #[test]
    fn lu_solver_solves_small_system() {
        let a = vec![
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ];
        let lu = LuFactors::factorize(a).unwrap();
        let x = lu.solve(&[1.0, 2.0, 3.0]);
        // Verify A x = b.
        let b0 = 4.0 * x[0] + x[1];
        let b1 = x[0] + 3.0 * x[1] + x[2];
        let b2 = x[1] + 2.0 * x[2];
        assert!((b0 - 1.0).abs() < 1e-12);
        assert!((b1 - 2.0).abs() < 1e-12);
        assert!((b2 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        assert!(LuFactors::factorize(vec![vec![1.0, 1.0], vec![1.0, 1.0]]).is_none());
    }
}
