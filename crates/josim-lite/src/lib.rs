//! `josim-lite` — a small superconductor transient circuit simulator.
//!
//! The paper simulates its encoder netlists with JoSIM, a SPICE-class
//! superconductor circuit simulator, to obtain the waveforms of Fig. 3 and
//! the PPV failure statistics of Fig. 5. JoSIM itself is C++ and depends on
//! JJ-level cell layouts that are not part of this reproduction, so this
//! crate provides the minimal analog substrate needed to justify the
//! gate-level abstractions used elsewhere in the workspace:
//!
//! * the resistively-and-capacitively-shunted-junction (RCSJ) model of a
//!   Josephson junction, the same device model JoSIM uses;
//! * modified nodal analysis with trapezoidal integration for linear
//!   elements (R, L, C) and fixed-point iteration for the junction
//!   supercurrent;
//! * current sources with DC / pulse / piecewise-linear / sinusoidal
//!   waveforms plus Johnson–Nyquist noise sources for 4.2 K operation;
//! * a JoSIM-style `spread` transform that perturbs every circuit parameter
//!   by a bounded random deviation (the PPV mechanism of the paper);
//! * reference sub-circuits — a Josephson transmission line and an SFQ
//!   splitter — demonstrating single-flux-quantum pulse
//!   generation and propagation (amplitude ≈ a few hundred microvolts, width
//!   ≈ 2 ps, time integral ≈ Φ₀), which is the physical basis for the pulse
//!   semantics assumed by the `sfq-sim` gate-level simulator.
//!
//! # Example: a propagating SFQ pulse
//!
//! ```
//! use josim_lite::cells::jtl_chain;
//! use josim_lite::solver::Transient;
//!
//! let (circuit, probes) = jtl_chain(4);
//! let result = Transient::new(0.05e-12, 60e-12).run(&circuit);
//! // The last junction of the chain switches by 2π: one flux quantum has
//! // traversed the transmission line.
//! let last = *probes.last().unwrap();
//! assert!(result.final_phase(last) > 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod circuit;
pub mod solver;
pub mod waveform;

pub use circuit::{Circuit, Element, JunctionParams, NodeIndex};
pub use solver::{Transient, TransientResult};
pub use waveform::Waveform;

/// Magnetic flux quantum Φ₀ in webers.
pub const FLUX_QUANTUM: f64 = 2.067_833_848e-15;
