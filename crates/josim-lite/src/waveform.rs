//! Source waveforms for independent current sources.

use serde::{Deserialize, Serialize};

/// Time-dependent current waveform of an independent source, in amperes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Waveform {
    /// Constant (bias) current.
    Dc {
        /// Current in amperes.
        amps: f64,
    },
    /// Trapezoidal pulse.
    Pulse {
        /// Baseline current in amperes.
        low: f64,
        /// Plateau current in amperes.
        high: f64,
        /// Pulse start time in seconds.
        delay: f64,
        /// Rise time in seconds.
        rise: f64,
        /// Plateau duration in seconds.
        width: f64,
        /// Fall time in seconds.
        fall: f64,
    },
    /// Sine wave `offset + amplitude · sin(2π f (t − delay))`, zero before `delay`.
    Sin {
        /// DC offset in amperes.
        offset: f64,
        /// Amplitude in amperes.
        amplitude: f64,
        /// Frequency in hertz.
        frequency: f64,
        /// Start time in seconds.
        delay: f64,
    },
    /// Piecewise-linear waveform given as `(time, current)` points.
    Pwl {
        /// Sorted list of `(time_s, amps)` breakpoints.
        points: Vec<(f64, f64)>,
    },
}

impl Waveform {
    /// Evaluates the waveform at time `t` (seconds).
    #[must_use]
    pub fn at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc { amps } => *amps,
            Waveform::Pulse {
                low,
                high,
                delay,
                rise,
                width,
                fall,
            } => {
                let t = t - delay;
                if t <= 0.0 {
                    *low
                } else if t < *rise {
                    low + (high - low) * t / rise
                } else if t < rise + width {
                    *high
                } else if t < rise + width + fall {
                    high - (high - low) * (t - rise - width) / fall
                } else {
                    *low
                }
            }
            Waveform::Sin {
                offset,
                amplitude,
                frequency,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset
                        + amplitude * (2.0 * std::f64::consts::PI * frequency * (t - delay)).sin()
                }
            }
            Waveform::Pwl { points } => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for pair in points.windows(2) {
                    let (t0, i0) = pair[0];
                    let (t1, i1) = pair[1];
                    if t <= t1 {
                        if t1 <= t0 {
                            return i1;
                        }
                        return i0 + (i1 - i0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().map(|&(_, i)| i).unwrap_or(0.0)
            }
        }
    }

    /// A triangular SFQ-like trigger pulse of the given amplitude and width
    /// centred at `center` seconds.
    #[must_use]
    pub fn trigger(amplitude: f64, center: f64, width: f64) -> Self {
        Waveform::Pulse {
            low: 0.0,
            high: amplitude,
            delay: center - width / 2.0,
            rise: width / 2.0,
            width: 0.0,
            fall: width / 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc { amps: 1e-4 };
        assert_eq!(w.at(0.0), 1e-4);
        assert_eq!(w.at(1.0), 1e-4);
    }

    #[test]
    fn pulse_shape() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 1.0,
            rise: 1.0,
            width: 2.0,
            fall: 1.0,
        };
        assert_eq!(w.at(0.5), 0.0);
        assert!((w.at(1.5) - 0.5).abs() < 1e-12);
        assert_eq!(w.at(2.5), 1.0);
        assert_eq!(w.at(3.9), 1.0);
        assert!((w.at(4.5) - 0.5).abs() < 1e-12);
        assert_eq!(w.at(6.0), 0.0);
    }

    #[test]
    fn sin_starts_after_delay() {
        let w = Waveform::Sin {
            offset: 0.0,
            amplitude: 1.0,
            frequency: 1.0,
            delay: 1.0,
        };
        assert_eq!(w.at(0.5), 0.0);
        assert!((w.at(1.25) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pwl_interpolates() {
        let w = Waveform::Pwl {
            points: vec![(0.0, 0.0), (1.0, 2.0), (3.0, 0.0)],
        };
        assert_eq!(w.at(-1.0), 0.0);
        assert!((w.at(0.5) - 1.0).abs() < 1e-12);
        assert!((w.at(2.0) - 1.0).abs() < 1e-12);
        assert_eq!(w.at(5.0), 0.0);
    }

    #[test]
    fn trigger_peaks_at_center() {
        let w = Waveform::trigger(6e-4, 10e-12, 4e-12);
        assert!((w.at(10e-12) - 6e-4).abs() < 1e-9);
        assert!(w.at(7.9e-12) < 1e-9);
        assert!(w.at(12.1e-12) < 1e-9);
    }
}
