//! Zero-sized no-op mirror of the instrumentation API (`enabled` feature
//! off). Every type is unit-sized and every method an empty inline call, so
//! instrumented crates compile unchanged and carry no telemetry cost at
//! all. [`MetricsRegistry::snapshot`] returns an empty [`Snapshot`].

use crate::snapshot::Snapshot;

/// `false`: the crate was compiled without the `enabled` feature.
#[must_use]
pub fn is_enabled() -> bool {
    false
}

/// Always `false` in no-op builds.
#[must_use]
pub fn recording() -> bool {
    false
}

/// No-op: there is nothing to toggle in an uninstrumented build.
pub fn set_recording(_on: bool) {}

/// No-op counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter;

impl Counter {
    /// No-op.
    #[inline(always)]
    pub fn add(&self, _v: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn inc(&self) {}

    /// Always 0.
    #[must_use]
    pub fn value(&self) -> u64 {
        0
    }
}

/// No-op gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge;

impl Gauge {
    /// No-op.
    #[inline(always)]
    pub fn set(&self, _v: i64) {}

    /// No-op.
    #[inline(always)]
    pub fn add(&self, _delta: i64) {}

    /// Always 0.
    #[must_use]
    pub fn value(&self) -> i64 {
        0
    }
}

/// No-op histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram;

impl Histogram {
    /// No-op.
    #[inline(always)]
    pub fn record(&self, _value: u64) {}

    /// Always 0.
    #[must_use]
    pub fn count(&self) -> u64 {
        0
    }
}

/// No-op span: never reads the clock.
#[derive(Debug)]
pub struct SpanTimer;

impl SpanTimer {
    /// No-op.
    #[must_use]
    pub fn start(_histogram: Histogram) -> Self {
        SpanTimer
    }
}

/// No-op stopwatch: never reads the clock, always reports 0.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch;

impl Stopwatch {
    /// No-op.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch
    }

    /// Always 0, so derived values are deterministic in no-op builds.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        0
    }
}

/// No-op registry: hands out unit handles, snapshots are empty.
#[derive(Debug, Default)]
pub struct MetricsRegistry;

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry
    }

    /// A no-op counter handle.
    #[must_use]
    pub fn counter(&self, _name: &str) -> Counter {
        Counter
    }

    /// A no-op gauge handle.
    #[must_use]
    pub fn gauge(&self, _name: &str) -> Gauge {
        Gauge
    }

    /// A no-op histogram handle.
    #[must_use]
    pub fn histogram(&self, _name: &str) -> Histogram {
        Histogram
    }

    /// Always empty.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }

    /// No-op.
    pub fn reset(&self) {}
}

/// The process-wide registry (a unit value in no-op builds).
#[must_use]
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: MetricsRegistry = MetricsRegistry;
    &GLOBAL
}
