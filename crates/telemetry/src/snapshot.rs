//! Owned, renderable views of a metrics registry. Always compiled — the
//! feature gate only affects whether anything records into them.

use crate::json::JsonWriter;

/// Number of histogram buckets: bucket 0 for the value `0`, buckets
/// `1..=64` for `2^(b-1) ..= 2^b - 1` (the whole `u64` range).
pub const BUCKETS: usize = 65;

/// One merged counter in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Sum over all shards.
    pub value: u64,
}

/// One gauge in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Current value.
    pub value: i64,
}

/// One merged histogram in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total samples over all shards.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts (see [`crate::bucket_index`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty histogram snapshot under `name`.
    #[must_use]
    pub fn empty(name: String) -> Self {
        HistogramSnapshot {
            name,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated quantile `q ∈ [0, 1]`: the inclusive upper bound of the
    /// bucket containing the `ceil(q · count)`-th smallest sample, clamped
    /// to the observed `min`/`max`. Deterministic, and exact to within one
    /// octave by construction.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return crate::bucket_upper_bound(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A merged, name-sorted view of a registry at one point in time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// `true` when nothing was recorded (always the case in no-op builds).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Value of the named counter, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Value of the named gauge, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The named histogram, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Writes the snapshot as a JSON object (`counters`, `gauges`,
    /// `histograms` with count/sum/min/max/mean/p50/p90/p99 and the
    /// non-empty buckets) through the given writer.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("counters");
        w.begin_object();
        for c in &self.counters {
            w.key(&c.name);
            w.uint(c.value);
        }
        w.end_object();
        w.key("gauges");
        w.begin_object();
        for g in &self.gauges {
            w.key(&g.name);
            w.int(g.value);
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for h in &self.histograms {
            w.key(&h.name);
            w.begin_object();
            w.key("count");
            w.uint(h.count);
            w.key("sum");
            w.uint(h.sum);
            w.key("min");
            w.uint(h.min);
            w.key("max");
            w.uint(h.max);
            w.key("mean");
            w.float(h.mean());
            w.key("p50");
            w.uint(h.p50());
            w.key("p90");
            w.uint(h.p90());
            w.key("p99");
            w.uint(h.p99());
            w.key("buckets");
            w.begin_object();
            for (b, &c) in h.buckets.iter().enumerate() {
                if c > 0 {
                    w.key(&format!("le_{}", crate::bucket_upper_bound(b)));
                    w.uint(c);
                }
            }
            w.end_object();
            w.end_object();
        }
        w.end_object();
        w.end_object();
    }

    /// The snapshot as a standalone JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Human-readable table: one line per metric, histograms with
    /// count/mean/p50/p99/max.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("(no metrics recorded — telemetry disabled?)\n");
            return out;
        }
        for c in &self.counters {
            out.push_str(&format!("{:<44} {:>16}\n", c.name, c.value));
        }
        for g in &self.gauges {
            out.push_str(&format!("{:<44} {:>16}\n", g.name, g.value));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "{:<44} n={:<9} mean={:<12.1} p50={:<10} p99={:<10} max={}\n",
                h.name,
                h.count,
                h.mean(),
                h.p50(),
                h.p99(),
                h.max,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram_of(samples: &[u64]) -> HistogramSnapshot {
        let mut h = HistogramSnapshot::empty("t".to_string());
        for &s in samples {
            h.count += 1;
            h.sum = h.sum.saturating_add(s);
            h.min = h.min.min(s);
            h.max = h.max.max(s);
            h.buckets[crate::bucket_index(s)] += 1;
        }
        if h.count == 0 {
            h.min = 0;
        }
        h
    }

    #[test]
    fn quantiles_of_empty_histogram_are_zero() {
        let h = histogram_of(&[]);
        assert_eq!((h.p50(), h.p99(), h.mean() as u64), (0, 0, 0));
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        // 99 samples near 100 plus one at ~1e6: p50 stays in the low
        // octave, p99 lands at the outlier's octave, both clamped to
        // observed extrema.
        let mut samples = vec![100u64; 99];
        samples.push(1_000_000);
        let h = histogram_of(&samples);
        assert_eq!(h.min, 100);
        assert_eq!(h.max, 1_000_000);
        assert!(h.p50() >= 100 && h.p50() < 200, "p50 = {}", h.p50());
        assert_eq!(h.p99(), 127, "99th of 100 samples is still the low octave");
        assert_eq!(h.quantile(1.0), 1_000_000, "clamped to observed max");
    }

    #[test]
    fn single_sample_quantiles_clamp_to_the_sample() {
        let h = histogram_of(&[1000]);
        assert_eq!(h.p50(), 1000);
        assert_eq!(h.p99(), 1000);
        assert_eq!(h.mean() as u64, 1000);
    }

    #[test]
    fn snapshot_lookups_and_table() {
        let snapshot = Snapshot {
            counters: vec![CounterSnapshot {
                name: "a.count".to_string(),
                value: 3,
            }],
            gauges: vec![GaugeSnapshot {
                name: "a.gauge".to_string(),
                value: -2,
            }],
            histograms: vec![histogram_of(&[1, 2, 3])],
        };
        assert_eq!(snapshot.counter("a.count"), Some(3));
        assert_eq!(snapshot.gauge("a.gauge"), Some(-2));
        assert_eq!(snapshot.counter("missing"), None);
        assert!(snapshot.histogram("t").is_some());
        let table = snapshot.to_table();
        assert!(table.contains("a.count"));
        assert!(table.contains("n=3"));
        assert!(!snapshot.is_empty());
        assert!(Snapshot::default().is_empty());
    }

    #[test]
    fn snapshot_json_is_valid_and_contains_quantiles() {
        let snapshot = Snapshot {
            counters: vec![CounterSnapshot {
                name: "x.\"quoted\"".to_string(),
                value: 1,
            }],
            gauges: vec![],
            histograms: vec![histogram_of(&[0, 5, 1 << 40])],
        };
        let json = snapshot.to_json();
        crate::json::validate(&json).expect("snapshot JSON parses");
        assert!(json.contains("\"p99\""));
        assert!(json.contains("le_7"), "bucket of 5 is le_7: {json}");
        assert!(json.contains("x.\\\"quoted\\\""), "names are escaped");
    }
}
